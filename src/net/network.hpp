#pragma once
// The simulated interconnect: an SP-style crossbar switch connecting all
// nodes. Channels are FIFO per (src, dst) pair, as on the SP
// high-performance switch.
//
// The network is protocol- AND cost-agnostic: it charges the sender the
// CPU time it is told to, computes the arrival timestamp from the wire
// time it is told to, and hands the receiving node a delivery closure.
// Pricing a message for the active machine profile is the transport
// layer's job (transport::wire_cost); the messaging backends (AM, MPL,
// Nexus/TCP) choose the wire class and provide the closure through
// transport::Channel.

#include <atomic>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"

namespace tham::net {

/// Which protocol path a message takes; selects the cost parameters.
enum class Wire {
  AmShort,  ///< 4-word active message (request or reply)
  AmBulk,   ///< AM bulk transfer (store / get payload)
  Mpl,      ///< IBM MPL-style two-sided message
  Tcp,      ///< TCP/IP over the switch (Nexus configuration)
};

class Network {
 public:
  /// Observes every send (src, dst, send time, arrival, bytes, wire).
  /// Used by stats::Tracer; at most one observer.
  struct SendEvent {
    NodeId src;
    NodeId dst;
    SimTime send_time;
    SimTime arrival;
    std::size_t bytes;
    Wire wire;
  };
  using Observer = std::function<void(const SendEvent&)>;

  explicit Network(sim::Engine& engine);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends a message from the current task on `src` to `dst`.
  /// Charges `sender_cpu` to the sending task under the *current*
  /// component scope (callers wrap with Component::Net), computes the
  /// arrival time as now + `wire_time` clamped to FIFO order on the
  /// (src, dst) channel, and enqueues the delivery closure at the
  /// destination. The closure is stored inline (sim::InlineHandler): no
  /// heap allocation per send. Both costs are precomputed by
  /// transport::Channel from the machine profile — the network itself
  /// reads no calibration constants.
  void send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
            SimTime sender_cpu, SimTime wire_time,
            sim::InlineHandler deliver);

  /// Messages sent so far (all wires).
  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  sim::Engine& engine() { return engine_; }

  /// Installing an observer pins the engine to the sequential executor: a
  /// single callback watching every send cannot be invoked from concurrent
  /// shard workers without changing what it observes.
  void set_observer(Observer obs) {
    observer_ = std::move(obs);
    if (observer_) engine_.require_sequential("a network observer is attached");
  }

 private:
  Observer observer_;
  sim::Engine& engine_;
  /// Last arrival per src*N+dst. Row `src` is only touched by sends from
  /// `src`, which all execute on the shard worker owning that node, so
  /// parallel runs write disjoint elements.
  std::vector<SimTime> channel_clock_;
  std::atomic<std::uint64_t> total_messages_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
};

}  // namespace tham::net
