#pragma once
// The simulated interconnect: an SP-style crossbar switch connecting all
// nodes. Channels are FIFO per (src, dst) pair, as on the SP
// high-performance switch.
//
// The network is protocol- AND cost-agnostic: it charges the sender the
// CPU time it is told to, computes the arrival timestamp from the wire
// time it is told to, and hands the receiving node a delivery closure.
// Pricing a message for the active machine profile is the transport
// layer's job (transport::wire_cost); the messaging backends (AM, MPL,
// Nexus/TCP) choose the wire class and provide the closure through
// transport::Channel.
//
// This is also where the wire misbehaves: an attached fault::Injector
// decides — deterministically, from (seed, src, dst, per-source seq) —
// whether each message is dropped, duplicated, delay-spiked, or corrupted
// before it reaches the destination inbox. Dropped messages still advance
// the FIFO channel clock (the bits occupied the wire), so the arrival
// timestamps of surviving traffic are schedule-independent too.

#include <atomic>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"

namespace tham::net {

/// Which protocol path a message takes; selects the cost parameters.
enum class Wire {
  AmShort,  ///< 4-word active message (request or reply)
  AmBulk,   ///< AM bulk transfer (store / get payload)
  Mpl,      ///< IBM MPL-style two-sided message
  Tcp,      ///< TCP/IP over the switch (Nexus configuration)
};

/// Send-flag bits a transport may attach to a message, so observers
/// (stats::Tracer) can tell protocol-control traffic from fresh data.
enum : std::uint8_t {
  kSendRetransmit = 1u << 0,  ///< reliable-transport retransmission
  kSendAck = 1u << 1,         ///< reliable-transport cumulative ack
};

class Network {
 public:
  /// What became of a send at the network boundary.
  enum class Fate : std::uint8_t {
    Delivered,  ///< enqueued at the destination (possibly delay-spiked)
    Dropped,    ///< fault injector dropped it; never reaches the inbox
    DupCopy,    ///< the injector-made second copy of a duplicated message
  };

  /// Observes every send (src, dst, send time, arrival, bytes, wire,
  /// flags, fate). Used by stats::Tracer; at most one observer. A
  /// duplicated message reports two events: the original (Delivered) and
  /// the extra copy (DupCopy).
  struct SendEvent {
    NodeId src;
    NodeId dst;
    SimTime send_time;
    SimTime arrival;
    std::size_t bytes;
    Wire wire;
    std::uint8_t flags = 0;  ///< kSendRetransmit / kSendAck
    Fate fate = Fate::Delivered;
  };
  using Observer = std::function<void(const SendEvent&)>;

  explicit Network(sim::Engine& engine);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Sends a message from the current task on `src` to `dst`.
  /// Charges `sender_cpu` to the sending task under the *current*
  /// component scope (callers wrap with Component::Net), computes the
  /// arrival time as now + `wire_time` clamped to FIFO order on the
  /// (src, dst) channel, and enqueues the delivery closure at the
  /// destination. The closure is stored inline (sim::InlineHandler): no
  /// heap allocation per send. Both costs are precomputed by
  /// transport::Channel from the machine profile — the network itself
  /// reads no calibration constants. `flags` (kSendRetransmit/kSendAck)
  /// mark protocol-control traffic for observers and the terminal audit.
  void send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
            SimTime sender_cpu, SimTime wire_time, sim::InlineHandler deliver,
            std::uint8_t flags = 0);

  /// Messages sent so far (all wires).
  std::uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  sim::Engine& engine() { return engine_; }

  /// Attaches a fault injector; every subsequent send asks it for a
  /// decision. Null detaches. The injector makes schedule-independent
  /// decisions, so — unlike an observer — it does NOT force the
  /// sequential executor. Registers the injector's ledger with the
  /// engine's terminal audit, so injected drops are reported as info
  /// (not diagnostics) when a checker is attached.
  void set_injector(fault::Injector* injector);
  fault::Injector* injector() const { return injector_; }

  /// Installing an observer pins the engine to the sequential executor: a
  /// single callback watching every send cannot be invoked from concurrent
  /// shard workers without changing what it observes.
  void set_observer(Observer obs) {
    observer_ = std::move(obs);
    if (observer_) engine_.require_sequential("a network observer is attached");
  }

 private:
  Observer observer_;
  sim::Engine& engine_;
  fault::Injector* injector_ = nullptr;
  /// Last arrival per (src, dst) link, held sparsely per source — a dense
  /// N*N vector would cost O(N^2) host memory on large machines whose
  /// nodes each talk to a handful of peers. Row `src` is only touched by
  /// sends from `src`, which all execute on the shard worker owning that
  /// node, so parallel runs write disjoint rows.
  std::vector<std::unordered_map<NodeId, SimTime>> channel_clock_;
  std::atomic<std::uint64_t> total_messages_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
};

}  // namespace tham::net
