#include "net/network.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "common/check.hpp"

namespace tham::net {

Network::Network(sim::Engine& engine)
    : engine_(engine),
      channel_clock_(static_cast<std::size_t>(engine.size())) {}

void Network::set_injector(fault::Injector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    // Terminal audit: report the drop ledger as info so an attached
    // checker can tell injected drops from a protocol losing messages.
    fault::Injector* inj = injector_;
    engine_.add_audit_hook([inj](check::Checker& chk) {
      chk.audit_injector(inj->drops(), inj->dups(), inj->delays(),
                         inj->corruptions());
    });
  }
}

void Network::send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
                   SimTime sender_cpu, SimTime wire_time,
                   sim::InlineHandler deliver, std::uint8_t flags) {
  THAM_CHECK(dst >= 0 && dst < engine_.size());
  THAM_CHECK_MSG(dst != src.id(), "network send to self");
  // When a topology was declared, every send must honour its wire-time
  // floors — the invariant per-link lookahead epochs are built on.
  engine_.check_wire_floor(src.id(), dst, wire_time);

  src.advance(sender_cpu);

  // Per-source send sequence: the FIFO tie-break key every engine schedule
  // derives identically (a global counter would encode the schedule) — and
  // therefore also the fault-decision key.
  std::uint64_t seq = src.next_send_seq();

  fault::Decision fd;
  if (injector_ != nullptr) {
    fd = injector_->decide(src.id(), dst, seq, src.now());
    // A duplicate needs a second delivery closure; a move-only closure
    // cannot be copied, so such a message simply is not duplicated.
    // Deterministic either way: copyability is a property of the call
    // site, not of the schedule.
    if (fd.duplicate && !deliver.copyable()) fd.duplicate = false;
    injector_->record(fd, src.id(), dst);
  }

  // A delay spike is added to the wire time BEFORE the FIFO clamp: the
  // slowed message pushes the channel clock forward, so later messages on
  // the same link still arrive after it (per-link FIFO holds; reordering
  // happens only relative to other links' traffic).
  SimTime arrival = src.now() + wire_time + fd.extra_delay;
  // FIFO per channel: a message cannot overtake an earlier one on the same
  // (src, dst) link.
  SimTime& chan = channel_clock_[static_cast<std::size_t>(src.id())][dst];
  arrival = std::max(arrival, chan);
  chan = arrival;

  total_messages_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  ++src.counters().msgs_sent;
  src.counters().bytes_sent += bytes;

  if (fd.drop) {
    // The bits occupied the wire (channel clock above) but never arrive.
    // The delivery closure dies here.
    if (observer_) {
      observer_(SendEvent{src.id(), dst, src.now(), arrival, bytes, wire,
                          flags, Fate::Dropped});
    }
    return;
  }

  if (observer_) {
    observer_(SendEvent{src.id(), dst, src.now(), arrival, bytes, wire, flags,
                        Fate::Delivered});
  }

  std::uint8_t fault_flags = 0;
  if (fd.corrupt) fault_flags |= sim::kFaultCorrupt;
  if ((flags & (kSendRetransmit | kSendAck)) != 0) {
    fault_flags |= sim::kFaultProtoAux;
  }

  sim::InlineHandler dup_deliver;
  if (fd.duplicate) dup_deliver = deliver.clone();

  sim::Message m;
  m.arrival = arrival;
  m.src = src.id();
  m.seq = seq;
  m.wire_bytes = bytes;
  m.deliver = std::move(deliver);
  m.fault_flags = fault_flags;
#if defined(THAM_CHECK_ENABLED)
  // Not THAM_HOOK: the send hook returns the clock-snapshot id that rides
  // in the message and becomes the send->deliver happens-before edge.
  if (auto* chk = check::Checker::active()) {
    m.check_clock = chk->on_send(src.id());
  }
#endif
  // Routed through the engine: mid-epoch cross-shard sends park in the
  // sending shard's outbox until the barrier.
  engine_.deliver(dst, std::move(m));

  if (fd.duplicate) {
    // The second copy trails the original by the plan's dup gap (minimum
    // one tick, so the two records never tie on (arrival, src, seq)), and
    // pushes the channel clock so per-link FIFO still holds around it.
    SimTime gap =
        injector_->plan().dup_gap > 0 ? injector_->plan().dup_gap : 1;
    SimTime dup_arrival = arrival + gap;
    SimTime& dup_chan =
        channel_clock_[static_cast<std::size_t>(src.id())][dst];
    dup_chan = std::max(dup_chan, dup_arrival);
    if (observer_) {
      observer_(SendEvent{src.id(), dst, src.now(), dup_arrival, bytes, wire,
                          flags, Fate::DupCopy});
    }
    sim::Message m2;
    m2.arrival = dup_arrival;
    m2.src = src.id();
    m2.seq = seq;  // it IS the same message; receivers dedup on content
    m2.wire_bytes = bytes;
    m2.deliver = std::move(dup_deliver);
    m2.fault_flags = fault_flags | sim::kFaultInjectedDup;
#if defined(THAM_CHECK_ENABLED)
    if (auto* chk = check::Checker::active()) {
      m2.check_clock = chk->on_send(src.id());
    }
#endif
    engine_.deliver(dst, std::move(m2));
  }
}

}  // namespace tham::net
