#include "net/network.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "common/check.hpp"

namespace tham::net {

Network::Network(sim::Engine& engine)
    : engine_(engine),
      channel_clock_(static_cast<std::size_t>(engine.size()) *
                     static_cast<std::size_t>(engine.size())) {}

void Network::send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
                   SimTime sender_cpu, SimTime wire_time,
                   sim::InlineHandler deliver) {
  THAM_CHECK(dst >= 0 && dst < engine_.size());
  THAM_CHECK_MSG(dst != src.id(), "network send to self");

  src.advance(sender_cpu);

  SimTime arrival = src.now() + wire_time;
  // FIFO per channel: a message cannot overtake an earlier one on the same
  // (src, dst) link.
  auto chan = static_cast<std::size_t>(src.id()) *
                  static_cast<std::size_t>(engine_.size()) +
              static_cast<std::size_t>(dst);
  arrival = std::max(arrival, channel_clock_[chan]);
  channel_clock_[chan] = arrival;

  total_messages_.fetch_add(1, std::memory_order_relaxed);
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  ++src.counters().msgs_sent;
  src.counters().bytes_sent += bytes;

  if (observer_) {
    observer_(SendEvent{src.id(), dst, src.now(), arrival, bytes, wire});
  }

  sim::Message m;
  m.arrival = arrival;
  m.src = src.id();
  // Per-source send sequence: the FIFO tie-break key every engine schedule
  // derives identically (a global counter would encode the schedule).
  m.seq = src.next_send_seq();
  m.wire_bytes = bytes;
  m.deliver = std::move(deliver);
#if defined(THAM_CHECK_ENABLED)
  // Not THAM_HOOK: the send hook returns the clock-snapshot id that rides
  // in the message and becomes the send->deliver happens-before edge.
  if (auto* chk = check::Checker::active()) {
    m.check_clock = chk->on_send(src.id());
  }
#endif
  // Routed through the engine: mid-epoch cross-shard sends park in the
  // sending shard's outbox until the barrier.
  engine_.deliver(dst, std::move(m));
}

}  // namespace tham::net
