#pragma once
// The CC++ runtime ("CC++ over ThAM", Section 4 of the paper): an MPMD
// runtime layered directly on Active Messages and the lightweight threads
// package. It provides:
//
//   * processor objects referenced by opaque global pointers (gptr<C>),
//   * remote method invocation with argument marshalling, where the
//     "compiler-generated stubs" are variadic templates doing exactly the
//     marshal / name-resolve / dispatch / thread-fork work the CC++
//     front-end emitted,
//   * method stub caching: warm calls carry a resolved remote stub index;
//     cold calls carry the method name and trigger an update reply,
//   * persistent S-/R-buffers managed by the sender,
//   * simple / blocking / threaded / atomic RMI variants (the Table 4
//     micro-benchmark family),
//   * global-pointer data access (gvar<T>) via small request/reply AMs,
//   * par / parfor / spawn and write-once sync variables,
//   * a polling thread per node to avoid deadlock when no thread is
//     runnable.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "am/am.hpp"
#include "check/checked.hpp"
#include "coll/coll.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "ccxx/serial.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "threads/threads.hpp"

namespace tham::ccxx {

/// How an RMI synchronizes, mirroring the paper's micro-benchmark variants:
///  Simple   — caller spin-polls; method runs inside the AM handler
///             (no thread switches at either end; the method must not block).
///  Blocking — caller blocks on a condition variable (one context switch to
///             the polling thread); method still runs inside the handler.
///  Threaded — caller blocks; the receiver forks a new thread to run the
///             method (the general case: the method may block).
///  Atomic   — Threaded, plus the method executes atomically with respect
///             to the target node (holds the node lock).
enum class RmiMode : std::uint8_t { Simple, Blocking, Threaded, Atomic };

/// Opaque global pointer to a processor object of type C. Unlike Split-C
/// global pointers, no arithmetic is exposed (Section 2).
template <class C>
struct gptr {
  NodeId node = kInvalidNode;
  C* ptr = nullptr;
  bool is_null() const { return ptr == nullptr; }
};

/// CC++ `T *global`: a global pointer to plain data; dereferences become
/// RMIs (optimized to small request/reply active messages for simple types).
template <class T>
struct gvar {
  NodeId node = kInvalidNode;
  T* addr = nullptr;
};

/// Typed handle to a registered remote method.
template <class C, class R, class... As>
struct Method {
  std::uint32_t id = 0;
};

/// Typed handle to a registered remote constructor (for rt.create<C>).
template <class C, class... As>
struct Factory {
  std::uint32_t id = 0;
};

class Runtime;

/// Thrown at the caller when a remote method threw: RMI propagates
/// exceptions across address spaces by marshalling the message.
class RemoteError : public RuntimeError {
 public:
  explicit RemoteError(const std::string& what) : RuntimeError(what) {}
};

/// CC++ write-once sync variable: readers block until a writer fills it.
template <class T>
class sync_var {
 public:
  /// Blocks the calling thread until the value is written.
  T read() {
    sim::Node& n = sim::this_node();
    n.advance(sim::Component::ThreadSync, n.cost().cc_sync_var);
    mu_.lock();
    while (!set_.get("sync_var.set")) cv_.wait(mu_);
    T v = val_.get("sync_var.val");
    mu_.unlock();
    return v;
  }

  /// Writes the value exactly once; a second write throws.
  void write(const T& v) {
    sim::Node& n = sim::this_node();
    n.advance(sim::Component::ThreadSync, n.cost().cc_sync_var);
    mu_.lock();
    if (set_.get("sync_var.set")) {
      mu_.unlock();
      throw RuntimeError("sync variable written twice");
    }
    val_.set(v, "sync_var.val");
    set_.set(true, "sync_var.set");
    cv_.broadcast();
    mu_.unlock();
  }

  /// Lock-free peek; ordering is the caller's problem (hence raw()).
  bool ready() const { return set_.raw(); }

 private:
  threads::Mutex mu_;
  threads::CondVar cv_;
  checked<bool> set_;
  checked<T> val_;
};

class Runtime {
 public:
  /// Per-node RMI statistics (beyond the generic node counters).
  struct CcStats {
    std::uint64_t rmi_warm = 0;     ///< stub cache hit
    std::uint64_t rmi_cold = 0;     ///< name shipped, resolution round trip
    std::uint64_t rmi_oneshot = 0;  ///< dynamic buffer (entry busy / no cache)
    std::uint64_t rmi_local = 0;    ///< same-node invocation
    std::uint64_t gp_remote = 0;
    std::uint64_t gp_local = 0;
  };

  Runtime(sim::Engine& engine, net::Network& net, am::AmLayer& am);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  static Runtime& current();

  sim::Engine& engine() { return engine_; }
  int nodes() const { return engine_.size(); }
  const CostModel& cost() const { return engine_.cost(); }
  const CcStats& cc_stats(NodeId i) const {
    return stats_[static_cast<std::size_t>(i)];
  }

  // --- Program startup ------------------------------------------------------
  /// Runs `program` on every node (the SPMD-style usage of the paper's
  /// application ports), plus a polling thread per node. Drives the
  /// simulation to completion.
  void run_spmd(std::function<void()> program);
  /// Runs `program` on node 0 only (true MPMD entry point); every node gets
  /// a polling thread so its processor objects can service RMIs.
  void run_main(std::function<void()> program);

  // --- Definition (host side, before run) -----------------------------------
  template <class C, class R, class... As>
  Method<C, R, As...> def_method(std::string name, R (C::*pm)(As...),
                                 RmiMode mode = RmiMode::Threaded) {
    Method<C, R, As...> h;
    h.id = add_method(std::move(name), mode, sizeof...(As),
                      make_stub<C, R, As...>(pm));
    return h;
  }

  template <class C, class... As>
  Factory<C, As...> def_class(std::string name) {
    Factory<C, As...> f;
    f.id = add_method(
        std::move(name), RmiMode::Threaded, sizeof...(As),
        [this](sim::Node&, void*, Deserializer& d, Serializer& out) {
          auto args = std::tuple<std::decay_t<As>...>{
              unmarshal_one<std::decay_t<As>>(d)...};
          C* obj = std::apply(
              [](auto&&... a) { return new C(std::forward<decltype(a)>(a)...); },
              args);
          // The runtime owns remotely created objects, same as place():
          // CC++ processor objects live until the program ends.
          adopt(obj, [](void* p) { delete static_cast<C*>(p); });
          cc_marshal(out, reinterpret_cast<std::uint64_t>(obj));
        });
    return f;
  }

  /// Host-side placement of a processor object (models objects created at
  /// program startup). Only before run_*().
  template <class C, class... As>
  gptr<C> place(NodeId node, As&&... args) {
    auto* obj = new C(std::forward<As>(args)...);
    adopt(obj, [](void* p) { delete static_cast<C*>(p); });
    return gptr<C>{node, obj};
  }

  // --- Invocation ---------------------------------------------------------
  struct Completion;  // defined below (wire-protocol internals)

  /// Split-phase RMI handle: issue with rmi_async, overlap computation,
  /// then get() blocks for (and unmarshals) the result. CC++ expressed the
  /// same idiom with spawn + sync variables; the future packages it.
  template <class R>
  class Future {
   public:
    /// Blocks until the reply arrives, then returns the result.
    /// Call at most once.
    R get() {
      THAM_REQUIRE(rt_ != nullptr, "Future::get() on an empty future");
      Runtime* rt = rt_;
      rt_ = nullptr;
      rt->wait_completion(sim::this_node(), *comp_);
      sim::Node& n = sim::this_node();
      sim::ComponentScope scope(n, sim::Component::Runtime);
      rt->rethrow_if_error(*comp_);
      if constexpr (!std::is_void_v<R>) {
        Deserializer d(comp_->result.data(), comp_->result.size());
        rt->charge_marshal(n, 1, comp_->result.size());
        return unmarshal_one<R>(d);
      }
    }
    bool valid() const { return rt_ != nullptr; }
    bool ready() const { return comp_ && comp_->done.raw(); }

   private:
    friend class Runtime;
    Runtime* rt_ = nullptr;
    std::shared_ptr<Completion> comp_;
  };

  /// Blocking remote method invocation; returns the method's result.
  template <class C, class R, class... As, class... Xs>
  R rmi(gptr<C> obj, const Method<C, R, As...>& m, Xs&&... args) {
    static_assert(sizeof...(As) == sizeof...(Xs));
    THAM_REQUIRE(!obj.is_null(), "RMI through a null global pointer");
    sim::Node& n = sim::this_node();
    sim::ComponentScope scope(n, sim::Component::Runtime);

    if (obj.node == n.id()) {
      return local_invoke<R>(n, m.id, obj.ptr,
                             std::forward<Xs>(args)...);
    }

    Serializer& s = acquire_sbuf(n, obj.node, m.id);
    std::size_t nbytes = 0;
    ((nbytes += marshal_one(s, static_cast<const std::decay_t<As>&>(args))),
     ...);
    charge_marshal(n, sizeof...(As), nbytes);

    Completion comp;
    invoke_remote(n, obj.node, m.id, obj.ptr, s, comp, /*want_reply=*/true);
    wait_completion(n, comp);
    rethrow_if_error(comp);

    if constexpr (!std::is_void_v<R>) {
      Deserializer d(comp.result.data(), comp.result.size());
      charge_marshal(n, 1, comp.result.size());
      return unmarshal_one<R>(d);
    }
  }

  /// Split-phase RMI: returns immediately with a Future; the reply is
  /// consumed by Future::get(). The caller may issue many concurrent
  /// futures (each cold/busy call falls back to a one-shot buffer).
  template <class C, class R, class... As, class... Xs>
  Future<R> rmi_async(gptr<C> obj, const Method<C, R, As...>& m,
                      Xs&&... args) {
    static_assert(sizeof...(As) == sizeof...(Xs));
    THAM_REQUIRE(!obj.is_null(), "RMI through a null global pointer");
    sim::Node& n = sim::this_node();
    sim::ComponentScope scope(n, sim::Component::Runtime);
    Future<R> f;
    f.rt_ = this;
    f.comp_ = std::make_shared<Completion>();
    if (obj.node == n.id()) {
      // Local: run eagerly; get() just unmarshals.
      Serializer out;
      local_invoke_raw(n, m.id, obj.ptr, out, std::forward<Xs>(args)...);
      f.comp_->result.assign(out.data(), out.data() + out.size());
      f.comp_->done.raw() = true;  // same-task: get() unmarshals eagerly
      f.comp_->mode = RmiMode::Simple;
      return f;
    }
    Serializer& s = acquire_sbuf(n, obj.node, m.id);
    std::size_t nbytes = 0;
    ((nbytes += marshal_one(s, static_cast<const std::decay_t<As>&>(args))),
     ...);
    charge_marshal(n, sizeof...(As), nbytes);
    invoke_remote(n, obj.node, m.id, obj.ptr, s, *f.comp_,
                  /*want_reply=*/true);
    return f;
  }

  /// Fire-and-forget invocation (CC++ spawning a remote method with no
  /// result): returns as soon as the message is handed to the network.
  template <class C, class R, class... As, class... Xs>
  void rmi_spawn(gptr<C> obj, const Method<C, R, As...>& m, Xs&&... args) {
    THAM_REQUIRE(!obj.is_null(), "RMI through a null global pointer");
    sim::Node& n = sim::this_node();
    sim::ComponentScope scope(n, sim::Component::Runtime);
    if (obj.node == n.id()) {
      local_invoke<void>(n, m.id, obj.ptr, std::forward<Xs>(args)...);
      return;
    }
    Serializer& s = acquire_sbuf(n, obj.node, m.id);
    std::size_t nbytes = 0;
    ((nbytes += marshal_one(s, static_cast<const std::decay_t<As>&>(args))),
     ...);
    charge_marshal(n, sizeof...(As), nbytes);
    Completion* none = nullptr;
    invoke_remote_noreply(n, obj.node, m.id, obj.ptr, s, none);
  }

  /// Creates a processor object remotely via a registered factory.
  template <class C, class... As, class... Xs>
  gptr<C> create(NodeId node, const Factory<C, As...>& f, Xs&&... args) {
    sim::Node& n = sim::this_node();
    sim::ComponentScope scope(n, sim::Component::Runtime);
    if (node == n.id()) {
      auto addr =
          local_invoke<std::uint64_t>(n, f.id, nullptr,
                                      std::forward<Xs>(args)...);
      return gptr<C>{node, reinterpret_cast<C*>(addr)};
    }
    Serializer& s = acquire_sbuf(n, node, f.id);
    std::size_t nbytes = 0;
    ((nbytes += marshal_one(s, static_cast<const std::decay_t<As>&>(args))),
     ...);
    charge_marshal(n, sizeof...(As), nbytes);
    Completion comp;
    invoke_remote(n, node, f.id, nullptr, s, comp, true);
    wait_completion(n, comp);
    Deserializer d(comp.result.data(), comp.result.size());
    return gptr<C>{node, reinterpret_cast<C*>(unmarshal_one<std::uint64_t>(d))};
  }

  // --- Global-pointer data access ------------------------------------------
  template <class T>
  T read(gvar<T> gv) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "gvar access is for simple types; use bulk methods");
    am::Word w = gp_read_word(gv.node, gv.addr, sizeof(T));
    T out;
    std::memcpy(&out, &w, sizeof(T));
    return out;
  }

  template <class T>
  void write(gvar<T> gv, const T& v) {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "gvar access is for simple types; use bulk methods");
    am::Word w = 0;
    std::memcpy(&w, &v, sizeof(T));
    gp_write_word(gv.node, gv.addr, w, sizeof(T));
  }

  // --- Concurrency ------------------------------------------------------------
  /// CC++ `par { ... }`: runs the blocks on new threads, joins all.
  void par(std::vector<std::function<void()>> blocks);
  /// CC++ `parfor`: one thread per iteration (the latency-hiding construct
  /// used by the Prefetch micro-benchmark).
  template <class F>
  void parfor(int begin, int end, F&& body) {
    std::vector<std::function<void()>> blocks;
    blocks.reserve(static_cast<std::size_t>(end - begin));
    for (int i = begin; i < end; ++i) {
      blocks.push_back([i, &body] { body(i); });
    }
    par(std::move(blocks));
  }
  /// CC++ `spawn`: a detached thread on this node.
  void spawn_thread(std::function<void()> body);

  // --- Collectives (built from RMI; used by the SPMD-style app ports) ------
  void barrier();
  double all_reduce_sum(double v);

  // --- Wire-protocol internals (public for the Nexus transport & tests) ----
  struct CacheEntry;

  /// Completion record a blocked caller waits on.
  struct Completion {
    /// Completion flag. Threaded/Atomic waits access it under mu (and so
    /// through the race detector); the Simple-mode spin in wait_completion
    /// uses raw() because its ordering comes from the poll protocol (the
    /// reply handler runs on the waiting task's own stack), not a lock.
    check::checked<bool> done;
    bool is_error = false;  ///< result holds a marshalled exception message
    RmiMode mode = RmiMode::Threaded;
    std::vector<std::byte> result;
    threads::Mutex mu;
    threads::CondVar cv;
    CacheEntry* entry = nullptr;  ///< R-buffer to release on completion
  };

  /// Throws RemoteError at the caller if the remote method threw.
  void rethrow_if_error(Completion& comp);

  using Stub = std::function<void(sim::Node& self, void* obj,
                                  Deserializer& in, Serializer& out)>;

  struct CacheEntry {
    bool valid = false;
    bool in_flight = false;     ///< a warm bulk call is using the R-buffer
    std::uint32_t remote_stub = 0;  ///< receiver-local stub index
    std::byte* rbuf = nullptr;      ///< persistent R-buffer at the receiver
    std::size_t rbuf_cap = 0;
  };

 private:
  struct MethodRec {
    std::string name;
    std::uint64_t hash = 0;
    RmiMode mode = RmiMode::Threaded;
    std::uint32_t nargs = 0;
    Stub stub;
  };

  struct NodeState {
    // Stub cache: key = hash_mix(dst, method hash).
    std::unordered_map<std::uint64_t, CacheEntry> cache;
    threads::Mutex cache_mu;
    // Persistent R-buffers owned by this (receiving) node:
    // key = hash_mix(src, method hash).
    std::unordered_map<std::uint64_t, std::unique_ptr<std::vector<std::byte>>>
        rbufs;
    // Persistent S-buffers (sender side), key as cache.
    std::unordered_map<std::uint64_t, std::unique_ptr<Serializer>> sbufs;
    Serializer scratch_sbuf;  ///< non-persistent-mode shared S-buffer
    std::vector<std::byte> staging;        ///< cold-call landing area
    std::vector<std::byte> reply_staging;  ///< bulk-reply landing area
    threads::Mutex node_lock;              ///< atomic-method lock
    // Name -> receiver-local stub index (each node's "program image").
    std::unordered_map<std::uint64_t, std::uint32_t> local_by_hash;
    std::vector<std::uint32_t> canon_of_local;  ///< local idx -> canonical id
    std::vector<std::uint32_t> local_of_canon;
  };

  // Flags word layout for invoke messages.
  static constexpr am::Word kFlagCold = 1u << 4;
  static constexpr am::Word kFlagOneshot = 1u << 5;
  static constexpr am::Word kFlagNoReply = 1u << 6;

  std::uint32_t add_method(std::string name, RmiMode mode, std::uint32_t nargs,
                           Stub stub);

  template <class C, class R, class... As>
  static Stub make_stub(R (C::*pm)(As...)) {
    return [pm](sim::Node&, void* obj, Deserializer& d, Serializer& out) {
      auto* c = static_cast<C*>(obj);
      auto args =
          std::tuple<std::decay_t<As>...>{unmarshal_one<std::decay_t<As>>(d)...};
      if constexpr (std::is_void_v<R>) {
        std::apply([&](auto&... a) { (c->*pm)(a...); }, args);
      } else {
        R r = std::apply([&](auto&... a) { return (c->*pm)(a...); }, args);
        cc_marshal(out, r);
      }
    };
  }

  template <class... Xs>
  void local_invoke_raw(sim::Node& n, std::uint32_t method, void* obj,
                        Serializer& out, Xs&&... args) {
    // Local invocation through a global pointer: the runtime detects
    // locality and short-circuits, but the indirection itself has a cost
    // (the em3d-base effect at low remote-edge fractions).
    n.advance(cost().cc_local_gp);
    ++self_stats(n).rmi_local;
    Serializer s;
    (marshal_one(s, static_cast<const std::decay_t<Xs>&>(args)), ...);
    Deserializer d(s.data(), s.size());
    methods_.at(method).stub(n, obj, d, out);
  }

  template <class R, class... Xs>
  R local_invoke(sim::Node& n, std::uint32_t method, void* obj, Xs&&... args) {
    Serializer out;
    local_invoke_raw(n, method, obj, out, std::forward<Xs>(args)...);
    if constexpr (!std::is_void_v<R>) {
      Deserializer rd(out.data(), out.size());
      return unmarshal_one<R>(rd);
    }
  }

  // Non-template protocol steps (implemented in runtime.cpp).
  Serializer& acquire_sbuf(sim::Node& n, NodeId dst, std::uint32_t method);
  void charge_marshal(sim::Node& n, std::size_t nargs, std::size_t nbytes);
  void invoke_remote(sim::Node& n, NodeId dst, std::uint32_t method, void* obj,
                     Serializer& args, Completion& comp, bool want_reply);
  void invoke_remote_noreply(sim::Node& n, NodeId dst, std::uint32_t method,
                             void* obj, Serializer& args, Completion* comp);
  void wait_completion(sim::Node& n, Completion& comp);
  am::Word gp_read_word(NodeId node, const void* addr, std::size_t nbytes);
  void gp_write_word(NodeId node, void* addr, am::Word value,
                     std::size_t nbytes);

  void start_pollers();
  void build_images();
  void dispatch(sim::Node& self, std::uint32_t canon, void* obj,
                const std::byte* args, std::size_t len, am::Word flags,
                am::Word completion, NodeId caller, bool own_args);
  void run_method(sim::Node& self, const MethodRec& m, void* obj,
                  const std::byte* args, std::size_t len, am::Word flags,
                  am::Word completion, NodeId caller);
  void send_reply(sim::Node& self, NodeId caller, am::Word completion,
                  const Serializer& out, bool is_error = false);
  NodeState& self_state(sim::Node& n) {
    return *state_[static_cast<std::size_t>(n.id())];
  }
  CcStats& self_stats(sim::Node& n) {
    return stats_[static_cast<std::size_t>(n.id())];
  }

  sim::Engine& engine_;
  net::Network& net_;
  am::AmLayer& am_;
  std::vector<MethodRec> methods_;
  std::vector<std::unique_ptr<NodeState>> state_;
  std::vector<CcStats> stats_;
  bool images_built_ = false;

  struct Owned {
    void* p;
    void (*deleter)(void*);
  };
  /// Remote-creation handlers run on shard workers under the parallel
  /// engine, so registration into the shared ownership list takes a lock
  /// (cold path: one acquisition per processor-object creation).
  void adopt(void* p, void (*deleter)(void*)) {
    std::lock_guard<std::mutex> lk(owned_mu_);
    owned_.push_back({p, deleter});
  }
  std::mutex owned_mu_;
  std::vector<Owned> owned_;

  am::HandlerId h_invoke_short_ = 0, h_invoke_bulk_ = 0, h_invoke_cold_ = 0;
  am::HandlerId h_update_ = 0, h_done_short_ = 0, h_done_bulk_ = 0;
  am::HandlerId h_gp_read_ = 0, h_gp_write_ = 0, h_gp_done_ = 0;

  /// The collectives layer behind barrier()/all_reduce_sum(). Daemon
  /// progress: waiters block on the layer's per-node gate (a mutex +
  /// condvar + check::checked epoch stamp, so every app barrier still
  /// exercises the race detector's happens-before edges) and the per-node
  /// cc-polling-thread drains the endpoint.
  coll::Collectives coll_;

  static Runtime* current_;
};

}  // namespace tham::ccxx
