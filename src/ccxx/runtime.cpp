#include "ccxx/runtime.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/check.hpp"

namespace tham::ccxx {

using am::to_ptr;
using am::to_word;
using am::Word;
using sim::Component;
using sim::ComponentScope;

Runtime* Runtime::current_ = nullptr;

namespace {
constexpr std::size_t kStagingBytes = 1 << 20;
constexpr Word kErrBit = Word{1} << 63;  ///< reply length word: error flag

RmiMode mode_of(Word flags) { return static_cast<RmiMode>(flags & 0xf); }

/// Fires a completion record: spin flag for Simple mode, condvar otherwise.
void fire(Runtime::Completion* comp) {
  if (comp == nullptr) return;
  if (comp->mode == RmiMode::Simple) {
    // Poll-protocol flag: the waiter's own poll loop runs this handler, so
    // ordering is by construction (see Completion::done).
    comp->done.raw() = true;
    return;
  }
  comp->mu.lock();
  comp->done.set(true, "rmi.completion");
  comp->cv.signal();
  comp->mu.unlock();
}
}  // namespace

Runtime& Runtime::current() {
  THAM_CHECK_MSG(current_ != nullptr, "no CC++ runtime is active");
  return *current_;
}

Runtime::~Runtime() {
  for (auto& o : owned_) o.deleter(o.p);
  current_ = nullptr;
}

Runtime::Runtime(sim::Engine& engine, net::Network& net, am::AmLayer& am)
    : engine_(engine), net_(net), am_(am),
      stats_(static_cast<std::size_t>(engine.size())),
      coll_(engine, am,
            coll::Config{coll::Algo::Tree, coll::Progress::Daemon, 0}) {
  THAM_CHECK_MSG(current_ == nullptr, "only one CC++ runtime at a time");
  current_ = this;
  state_.reserve(static_cast<std::size_t>(engine.size()));
  for (int i = 0; i < engine.size(); ++i) {
    auto st = std::make_unique<NodeState>();
    st->staging.resize(kStagingBytes);
    st->reply_staging.resize(kStagingBytes);
    state_.push_back(std::move(st));
  }

  // ---- RMI completion (replies) -------------------------------------------
  // Short reply: result inline in the words. w0 = completion, w1 = length,
  // w2..w5 = up to 32 result bytes.
  h_done_short_ = am_.register_short(
      "cc.done_short", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(cost().cc_reply_handling);
        auto* comp = to_ptr<Completion>(w[0]);
        auto len = static_cast<std::size_t>(w[1] & ~kErrBit);
        comp->is_error = (w[1] & kErrBit) != 0;
        comp->result.resize(len);
        if (len > 0) std::memcpy(comp->result.data(), &w[2], len);
        fire(comp);
      });
  // Bulk reply: payload landed in this node's reply staging area; copy it
  // into the completion's buffer. This is the "extra copy" of bulk reads
  // the paper measures (static buffer -> receive buffer -> object).
  h_done_bulk_ = am_.register_bulk(
      "cc.done_bulk", [this](sim::Node& self, am::Token, void* addr,
                             std::size_t len, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(cost().cc_reply_handling +
                     static_cast<SimTime>(len) * cost().memcpy_per_byte);
        auto* comp = to_ptr<Completion>(w[0]);
        comp->is_error = (w[1] & kErrBit) != 0;
        comp->result.resize(len);
        if (len > 0) std::memcpy(comp->result.data(), addr, len);
        fire(comp);
      });

  // ---- Warm invocations -----------------------------------------------------
  // Zero-argument warm call: a single short request.
  // w0 = receiver-local stub index, w1 = object, w2 = completion, w3 = flags.
  h_invoke_short_ = am_.register_short(
      "cc.invoke_short",
      [this](sim::Node& self, am::Token tok, const am::Words& w) {
        auto& st = self_state(self);
        auto local = static_cast<std::uint32_t>(w[0]);
        dispatch(self, st.canon_of_local.at(local), to_ptr<void>(w[1]),
                 nullptr, 0, w[3], w[2], tok.reply_to, /*own_args=*/false);
      });
  // Warm call with arguments: bulk transfer straight into the method's
  // persistent R-buffer. Same words as above.
  h_invoke_bulk_ = am_.register_bulk(
      "cc.invoke_bulk", [this](sim::Node& self, am::Token tok, void* addr,
                               std::size_t len, const am::Words& w) {
        auto& st = self_state(self);
        auto local = static_cast<std::uint32_t>(w[0]);
        dispatch(self, st.canon_of_local.at(local), to_ptr<void>(w[1]),
                 static_cast<const std::byte*>(addr), len, w[3], w[2],
                 tok.reply_to, /*own_args=*/false);
      });

  // ---- Cold / staged invocations ---------------------------------------------
  // Payload lands in the per-node static staging area. Two variants, chosen
  // by kFlagCold: cold carries [name][args] and triggers a stub-cache
  // update; staged-oneshot carries args only, stub index in w0.
  h_invoke_cold_ = am_.register_bulk(
      "cc.invoke_staged",
      [this](sim::Node& self, am::Token tok, void* addr, std::size_t len,
             const am::Words& w) {
        auto& st = self_state(self);
        ComponentScope scope(self, Component::Runtime);
        const auto* bytes = static_cast<const std::byte*>(addr);
        Word flags = w[3];
        std::uint32_t canon = 0;
        std::size_t args_off = 0;
        if (flags & kFlagCold) {
          // Resolve the shipped method name against this node's image.
          Deserializer d(bytes, len);
          std::string name;
          cc_unmarshal(d, name);
          args_off = len - d.remaining();
          self.advance(cost().cc_stub_install);
          auto it = st.local_by_hash.find(fnv1a(name));
          THAM_REQUIRE(it != st.local_by_hash.end(),
                       "RMI to unknown method: " + name);
          canon = st.canon_of_local.at(it->second);
        } else {
          canon = st.canon_of_local.at(static_cast<std::uint32_t>(w[0]));
        }
        const MethodRec& rec = methods_.at(canon);
        const std::byte* args = bytes + args_off;
        std::size_t args_len = len - args_off;

        bool send_update = (flags & kFlagCold) && !(flags & kFlagOneshot);
        // The caller can only manage a persistent R-buffer when it waits
        // for the reply; fire-and-forget cold calls use a one-shot buffer.
        bool bind_rbuf = send_update && cost().cc_persistent_buffers &&
                         !(flags & kFlagNoReply);
        Word rb = 0, cap = 0;
        if (bind_rbuf) {
          // Allocate a persistent R-buffer for (caller, method) and copy
          // the arguments out of the staging area into it (the charged
          // cold-call copy, Section 4 "Persistent Buffers").
          std::uint64_t key =
              hash_mix(static_cast<std::uint64_t>(tok.reply_to), rec.hash);
          auto& buf = st.rbufs[key];
          std::size_t want = std::max<std::size_t>(args_len, 64);
          if (!buf) buf = std::make_unique<std::vector<std::byte>>(want);
          if (buf->size() < want) buf->resize(want);
          self.advance(cost().cc_buffer_alloc +
                       static_cast<SimTime>(args_len) * cost().memcpy_per_byte);
          if (args_len > 0) std::memcpy(buf->data(), args, args_len);
          rb = to_word(buf->data());
          cap = buf->size();
          // Dispatch BEFORE the update reply: sending polls, which can
          // deliver (and dispatch) later messages — replying first would
          // invert execution order.
          dispatch(self, canon, to_ptr<void>(w[1]), buf->data(), args_len,
                   flags, w[2], tok.reply_to, /*own_args=*/false);
        } else {
          // One-shot dynamic buffer: the paper's non-persistent path.
          self.advance(cost().cc_buffer_alloc +
                       static_cast<SimTime>(args_len) * cost().memcpy_per_byte);
          dispatch(self, canon, to_ptr<void>(w[1]), args, args_len, flags,
                   w[2], tok.reply_to, /*own_args=*/true);
        }
        if (send_update) {
          am_.reply(tok, h_update_, rec.hash, 0, rb, cap,
                    static_cast<Word>(st.local_of_canon.at(canon)));
        }
      });

  // Stub-cache update at the original caller.
  // w0 = method hash, w2 = rbuf, w3 = cap, w4 = receiver-local stub index.
  h_update_ = am_.register_short(
      "cc.update", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(cost().cc_stub_install);
        auto& st = self_state(self);
        st.cache_mu.lock();
        CacheEntry& e = st.cache[hash_mix(
            static_cast<std::uint64_t>(tok.reply_to), w[0])];
        e.valid = true;
        e.remote_stub = static_cast<std::uint32_t>(w[4]);
        e.rbuf = to_ptr<std::byte>(w[2]);
        e.rbuf_cap = static_cast<std::size_t>(w[3]);
        st.cache_mu.unlock();
      });

  // ---- Global-pointer data access -------------------------------------------
  // w0 = addr, w1 = nbytes, w2 = completion. Optimized to small
  // request/reply AMs, but still serviced by a fresh thread (general CC++
  // semantics: the access may contend with local computation).
  h_gp_read_ = am_.register_short(
      "cc.gp_read", [this](sim::Node&, am::Token tok, const am::Words& w) {
        NodeId caller = tok.reply_to;
        Word addr = w[0], nbytes = w[1], comp = w[2];
        threads::Thread t = threads::spawn(
            [this, addr, nbytes, comp, caller] {
              sim::Node& n = sim::this_node();
              ComponentScope scope(n, Component::Runtime);
              n.advance(cost().cc_dispatch + cost().mem_word_touch);
              Word v = 0;
              std::memcpy(&v, to_ptr<const void>(addr),
                          static_cast<std::size_t>(nbytes));
              am_.request(caller, h_done_short_, comp, nbytes, v);
            },
            "gp_read");
        threads::detach(t);
      });
  // w0 = addr, w1 = nbytes, w2 = value, w3 = completion.
  h_gp_write_ = am_.register_short(
      "cc.gp_write",
      [this](sim::Node&, am::Token tok, const am::Words& w) {
        NodeId caller = tok.reply_to;
        Word addr = w[0], nbytes = w[1], value = w[2], comp = w[3];
        threads::Thread t = threads::spawn(
            [this, addr, nbytes, value, comp, caller] {
              sim::Node& n = sim::this_node();
              ComponentScope scope(n, Component::Runtime);
              n.advance(cost().cc_dispatch + cost().mem_word_touch);
              Word v = value;
              std::memcpy(to_ptr<void>(addr), &v,
                          static_cast<std::size_t>(nbytes));
              am_.request(caller, h_done_short_, comp, 0);
            },
            "gp_write");
        threads::detach(t);
      });

}

std::uint32_t Runtime::add_method(std::string name, RmiMode mode,
                                  std::uint32_t nargs, Stub stub) {
  THAM_CHECK_MSG(!images_built_, "def_method after the program started");
  MethodRec rec;
  rec.name = std::move(name);
  rec.hash = fnv1a(rec.name);
  rec.mode = mode;
  rec.nargs = nargs;
  rec.stub = std::move(stub);
  for (const auto& m : methods_) {
    THAM_CHECK_MSG(m.hash != rec.hash, "duplicate method name");
  }
  methods_.push_back(std::move(rec));
  return static_cast<std::uint32_t>(methods_.size() - 1);
}

void Runtime::build_images() {
  if (images_built_) return;
  images_built_ = true;
  // Each node is a separately compiled program image: the stub for a given
  // method sits at a *different* local index on every node, so stub indices
  // genuinely require resolution (Section 3, "Method Name Resolution").
  auto n_methods = static_cast<std::uint32_t>(methods_.size());
  for (int node = 0; node < engine_.size(); ++node) {
    auto& st = *state_[static_cast<std::size_t>(node)];
    std::vector<std::uint32_t> perm(n_methods);
    std::iota(perm.begin(), perm.end(), 0u);
    Rng rng(0x9d2c5680u + static_cast<std::uint64_t>(node) * 2654435761u);
    for (std::uint32_t i = n_methods; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.next_below(i)]);
    }
    st.local_of_canon.assign(n_methods, 0);
    st.canon_of_local.assign(n_methods, 0);
    for (std::uint32_t local = 0; local < n_methods; ++local) {
      std::uint32_t canon = perm[local];
      st.canon_of_local[local] = canon;
      st.local_of_canon[canon] = local;
      st.local_by_hash[methods_[canon].hash] = local;
    }
  }
}

void Runtime::start_pollers() {
  for (int i = 0; i < engine_.size(); ++i) {
    engine_.node(i).spawn(
        [this] {
          transport::Endpoint ep = transport::Endpoint::current();
          ComponentScope scope(ep.node(), Component::Net);
          while (!ep.node().shutting_down()) {
            if (!ep.wait(/*poll_only=*/true)) break;
            am_.poll();
          }
        },
        "cc-polling-thread", /*daemon=*/true);
  }
}

void Runtime::run_spmd(std::function<void()> program) {
  build_images();
  start_pollers();
  for (int i = 0; i < engine_.size(); ++i) {
    engine_.node(i).spawn(program, "cc-main");
  }
  engine_.run();
}

void Runtime::run_main(std::function<void()> program) {
  build_images();
  start_pollers();
  engine_.node(0).spawn(std::move(program), "cc-main");
  engine_.run();
}

Serializer& Runtime::acquire_sbuf(sim::Node& n, NodeId dst,
                                  std::uint32_t method) {
  auto& st = self_state(n);
  if (!cost().cc_persistent_buffers) {
    // Dynamic allocation per call.
    n.advance(cost().cc_buffer_alloc);
    st.scratch_sbuf.clear();
    return st.scratch_sbuf;
  }
  std::uint64_t key =
      hash_mix(static_cast<std::uint64_t>(dst), methods_.at(method).hash);
  auto& sb = st.sbufs[key];
  if (!sb) {
    n.advance(cost().cc_buffer_alloc);  // first use only
    sb = std::make_unique<Serializer>();
  }
  sb->clear();
  return *sb;
}

void Runtime::charge_marshal(sim::Node& n, std::size_t nargs,
                             std::size_t nbytes) {
  n.advance(static_cast<SimTime>(nargs) * cost().cc_marshal_fixed +
            static_cast<SimTime>(nbytes) * cost().memcpy_per_byte);
}

void Runtime::invoke_remote(sim::Node& n, NodeId dst, std::uint32_t method,
                            void* obj, Serializer& args, Completion& comp,
                            bool want_reply) {
  const MethodRec& rec = methods_.at(method);
  comp.mode = rec.mode;
  auto& st = self_state(n);
  Word flags = static_cast<Word>(rec.mode);
  if (!want_reply) flags |= kFlagNoReply;
  Word comp_w = want_reply ? to_word(&comp) : 0;

  CacheEntry* entry = nullptr;
  if (cost().cc_stub_caching) {
    st.cache_mu.lock();
    n.advance(cost().cc_stub_lookup);
    entry =
        &st.cache[hash_mix(static_cast<std::uint64_t>(dst), rec.hash)];
    st.cache_mu.unlock();
  }

  if (entry != nullptr && entry->valid) {
    ++self_stats(n).rmi_warm;
    if (args.size() == 0) {
      am_.request(dst, h_invoke_short_, entry->remote_stub, to_word(obj),
                  comp_w, flags);
      return;
    }
    if (want_reply && !entry->in_flight && entry->rbuf != nullptr &&
        args.size() <= entry->rbuf_cap) {
      entry->in_flight = true;
      comp.entry = entry;  // wait_completion releases the R-buffer
      comp.result.clear();
      am_.xfer(dst, entry->rbuf, args.data(), args.size(), h_invoke_bulk_,
               entry->remote_stub, to_word(obj), comp_w, flags);
      return;
    }
    // R-buffer busy, too small, or absent: staged one-shot with a known
    // stub index (dynamic buffer at the receiver).
    ++self_stats(n).rmi_oneshot;
    flags |= kFlagOneshot;
    auto& remote = *state_[static_cast<std::size_t>(dst)];
    THAM_CHECK(args.size() <= remote.staging.size());
    am_.xfer(dst, remote.staging.data(), args.data(), args.size(),
             h_invoke_cold_, entry->remote_stub, to_word(obj), comp_w, flags);
    return;
  }

  // Cold call: ship the full method name ahead of the arguments.
  ++self_stats(n).rmi_cold;
  flags |= kFlagCold;
  if (entry == nullptr) flags |= kFlagOneshot;  // caching disabled
  Serializer payload;
  cc_marshal(payload, rec.name);
  payload.put_bytes(args.data(), args.size());
  charge_marshal(n, 1, rec.name.size());  // name marshalling
  auto& remote = *state_[static_cast<std::size_t>(dst)];
  THAM_CHECK(payload.size() <= remote.staging.size());
  am_.xfer(dst, remote.staging.data(), payload.data(), payload.size(),
           h_invoke_cold_, 0, to_word(obj), comp_w, flags);
}

void Runtime::invoke_remote_noreply(sim::Node& n, NodeId dst,
                                    std::uint32_t method, void* obj,
                                    Serializer& args, Completion*) {
  Completion dummy;  // never waited on
  invoke_remote(n, dst, method, obj, args, dummy, /*want_reply=*/false);
}

void Runtime::wait_completion(sim::Node& n, Completion& comp) {
  if (comp.mode == RmiMode::Simple) {
    am_.poll_until([&comp] { return comp.done.raw(); });
  } else {
    comp.mu.lock();
    while (!comp.done.get("rmi.completion")) comp.cv.wait(comp.mu);
    comp.mu.unlock();
  }
  (void)n;
  // The call is over: release the persistent R-buffer for reuse
  // (R-buffers are managed by the sender, Section 4).
  if (comp.entry != nullptr) {
    comp.entry->in_flight = false;
    comp.entry = nullptr;
  }
}

void Runtime::dispatch(sim::Node& self, std::uint32_t canon, void* obj,
                       const std::byte* args, std::size_t len, Word flags,
                       Word completion, NodeId caller, bool own_args) {
  const MethodRec& rec = methods_.at(canon);
  RmiMode mode = mode_of(flags);
  if (mode == RmiMode::Threaded || mode == RmiMode::Atomic) {
    // General RMI: fork a thread; the method may block (Section 3).
    std::vector<std::byte> owned;
    if (own_args && len > 0) owned.assign(args, args + len);
    const std::byte* p = own_args ? owned.data() : args;
    threads::Thread t = threads::spawn(
        [this, &rec, obj, p, len, flags, completion, caller,
         owned = std::move(owned)] {
          const std::byte* a = owned.empty() ? p : owned.data();
          run_method(sim::this_node(), rec, obj, a, len, flags, completion,
                     caller);
        },
        "cc-rmi");
    threads::detach(t);
    return;
  }
  // Simple / Blocking: run inside the handler (method must not block).
  run_method(self, rec, obj, args, len, flags, completion, caller);
}

void Runtime::run_method(sim::Node& self, const MethodRec& m, void* obj,
                         const std::byte* args, std::size_t len, Word flags,
                         Word completion, NodeId caller) {
  ComponentScope scope(self, Component::Runtime);
  self.advance(cost().cc_dispatch);
  charge_marshal(self, m.nargs, len);  // unmarshalling
  Deserializer d(args, len);
  Serializer out;
  bool is_error = false;
  auto run = [&] {
    try {
      m.stub(self, obj, d, out);
    } catch (const std::exception& e) {
      // Exceptions propagate across the RMI: marshal the message and flag
      // the reply; the caller rethrows RemoteError.
      is_error = true;
      out.clear();
      cc_marshal(out, std::string(e.what()));
    }
  };
  if (mode_of(flags) == RmiMode::Atomic) {
    auto& st = self_state(self);
    st.node_lock.lock();
    run();
    st.node_lock.unlock();
  } else {
    run();
  }
  if (!(flags & kFlagNoReply)) {
    if (out.size() > 0) charge_marshal(self, 1, out.size());
    send_reply(self, caller, completion, out, is_error);
  }
}

void Runtime::rethrow_if_error(Completion& comp) {
  if (!comp.is_error) return;
  Deserializer d(comp.result.data(), comp.result.size());
  std::string what;
  cc_unmarshal(d, what);
  throw RemoteError(what);
}

void Runtime::send_reply(sim::Node&, NodeId caller, Word completion,
                         const Serializer& out, bool is_error) {
  if (completion == 0) return;
  Word err = is_error ? kErrBit : 0;
  if (out.size() <= 4 * sizeof(Word)) {
    Word packed[4] = {0, 0, 0, 0};
    if (out.size() > 0) std::memcpy(packed, out.data(), out.size());
    am_.request(caller, h_done_short_, completion, out.size() | err,
                packed[0], packed[1], packed[2], packed[3]);
    return;
  }
  auto& remote = *state_[static_cast<std::size_t>(caller)];
  THAM_CHECK(out.size() <= remote.reply_staging.size());
  am_.xfer(caller, remote.reply_staging.data(), out.data(), out.size(),
           h_done_bulk_, completion, err);
}

am::Word Runtime::gp_read_word(NodeId dst, const void* addr,
                               std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (dst == n.id()) {
    n.advance(cost().cc_local_gp);
    ++self_stats(n).gp_local;
    Word v = 0;
    std::memcpy(&v, addr, nbytes);
    return v;
  }
  ++self_stats(n).gp_remote;
  n.advance(cost().cc_stub_lookup);
  Completion comp;
  comp.mode = RmiMode::Threaded;  // caller blocks; receiver forks
  am_.request(dst, h_gp_read_, to_word(addr), nbytes, to_word(&comp));
  wait_completion(n, comp);
  Word v = 0;
  std::memcpy(&v, comp.result.data(), std::min(comp.result.size(), nbytes));
  return v;
}

void Runtime::gp_write_word(NodeId dst, void* addr, Word value,
                            std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (dst == n.id()) {
    n.advance(cost().cc_local_gp);
    ++self_stats(n).gp_local;
    std::memcpy(addr, &value, nbytes);
    return;
  }
  ++self_stats(n).gp_remote;
  n.advance(cost().cc_stub_lookup);
  Completion comp;
  comp.mode = RmiMode::Threaded;
  am_.request(dst, h_gp_write_, to_word(addr), nbytes, value, to_word(&comp));
  wait_completion(n, comp);
}

void Runtime::par(std::vector<std::function<void()>> blocks) {
  std::vector<threads::Thread> ts;
  ts.reserve(blocks.size());
  for (auto& b : blocks) ts.push_back(threads::spawn(std::move(b), "cc-par"));
  for (auto& t : ts) threads::join(t);
}

void Runtime::spawn_thread(std::function<void()> body) {
  threads::Thread t = threads::spawn(std::move(body), "cc-spawn");
  threads::detach(t);
}

// The collectives delegate to the coll layer under its Daemon discipline:
// the caller blocks on the layer's condvar gate and the cc-polling-thread
// drives delivery — the same progress split the linear protocol had, with
// log-depth message shapes and the same bit-determinism guarantee (the
// tree fold is rank-ordered; see coll::canonical_fold).
void Runtime::barrier() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(cost().cc_stub_lookup);  // runtime-entry bookkeeping
  coll_.barrier();
}

double Runtime::all_reduce_sum(double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(cost().cc_stub_lookup);
  return coll_.all_reduce_sum(v);
}

}  // namespace tham::ccxx
