#pragma once
// Argument marshalling for CC++ RMI. "In CC++ the arguments of a remote
// method invocation can be arbitrary objects and each object defines its own
// serialization methods" (Section 3). Trivially copyable types marshal by
// memcpy; containers element-wise; user-defined types provide
//   void cc_marshal(Serializer&, const T&);
//   void cc_unmarshal(Deserializer&, T&);
// found by argument-dependent lookup.
//
// The serializer is cost-free; the RMI engine charges the calibrated
// marshalling costs (per-argument call overhead + per-byte copy) based on
// the byte counts these classes report.

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace tham::ccxx {

class Serializer {
 public:
  Serializer() = default;

  void put_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    put_bytes(&v, sizeof(T));
  }

  const std::byte* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

class Deserializer {
 public:
  Deserializer(const std::byte* p, std::size_t n) : p_(p), end_(p + n) {}

  void get_bytes(void* out, std::size_t n) {
    THAM_REQUIRE(p_ + n <= end_, "RMI message truncated during unmarshal");
    std::memcpy(out, p_, n);
    p_ += n;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    T v;
    get_bytes(&v, sizeof(T));
    return v;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

 private:
  const std::byte* p_;
  const std::byte* end_;
};

// --- Default marshalling: trivially copyable -------------------------------

template <typename T>
  requires std::is_trivially_copyable_v<T>
void cc_marshal(Serializer& s, const T& v) {
  s.put(v);
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void cc_unmarshal(Deserializer& d, T& v) {
  v = d.get<T>();
}

// --- std::string -----------------------------------------------------------

inline void cc_marshal(Serializer& s, const std::string& v) {
  s.put<std::uint64_t>(v.size());
  s.put_bytes(v.data(), v.size());
}

inline void cc_unmarshal(Deserializer& d, std::string& v) {
  auto n = static_cast<std::size_t>(d.get<std::uint64_t>());
  v.resize(n);
  d.get_bytes(v.data(), n);
}

// --- std::vector of marshallable elements ----------------------------------

template <typename T>
void cc_marshal(Serializer& s, const std::vector<T>& v) {
  s.put<std::uint64_t>(v.size());
  if constexpr (std::is_trivially_copyable_v<T>) {
    s.put_bytes(v.data(), v.size() * sizeof(T));
  } else {
    for (const auto& e : v) cc_marshal(s, e);
  }
}

template <typename T>
void cc_unmarshal(Deserializer& d, std::vector<T>& v) {
  auto n = static_cast<std::size_t>(d.get<std::uint64_t>());
  v.resize(n);
  if constexpr (std::is_trivially_copyable_v<T>) {
    d.get_bytes(v.data(), n * sizeof(T));
  } else {
    for (auto& e : v) cc_unmarshal(d, e);
  }
}

// --- Helpers used by the RMI engine ------------------------------------------

/// Marshals one value, returning the number of bytes it occupied.
template <typename T>
std::size_t marshal_one(Serializer& s, const T& v) {
  std::size_t before = s.size();
  cc_marshal(s, v);  // ADL finds user overloads
  return s.size() - before;
}

template <typename T>
T unmarshal_one(Deserializer& d) {
  T v{};
  cc_unmarshal(d, v);  // ADL
  return v;
}

}  // namespace tham::ccxx
