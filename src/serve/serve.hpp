#pragma once
// The serving fabric: a client-server RPC workload generator on the CC++
// RMI layer (ROADMAP item 2, ISSUE 8). Turns the paper's microbenchmark
// runtime into a traffic-serving system with the heavy fan-in its
// introduction motivates but never measures.
//
// Topology (procs() = 2 + servers + clients simulated nodes):
//
//   node 0              the load balancer: clients submit requests here;
//                       a dispatcher thread batches up to batch_max pending
//                       requests per forward and picks a server by policy
//                       (round-robin or least-outstanding).
//   node 1              the backend dictionary (the nested-RMI pattern from
//                       examples/client_server.cpp): a deterministic subset
//                       of requests takes a blocking lookup hop from the
//                       server before replying.
//   nodes 2..2+S-1      servers: bounded admission queue (queue_cap) with
//                       explicit rejection replies when full, one worker
//                       thread servicing requests at a seeded-exponential
//                       demand, completion replies batched back.
//   the rest            clients: open-loop (Poisson arrivals in virtual
//                       time) or closed-loop (think time) request streams.
//
// Every source of randomness is a seeded tham::Rng keyed on (seed,
// request id) or (seed, client), so runs are bit-identical across 1/2/4/8
// host threads and under deterministic fault injection — enforced by
// tests/test_serving.cpp and the ServingFuzz property leg.

#include <cstdint>

#include "apps/results.hpp"
#include "ccxx/runtime.hpp"
#include "common/machine.hpp"
#include "common/types.hpp"
#include "stats/histogram.hpp"

namespace tham::serve {

enum class Policy { RoundRobin, LeastOutstanding };

const char* policy_name(Policy p);

struct Config {
  int clients = 4;
  int servers = 2;
  int requests_per_client = 32;
  bool open_loop = true;          ///< Poisson arrivals; else closed loop
  double offered_load = 0.7;      ///< open loop: fraction of pool capacity
  SimTime mean_service = 50'000;  ///< mean per-request service demand (ns)
  SimTime think_time = 20'000;    ///< closed loop: gap between requests (ns)
  int queue_cap = 16;             ///< per-server admission bound
  int batch_max = 4;              ///< balancer / completion batch limit
  Policy policy = Policy::RoundRobin;
  double backend_fraction = 0.25; ///< share of requests taking the dict hop
  std::uint64_t seed = 2027;

  int procs() const { return 2 + servers + clients; }
  NodeId balancer_node() const { return 0; }
  NodeId backend_node() const { return 1; }
  NodeId server_node(int s) const { return 2 + s; }
  NodeId client_node(int c) const { return 2 + servers + c; }
  std::uint64_t total_requests() const {
    return static_cast<std::uint64_t>(clients) *
           static_cast<std::uint64_t>(requests_per_client);
  }
  /// Open-loop per-client arrival rate (requests per virtual ns): the pool
  /// services servers/mean_service requests/ns at saturation; offered_load
  /// scales that, split evenly across clients.
  double lambda_per_client() const;
};

struct Result {
  apps::RunResult run;
  stats::Histogram latency;      ///< accepted-request latency, virtual ns
  stats::Histogram queue_depth;  ///< server queue depth at admission

  std::uint64_t issued = 0;
  std::uint64_t completed = 0;  ///< accepted and serviced
  std::uint64_t rejected = 0;   ///< bounced by admission control

  // Per-layer message counts (serve-layer semantics; one RMI each).
  std::uint64_t submits = 0;            ///< client -> balancer requests
  std::uint64_t forward_batches = 0;    ///< balancer -> server batches
  std::uint64_t forwarded = 0;          ///< requests inside those batches
  std::uint64_t completion_batches = 0; ///< server -> balancer reply batches
  std::uint64_t deliveries = 0;         ///< balancer -> client reply batches
  std::uint64_t backend_lookups = 0;    ///< server -> backend nested RMIs
  std::uint64_t net_messages = 0;       ///< wire messages, all layers

  std::uint64_t digest = 0;  ///< fold of per-node (now, dispatch_digest)

  double rejection_rate() const {
    return issued == 0 ? 0
                       : static_cast<double>(rejected) /
                             static_cast<double>(issued);
  }
  /// Completed requests per virtual second.
  double throughput() const;
  /// One value covering everything the determinism guarantee promises:
  /// clocks, dispatch order, histograms, and every serve-layer counter.
  std::uint64_t fingerprint() const;
};

/// Runs the scenario on a caller-built runtime (engine size must equal
/// cfg.procs()); the caller controls machine profile, host threads, fault
/// injection, and reliable transport.
Result run(ccxx::Runtime& rt, const Config& cfg);

/// Convenience: fresh engine + AM + full topology on `cm`.
Result run(const Config& cfg, const CostModel& cm = default_cost_model());

/// Deterministic per-request service demand (seeded exponential, >= 1 ns)
/// and backend-hop decision — exposed so the static flow model and tests
/// can replay them without running the fabric.
SimTime service_demand(std::uint64_t seed, std::uint64_t request_id,
                       SimTime mean);
bool takes_backend_hop(std::uint64_t seed, std::uint64_t request_id,
                       double fraction);

}  // namespace tham::serve
