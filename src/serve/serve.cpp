#include "serve/serve.hpp"

#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "am/am.hpp"
#include "apps/topology.hpp"
#include "check/checked.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"
#include "threads/threads.hpp"
#include "transport/transport.hpp"

namespace tham::serve {

namespace {

/// One in-flight request. Trivially copyable: marshals by memcpy, and
/// vector<Request> batches ride a single bulk RMI.
struct Request {
  std::uint64_t id = 0;
  std::int64_t issued = 0;  ///< client's virtual clock at issue
  std::int32_t client = 0;
  std::int32_t pad = 0;
};

struct Reply {
  std::uint64_t id = 0;
  std::int64_t issued = 0;
  std::int32_t client = 0;
  std::int32_t rejected = 0;
};

std::uint64_t request_id(int client, int seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(client))
          << 32) |
         static_cast<std::uint32_t>(seq);
}

constexpr std::uint64_t kServiceSalt = 0x5e7ece00c0ffee01ull;
constexpr std::uint64_t kBackendSalt = 0xd1c7100a2b3c4d5eull;

struct Fabric;

/// The dictionary backend from examples/client_server.cpp, kept as the
/// nested-RMI dependency hop: a keyed lookup the server blocks on before
/// replying. Simple mode — the paper's cheapest RMI; the caller poll-spins.
class Backend {
 public:
  Fabric* fab = nullptr;
  std::uint64_t lookups = 0;

  std::uint64_t lookup(std::uint64_t key);
};

class Client {
 public:
  Fabric* fab = nullptr;
  int index = 0;

  threads::Mutex mu;
  threads::CondVar cv;
  checked<std::uint64_t> done{0};  ///< replies received (ok + rejected)
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  stats::Histogram latency;

  void deliver(std::vector<Reply> replies);
};

class Server {
 public:
  Fabric* fab = nullptr;
  int index = 0;

  threads::Mutex mu;
  threads::CondVar cv;
  checked<bool> stop{false};
  std::deque<Request> queue;
  stats::Histogram depth;  ///< queue depth sampled at each admission
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completion_batches = 0;
  std::uint64_t backend_lookups = 0;

  void enqueue_batch(std::vector<Request> batch);
  void worker_loop();
};

class Balancer {
 public:
  Fabric* fab = nullptr;

  threads::Mutex mu;
  threads::CondVar cv;
  checked<bool> stop{false};
  checked<std::uint64_t> delivered{0};  ///< replies forwarded to clients
  std::deque<Request> pending;
  std::vector<std::uint64_t> outstanding;  ///< per server, incl. queued
  int rr_next = 0;
  std::uint64_t submits = 0;
  std::uint64_t forward_batches = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t completion_batches = 0;
  std::uint64_t deliveries = 0;

  void submit(Request r);
  void complete_batch(std::int32_t server, std::vector<Reply> replies);
  void dispatcher_loop();
  int pick_server();
};

/// Everything the processor objects need to reach each other: the runtime,
/// the method table, and every gptr. Built host-side before run_spmd; the
/// objects hold a plain pointer to it.
struct Fabric {
  ccxx::Runtime* rt = nullptr;
  Config cfg;

  ccxx::gptr<Balancer> balancer;
  ccxx::gptr<Backend> backend;
  std::vector<ccxx::gptr<Server>> servers;
  std::vector<ccxx::gptr<Client>> clients;

  ccxx::Method<Balancer, void, Request> m_submit;
  ccxx::Method<Balancer, void, std::int32_t, std::vector<Reply>> m_complete;
  ccxx::Method<Server, void, std::vector<Request>> m_enqueue;
  ccxx::Method<Client, void, std::vector<Reply>> m_deliver;
  ccxx::Method<Backend, std::uint64_t, std::uint64_t> m_lookup;
};

std::uint64_t Backend::lookup(std::uint64_t key) {
  sim::Node& n = sim::this_node();
  n.advance(sim::Component::Cpu, 500);  // hash-table probe
  ++lookups;
  return hash_mix(key, 0xd1c7ull);
}

void Client::deliver(std::vector<Reply> replies) {
  sim::Node& n = sim::this_node();
  mu.lock();
  for (const Reply& r : replies) {
    if (r.rejected != 0) {
      ++rejected;
    } else {
      ++ok;
      latency.record(static_cast<std::uint64_t>(n.now() - r.issued));
    }
  }
  done.set(done.get("serve.client.done") + replies.size(),
           "serve.client.done");
  cv.broadcast();
  mu.unlock();
}

void Server::enqueue_batch(std::vector<Request> batch) {
  std::vector<Reply> rejects;
  mu.lock();
  for (const Request& r : batch) {
    depth.record(queue.size());
    if (queue.size() >= static_cast<std::size_t>(fab->cfg.queue_cap)) {
      ++rejected;
      rejects.push_back(Reply{r.id, r.issued, r.client, 1});
    } else {
      ++accepted;
      queue.push_back(r);
      cv.signal();
    }
  }
  mu.unlock();
  if (!rejects.empty()) {
    ++completion_batches;
    fab->rt->rmi_spawn(fab->balancer, fab->m_complete,
                       static_cast<std::int32_t>(index), rejects);
  }
}

void Server::worker_loop() {
  sim::Node& n = sim::this_node();
  std::vector<Reply> out;
  for (;;) {
    mu.lock();
    while (queue.empty() && !stop.get("serve.server.stop")) cv.wait(mu);
    if (queue.empty()) {
      mu.unlock();
      break;
    }
    Request r = queue.front();
    queue.pop_front();
    mu.unlock();

    n.advance(sim::Component::Cpu,
              service_demand(fab->cfg.seed, r.id, fab->cfg.mean_service));
    if (takes_backend_hop(fab->cfg.seed, r.id, fab->cfg.backend_fraction)) {
      ++backend_lookups;
      (void)fab->rt->rmi(fab->backend, fab->m_lookup, r.id);
    }
    out.push_back(Reply{r.id, r.issued, r.client, 0});

    mu.lock();
    bool flush = queue.empty() ||
                 out.size() >= static_cast<std::size_t>(fab->cfg.batch_max);
    mu.unlock();
    if (flush) {
      ++completion_batches;
      fab->rt->rmi_spawn(fab->balancer, fab->m_complete,
                         static_cast<std::int32_t>(index), out);
      out.clear();
    }
  }
  THAM_CHECK(out.empty());  // the queue-empty flush drained it
}

void Balancer::submit(Request r) {
  mu.lock();
  ++submits;
  pending.push_back(r);
  cv.broadcast();
  mu.unlock();
}

int Balancer::pick_server() {
  int servers = fab->cfg.servers;
  if (fab->cfg.policy == Policy::RoundRobin) {
    int s = rr_next;
    rr_next = (rr_next + 1) % servers;
    return s;
  }
  int best = 0;
  for (int s = 1; s < servers; ++s) {
    if (outstanding[static_cast<std::size_t>(s)] <
        outstanding[static_cast<std::size_t>(best)]) {
      best = s;
    }
  }
  return best;
}

void Balancer::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch;
    int target = 0;
    mu.lock();
    while (pending.empty() && !stop.get("serve.balancer.stop")) cv.wait(mu);
    if (pending.empty()) {
      mu.unlock();
      break;
    }
    while (!pending.empty() &&
           batch.size() < static_cast<std::size_t>(fab->cfg.batch_max)) {
      batch.push_back(pending.front());
      pending.pop_front();
    }
    target = pick_server();
    outstanding[static_cast<std::size_t>(target)] += batch.size();
    ++forward_batches;
    forwarded += batch.size();
    mu.unlock();
    fab->rt->rmi_spawn(fab->servers[static_cast<std::size_t>(target)],
                       fab->m_enqueue, batch);
  }
}

void Balancer::complete_batch(std::int32_t server,
                              std::vector<Reply> replies) {
  mu.lock();
  ++completion_batches;
  outstanding[static_cast<std::size_t>(server)] -= replies.size();
  mu.unlock();
  // Group per owning client (std::map: deterministic order) and forward.
  std::map<std::int32_t, std::vector<Reply>> by_client;
  for (const Reply& r : replies) by_client[r.client].push_back(r);
  for (auto& [client, group] : by_client) {
    ++deliveries;
    fab->rt->rmi_spawn(fab->clients[static_cast<std::size_t>(client)],
                       fab->m_deliver, group);
  }
  mu.lock();
  delivered.set(delivered.get("serve.balancer.delivered") + replies.size(),
                "serve.balancer.delivered");
  cv.broadcast();
  mu.unlock();
}

/// Parks the calling task until the node clock reaches `t`. Parked as a
/// poll_only waiter: when the scheduler hands us due traffic instead of
/// the deadline, we honor the drain contract (transport::Reliable's timer
/// idiom) so replies keep flowing while the client sleeps.
void sleep_until(sim::Node& n, SimTime t) {
  while (n.now() < t) {
    if (!n.wait_for_inbox_until(t, /*poll_only=*/true)) break;  // shutdown
    transport::Endpoint(n).drain_due();
  }
}

void client_main(Fabric& fab, int index) {
  sim::Node& n = sim::this_node();
  const Config& cfg = fab.cfg;
  Client& me = *fab.clients[static_cast<std::size_t>(index)].ptr;
  Rng rng(hash_mix(hash_mix(cfg.seed, 0xc11e47ull),
                   static_cast<std::uint64_t>(index)));
  const auto total = static_cast<std::uint64_t>(cfg.requests_per_client);

  if (cfg.open_loop) {
    double lambda = cfg.lambda_per_client();
    SimTime next = n.now();
    for (int k = 0; k < cfg.requests_per_client; ++k) {
      double gap_ns = -std::log1p(-rng.next_double()) / lambda;
      next += static_cast<SimTime>(gap_ns);
      sleep_until(n, next);
      fab.rt->rmi_spawn(fab.balancer, fab.m_submit,
                        Request{request_id(index, k), n.now(),
                                static_cast<std::int32_t>(index), 0});
    }
    me.mu.lock();
    while (me.done.get("serve.client.done") < total) me.cv.wait(me.mu);
    me.mu.unlock();
  } else {
    for (int k = 0; k < cfg.requests_per_client; ++k) {
      fab.rt->rmi_spawn(fab.balancer, fab.m_submit,
                        Request{request_id(index, k), n.now(),
                                static_cast<std::int32_t>(index), 0});
      me.mu.lock();
      while (me.done.get("serve.client.done") <
             static_cast<std::uint64_t>(k) + 1) {
        me.cv.wait(me.mu);
      }
      me.mu.unlock();
      if (cfg.think_time > 0) n.advance(sim::Component::Cpu, cfg.think_time);
    }
  }
}

void balancer_main(Fabric& fab) {
  Balancer& me = *fab.balancer.ptr;
  threads::Thread disp =
      threads::spawn([&me] { me.dispatcher_loop(); }, "lb-dispatcher");
  const std::uint64_t total = fab.cfg.total_requests();
  me.mu.lock();
  while (me.delivered.get("serve.balancer.delivered") < total) {
    me.cv.wait(me.mu);
  }
  me.stop.set(true, "serve.balancer.stop");
  me.cv.broadcast();
  me.mu.unlock();
  threads::join(disp);
}

void server_main(Fabric& fab, int index) {
  Server& me = *fab.servers[static_cast<std::size_t>(index)].ptr;
  threads::Thread worker =
      threads::spawn([&me] { me.worker_loop(); }, "server-worker");
  // The end-of-run barrier releases once every client has all its replies,
  // at which point the queue is drained and the worker can be retired.
  fab.rt->barrier();
  me.mu.lock();
  me.stop.set(true, "serve.server.stop");
  me.cv.broadcast();
  me.mu.unlock();
  threads::join(worker);
}

}  // namespace

const char* policy_name(Policy p) {
  return p == Policy::RoundRobin ? "round-robin" : "least-outstanding";
}

double Config::lambda_per_client() const {
  THAM_CHECK(mean_service > 0 && clients > 0);
  return offered_load * static_cast<double>(servers) /
         (static_cast<double>(mean_service) * static_cast<double>(clients));
}

SimTime service_demand(std::uint64_t seed, std::uint64_t id, SimTime mean) {
  Rng rng(hash_mix(hash_mix(kServiceSalt, seed), id));
  auto d = static_cast<SimTime>(-std::log1p(-rng.next_double()) *
                                static_cast<double>(mean));
  return d < 1 ? 1 : d;
}

bool takes_backend_hop(std::uint64_t seed, std::uint64_t id,
                       double fraction) {
  if (fraction <= 0) return false;
  Rng rng(hash_mix(hash_mix(kBackendSalt, seed), id));
  return rng.next_double() < fraction;
}

double Result::throughput() const {
  if (run.elapsed <= 0) return 0;
  return static_cast<double>(completed) / to_sec(run.elapsed);
}

std::uint64_t Result::fingerprint() const {
  std::uint64_t h = digest;
  h = hash_mix(h, static_cast<std::uint64_t>(run.elapsed));
  h = hash_mix(h, run.messages);
  h = hash_mix(h, latency.digest());
  h = hash_mix(h, queue_depth.digest());
  h = hash_mix(h, issued);
  h = hash_mix(h, completed);
  h = hash_mix(h, rejected);
  h = hash_mix(h, submits);
  h = hash_mix(h, forward_batches);
  h = hash_mix(h, forwarded);
  h = hash_mix(h, completion_batches);
  h = hash_mix(h, deliveries);
  h = hash_mix(h, backend_lookups);
  return h;
}

Result run(ccxx::Runtime& rt, const Config& cfg) {
  sim::Engine& engine = rt.engine();
  THAM_CHECK(cfg.clients >= 1 && cfg.servers >= 1);
  THAM_CHECK(cfg.requests_per_client >= 1 && cfg.queue_cap >= 1 &&
             cfg.batch_max >= 1);
  THAM_CHECK(engine.size() == cfg.procs());

  Fabric fab;
  fab.rt = &rt;
  fab.cfg = cfg;
  fab.m_submit = rt.def_method("Balancer::submit", &Balancer::submit,
                               ccxx::RmiMode::Threaded);
  fab.m_complete = rt.def_method("Balancer::complete_batch",
                                 &Balancer::complete_batch,
                                 ccxx::RmiMode::Threaded);
  fab.m_enqueue = rt.def_method("Server::enqueue_batch",
                                &Server::enqueue_batch,
                                ccxx::RmiMode::Threaded);
  fab.m_deliver = rt.def_method("Client::deliver", &Client::deliver,
                                ccxx::RmiMode::Threaded);
  fab.m_lookup = rt.def_method("Backend::lookup", &Backend::lookup,
                               ccxx::RmiMode::Simple);

  fab.balancer = rt.place<Balancer>(cfg.balancer_node());
  fab.balancer.ptr->fab = &fab;
  fab.balancer.ptr->outstanding.assign(
      static_cast<std::size_t>(cfg.servers), 0);
  fab.backend = rt.place<Backend>(cfg.backend_node());
  fab.backend.ptr->fab = &fab;
  for (int s = 0; s < cfg.servers; ++s) {
    auto gp = rt.place<Server>(cfg.server_node(s));
    gp.ptr->fab = &fab;
    gp.ptr->index = s;
    fab.servers.push_back(gp);
  }
  for (int c = 0; c < cfg.clients; ++c) {
    auto gp = rt.place<Client>(cfg.client_node(c));
    gp.ptr->fab = &fab;
    gp.ptr->index = c;
    fab.clients.push_back(gp);
  }

  rt.run_spmd([&fab] {
    sim::Node& n = sim::this_node();
    const Config& c = fab.cfg;
    NodeId me = n.id();
    if (me == c.balancer_node()) {
      balancer_main(fab);
    } else if (me >= c.server_node(0) && me < c.server_node(c.servers)) {
      server_main(fab, static_cast<int>(me - c.server_node(0)));
      return;  // server_main already sat through the barrier
    } else if (me >= c.client_node(0)) {
      client_main(fab, static_cast<int>(me - c.client_node(0)));
    }
    fab.rt->barrier();
  });

  Result res;
  res.run = apps::collect(engine);
  for (const auto& gp : fab.clients) {
    res.latency.merge(gp.ptr->latency);
    res.completed += gp.ptr->ok;
    res.rejected += gp.ptr->rejected;
    res.issued += gp.ptr->done.raw();
  }
  for (const auto& gp : fab.servers) {
    res.queue_depth.merge(gp.ptr->depth);
    res.completion_batches += gp.ptr->completion_batches;
    res.backend_lookups += gp.ptr->backend_lookups;
  }
  const Balancer& lb = *fab.balancer.ptr;
  res.submits = lb.submits;
  res.forward_batches = lb.forward_batches;
  res.forwarded = lb.forwarded;
  res.deliveries = lb.deliveries;
  res.net_messages = res.run.messages;
  std::uint64_t h = 0x5e21ceull;
  for (NodeId i = 0; i < engine.size(); ++i) {
    const sim::Node& n = engine.node(i);
    h = hash_mix(h, static_cast<std::uint64_t>(n.now()));
    h = hash_mix(h, n.counters().dispatch_digest);
  }
  res.digest = h;
  res.run.checksum = static_cast<double>(res.fingerprint() >> 11);
  return res;
}

Result run(const Config& cfg, const CostModel& cm) {
  sim::Engine engine(cfg.procs(), cm);
  net::Network net(engine);
  am::AmLayer am(net);
  apps::declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  return run(rt, cfg);
}

}  // namespace tham::serve
