#include "stats/table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tham::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  THAM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      width[i] = std::max(width[i], r[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      // First column left-aligned (names), the rest right-aligned (numbers).
      if (i == 0) {
        std::fprintf(out, "%-*s", static_cast<int>(width[i]), r[i].c_str());
      } else {
        std::fprintf(out, "  %*s", static_cast<int>(width[i]), r[i].c_str());
      }
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t i = 0; i < width.size(); ++i) total += width[i] + 2;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& r : rows_) print_row(r);
}

}  // namespace tham::stats
