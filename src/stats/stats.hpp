#pragma once
// Measurement utilities: snapshots of per-node accounting (virtual clock,
// component breakdown, operation counters) and delta arithmetic for
// measurement windows, mirroring how the paper's instrumented AM layer and
// threads package accounted for "the number, types, and sizes of message
// transfers as well as the number of threads, context switches, and
// synchronization operations" (Section 5).

#include "common/types.hpp"
#include "sim/component.hpp"
#include "sim/node.hpp"

namespace tham::stats {

struct Snapshot {
  SimTime now = 0;
  sim::Breakdown breakdown;
  sim::Node::Counters counters;
};

/// Captures the current accounting state of a node.
Snapshot snap(const sim::Node& n);

/// Component-wise and counter-wise difference (b - a) of two snapshots of
/// the same node; defines a measurement window.
Snapshot delta(const Snapshot& a, const Snapshot& b);

/// Scales a window down by `iters` (per-iteration averages, in us).
struct PerIter {
  double total_us = 0;
  double comp_us[sim::kNumComponents] = {};
  double creates = 0;
  double switches = 0;
  double sync_ops = 0;

  double cpu() const { return comp_us[static_cast<int>(sim::Component::Cpu)]; }
  double net() const { return comp_us[static_cast<int>(sim::Component::Net)]; }
  double thread_mgmt() const {
    return comp_us[static_cast<int>(sim::Component::ThreadMgmt)];
  }
  double thread_sync() const {
    return comp_us[static_cast<int>(sim::Component::ThreadSync)];
  }
  double runtime() const {
    return comp_us[static_cast<int>(sim::Component::Runtime)];
  }
  double threads_time() const { return thread_mgmt() + thread_sync(); }
};

PerIter per_iter(const Snapshot& window, double iters);

}  // namespace tham::stats
