#include "stats/histogram.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace tham::stats {

namespace {

/// Index of the highest set bit (value != 0).
int high_bit(std::uint64_t v) {
  int h = 0;
  while (v >>= 1) ++h;
  return h;
}

}  // namespace

int Histogram::num_buckets() {
  // Octaves kSubBits..63 contribute kSub buckets each on top of the 2*kSub
  // exact width-1 buckets covering [0, 2^(kSubBits+1)).
  return static_cast<int>((64 - kSubBits - 1) * kSub + 2 * kSub);
}

int Histogram::bucket_index(std::uint64_t v) {
  if (v < 2 * kSub) return static_cast<int>(v);
  int h = high_bit(v);  // >= kSubBits + 1
  int shift = h - kSubBits;
  return static_cast<int>(static_cast<std::uint64_t>(shift) * kSub +
                          (v >> shift));
}

std::uint64_t Histogram::bucket_lo(int idx) {
  auto i = static_cast<std::uint64_t>(idx);
  if (i < 2 * kSub) return i;
  std::uint64_t shift = (i >> kSubBits) - 1;
  std::uint64_t top = (i & (kSub - 1)) + kSub;
  return top << shift;
}

std::uint64_t Histogram::bucket_hi(int idx) {
  auto i = static_cast<std::uint64_t>(idx);
  if (i < 2 * kSub) return i;
  std::uint64_t shift = (i >> kSubBits) - 1;
  return bucket_lo(idx) + ((1ull << shift) - 1);
}

void Histogram::record(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  if (counts_.empty()) counts_.assign(static_cast<std::size_t>(num_buckets()), 0);
  counts_[static_cast<std::size_t>(bucket_index(value))] += n;
  count_ += n;
  sum_ += value * n;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(static_cast<std::size_t>(num_buckets()), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double Histogram::mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.9999999999);  // ceil(q * count)
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank) return bucket_hi(static_cast<int>(i));
  }
  return max_;
}

std::uint64_t Histogram::bucket_count(int idx) const {
  auto i = static_cast<std::size_t>(idx);
  return i < counts_.size() ? counts_[i] : 0;
}

std::uint64_t Histogram::digest() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = hash_mix(h, count_);
  h = hash_mix(h, sum_);
  h = hash_mix(h, min());
  h = hash_mix(h, max_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    h = hash_mix(h, i);
    h = hash_mix(h, counts_[i]);
  }
  return h;
}

}  // namespace tham::stats
