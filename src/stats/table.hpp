#pragma once
// Fixed-width ASCII table printer for the benchmark harnesses. Each bench
// binary prints the same rows/series the paper's tables and figures report.

#include <cstdio>
#include <string>
#include <vector>

namespace tham::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tham::stats
