#include "stats/stats.hpp"

namespace tham::stats {

Snapshot snap(const sim::Node& n) {
  return Snapshot{n.now(), n.breakdown(), n.counters()};
}

Snapshot delta(const Snapshot& a, const Snapshot& b) {
  Snapshot d;
  d.now = b.now - a.now;
  d.breakdown = b.breakdown - a.breakdown;
  auto& c = d.counters;
  const auto& x = a.counters;
  const auto& y = b.counters;
  c.thread_creates = y.thread_creates - x.thread_creates;
  c.context_switches = y.context_switches - x.context_switches;
  c.sync_ops = y.sync_ops - x.sync_ops;
  c.lock_acquires = y.lock_acquires - x.lock_acquires;
  c.lock_contended = y.lock_contended - x.lock_contended;
  c.msgs_sent = y.msgs_sent - x.msgs_sent;
  c.bytes_sent = y.bytes_sent - x.bytes_sent;
  c.msgs_recv = y.msgs_recv - x.msgs_recv;
  c.polls = y.polls - x.polls;
  return d;
}

PerIter per_iter(const Snapshot& window, double iters) {
  PerIter p;
  p.total_us = to_usec(window.now) / iters;
  for (int i = 0; i < sim::kNumComponents; ++i) {
    p.comp_us[i] = to_usec(window.breakdown.t[static_cast<std::size_t>(i)]) /
                   iters;
  }
  p.creates = static_cast<double>(window.counters.thread_creates) / iters;
  p.switches = static_cast<double>(window.counters.context_switches) / iters;
  p.sync_ops = static_cast<double>(window.counters.sync_ops) / iters;
  return p;
}

}  // namespace tham::stats
