#pragma once
// Message tracing: records every message on the simulated interconnect and
// exports a Chrome-tracing JSON file (load in chrome://tracing or Perfetto)
// where each node is a track and each message a slice from send to
// delivery, with flow arrows between sender and receiver. Useful for
// eyeballing protocol behaviour (stub-cache cold calls, barrier fan-ins,
// prefetch pipelining).
//
// Fault-injected and reliable-transport traffic is distinguishable:
// injected drops, injected duplicates, retransmissions, and protocol acks
// each get a distinct instant marker on top of their slice, so a lossy run
// reads at a glance (every "fault.drop" should pair with a later
// "rel.retransmit" of the same link). Long lossy runs can generate
// unbounded protocol chatter, so the event buffer is capped; overflow is
// counted, not silently swallowed.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"

namespace tham::stats {

class Tracer {
 public:
  /// Default event-buffer cap (~1M events, a few hundred MB of JSON).
  static constexpr std::size_t kDefaultCap = 1u << 20;

  /// Attaches to a network; every subsequent send is recorded, up to
  /// `cap` events (further sends are counted in dropped_events()).
  explicit Tracer(net::Network& net, std::size_t cap = kDefaultCap);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t recorded() const { return events_.size(); }
  /// Sends that arrived after the event buffer filled up.
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Writes the Chrome-tracing JSON ("traceEvents" array format).
  /// Returns false if the file could not be opened.
  bool write_chrome_json(const std::string& path) const;

  /// In-memory access for tests.
  struct Event {
    NodeId src;
    NodeId dst;
    SimTime send_time;
    SimTime arrival;
    std::size_t bytes;
    net::Wire wire;
    std::uint8_t flags;        ///< net::kSend* bits
    net::Network::Fate fate;
  };
  const std::vector<Event>& events() const { return events_; }

  /// The instant-marker name for an event, or null for plain data
  /// traffic: "fault.drop", "fault.dup", "rel.retransmit", "rel.ack".
  static const char* marker(const Event& e);

 private:
  net::Network& net_;
  std::size_t cap_;
  std::uint64_t dropped_events_ = 0;
  std::vector<Event> events_;
};

/// Records every epoch of the parallel engine (index, window start,
/// participant count) through Engine::set_epoch_observer, and exports them
/// as Chrome-tracing instants — one marker per epoch on a dedicated track,
/// so a trace shows where the conservative windows fell relative to the
/// message traffic a Tracer recorded on the same run.
///
/// The engine only fires epoch observers in THAM_CHECK builds (the plain
/// build never pays a std::function call on the epoch path), so in a
/// release build this class attaches successfully but records nothing;
/// enabled() says which build this is. Sequential runs have no epochs and
/// also record nothing.
class EpochTrace {
 public:
  /// Default epoch-buffer cap; overflow is counted, not silently dropped.
  static constexpr std::size_t kDefaultCap = 1u << 20;

  explicit EpochTrace(sim::Engine& engine, std::size_t cap = kDefaultCap);
  ~EpochTrace();

  EpochTrace(const EpochTrace&) = delete;
  EpochTrace& operator=(const EpochTrace&) = delete;

  /// True when this build's engine fires epoch observers (THAM_CHECK=ON).
  static constexpr bool enabled() {
#if defined(THAM_CHECK_ENABLED)
    return true;
#else
    return false;
#endif
  }

  const std::vector<sim::Engine::EpochInfo>& epochs() const {
    return epochs_;
  }
  std::uint64_t dropped_epochs() const { return dropped_; }

  /// Writes the epochs as a Chrome-tracing instant track ("traceEvents"
  /// array format, same schema as Tracer::write_chrome_json).
  bool write_chrome_json(const std::string& path) const;

 private:
  sim::Engine& engine_;
  std::size_t cap_;
  std::uint64_t dropped_ = 0;
  std::vector<sim::Engine::EpochInfo> epochs_;
};

/// Human-readable name of a wire class (also used as the slice name).
const char* wire_name(net::Wire w);

}  // namespace tham::stats
