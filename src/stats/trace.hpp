#pragma once
// Message tracing: records every message on the simulated interconnect and
// exports a Chrome-tracing JSON file (load in chrome://tracing or Perfetto)
// where each node is a track and each message a slice from send to
// delivery, with flow arrows between sender and receiver. Useful for
// eyeballing protocol behaviour (stub-cache cold calls, barrier fan-ins,
// prefetch pipelining).

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"

namespace tham::stats {

class Tracer {
 public:
  /// Attaches to a network; every subsequent send is recorded.
  explicit Tracer(net::Network& net);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t recorded() const { return events_.size(); }

  /// Writes the Chrome-tracing JSON ("traceEvents" array format).
  /// Returns false if the file could not be opened.
  bool write_chrome_json(const std::string& path) const;

  /// In-memory access for tests.
  struct Event {
    NodeId src;
    NodeId dst;
    SimTime send_time;
    SimTime arrival;
    std::size_t bytes;
    net::Wire wire;
  };
  const std::vector<Event>& events() const { return events_; }

 private:
  net::Network& net_;
  std::vector<Event> events_;
};

/// Human-readable name of a wire class (also used as the slice name).
const char* wire_name(net::Wire w);

}  // namespace tham::stats
