#pragma once
// Message tracing: records every message on the simulated interconnect and
// exports a Chrome-tracing JSON file (load in chrome://tracing or Perfetto)
// where each node is a track and each message a slice from send to
// delivery, with flow arrows between sender and receiver. Useful for
// eyeballing protocol behaviour (stub-cache cold calls, barrier fan-ins,
// prefetch pipelining).
//
// Fault-injected and reliable-transport traffic is distinguishable:
// injected drops, injected duplicates, retransmissions, and protocol acks
// each get a distinct instant marker on top of their slice, so a lossy run
// reads at a glance (every "fault.drop" should pair with a later
// "rel.retransmit" of the same link). Long lossy runs can generate
// unbounded protocol chatter, so the event buffer is capped; overflow is
// counted, not silently swallowed.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/network.hpp"

namespace tham::stats {

class Tracer {
 public:
  /// Default event-buffer cap (~1M events, a few hundred MB of JSON).
  static constexpr std::size_t kDefaultCap = 1u << 20;

  /// Attaches to a network; every subsequent send is recorded, up to
  /// `cap` events (further sends are counted in dropped_events()).
  explicit Tracer(net::Network& net, std::size_t cap = kDefaultCap);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::size_t recorded() const { return events_.size(); }
  /// Sends that arrived after the event buffer filled up.
  std::uint64_t dropped_events() const { return dropped_events_; }

  /// Writes the Chrome-tracing JSON ("traceEvents" array format).
  /// Returns false if the file could not be opened.
  bool write_chrome_json(const std::string& path) const;

  /// In-memory access for tests.
  struct Event {
    NodeId src;
    NodeId dst;
    SimTime send_time;
    SimTime arrival;
    std::size_t bytes;
    net::Wire wire;
    std::uint8_t flags;        ///< net::kSend* bits
    net::Network::Fate fate;
  };
  const std::vector<Event>& events() const { return events_; }

  /// The instant-marker name for an event, or null for plain data
  /// traffic: "fault.drop", "fault.dup", "rel.retransmit", "rel.ack".
  static const char* marker(const Event& e);

 private:
  net::Network& net_;
  std::size_t cap_;
  std::uint64_t dropped_events_ = 0;
  std::vector<Event> events_;
};

/// Human-readable name of a wire class (also used as the slice name).
const char* wire_name(net::Wire w);

}  // namespace tham::stats
