#pragma once
// stats::Histogram: a log-bucketed value histogram for virtual-time latency
// and queue-depth distributions (ISSUE 8, ROADMAP item 2).
//
// Bucketing is HdrHistogram-style base-2 with kSubBits linear sub-buckets
// per octave: values below 2^(kSubBits+1) land in exact width-1 buckets,
// everything above is recorded with relative error bounded by
// 2^-kSubBits (~3% at kSubBits=5). The full uint64 range is covered — the
// top bucket ends at 2^64-1, so "overflow" values are representable, and
// value 0 has its own exact bucket.
//
// Merging is element-wise integer addition: exactly associative and
// commutative, so per-client histograms folded in any grouping produce
// bit-identical payloads — the property the serving determinism tests
// (1/2/4/8 host threads) and the golden records rely on. digest() folds
// the payload into one u64 for fingerprints and golden checksums.

#include <cstdint>
#include <vector>

namespace tham::stats {

class Histogram {
 public:
  /// Linear sub-buckets per octave (32): max relative quantile error 1/32.
  static constexpr int kSubBits = 5;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;

  void record(std::uint64_t value) { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t n);

  /// Element-wise sum; exactly associative and commutative.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t total() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const;

  /// Value at quantile q in [0,1]: the highest value representable by the
  /// bucket holding the rank-ceil(q*count) sample (exact where buckets are
  /// exact; at most 1/kSub relative overshoot above). 0 when empty.
  std::uint64_t quantile(double q) const;

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  /// Order-independent fold of the full payload (bucket vector + count +
  /// sum + min + max) — the golden-record / fingerprint checksum.
  std::uint64_t digest() const;

  // --- bucket introspection (unit tests, serialization) -------------------
  static int num_buckets();
  static int bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lo(int idx);
  static std::uint64_t bucket_hi(int idx);
  std::uint64_t bucket_count(int idx) const;

 private:
  std::vector<std::uint64_t> counts_;  ///< allocated on first record
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace tham::stats
