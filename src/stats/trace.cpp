#include "stats/trace.hpp"

#include <cstdio>

namespace tham::stats {

const char* wire_name(net::Wire w) {
  switch (w) {
    case net::Wire::AmShort: return "am.short";
    case net::Wire::AmBulk: return "am.bulk";
    case net::Wire::Mpl: return "mpl";
    case net::Wire::Tcp: return "tcp";
  }
  return "?";
}

const char* Tracer::marker(const Event& e) {
  if (e.fate == net::Network::Fate::Dropped) return "fault.drop";
  if (e.fate == net::Network::Fate::DupCopy) return "fault.dup";
  if ((e.flags & net::kSendRetransmit) != 0) return "rel.retransmit";
  if ((e.flags & net::kSendAck) != 0) return "rel.ack";
  return nullptr;
}

Tracer::Tracer(net::Network& net, std::size_t cap) : net_(net), cap_(cap) {
  net_.set_observer([this](const net::Network::SendEvent& e) {
    if (events_.size() >= cap_) {
      ++dropped_events_;
      return;
    }
    events_.push_back(Event{e.src, e.dst, e.send_time, e.arrival, e.bytes,
                            e.wire, e.flags, e.fate});
  });
}

Tracer::~Tracer() { net_.set_observer(nullptr); }

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\":[\n");
  std::uint64_t flow_id = 0;
  bool first = true;
  for (const Event& e : events_) {
    double ts = to_usec(e.send_time);
    double dur = to_usec(e.arrival - e.send_time);
    if (dur <= 0) dur = 0.001;
    // One slice per message on the sender's track...
    std::fprintf(f,
                 "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"dur\":%.3f,"
                 "\"args\":{\"dst\":%d,\"bytes\":%zu}}",
                 first ? "" : ",\n", wire_name(e.wire), e.src, ts, dur, e.dst,
                 e.bytes);
    first = false;
    // ...an instant marker when the message is fault/protocol traffic...
    if (const char* mark = marker(e)) {
      std::fprintf(f,
                   ",\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
                   "\"tid\":%d,\"ts\":%.3f,"
                   "\"args\":{\"dst\":%d,\"wire\":\"%s\"}}",
                   mark, e.src, ts, e.dst, wire_name(e.wire));
    }
    // ...plus a flow arrow to the receiver's track. A dropped message
    // never arrives, so its arrow ends back on the sender's track at the
    // instant the wire would have delivered it — the visual gap on the
    // receiver is the point.
    bool delivered = e.fate != net::Network::Fate::Dropped;
    const char* flow = delivered ? "msg" : "msg.lost";
    std::fprintf(f,
                 ",\n{\"name\":\"%s\",\"ph\":\"s\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"id\":%llu}",
                 flow, e.src, ts, static_cast<unsigned long long>(flow_id));
    std::fprintf(f,
                 ",\n{\"name\":\"%s\",\"ph\":\"t\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"id\":%llu}",
                 flow, delivered ? e.dst : e.src, to_usec(e.arrival),
                 static_cast<unsigned long long>(flow_id));
    ++flow_id;
  }
  std::fprintf(f, "\n]}\n");
  if (dropped_events_ > 0) {
    std::fprintf(stderr,
                 "tham-stats: trace buffer full, %llu event(s) not recorded\n",
                 static_cast<unsigned long long>(dropped_events_));
  }
  std::fclose(f);
  return true;
}

EpochTrace::EpochTrace(sim::Engine& engine, std::size_t cap)
    : engine_(engine), cap_(cap) {
  engine_.set_epoch_observer([this](const sim::Engine::EpochInfo& info) {
    if (epochs_.size() >= cap_) {
      ++dropped_;
      return;
    }
    epochs_.push_back(info);
  });
}

EpochTrace::~EpochTrace() { engine_.set_epoch_observer(nullptr); }

bool EpochTrace::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\":[\n");
  bool first = true;
  for (const auto& e : epochs_) {
    std::fprintf(f,
                 "%s{\"name\":\"epoch\",\"ph\":\"i\",\"s\":\"p\",\"pid\":0,"
                 "\"tid\":-1,\"ts\":%.3f,"
                 "\"args\":{\"index\":%llu,\"participants\":%d}}",
                 first ? "" : ",\n", to_usec(e.window_start),
                 static_cast<unsigned long long>(e.index), e.participants);
    first = false;
  }
  std::fprintf(f, "\n]}\n");
  if (dropped_ > 0) {
    std::fprintf(stderr,
                 "tham-stats: epoch buffer full, %llu epoch(s) not recorded\n",
                 static_cast<unsigned long long>(dropped_));
  }
  std::fclose(f);
  return true;
}

}  // namespace tham::stats
