#include "stats/trace.hpp"

#include <cstdio>

namespace tham::stats {

const char* wire_name(net::Wire w) {
  switch (w) {
    case net::Wire::AmShort: return "am.short";
    case net::Wire::AmBulk: return "am.bulk";
    case net::Wire::Mpl: return "mpl";
    case net::Wire::Tcp: return "tcp";
  }
  return "?";
}

Tracer::Tracer(net::Network& net) : net_(net) {
  net_.set_observer([this](const net::Network::SendEvent& e) {
    events_.push_back(
        Event{e.src, e.dst, e.send_time, e.arrival, e.bytes, e.wire});
  });
}

Tracer::~Tracer() { net_.set_observer(nullptr); }

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\":[\n");
  std::uint64_t flow_id = 0;
  bool first = true;
  for (const Event& e : events_) {
    double ts = to_usec(e.send_time);
    double dur = to_usec(e.arrival - e.send_time);
    if (dur <= 0) dur = 0.001;
    // One slice per message on the sender's track...
    std::fprintf(f,
                 "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"dur\":%.3f,"
                 "\"args\":{\"dst\":%d,\"bytes\":%zu}}",
                 first ? "" : ",\n", wire_name(e.wire), e.src, ts, dur, e.dst,
                 e.bytes);
    first = false;
    // ...plus a flow arrow to the receiver's track.
    std::fprintf(f,
                 ",\n{\"name\":\"msg\",\"ph\":\"s\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"id\":%llu}",
                 e.src, ts, static_cast<unsigned long long>(flow_id));
    std::fprintf(f,
                 ",\n{\"name\":\"msg\",\"ph\":\"t\",\"pid\":0,\"tid\":%d,"
                 "\"ts\":%.3f,\"id\":%llu}",
                 e.dst, to_usec(e.arrival),
                 static_cast<unsigned long long>(flow_id));
    ++flow_id;
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace tham::stats
