#pragma once
// FNV-1a hashing. Used for CC++ method-name hashing (the stub cache of
// Section 4 of the paper indexes its table by processor number and method
// name hash value) and for deterministic workload generation.

#include <cstdint>
#include <string_view>

namespace tham {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// 64-bit FNV-1a over a byte string. constexpr so method hashes can be
/// computed at compile time for string literals.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Mix an integer into an existing hash (for composite keys).
constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace tham
