#pragma once
// Heap-allocation counting hook. Binaries that link `tham_alloc_count` get
// replacement global operator new/delete that count every call; the
// zero-allocation guarantees of the message hot path are asserted against
// these counters (tests/test_hostpath.cpp) and reported as allocs-per-
// message by the hostperf benchmark. Not linked into ordinary binaries.

#include <cstdint>

namespace tham {

struct AllocCounts {
  std::uint64_t news = 0;     ///< operator new / new[] calls
  std::uint64_t deletes = 0;  ///< operator delete / delete[] calls
};

/// Totals since process start. The counters are relaxed atomics: the
/// simulator itself is single-real-threaded, but operator new/delete are
/// program-wide replacements and may legally be entered from any thread a
/// linked library spawns, so the hooks must not assume the simulator's
/// threading model.
AllocCounts alloc_counts() noexcept;

/// True when the counting operator new/delete are linked into this binary.
/// Referencing this symbol is also what pulls the replacements in, so call
/// it once before relying on alloc_counts().
bool alloc_counting_linked() noexcept;

}  // namespace tham
