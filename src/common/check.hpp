#pragma once
// Lightweight invariant checking. Simulation bugs (causality violations,
// double-frees of buffers, protocol errors) abort loudly rather than
// silently corrupting measurements.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tham {

/// Thrown for user-visible misuse of the runtime APIs (e.g. writing a
/// write-once sync variable twice, dereferencing a null global pointer).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "THAM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace tham

/// Internal invariant: aborts the process on failure (never disabled; the
/// simulator is cheap enough that checks stay on in release builds).
#define THAM_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::tham::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define THAM_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::tham::check_failed(__FILE__, __LINE__, #expr, msg); \
  } while (0)

/// API misuse: throws tham::RuntimeError so tests can assert on it.
#define THAM_REQUIRE(expr, msg)                                  \
  do {                                                           \
    if (!(expr)) throw ::tham::RuntimeError(std::string(msg));   \
  } while (0)
