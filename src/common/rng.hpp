#pragma once
// Deterministic pseudo-random number generation (SplitMix64). The simulator
// must be byte-reproducible, so all randomness flows through explicitly
// seeded generators — std::random_device and wall-clock seeding are banned.

#include <cstdint>

namespace tham {

/// SplitMix64: tiny, fast, full-period 2^64 generator. Good enough for
/// workload generation; not for cryptography.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t n) {
    // Modulo bias is irrelevant for workload generation.
    return next_u64() % n;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + next_double() * (hi - lo);
  }

 private:
  std::uint64_t state_;
};

}  // namespace tham
