#pragma once
// Environment-variable configuration knobs. Kept deliberately tiny: the
// simulator has exactly one runtime knob today (host worker threads), and
// everything else is explicit CostModel / Config state so runs stay
// reproducible from code alone.

#include <cstdlib>

namespace tham {

/// Reads an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable. Negative values are clamped to
/// `fallback` (no knob in the system means anything for negatives).
inline int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return fallback;
  return static_cast<int>(v);
}

/// Host worker threads the discrete-event engine may use (THAM_SIM_THREADS).
/// 0 or 1 (the default) selects the sequential executor; values above 1
/// enable the conservative-lookahead parallel executor.
inline int env_sim_threads() { return env_int("THAM_SIM_THREADS", 1); }

}  // namespace tham
