#pragma once
// Environment-variable configuration knobs. Kept deliberately tiny:
// besides the machine-profile name (THAM_MACHINE, read in
// common/machine.hpp) the simulator has exactly three runtime knobs —
// host worker threads (THAM_SIM_THREADS), the node→shard assignment
// policy (THAM_SIM_SHARD_POLICY: "block" | "roundrobin"), and the epoch-
// horizon policy (THAM_SIM_LOOKAHEAD: "link" | "global"); both policy
// strings are parsed in sim/engine.cpp. Everything else is explicit
// CostModel / Config state so runs stay reproducible from code alone.

#include <cstdlib>

namespace tham {

/// Reads a string environment variable, returning `fallback` when the
/// variable is unset or empty.
inline const char* env_str(const char* name, const char* fallback) {
  const char* s = std::getenv(name);
  return (s != nullptr && *s != '\0') ? s : fallback;
}

/// Reads an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable. Negative values are clamped to
/// `fallback` (no knob in the system means anything for negatives).
inline int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return fallback;
  return static_cast<int>(v);
}

/// Host worker threads the discrete-event engine may use (THAM_SIM_THREADS).
/// 0 or 1 (the default) selects the sequential executor; values above 1
/// enable the conservative-lookahead parallel executor.
inline int env_sim_threads() { return env_int("THAM_SIM_THREADS", 1); }

}  // namespace tham
