#pragma once
// Core scalar types shared by every layer of the simulated multicomputer.

#include <cstdint>

namespace tham {

/// Virtual simulation time in nanoseconds. All costs in the system are
/// expressed in virtual time; nothing in the simulation reads the wall clock.
using SimTime = std::int64_t;

/// Identifies one node (one address space) of the simulated multicomputer.
using NodeId = std::int32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = -1;

/// Convert microseconds (the unit the paper reports) to SimTime.
constexpr SimTime usec(double us) { return static_cast<SimTime>(us * 1000.0); }

/// Convert milliseconds to SimTime.
constexpr SimTime msec(double ms) { return usec(ms * 1000.0); }

/// Convert seconds to SimTime.
constexpr SimTime sec(double s) { return usec(s * 1e6); }

/// Convert SimTime back to microseconds for reporting.
constexpr double to_usec(SimTime t) { return static_cast<double>(t) / 1000.0; }

/// Convert SimTime back to seconds for reporting.
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / 1e9; }

}  // namespace tham
