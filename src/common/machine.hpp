#pragma once
// Named machine profiles: the registry behind THAM_MACHINE and
// Engine::set_machine().
//
// The SP2 calibration in cost_model.hpp is one *profile* of the simulated
// machine, not the machine itself: the transport layer and the runtimes
// charge named costs, and a profile binds those names to numbers. Selecting
// a profile swaps the whole cost structure at engine construction without
// touching any layer — which is what lets the same AM/MPL/Nexus stack
// answer "what would these runtimes cost on a different interconnect?"
//
// Profiles:
//   * "sp2"            — the paper's IBM RS/6000 SP calibration (default).
//   * "sp2-interrupt"  — the SP with interrupt-driven message reception
//                        instead of polling (the D3 ablation as a machine:
//                        every delivery pays the kernel->user upcall).
//   * "nexus"          — CC++ v0.4 / Nexus v3.0 over TCP on the SP switch
//                        (the paper's Section 6 comparison machine).
//   * "modern-cluster" — a synthetic LogGP profile of a commodity cluster
//                        with user-level NIC access: sub-microsecond
//                        overheads, ~1.5 us wire latency, ~10 GB/s links,
//                        cheap threads. Not calibrated against the paper;
//                        exists so experiments can ask how the AM-vs-MPMD
//                        gap shifts when the network is no longer the
//                        bottleneck.
//   * "lossy-cluster"  — modern-cluster whose wire misbehaves: the profile
//                        carries fault-injection defaults (loss, dups,
//                        delay spikes, corruption) that
//                        fault::Plan::from_machine turns into a plan for
//                        the reliable-transport experiments.
//
// Selection: THAM_MACHINE=<name> picks the default profile every Engine is
// born with; Engine::set_machine(name) overrides per engine before run().
// Unknown names abort with the list of known profiles — a typo must not
// silently measure the SP2.

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/cost_model.hpp"

namespace tham {

/// The SP with interrupt-driven reception: reuses the D3 ablation shape —
/// polling is disabled and every message delivery pays the software
/// interrupt on top of the normal dispatch cost.
inline CostModel sp2_interrupt_cost_model() {
  CostModel m;
  m.machine = "sp2-interrupt";
  m.am_recv_overhead += m.software_interrupt;
  m.cc_polling = false;
  return m;
}

/// A synthetic mid-2010s commodity cluster with user-level network access
/// (LogGP: o ~ 0.5 us, L ~ 1.5 us, G ~ 0.1 ns/B). Software costs shrink
/// roughly with a 25x faster CPU; kernel TCP stays two orders of magnitude
/// above user-level injection, just as on the SP. The wire latency keeps
/// the parallel engine's lookahead positive.
inline CostModel modern_cluster_cost_model() {
  CostModel m;
  m.machine = "modern-cluster";
  // Interconnect / Active Messages: user-level NIC injection.
  m.am_send_overhead = usec(0.4);
  m.am_wire_latency = usec(1.5);
  m.am_recv_overhead = usec(0.5);
  m.am_bulk_startup_send = usec(0.8);
  m.am_bulk_startup_recv = usec(0.8);
  m.am_per_byte = usec(0.0001);  // ~10 GB/s
  m.am_poll_empty = usec(0.05);
  m.am_poll_found = usec(0.03);
  m.software_interrupt = usec(4.0);
  // Two-sided messaging: MPI-class matching on the same link.
  m.mpl_send_overhead = usec(1.0);
  m.mpl_recv_overhead = usec(1.5);
  m.mpl_per_byte = usec(0.0002);
  // Threads: lightweight user-level package on a fast core.
  m.thread_create = usec(1.0);
  m.context_switch = usec(0.8);
  m.sync_op = usec(0.05);
  // Memory.
  m.memcpy_per_byte = usec(0.0003);
  m.mem_word_touch = usec(0.01);
  // Split-C runtime software path, scaled with CPU speed.
  m.sc_issue = usec(0.05);
  m.sc_handler = usec(0.03);
  m.sc_complete = usec(0.04);
  m.sc_local_access = usec(0.005);
  m.sc_barrier_fan = usec(0.06);
  m.coll_step = usec(0.04);
  // CC++ runtime software path.
  m.cc_stub_lookup = usec(0.12);
  m.cc_stub_install = usec(0.16);
  m.cc_dispatch = usec(0.08);
  m.cc_reply_handling = usec(0.06);
  m.cc_marshal_fixed = usec(0.02);
  m.cc_local_gp = usec(0.11);
  m.cc_buffer_alloc = usec(0.14);
  m.cc_sync_var = usec(0.03);
  // Kernel TCP path (still present for the Nexus configuration).
  m.nx_tcp_send = usec(5.0);
  m.nx_tcp_recv = usec(6.0);
  m.nx_tcp_latency = usec(15.0);
  m.nx_per_byte = usec(0.0008);
  m.nx_interrupt = usec(4.0);
  m.nx_buffer_alloc = usec(0.3);
  m.nx_name_resolve = usec(0.25);
  m.nx_thread_create = usec(12.0);
  m.nx_context_switch = usec(2.0);
  m.nx_sync_op = usec(0.1);
  // Application compute: ~1 GFLOP/s scalar.
  m.flop = 1;
  return m;
}

/// The modern cluster with a misbehaving interconnect: same costs, but the
/// machine description carries nonzero fault defaults (2% loss, 0.5%
/// duplication, 1% delay spikes of 50 us, 0.2% payload corruption) that
/// fault::Plan::from_machine turns into an injection plan. Built for the
/// reliable-transport experiments: running the apps here over
/// transport::Reliable shows what retransmission machinery costs when the
/// wire actually drops things.
inline CostModel lossy_cluster_cost_model() {
  CostModel m = modern_cluster_cost_model();
  m.machine = "lossy-cluster";
  m.rel_frame_overhead = usec(0.1);  // scaled with the faster CPU
  m.rel_ack_overhead = usec(0.06);
  m.fault_loss = 0.02;
  m.fault_dup = 0.005;
  m.fault_delay = 0.01;
  m.fault_corrupt = 0.002;
  m.fault_delay_spike = usec(50.0);
  return m;
}

/// One registry entry: a name, a one-line summary (printed in diagnostics
/// and docs), and a factory for the profile's CostModel.
struct MachineProfile {
  const char* name;
  const char* summary;
  CostModel (*make)();
};

inline const std::vector<MachineProfile>& machine_profiles() {
  static const std::vector<MachineProfile> profiles = {
      {"sp2", "IBM RS/6000 SP, AIX 3.2.5 — the paper's calibration",
       [] { return sp2_cost_model(); }},
      {"sp2-interrupt",
       "SP with interrupt-driven reception instead of polling (D3 as a "
       "machine)",
       [] { return sp2_interrupt_cost_model(); }},
      {"nexus",
       "CC++ v0.4 / Nexus v3.0: TCP over the SP switch, interrupts, "
       "heavy threads",
       [] { return nexus_cost_model(); }},
      {"modern-cluster",
       "synthetic LogGP commodity cluster: sub-us overheads, 1.5 us "
       "latency, 10 GB/s",
       [] { return modern_cluster_cost_model(); }},
      {"lossy-cluster",
       "modern-cluster with a misbehaving wire: 2% loss, dups, delay "
       "spikes, corruption",
       [] { return lossy_cluster_cost_model(); }},
  };
  return profiles;
}

/// Looks a profile up by name; nullptr when unknown.
inline const MachineProfile* find_machine(std::string_view name) {
  for (const MachineProfile& p : machine_profiles()) {
    if (name == p.name) return &p;
  }
  return nullptr;
}

/// Builds the named profile's cost model; aborts (listing the known names)
/// on an unknown name so a typo cannot silently measure the SP2.
inline CostModel make_machine(std::string_view name) {
  const MachineProfile* p = find_machine(name);
  if (p == nullptr) {
    std::string known;
    for (const MachineProfile& k : machine_profiles()) {
      known += known.empty() ? "" : ", ";
      known += k.name;
    }
    THAM_REQUIRE(false, "unknown machine profile \"" + std::string(name) +
                            "\" (known: " + known + ")");
  }
  return p->make();
}

/// The cost model every Engine is born with: the profile named by
/// THAM_MACHINE, or "sp2" when unset. Re-read on every call so tests can
/// vary the variable between engine constructions.
inline CostModel default_cost_model() {
  const char* name = std::getenv("THAM_MACHINE");
  if (name == nullptr || *name == '\0') return sp2_cost_model();
  return make_machine(name);
}

}  // namespace tham
