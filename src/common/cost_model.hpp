#pragma once
// The cost model of the simulated IBM RS/6000 SP (SP2) multicomputer.
//
// Every virtual-time charge in the system comes from one of these parameters,
// so the whole calibration is in one place. Defaults are calibrated against
// the numbers the paper reports for the SP2 under AIX 3.2.5:
//
//   * Split-C null round-trip over Active Messages ........ 53 us  (Table 4)
//   * CC++ null RMI over AM ("0-Word Simple") ............. 67 us  (Table 4)
//   * AM bulk-transfer round-trip (<= 40 words) ........... ~70 us (Table 4)
//   * IBM MPL round-trip .................................. 88 us  (Table 4)
//   * thread context switch 6 us, create 5 us, lock/unlock/
//     signal 0.4 us (back-solved from the Table 4 "Threads"
//     column: Time = 6*Yield + 5*Create + 0.4*Sync)
//   * method stub-cache lookup ~3 us (Section 6)
//
// Benchmarks that ablate a design decision (stub caching, persistent buffers,
// polling vs interrupts, thread weight) copy this struct and perturb fields.

#include "common/types.hpp"

namespace tham {

struct CostModel {
  /// Name of the machine profile this model was built from ("sp2",
  /// "nexus", "modern-cluster", ...; see common/machine.hpp). Purely
  /// descriptive: reported in bench JSON headers and diagnostics, never
  /// read for charges. Hand-perturbed copies keep the base name.
  const char* machine = "sp2";

  // --- Interconnect / Active Messages (src/net, src/transport) -----------
  // One-way short message: o_send + wire_latency + o_recv = 26.5 us,
  // round-trip 53 us, matching the Split-C "0-Word Atomic" AM column.
  SimTime am_send_overhead = usec(3.0);   ///< sender CPU per short message
  SimTime am_wire_latency = usec(20.0);   ///< switch + adapter one-way latency
  SimTime am_recv_overhead = usec(3.5);   ///< receiver dispatch per short msg

  // Bulk transfers (xfer/get): a flat startup on top of the short-message
  // path plus a small pipelined per-byte critical-path cost. Calibrated so
  // an 8-byte and a 320-byte bulk round-trip both land near the paper's
  // 70 us AM column (the startup dominates at these sizes).
  SimTime am_bulk_startup_send = usec(6.0);
  SimTime am_bulk_startup_recv = usec(6.0);
  SimTime am_per_byte = usec(0.011);      ///< wire, critical path, per byte

  /// Cost of one poll that finds the inbox empty.
  SimTime am_poll_empty = usec(0.3);
  /// Fixed dispatch cost when a poll finds and delivers one message
  /// (in addition to am_recv_overhead which models the handler dispatch).
  SimTime am_poll_found = usec(0.2);

  /// Software-interrupt delivery cost (kernel -> user upcall). On the SP
  /// this was high enough that both runtimes use polling instead; the
  /// interrupt-reception ablation (D3) uses this value.
  SimTime software_interrupt = usec(95.0);

  // --- MPL-like two-sided messaging (src/msg) ----------------------------
  // Calibrated to the 88 us round-trip the paper quotes for IBM MPL:
  // one-way = send + wire + recv/match = 44 us.
  SimTime mpl_send_overhead = usec(9.0);
  SimTime mpl_recv_overhead = usec(15.0);  ///< includes tag matching
  SimTime mpl_per_byte = usec(0.028);      ///< ~35 MB/s switch bandwidth

  // --- Threads package (src/threads) --------------------------------------
  // Back-solved from Table 4 (see header comment).
  SimTime thread_create = usec(5.0);
  SimTime context_switch = usec(6.0);
  SimTime sync_op = usec(0.4);  ///< lock, unlock, signal, or condvar wait op

  // --- Memory ---------------------------------------------------------------
  /// Per-byte cost of a runtime-level memcpy (marshalling copies, staging
  /// copies). Back-solved from the BulkWrite 40-word row: Runtime = 63 us
  /// for 320 bytes marshalled + unmarshalled.
  SimTime memcpy_per_byte = usec(0.13);
  /// Touching one word (load or store executed by an AM handler on behalf
  /// of a remote node).
  SimTime mem_word_touch = usec(0.25);

  // --- Split-C runtime (src/splitc) ---------------------------------------
  SimTime sc_issue = usec(1.2);     ///< issuing any global access
  SimTime sc_handler = usec(0.8);   ///< remote-side handler work
  SimTime sc_complete = usec(1.0);  ///< reply-side completion bookkeeping
  SimTime sc_local_access = usec(0.1);  ///< global ptr to local data
  SimTime sc_barrier_fan = usec(1.5);   ///< per-message barrier bookkeeping

  // --- CC++ / ThAM runtime (src/ccxx) --------------------------------------
  SimTime cc_stub_lookup = usec(3.0);   ///< warm stub-cache hash lookup
  SimTime cc_stub_install = usec(4.0);  ///< resolving + installing an entry
  SimTime cc_dispatch = usec(2.0);      ///< invoking a stub at the receiver
  SimTime cc_reply_handling = usec(1.5);///< completing an RMI at the caller
  SimTime cc_marshal_fixed = usec(0.4); ///< per-argument marshalling call
  SimTime cc_local_gp = usec(2.8);      ///< local access through a global ptr
  SimTime cc_buffer_alloc = usec(3.5);  ///< dynamic (non-persistent) buffer
  SimTime cc_sync_var = usec(0.6);      ///< write-once sync variable op

  // --- Collectives layer (src/coll) ----------------------------------------
  /// Per-message vertex bookkeeping in a collective: depositing a
  /// dissemination-round arrival, filling a child slot of a reduce vertex,
  /// forwarding a broadcast. Paid once per collective handler dispatch and
  /// once at operation entry; the wire and AM overheads ride the normal
  /// Charge/WireCost path on top.
  SimTime coll_step = usec(1.0);

  // --- Nexus-like portable runtime (src/nexus) ----------------------------
  // Models CC++ v0.4 over Nexus v3.0 with TCP/IP over the SP switch
  // (the configuration the paper measured; Section 6, footnote 2).
  SimTime nx_tcp_send = usec(130.0);    ///< kernel TCP send path per message
  SimTime nx_tcp_recv = usec(150.0);    ///< kernel TCP receive path
  SimTime nx_tcp_latency = usec(60.0);  ///< protocol + switch latency
  SimTime nx_per_byte = usec(0.09);     ///< ~11 MB/s TCP bandwidth
  SimTime nx_interrupt = usec(110.0);   ///< interrupt-driven reception
  SimTime nx_buffer_alloc = usec(22.0); ///< dynamic buffer per message
  SimTime nx_name_resolve = usec(12.0); ///< full-name handler resolution
  SimTime nx_thread_create = usec(28.0);///< heavyweight preemptive threads
  SimTime nx_context_switch = usec(24.0);
  SimTime nx_sync_op = usec(3.0);
  SimTime nx_envelope_bytes = 64;       ///< protocol header per message

  // --- Reliable transport service (src/transport reliable.hpp) ------------
  /// Per-frame sequencing/bookkeeping CPU (stamping a sequence number,
  /// tracking the unacked window) paid on each transmission and each
  /// in-order reception of a reliable frame.
  SimTime rel_frame_overhead = usec(0.5);
  /// Processing one cumulative acknowledgement at the sender.
  SimTime rel_ack_overhead = usec(0.3);

  // --- Wire fault defaults (src/fault) -------------------------------------
  // Per-message probabilities of the machine's interconnect misbehaving;
  // all zero (a perfect wire, the paper's SP2 assumption) except on
  // profiles built to study failure, e.g. "lossy-cluster". Read only by
  // fault::Plan::from_machine — the injector, not the cost model, applies
  // them.
  double fault_loss = 0;
  double fault_dup = 0;
  double fault_delay = 0;
  double fault_corrupt = 0;
  /// Extra wire time a delay-spiked message spends in flight.
  SimTime fault_delay_spike = 0;

  // --- Application compute -------------------------------------------------
  /// One double-precision floating-point operation (P2SC-era compiled code,
  /// ~40 MFLOP/s sustained).
  SimTime flop = 25;  // 25 ns

  // --- Feature switches for ablations --------------------------------------
  bool cc_stub_caching = true;       ///< D1: method stub caching
  bool cc_persistent_buffers = true; ///< D2: persistent S-/R-buffers
  bool cc_polling = true;            ///< D3: polling (true) vs interrupts

  /// Conservative-lookahead horizon of the parallel engine: the minimum
  /// wire time any message can spend in flight, i.e. the LogGP latency L.
  /// Every wire class's zero-byte wire time (transport::wire_cost) floors
  /// at am_wire_latency or nx_tcp_latency, so no message issued at virtual
  /// time t can be delivered before t + lookahead() — which is exactly
  /// what lets shards advance independently inside one lookahead window.
  /// This is the *global* floor; a program that declares its topology
  /// (transport::Channel::declare_link) gets per-shard-pair floors
  /// instead, which widen the horizon of shards reachable only over slow
  /// wire classes — and those floors are enforced per send, so they stay
  /// sound even if a future wire class undercuts the two latencies below.
  /// A model perturbed to zero latency has no safe horizon; Engine::run()
  /// then falls back to the sequential executor.
  SimTime lookahead() const {
    return am_wire_latency < nx_tcp_latency ? am_wire_latency
                                            : nx_tcp_latency;
  }
};

/// The default SP2-calibrated model.
inline const CostModel& sp2_cost_model() {
  static const CostModel m{};
  return m;
}

/// The CC++ v0.4 / Nexus v3.0 configuration the paper compares against
/// (Section 6, "Comparison with CC++/Nexus"): TCP/IP over the SP switch,
/// interrupt-driven reception, a heavyweight preemptive threads package,
/// per-message dynamic buffers, and no stub caching or persistent buffers.
/// Running the same CC++ runtime under this model reproduces the 5x-35x
/// application-level gaps.
inline CostModel nexus_cost_model() {
  CostModel m;  // start from the SP2 calibration
  m.machine = "nexus";
  // Transport: every message rides the kernel TCP path instead of
  // user-level AM.
  m.am_send_overhead = m.nx_tcp_send;
  m.am_recv_overhead = m.nx_tcp_recv + m.nx_interrupt;
  m.am_wire_latency = m.nx_tcp_latency;
  m.am_per_byte = m.nx_per_byte;
  m.am_bulk_startup_send = m.nx_buffer_alloc;
  m.am_bulk_startup_recv = m.nx_buffer_alloc;
  // Threads: preemptive pthreads-class package.
  m.thread_create = m.nx_thread_create;
  m.context_switch = m.nx_context_switch;
  m.sync_op = m.nx_sync_op;
  // Runtime: dynamic buffers per message, full-name resolution per call.
  m.cc_buffer_alloc = m.nx_buffer_alloc;
  m.cc_stub_lookup = m.nx_name_resolve;
  m.cc_stub_install = m.nx_name_resolve;
  m.cc_stub_caching = false;
  m.cc_persistent_buffers = false;
  m.cc_local_gp = m.cc_local_gp + m.nx_sync_op;  // heavier locking
  return m;
}

}  // namespace tham
