#include "common/alloc_count.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Relaxed is enough: the counters are totals, never used to order memory.
std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

void* counted_alloc(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

namespace tham {

AllocCounts alloc_counts() noexcept {
  return AllocCounts{g_news.load(std::memory_order_relaxed),
                     g_deletes.load(std::memory_order_relaxed)};
}

bool alloc_counting_linked() noexcept { return true; }

}  // namespace tham

// Replaceable global allocation functions ([new.delete.single] / [.array]).
// Counting every flavor keeps the counters honest for over-aligned types
// (the fiber StackPool allocates 64-byte-aligned stacks) and for nothrow
// callers; the nothrow forms must not let bad_alloc escape (noexcept), so
// they translate failure back to nullptr.
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t n, std::align_val_t a,
                   const std::nothrow_t&) noexcept {
  try {
    return counted_aligned_alloc(n, static_cast<std::size_t>(a));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, std::align_val_t a,
                     const std::nothrow_t&) noexcept {
  try {
    return counted_aligned_alloc(n, static_cast<std::size_t>(a));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(p);
}
