#include "common/alloc_count.hpp"

#include <cstdlib>
#include <new>

namespace {
std::uint64_t g_news = 0;
std::uint64_t g_deletes = 0;

void* counted_alloc(std::size_t n) {
  ++g_news;
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  ++g_news;
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) {
  ++g_deletes;
  std::free(p);
}
}  // namespace

namespace tham {

AllocCounts alloc_counts() { return AllocCounts{g_news, g_deletes}; }

bool alloc_counting_linked() { return true; }

}  // namespace tham

// Replaceable global allocation functions ([new.delete.single] / [.array]).
// Counting every flavor keeps the counters honest for over-aligned types
// (the fiber StackPool allocates 64-byte-aligned stacks).
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
