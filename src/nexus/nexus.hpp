#pragma once
// A Nexus-style portable communication runtime (Foster, Kesselman, Tuecke
// [10]) — the substrate under the original CC++ v0.4 implementation the
// paper compares against. The central abstractions:
//
//   * Context     — an address space holding registered handlers;
//   * Endpoint    — a communication target inside a context, with a table
//                   of named handlers;
//   * Startpoint  — a remote reference to an endpoint; copyable, sendable;
//   * RSR         — remote service request: a one-way message carrying a
//                   handler *name* and a byte buffer, dispatched at the
//                   endpoint by name lookup (no caching) on a freshly
//                   allocated buffer, delivered through the TCP protocol
//                   module with interrupt-driven reception.
//
// The deliberate contrasts with the lean ThAM runtime (Section 4) are the
// point: full names on every message, a dynamic buffer per message, a
// protocol envelope, kernel TCP costs, and an interrupt per arrival.
//
// (The "CC++ on Nexus" application measurements use nexus_cost_model() with
// the regular CC++ runtime — same RMI semantics, this cost structure; see
// DESIGN.md.)
//
// A thin protocol backend over transport::Channel/Endpoint: this layer
// contributes the named-handler envelope and the Nexus/TCP charges; the
// service-daemon drain loop and all CostModel reads live in src/transport.

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"
#include "transport/transport.hpp"

namespace tham::nexus {

class NexusLayer;

/// A remote reference to an endpoint. POD-like so it can be marshalled
/// into RSR buffers and handed between contexts.
struct Startpoint {
  NodeId node = kInvalidNode;
  std::uint32_t endpoint = 0;
  bool valid() const { return node != kInvalidNode; }
};

/// Handler invoked by an RSR: receives the sending node and the buffer.
using RsrHandler =
    std::function<void(sim::Node& self, NodeId from,
                       const std::vector<std::byte>& buf)>;

/// One Nexus context per node is implied; endpoints are registered against
/// the layer and addressed by (node, endpoint id).
class NexusLayer {
 public:
  explicit NexusLayer(net::Network& net);

  NexusLayer(const NexusLayer&) = delete;
  NexusLayer& operator=(const NexusLayer&) = delete;

  /// Creates an endpoint on `node` (host-side setup, like attaching a
  /// processor object at startup). Returns a startpoint for it.
  Startpoint create_endpoint(NodeId node);

  /// Registers a named handler on the endpoint `sp` refers to. Handler
  /// names are resolved at the *receiver* on every RSR (no stub caching).
  void register_handler(const Startpoint& sp, std::string name,
                        RsrHandler fn);

  /// Issues a remote service request: one-way, buffer + handler name.
  /// Charges the Nexus runtime costs (buffer allocation, envelope, TCP
  /// send path) at the sender.
  void rsr(const Startpoint& sp, const std::string& handler,
           std::vector<std::byte> buf);

  /// Convenience: RSR with a trivially-copyable payload.
  template <typename T>
  void rsr(const Startpoint& sp, const std::string& handler, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(sizeof(T));
    std::memcpy(buf.data(), &v, sizeof(T));
    rsr(sp, handler, std::move(buf));
  }

  /// Interrupt-driven reception is modelled by the delivery closure
  /// charging the interrupt cost; a per-node service loop still drains the
  /// inbox (the "kernel upcall thread").
  void start_service_threads();

  std::uint64_t rsr_count() const { return rsr_count_; }

  /// One registered RSR handler, for the static analyzer's handler-table
  /// harvest: the endpoint's owning node, its id, and the handler name the
  /// receiver resolves on every RSR.
  struct HandlerInfo {
    NodeId node;
    std::uint32_t endpoint;
    std::string name;
  };
  /// Snapshot of every registered handler, ordered by (endpoint, name).
  std::vector<HandlerInfo> handlers() const;

  /// This layer's transport channel (per-layer send accounting).
  transport::Channel& channel() { return chan_; }

 private:
  struct Endpoint {
    NodeId node = kInvalidNode;
    std::unordered_map<std::string, RsrHandler> handlers;
  };

  transport::Channel chan_;
  std::vector<Endpoint> endpoints_;
  std::uint64_t rsr_count_ = 0;
};

}  // namespace tham::nexus
