#include "nexus/nexus.hpp"

#include <cstring>

#include "common/check.hpp"

namespace tham::nexus {

using sim::Component;
using sim::ComponentScope;

NexusLayer::NexusLayer(net::Network& net) : net_(net) {}

Startpoint NexusLayer::create_endpoint(NodeId node) {
  THAM_CHECK(node >= 0 && node < net_.engine().size());
  Endpoint ep;
  ep.node = node;
  endpoints_.push_back(std::move(ep));
  return Startpoint{node, static_cast<std::uint32_t>(endpoints_.size() - 1)};
}

void NexusLayer::register_handler(const Startpoint& sp, std::string name,
                                  RsrHandler fn) {
  THAM_CHECK(sp.valid());
  endpoints_.at(sp.endpoint).handlers.emplace(std::move(name), std::move(fn));
}

void NexusLayer::rsr(const Startpoint& sp, const std::string& handler,
                     std::vector<std::byte> buf) {
  THAM_CHECK(sp.valid());
  sim::Node& src = sim::this_node();
  const CostModel& cm = src.cost();
  ++rsr_count_;

  // Local RSR: still pays the buffer + dispatch path (Nexus did not
  // short-circuit as aggressively as ThAM).
  if (sp.node == src.id()) {
    ComponentScope scope(src, Component::Runtime);
    src.advance(cm.nx_buffer_alloc + cm.nx_name_resolve);
    const Endpoint& ep = endpoints_.at(sp.endpoint);
    auto it = ep.handlers.find(handler);
    THAM_REQUIRE(it != ep.handlers.end(), "RSR to unknown handler " + handler);
    it->second(src, src.id(), buf);
    return;
  }

  // The wire message carries the full handler name plus the buffer.
  {
    ComponentScope scope(src, Component::Runtime);
    src.advance(cm.nx_buffer_alloc);  // outgoing message buffer
  }
  ComponentScope scope(src, Component::Net);
  std::uint32_t epid = sp.endpoint;
  NodeId from = src.id();
  std::size_t wire_bytes = buf.size() + handler.size();
  net_.send(src, sp.node, net::Wire::Tcp, wire_bytes,
            [this, epid, handler, from,
             buf = std::move(buf)](sim::Node& self) {
              const CostModel& c = self.cost();
              // Interrupt-driven reception: kernel upcall + receive path.
              {
                ComponentScope s2(self, Component::Net);
                self.advance(c.nx_interrupt + c.nx_tcp_recv);
              }
              ComponentScope s3(self, Component::Runtime);
              // Dynamic buffer for the incoming message, then handler
              // resolution by full name.
              self.advance(c.nx_buffer_alloc + c.nx_name_resolve);
              const Endpoint& ep = endpoints_.at(epid);
              auto it = ep.handlers.find(handler);
              THAM_REQUIRE(it != ep.handlers.end(),
                           "RSR to unknown handler " + handler);
              it->second(self, from, buf);
            });
}

void NexusLayer::start_service_threads() {
  sim::Engine& e = net_.engine();
  for (NodeId i = 0; i < e.size(); ++i) {
    e.node(i).spawn(
        [] {
          sim::Node& n = sim::this_node();
          sim::ComponentScope scope(n, Component::Net);
          while (n.wait_for_inbox(/*poll_only=*/true)) {
            while (n.poll_one()) {
            }
          }
        },
        "nexus-service", /*daemon=*/true);
  }
}

}  // namespace tham::nexus
