#include "nexus/nexus.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace tham::nexus {

using sim::Component;
using sim::ComponentScope;
using transport::Charge;

NexusLayer::NexusLayer(net::Network& net) : chan_(net) {}

Startpoint NexusLayer::create_endpoint(NodeId node) {
  THAM_CHECK(node >= 0 && node < chan_.engine().size());
  Endpoint ep;
  ep.node = node;
  endpoints_.push_back(std::move(ep));
  return Startpoint{node, static_cast<std::uint32_t>(endpoints_.size() - 1)};
}

void NexusLayer::register_handler(const Startpoint& sp, std::string name,
                                  RsrHandler fn) {
  THAM_CHECK(sp.valid());
  endpoints_.at(sp.endpoint).handlers.emplace(std::move(name), std::move(fn));
}

void NexusLayer::rsr(const Startpoint& sp, const std::string& handler,
                     std::vector<std::byte> buf) {
  THAM_CHECK(sp.valid());
  sim::Node& src = sim::this_node();
  ++rsr_count_;

  // Local RSR: still pays the buffer + dispatch path (Nexus did not
  // short-circuit as aggressively as ThAM).
  if (sp.node == src.id()) {
    ComponentScope scope(src, Component::Runtime);
    transport::Endpoint(src).charge(Charge::TcpDispatch);
    const Endpoint& ep = endpoints_.at(sp.endpoint);
    auto it = ep.handlers.find(handler);
    THAM_REQUIRE(it != ep.handlers.end(), "RSR to unknown handler " + handler);
    it->second(src, src.id(), buf);
    return;
  }

  // The wire message carries the full handler name plus the buffer.
  {
    ComponentScope scope(src, Component::Runtime);
    transport::Endpoint(src).charge(Charge::TcpTxBuffer);  // outgoing buffer
  }
  ComponentScope scope(src, Component::Net);
  std::uint32_t epid = sp.endpoint;
  NodeId from = src.id();
  std::size_t wire_bytes = buf.size() + handler.size();
  chan_.send(src, sp.node, net::Wire::Tcp, wire_bytes,
             [this, epid, handler, from,
              buf = std::move(buf)](sim::Node& self) {
               transport::Endpoint rx(self);
               // Interrupt-driven reception: kernel upcall + receive path.
               {
                 ComponentScope s2(self, Component::Net);
                 rx.charge(Charge::TcpRecv);
               }
               ComponentScope s3(self, Component::Runtime);
               // Dynamic buffer for the incoming message, then handler
               // resolution by full name.
               rx.charge(Charge::TcpDispatch);
               const Endpoint& ep = endpoints_.at(epid);
               auto it = ep.handlers.find(handler);
               THAM_REQUIRE(it != ep.handlers.end(),
                            "RSR to unknown handler " + handler);
               it->second(self, from, buf);
             });
}

void NexusLayer::start_service_threads() {
  transport::start_service_daemons(chan_.engine(), "nexus-service");
}

std::vector<NexusLayer::HandlerInfo> NexusLayer::handlers() const {
  std::vector<HandlerInfo> out;
  for (std::size_t ep = 0; ep < endpoints_.size(); ++ep) {
    const Endpoint& e = endpoints_[ep];
    for (const auto& [name, fn] : e.handlers) {
      out.push_back(HandlerInfo{e.node, static_cast<std::uint32_t>(ep), name});
    }
  }
  // The per-endpoint map iterates in hash order; sort so the harvest is
  // deterministic run to run.
  std::sort(out.begin(), out.end(), [](const HandlerInfo& a,
                                       const HandlerInfo& b) {
    if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
    return a.name < b.name;
  });
  return out;
}

}  // namespace tham::nexus
