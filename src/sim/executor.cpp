#include "sim/executor.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "sim/fiber.hpp"

namespace tham::sim {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

void SequentialExecutor::run() {
  auto& shards = eng_.shards_;
  for (;;) {
    Engine::Shard* best = nullptr;
    for (auto& s : shards) {
      if (s->queue.empty()) continue;
      if (best == nullptr ||
          Engine::EvBefore{}(s->queue.top(), best->queue.top())) {
        best = s.get();
      }
    }
    if (best == nullptr) break;
    Engine::Ev ev = best->queue.top();
    best->queue.pop();
    eng_.dispatch(ev);
  }
}

ParallelExecutor::ParallelExecutor(Engine& eng, int shards)
    : eng_(eng), count_(shards) {
  THAM_CHECK(shards > 1);
  auto n = static_cast<std::size_t>(shards);
  // Shard-pair lookahead edges. Per-link horizons are sound only because
  // Engine::check_wire_floor enforces every send against the same floors;
  // pairs with no declared link get kNever = "no bound" (a send there
  // would abort).
  if (eng.lookahead_policy() == Engine::LookaheadPolicy::PerLink &&
      !eng.wire_floor_.empty()) {
    la_ = eng.wire_floor_;
  } else {
    SimTime g = eng.cost().lookahead();
    THAM_CHECK_MSG(g > 0, "parallel executor needs positive lookahead");
    la_.assign(n * n, g);
  }
  // Close the edges into the *reaction distance* matrix D: D[o][s] is the
  // minimum accumulated wire time on any inter-shard message chain
  // o -> ... -> s, and D[s][s] the shortest proper cycle. The horizon of a
  // shard must respect chains, not just direct links: a message s sends
  // this epoch can wake a far-ahead shard o next epoch, and o's *response*
  // lands back at s only eff(s) + D[s][o] + D[o][s] in — which is far
  // earlier than eff(o) + L[o][s] when o's own head is large. Intra-shard
  // hops never appear as edges (delivery inside a shard is direct and
  // ordered by the shard drain, and dropping them only widens D, which a
  // chain through a real intra-shard hop still satisfies).
  for (std::size_t i = 0; i < n; ++i) la_[i * n + i] = kNever;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      SimTime ik = la_[i * n + k];
      if (ik == kNever) continue;
      for (std::size_t j = 0; j < n; ++j) {
        SimTime kj = la_[k * n + j];
        if (kj == kNever || ik > kNever - kj) continue;
        if (ik + kj < la_[i * n + j]) la_[i * n + j] = ik + kj;
      }
    }
  }
  ctl_ = std::vector<WorkerCtl>(n);
  stats_ = std::vector<WorkerStats>(n);
  to_release_.reserve(n);
  heads_.assign(n, kNever);
  inbound_.assign(n, kNever);
  scratch_.resize(n);
}

void ParallelExecutor::run() {
  auto t0 = std::chrono::steady_clock::now();
  eng_.in_parallel_window_.store(true, std::memory_order_release);
  plan_epoch();  // first window, computed before any worker starts
  if (!done_.load(std::memory_order_relaxed)) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(count_ - 1));
    for (int slot = 1; slot < count_; ++slot) {
      threads.emplace_back([this, slot] { worker(slot); });
    }
    worker(0);  // the calling thread is worker 0
    for (auto& t : threads) t.join();
  }
  eng_.in_parallel_window_.store(false, std::memory_order_release);

  Engine::EpochProfile p;
  p.epochs = epochs_;
  p.plan_ns = plan_ns_;
  for (const WorkerStats& st : stats_) {
    p.shard_epochs += st.epochs;
    p.events += st.live;
    p.stale_events += st.stale;
    p.max_epoch_events = std::max(p.max_epoch_events, st.max_epoch);
    p.merged_msgs += st.merged;
    p.flushes += st.flushes;
    p.drain_ns += st.drain_ns;
    p.merge_ns += st.merge_ns;
    p.barrier_ns += st.barrier_ns;
    p.parked_ns += st.parked_ns;
  }
  p.parked_epochs =
      epochs_ * static_cast<std::uint64_t>(count_) - p.shard_epochs;
  p.wall_ns = elapsed_ns(t0, std::chrono::steady_clock::now());
  eng_.profile_ = p;
}

void ParallelExecutor::worker(int slot) {
  set_worker_slot(slot);
  WorkerStats& st = stats_[static_cast<std::size_t>(slot)];
  for (;;) {
    // Parked until this shard is in some epoch's participant set (or the
    // run is over): the idle-shard fast path — no barrier traffic, no
    // queue scans, just one mailbox wait.
    wait_go(slot, &st.parked_ns);
    if (done_.load(std::memory_order_acquire)) break;
    ++st.epochs;
    drain_window(slot);
    arrive(/*planning=*/false);  // drains done; outboxes sealed
    wait_go(slot, &st.barrier_ns);
    merge_boxes(slot);
    arrive(/*planning=*/true);  // inboxes settled; last arriver plans
  }
  // Leave the slot set: worker 0 is the main thread, and the post-epoch
  // shutdown drain reuses its slot-0 stack free list.
}

void ParallelExecutor::drain_window(int slot) {
  auto t0 = std::chrono::steady_clock::now();
  WorkerStats& st = stats_[static_cast<std::size_t>(slot)];
  Engine::Shard& s = *eng_.shards_[static_cast<std::size_t>(slot)];
  // Ordering: the planner wrote the limit before releasing this worker's
  // mailbox; wait_go's acquire pairs with that release.
  const SimTime limit =
      eng_.shard_limits_[static_cast<std::size_t>(slot)].v.load(
          std::memory_order_relaxed);
  std::uint64_t live = 0;
  while (!s.queue.empty() && s.queue.top().t <= limit) {
    Engine::Ev ev = s.queue.top();
    s.queue.pop();
    if (eng_.dispatch(ev)) {
      ++live;
    } else {
      ++st.stale;
    }
  }
  st.live += live;
  st.max_epoch = std::max(st.max_epoch, live);
  st.drain_ns += elapsed_ns(t0, std::chrono::steady_clock::now());
}

void ParallelExecutor::merge_boxes(int slot) {
  auto t0 = std::chrono::steady_clock::now();
  WorkerStats& st = stats_[static_cast<std::size_t>(slot)];
  auto& scratch = scratch_[static_cast<std::size_t>(slot)];
  scratch.clear();
  for (int src = 0; src < count_; ++src) {
    Engine::Outbox& box = eng_.shards_[static_cast<std::size_t>(src)]
                              ->outbox[static_cast<std::size_t>(slot)];
    if (box.msgs.empty()) continue;
    ++st.flushes;
    st.merged += box.msgs.size();
    for (auto& pm : box.msgs) {
      // Engine::wake inlined for the batch: inbox push without scheduling,
      // armed-time coalescing by hand, heap insertion deferred to one
      // bulk_push below.
      Node& n = eng_.nodes_[static_cast<std::size_t>(pm.dst)];
      SimTime a = pm.m.arrival;
      n.enqueue_message_batched(std::move(pm.m));
      if (a < n.armed_at()) {
        n.set_armed(a);
        scratch.push_back(Engine::Ev{a, pm.dst});
      }
    }
    box.msgs.clear();
    box.min_arrival = kNever;
  }
  if (!scratch.empty()) {
    eng_.shards_[static_cast<std::size_t>(slot)]->queue.bulk_push(
        scratch.begin(), scratch.end());
  }
  st.merge_ns += elapsed_ns(t0, std::chrono::steady_clock::now());
}

void ParallelExecutor::plan_epoch() {
  auto t0 = std::chrono::steady_clock::now();
  auto& shards = eng_.shards_;
  // Effective head per shard: the earliest thing it could dispatch or
  // merge. A queue head may be a stale coalesced entry (time before the
  // node's armed time); that only under-estimates the head, which is
  // always safe. Unmerged inbound outbox arrivals count too: a message
  // already in flight is no longer bounded by its sender's head.
  SimTime start = kNever;
  for (int s = 0; s < count_; ++s) {
    auto sx = static_cast<std::size_t>(s);
    heads_[sx] = shards[sx]->queue.empty() ? kNever : shards[sx]->queue.top().t;
    inbound_[sx] = kNever;
  }
  for (int src = 0; src < count_; ++src) {
    for (int dst = 0; dst < count_; ++dst) {
      const Engine::Outbox& box = shards[static_cast<std::size_t>(src)]
                                      ->outbox[static_cast<std::size_t>(dst)];
      if (!box.msgs.empty() &&
          box.min_arrival < inbound_[static_cast<std::size_t>(dst)]) {
        inbound_[static_cast<std::size_t>(dst)] = box.min_arrival;
      }
    }
  }
  for (int s = 0; s < count_; ++s) {
    auto sx = static_cast<std::size_t>(s);
    SimTime eff = std::min(heads_[sx], inbound_[sx]);
    if (eff < start) start = eff;
  }

  if (start == kNever) {
    done_.store(true, std::memory_order_release);
    for (int s = 0; s < count_; ++s) release(s);
    plan_ns_ += elapsed_ns(t0, std::chrono::steady_clock::now());
    return;
  }

  int parts = 0;
  to_release_.clear();
  for (int s = 0; s < count_; ++s) {
    auto sx = static_cast<std::size_t>(s);
    SimTime lim = kNever;
    for (int o = 0; o < count_; ++o) {
      auto ox = static_cast<std::size_t>(o);
      SimTime eo = std::min(heads_[ox], inbound_[ox]);
      if (eo == kNever) continue;
      // Reaction distance, not the direct link: anything o dispatches from
      // eo on needs at least D[o][s] of accumulated wire time before any
      // consequence of it can reach s — including o == s, where D is the
      // shortest inter-shard cycle (s's own sends can bounce off another
      // shard and come back at eff(s) + cycle).
      SimTime d = la_[ox * static_cast<std::size_t>(count_) + sx];
      if (d == kNever) continue;  // s unreachable from o: no bound
      // Inclusive horizon one tick short of the earliest consequence: a
      // chain leaving o's head arrives at eo + D at the soonest, and the
      // sequential engine delivers an arrival the instant a clock reaches
      // it — so the window must not let a task's clock reach that boundary.
      SimTime bound = eo > kNever - d ? kNever : eo + d - 1;
      if (bound < lim) lim = bound;
    }
    if (inbound_[sx] != kNever && inbound_[sx] - 1 < lim) {
      lim = inbound_[sx] - 1;
    }
    eng_.shard_limits_[sx].v.store(lim, std::memory_order_relaxed);
    bool in = (heads_[sx] != kNever && heads_[sx] <= lim) ||
              inbound_[sx] != kNever;
    if (in) to_release_.push_back(s);
    parts += in ? 1 : 0;
  }
  // The globally minimal shard always qualifies (its bounds all sit at or
  // above its own head), so every epoch makes progress.
  THAM_CHECK(parts > 0);
  expected_.store(parts, std::memory_order_relaxed);
  ++epochs_;

#if defined(THAM_CHECK_ENABLED)
  if (eng_.epoch_observer_) {
    eng_.epoch_observer_(Engine::EpochInfo{epochs_ - 1, start, parts});
  }
#endif

  // Adaptive barrier spin: budget ~ one epoch of spin iterations (an
  // acquire-load spin iteration is a few ns), clamped to stay responsive
  // on oversubscribed hosts and bounded on huge epochs.
  auto now = std::chrono::steady_clock::now();
  if (have_last_plan_) {
    auto ns = static_cast<double>(elapsed_ns(last_plan_, now));
    ewma_epoch_ns_ =
        ewma_epoch_ns_ == 0 ? ns : ns / 8.0 + ewma_epoch_ns_ * 7.0 / 8.0;
    auto budget = static_cast<std::uint32_t>(std::clamp(
        ewma_epoch_ns_ / 4.0, 256.0, 65536.0));
    spin_budget_.store(budget, std::memory_order_relaxed);
  }
  last_plan_ = now;
  have_last_plan_ = true;
  plan_ns_ += elapsed_ns(t0, now);

  for (int s : to_release_) release(s);
}

void ParallelExecutor::arrive(bool planning) {
  // Loaded *before* the increment: once our increment lands, the last
  // arriver may already be planning the next epoch and overwriting
  // expected_. Reading it inside the comparison would leave the load
  // unsequenced relative to our own fetch_add and racing with that store.
  const int expected = expected_.load(std::memory_order_relaxed);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == expected) {
    arrived_.store(0, std::memory_order_relaxed);
    if (planning) {
      plan_epoch();
    } else {
      for (int s : to_release_) release(s);
    }
  }
  // Not-last arrivers (and the last arriver, whose own release is already
  // in its mailbox) fall through to wait_go().
}

void ParallelExecutor::wait_go(int slot, std::uint64_t* wait_ns) {
  WorkerCtl& c = ctl_[static_cast<std::size_t>(slot)];
  std::uint64_t v = c.go.load(std::memory_order_acquire);
  if (v > c.seen) {  // already released: skip the clock reads
    c.seen = v;
    return;
  }
  auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t budget = spin_budget_.load(std::memory_order_relaxed);
  std::uint32_t spins = 0;
  while ((v = c.go.load(std::memory_order_acquire)) <= c.seen) {
    // Spin up to the adaptive budget, then yield: the common deployment is
    // more workers than free cores, where pure spinning would live-lock.
    if (++spins > budget) std::this_thread::yield();
  }
  c.seen = v;
  *wait_ns += elapsed_ns(t0, std::chrono::steady_clock::now());
}

}  // namespace tham::sim
