#include "sim/executor.hpp"

#include <limits>

#include "common/check.hpp"
#include "sim/fiber.hpp"

namespace tham::sim {

void SequentialExecutor::run() {
  auto& shards = eng_.shards_;
  auto& nodes = eng_.nodes_;
  for (;;) {
    Engine::Shard* best = nullptr;
    for (auto& s : shards) {
      if (s->queue.empty()) continue;
      if (best == nullptr ||
          Engine::EvBefore{}(s->queue.top(), best->queue.top())) {
        best = s.get();
      }
    }
    if (best == nullptr) break;
    Engine::Ev ev = best->queue.top();
    best->queue.pop();
    nodes[static_cast<std::size_t>(ev.n)]->on_wake(ev.t);
  }
}

ParallelExecutor::ParallelExecutor(Engine& eng, int shards)
    : eng_(eng), count_(shards), lookahead_(eng.cost().lookahead()) {
  THAM_CHECK(shards > 1);
  THAM_CHECK_MSG(lookahead_ > 0, "parallel executor needs positive lookahead");
}

void ParallelExecutor::run() {
  eng_.in_parallel_window_.store(true, std::memory_order_release);
  plan_epoch();  // first window, computed before any worker starts
  if (!done_.load(std::memory_order_relaxed)) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(count_ - 1));
    for (int slot = 1; slot < count_; ++slot) {
      threads.emplace_back([this, slot] { worker(slot); });
    }
    worker(0);  // the calling thread is worker 0
    for (auto& t : threads) t.join();
  }
  eng_.in_parallel_window_.store(false, std::memory_order_release);
}

void ParallelExecutor::worker(int slot) {
  set_worker_slot(slot);
  bool sense = false;
  while (!done_.load(std::memory_order_acquire)) {
    drain_window(slot);
    sense = !sense;
    arrive(sense, /*plan=*/false);  // all drains finished; outboxes final
    exchange(slot);
    sense = !sense;
    arrive(sense, /*plan=*/true);  // all inboxes settled; plan next window
  }
  // Leave the slot set: worker 0 is the main thread, and the post-epoch
  // shutdown drain reuses its slot-0 stack free list.
}

void ParallelExecutor::drain_window(int slot) {
  Engine::Shard& s = *eng_.shards_[static_cast<std::size_t>(slot)];
  const SimTime limit = eng_.epoch_limit_.load(std::memory_order_acquire);
  auto& nodes = eng_.nodes_;
  while (!s.queue.empty() && s.queue.top().t <= limit) {
    Engine::Ev ev = s.queue.top();
    s.queue.pop();
    nodes[static_cast<std::size_t>(ev.n)]->on_wake(ev.t);
  }
}

void ParallelExecutor::exchange(int slot) {
  auto& nodes = eng_.nodes_;
  for (auto& from : eng_.shards_) {
    auto& box = from->outbox[static_cast<std::size_t>(slot)];
    for (auto& pm : box) {
      nodes[static_cast<std::size_t>(pm.dst)]->enqueue_message(std::move(pm.m));
    }
    box.clear();
  }
}

void ParallelExecutor::plan_epoch() {
  SimTime gmin = std::numeric_limits<SimTime>::max();
  for (const auto& s : eng_.shards_) {
    if (!s->queue.empty() && s->queue.top().t < gmin) gmin = s->queue.top().t;
  }
  if (gmin == std::numeric_limits<SimTime>::max()) {
    done_.store(true, std::memory_order_release);
    return;
  }
  // Inclusive horizon one tick short of gmin + lookahead: a cross-shard
  // message sent at gmin arrives at gmin + lookahead at the earliest, and
  // the sequential engine delivers an arrival the instant a clock reaches
  // it — so the window must not let a task's clock reach that boundary.
  eng_.epoch_limit_.store(gmin + lookahead_ - 1, std::memory_order_release);
}

void ParallelExecutor::arrive(bool my_sense, bool plan) {
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
    arrived_.store(0, std::memory_order_relaxed);
    if (plan) plan_epoch();
    global_sense_.store(my_sense, std::memory_order_release);
  } else {
    // Spin briefly (epochs are short), then yield: the common deployment is
    // more workers than free cores, where pure spinning would live-lock.
    int spins = 0;
    while (global_sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins > 512) std::this_thread::yield();
    }
  }
}

}  // namespace tham::sim
