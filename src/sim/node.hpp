#pragma once
// A simulated node: one address space of the multicomputer, with its own
// virtual clock, cooperative task scheduler, message inbox, and component
// time accounting. Nodes execute under a conservative discrete-event
// discipline: a task that would advance its node's clock past the global
// event-queue head suspends until the engine reaches that time, so all
// inter-node interactions happen in global timestamp order.

#include <cstdint>
#include <limits>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"
#include "sim/fiber.hpp"
#include "sim/message.hpp"
#include "sim/message_pool.hpp"
#include "sim/ring_queue.hpp"

namespace tham::check {
class Checker;
}

namespace tham::sim {

class Engine;
class Node;

/// Human-readable name of a Task::Why value (diagnostics and audits).
const char* why_name(std::uint8_t why);

/// A simulated thread of control. Created via Node::spawn; scheduled
/// cooperatively within its node.
class Task {
 public:
  enum class Why : std::uint8_t {
    Ready,           ///< runnable (initial, or after yield/wake)
    Yield,           ///< voluntarily yielded; goes to the back of the run queue
    Blocked,         ///< waiting on a local sync object; needs wake()
    InboxWait,       ///< waiting for the next due message (or shutdown)
    CausalityPause,  ///< suspended by the simulator to keep global time order
    Done
  };

  const char* name() const { return name_; }
  bool done() const { return fiber_.done(); }
  std::uint64_t id() const { return id_; }

 private:
  friend class Node;
  Task(std::function<void()> body, StackPool& pool, const char* name,
       std::uint64_t id, bool daemon)
      : fiber_(std::move(body), pool), name_(name), id_(id), daemon_(daemon) {}

  /// Sentinel for "parked with no deadline" (plain wait_for_inbox).
  static constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

  /// Re-initializes a reaped task for reuse from the node's free list.
  void recycle(std::function<void()> body, const char* name, std::uint64_t id,
               bool daemon) {
    fiber_.reset(std::move(body));
    name_ = name;
    id_ = id;
    daemon_ = daemon;
    detached_ = false;
    in_runq_ = false;
    causality_resume_ = false;
    poll_only_wait_ = false;
    wait_deadline_ = kNoDeadline;
    why_ = Why::Ready;
    comp_ = Component::Cpu;
    slot_ = 0;
    join_waiters_.clear();
  }

  Fiber fiber_;
  const char* name_;
  std::uint64_t id_;
  bool daemon_;
  bool detached_ = false;
  bool in_runq_ = false;
  bool causality_resume_ = false;  ///< next resume continues a paused charge
  bool poll_only_wait_ = false;    ///< parked via wait_for_inbox(poll_only)
  /// Virtual-time deadline of a wait_for_inbox_until park; kNoDeadline for
  /// untimed waits. Reset on every resume.
  SimTime wait_deadline_ = kNoDeadline;
  Why why_ = Why::Ready;
  Component comp_ = Component::Cpu;
  std::size_t slot_ = 0;  ///< index in Node::tasks_ for O(1) removal
  std::vector<Task*> join_waiters_;
};

/// RAII component scope: attributes all virtual-time charges made by the
/// current task to `c` until destruction.
class ComponentScope {
 public:
  ComponentScope(Node& node, Component c);
  ~ComponentScope();
  ComponentScope(const ComponentScope&) = delete;
  ComponentScope& operator=(const ComponentScope&) = delete;

 private:
  Node& node_;
  Component prev_;
};

/// Cache-line aligned so adjacent nodes in the engine's contiguous node
/// arena never share a line: the executor bumps counters_ and clock_ on
/// every event, and with block sharding the neighbours of a shard-boundary
/// node belong to another worker thread.
class alignas(64) Node {
 public:
  Node(Engine& engine, NodeId id);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  Engine& engine() { return engine_; }
  const CostModel& cost() const;

  // --- Virtual time & accounting -----------------------------------------
  SimTime now() const { return clock_; }

  /// Charges `dt` of virtual time to the current task's active component.
  /// May suspend the task to preserve global event order. Must be called
  /// from inside a task.
  void advance(SimTime dt);
  /// Charges under an explicit component (ignores the task's scope).
  void advance(Component c, SimTime dt);

  Component current_component() const;
  Component set_component(Component c);
  const Breakdown& breakdown() const { return breakdown_; }

  /// Cross-layer instrumentation, mirroring what the paper's heavily
  /// instrumented AM layer and threads package counted.
  struct Counters {
    std::uint64_t thread_creates = 0;
    std::uint64_t context_switches = 0;
    std::uint64_t sync_ops = 0;        ///< lock/unlock/signal/wait operations
    std::uint64_t lock_acquires = 0;
    std::uint64_t lock_contended = 0;  ///< acquires that had to block
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t polls = 0;
    /// Order-sensitive digest of this node's message deliveries: folds
    /// (arrival, src, seq, clock at delivery) per poll_one. Two runs
    /// dispatched the same events in the same order iff every node's
    /// digest matches — the bit-identity witness the parallel engine's
    /// golden and schedule-fuzz tests compare against the sequential run.
    std::uint64_t dispatch_digest = 0;
  };
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  // --- Task management ----------------------------------------------------
  /// Creates a task (no virtual-time charge; the threads layer adds the
  /// thread-creation cost). Daemon tasks do not count as deadlocked when
  /// the simulation drains, and are woken for shutdown.
  Task* spawn(std::function<void()> body, const char* name,
              bool daemon = false);
  /// Marks a task as never-to-be-joined; it is destroyed when it finishes.
  void detach(Task* t);

  Task* current() const { return current_; }

  /// Cooperative yield: back of the run queue.
  void yield();
  /// Suspends the current task until wake() is called on it.
  void block();
  /// Makes a blocked task runnable. Legal only for same-node tasks.
  void wake(Task* t);
  /// Blocks until `t` finishes, then reclaims it. Each task joined once.
  void join(Task* t);
  /// Parks the current task until something happens on this node: a
  /// message becomes due, any message is delivered (by any task), or
  /// shutdown begins. Spurious wakeups are allowed — callers loop and
  /// re-check their own predicate. Returns false only on shutdown.
  /// `poll_only` marks a pure polling loop: it is woken for due messages
  /// and shutdown but not for deliveries made by other tasks (it has no
  /// predicate of its own to re-check), avoiding spurious context
  /// switches to the polling thread.
  bool wait_for_inbox(bool poll_only = false);
  /// wait_for_inbox with a virtual-time deadline: additionally resumes once
  /// the node's clock reaches `deadline` — the sim timer primitive the
  /// reliable transport's retransmission service is built on. The deadline
  /// wake is schedule-independent: the engine activation is created here
  /// (at park time, a deterministic point of the task's execution) and the
  /// resume decision is made only from node state at queue-drain time.
  /// Returns immediately if the deadline has already passed. Returns false
  /// only on shutdown.
  bool wait_for_inbox_until(SimTime deadline, bool poll_only = false);

  bool shutting_down() const { return shutting_down_; }

  // --- Inbox ----------------------------------------------------------------
  /// Queues a message with a future arrival timestamp. Routed through
  /// Engine::deliver so a push from another shard's worker (mid-epoch,
  /// parallel engine) parks in the outbox instead of racing this inbox.
  void push_message(Message m);
  /// Engine-side inbox insertion; must run on the thread owning this
  /// node's shard (Engine::deliver / the epoch exchange phase).
  void enqueue_message(Message m);
  /// Delivers (runs the handler of) the earliest due message, if any.
  /// Called from task context; the handler runs on the caller's stack.
  bool poll_one();
  bool inbox_due() const;
  /// Arrival time of the earliest queued message, or -1 if none.
  SimTime next_arrival() const;
  bool in_handler() const { return handler_depth_ > 0; }
  /// The message whose delivery closure is currently running (poll_one),
  /// or null outside a delivery. Lets a receive-side protocol inspect the
  /// envelope of the message it is handling — transport::Reliable reads
  /// fault_flags here to detect injected payload corruption.
  const Message* current_delivery() const { return current_delivery_; }

  // --- Engine interface (not for runtime/application code) ----------------
  void on_wake(SimTime t);
  void begin_shutdown();
  /// Sentinel for "no engine activation armed" (see armed_at()).
  static constexpr SimTime kNeverArmed = std::numeric_limits<SimTime>::max();
  /// Earliest engine activation currently queued for this node, or
  /// kNeverArmed. The engine coalesces wake() calls through this: only a
  /// wake earlier than the armed time enters the event queue, and a popped
  /// entry is live only if it still equals the armed time. Entries that
  /// were superseded (or belong to an already-dispatched time) are dropped
  /// on pop instead of cycling through the heap again.
  SimTime armed_at() const { return armed_t_; }
  void set_armed(SimTime t) { armed_t_ = t; }
  /// Earliest virtual time an engine activation would find work here — a
  /// pure function of node state (run queue, inbox, timed waiters), never
  /// of the engine schedule. The engine re-arms from this after every live
  /// dispatch, which is what lets wake() coalesce: any activation the
  /// coalescing suppressed is reconstructed here the moment it could
  /// matter. Returns kNeverArmed when the node is fully idle.
  SimTime next_activation_time() const;
  /// Inbox insertion without scheduling an activation — the epoch-merge
  /// batch path, where the caller arms the activation itself and bulk-
  /// inserts the event records into the shard queue in one pass.
  void enqueue_message_batched(Message m);
  /// Monotonic per-source sequence stamped on outgoing messages by the
  /// network; combined with the node id it breaks arrival-time ties
  /// identically under the sequential and parallel engines.
  std::uint64_t next_send_seq() { return send_seq_++; }
  /// Non-daemon tasks still blocked after the event queue drained, as
  /// "node N: name (reason)" lines (reason = the Task::Why it parked with).
  std::vector<std::string> stuck_tasks() const;
  std::size_t live_tasks() const { return tasks_.size(); }
  /// Reports terminal state (stuck tasks, undelivered messages, pool
  /// accounting) to the attached checker after the event queue drained.
  void audit_terminal(check::Checker& chk) const;

 private:
  void run_ready_tasks();
  void wake_inbox_waiters();
  void wake_expired_waiters();
  /// True if an activation at virtual time `t` has anything to do here: a
  /// runnable task, a message due by `t`, or a timed waiter whose deadline
  /// has been reached. Guards the idle clock jump in on_wake() so a stale
  /// timer activation (deadline re-armed or cancelled after the wake was
  /// queued) does not inflate the node's clock.
  bool has_work_at(SimTime t) const;
  void finish_task(Task* t);
  void reap(Task* t);
  void maybe_pause_for_causality();

  Engine& engine_;
  NodeId id_;
  SimTime clock_ = 0;
  Breakdown breakdown_;
  Counters counters_;

  std::vector<std::unique_ptr<Task>> tasks_;
  /// Reaped Task shells awaiting reuse: spawn() pulls from here before
  /// touching the allocator, so thread churn (one thread per threaded RMI)
  /// recycles Task objects the way stacks are already recycled. Capped to
  /// bound idle memory after a spawn burst.
  static constexpr std::size_t kMaxFreeTasks = 256;
  std::vector<std::unique_ptr<Task>> task_free_;
  RingQueue<Task*> runq_;
  std::vector<Task*> inbox_waiters_;
  Task* current_ = nullptr;
  Task* last_ran_ = nullptr;
  const Message* current_delivery_ = nullptr;
  int handler_depth_ = 0;
  bool shutting_down_ = false;
  std::uint64_t next_task_id_ = 0;
  std::uint64_t send_seq_ = 0;
  SimTime armed_t_ = kNeverArmed;  ///< see armed_at()

  MessagePool inbox_;
};

/// The node whose task is currently executing. Valid only from inside a
/// simulated task (or a message handler). This is what lets runtime APIs
/// read like the paper's code: splitc::read(gp) instead of read(node, gp).
Node& this_node();

/// True while executing inside a simulated task.
bool in_simulation();

}  // namespace tham::sim
