#include "sim/node.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "check/hooks.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "sim/engine.hpp"

namespace tham::sim {

namespace {
// thread_local: each shard worker of the parallel engine schedules its own
// nodes, so "the node whose task is executing" is a per-thread notion.
thread_local Node* g_current_node = nullptr;
}  // namespace

const char* why_name(std::uint8_t why) {
  switch (static_cast<Task::Why>(why)) {
    case Task::Why::Ready: return "Ready";
    case Task::Why::Yield: return "Yield";
    case Task::Why::Blocked: return "Blocked";
    case Task::Why::InboxWait: return "InboxWait";
    case Task::Why::CausalityPause: return "CausalityPause";
    case Task::Why::Done: return "Done";
  }
  return "?";
}

Node& this_node() {
  THAM_CHECK_MSG(g_current_node != nullptr,
                 "this_node() outside the simulation");
  return *g_current_node;
}

bool in_simulation() { return g_current_node != nullptr; }

ComponentScope::ComponentScope(Node& node, Component c)
    : node_(node), prev_(node.set_component(c)) {}

ComponentScope::~ComponentScope() { node_.set_component(prev_); }

Node::Node(Engine& engine, NodeId id) : engine_(engine), id_(id) {}

Node::~Node() = default;

const CostModel& Node::cost() const { return engine_.cost(); }

void Node::advance(SimTime dt) {
  THAM_CHECK_MSG(current_ != nullptr, "advance() outside a task");
  THAM_CHECK(dt >= 0);
  breakdown_[current_->comp_] += dt;
  clock_ += dt;
  maybe_pause_for_causality();
}

void Node::advance(Component c, SimTime dt) {
  THAM_CHECK_MSG(current_ != nullptr, "advance() outside a task");
  THAM_CHECK(dt >= 0);
  breakdown_[c] += dt;
  clock_ += dt;
  maybe_pause_for_causality();
}

void Node::maybe_pause_for_causality() {
  // A task may not run ahead of the event order it can observe: if this
  // node's clock passed the earliest pending event the engine allows it to
  // run ahead of (the global queue head sequentially; the shard queue head
  // capped by the epoch horizon in a parallel window), suspend and
  // reschedule this node at its own clock. The extra pauses a narrower
  // parallel horizon inserts are observation-neutral: the resumed task
  // continues at the same clock with no charge, so every engine schedule
  // produces identical node state.
  if (clock_ > engine_.head_limit(id_)) {
    engine_.wake(this, clock_);
    current_->why_ = Task::Why::CausalityPause;
    Fiber::suspend();
  }
}

Component Node::current_component() const {
  THAM_CHECK(current_ != nullptr);
  return current_->comp_;
}

Component Node::set_component(Component c) {
  THAM_CHECK(current_ != nullptr);
  Component prev = current_->comp_;
  current_->comp_ = c;
  return prev;
}

Task* Node::spawn(std::function<void()> body, const char* name, bool daemon) {
  std::unique_ptr<Task> t;
  if (!task_free_.empty()) {
    // Recycle a reaped Task shell instead of allocating a fresh one (the
    // fiber stack is pooled separately; this pools the Task object itself).
    t = std::move(task_free_.back());
    task_free_.pop_back();
    t->recycle(std::move(body), name, next_task_id_++, daemon);
  } else {
    // Not make_unique: Task's constructor is private to Node.
    t = std::unique_ptr<Task>(new Task(std::move(body), engine_.stack_pool(),
                                       name, next_task_id_++, daemon));
  }
  Task* raw = t.get();
  raw->slot_ = tasks_.size();
  tasks_.push_back(std::move(t));
  raw->why_ = Task::Why::Ready;
  raw->in_runq_ = true;
  runq_.push_back(raw);
  THAM_HOOK(on_task_start(id_, raw->id_, raw->name_));
  return raw;
}

void Node::detach(Task* t) {
  THAM_CHECK(!t->detached_);
  t->detached_ = true;
  if (t->done()) reap(t);
}

void Node::yield() {
  THAM_CHECK_MSG(current_ != nullptr, "yield() outside a task");
  THAM_CHECK_MSG(!in_handler(), "yield() inside a message handler");
  current_->why_ = Task::Why::Yield;
  Fiber::suspend();
}

void Node::block() {
  THAM_CHECK_MSG(current_ != nullptr, "block() outside a task");
  THAM_CHECK_MSG(!in_handler(), "block() inside a message handler");
  current_->why_ = Task::Why::Blocked;
  Fiber::suspend();
}

void Node::wake(Task* t) {
  THAM_CHECK(t != nullptr && !t->done());
  if (t->in_runq_ || t == current_) return;  // already runnable
  // If it was parked as an inbox waiter, unpark it.
  auto it = std::find(inbox_waiters_.begin(), inbox_waiters_.end(), t);
  if (it != inbox_waiters_.end()) inbox_waiters_.erase(it);
  t->why_ = Task::Why::Ready;
  t->in_runq_ = true;
  runq_.push_back(t);
}

void Node::join(Task* t) {
  THAM_CHECK_MSG(current_ != nullptr, "join() outside a task");
  THAM_CHECK_MSG(!t->detached_, "join() on a detached task");
  THAM_CHECK_MSG(t != current_, "join() on self");
  while (!t->done()) {
    t->join_waiters_.push_back(current_);
    block();
  }
  THAM_HOOK(on_task_join(id_, t->id_));
  reap(t);
}

bool Node::wait_for_inbox(bool poll_only) {
  return wait_for_inbox_until(Task::kNoDeadline, poll_only);
}

bool Node::wait_for_inbox_until(SimTime deadline, bool poll_only) {
  THAM_CHECK_MSG(current_ != nullptr, "wait_for_inbox() outside a task");
  THAM_CHECK_MSG(!in_handler(), "wait_for_inbox() inside a message handler");
  if (shutting_down_) return false;
  if (inbox_due()) return true;
  if (deadline != Task::kNoDeadline) {
    if (deadline <= clock_) return true;  // already expired
    // The timer activation is created here, at park time — a deterministic
    // point of the program — so the activation multiset stays a pure
    // function of the program, not of the engine schedule.
    engine_.wake(this, deadline);
  }
  current_->poll_only_wait_ = poll_only;
  current_->wait_deadline_ = deadline;
  // Park until something happens on this node: a message becomes due, any
  // message is delivered by another task (its handler may have satisfied
  // the condition this caller is waiting for), the deadline is reached, or
  // shutdown. Spurious wakeups are allowed; callers loop and re-check
  // their own predicate.
  current_->why_ = Task::Why::InboxWait;
  Fiber::suspend();
  current_->wait_deadline_ = Task::kNoDeadline;
  return !shutting_down_;
}

void Node::push_message(Message m) { engine_.deliver(id_, std::move(m)); }

void Node::enqueue_message(Message m) {
  THAM_CHECK(static_cast<bool>(m.deliver));
  SimTime arrival = m.arrival;
  inbox_.push(std::move(m));
  // One activation request per message, at its arrival time. The request
  // set is a pure function of the message set — not of when this push
  // executed relative to the node's own scheduling — which is what makes
  // sequential and parallel dispatch orders bit-identical. The engine
  // coalesces requests (Engine::wake keeps only the earliest pending one
  // per node); that stays schedule-independent because min() over the same
  // request set is order-insensitive, and every suppressed later request
  // is re-derived from node state (next_activation_time) when the armed
  // one dispatches.
  engine_.wake(this, arrival);
}

void Node::enqueue_message_batched(Message m) {
  THAM_CHECK(static_cast<bool>(m.deliver));
  inbox_.push(std::move(m));
}

SimTime Node::next_activation_time() const {
  if (!runq_.empty()) return clock_;
  SimTime t = kNeverArmed;
  for (const Task* w : inbox_waiters_) {
    if (w->wait_deadline_ < t) t = w->wait_deadline_;
  }
  if (!inbox_.empty()) {
    SimTime a = inbox_.top().arrival;
    if (a > clock_) {
      if (a < t) t = a;
    } else if (!inbox_waiters_.empty()) {
      // A due message with parked waiters is deliverable right now.
      t = clock_;
    } else {
      // Due messages nobody is waiting for (terminal residue of lossy
      // runs). Per-message activations used to fire an idle clock jump at
      // each *future* arrival regardless; reconstruct the earliest one so
      // coalescing leaves node clocks bit-identical.
      SimTime fut = kNeverArmed;
      inbox_.for_each_pending([&](const Message& m) {
        if (m.arrival > clock_ && m.arrival < fut) fut = m.arrival;
      });
      if (fut < t) t = fut;
    }
  }
  // A deadline can sit in the past only transiently (its waiter is woken
  // at the next dispatch); never arm behind the clock.
  if (t != kNeverArmed && t < clock_) t = clock_;
  return t;
}

bool Node::poll_one() {
  if (!inbox_due()) return false;
  // pop() moves the handler out and recycles the record before the handler
  // runs, so a handler that sends (and so pushes) never sees a full pool.
  Message m = inbox_.pop();
  ++counters_.msgs_recv;
  // Bit-identity witness: digest the delivery order (see Counters).
  std::uint64_t d = counters_.dispatch_digest;
  d = hash_mix(d, static_cast<std::uint64_t>(m.arrival));
  d = hash_mix(d, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                       m.src))
                   << 32) ^
                      m.seq);
  counters_.dispatch_digest = hash_mix(d, static_cast<std::uint64_t>(clock_));
  THAM_HOOK(on_deliver_begin(id_, m.src, m.check_clock, clock_));
  ++handler_depth_;
  const Message* prev_delivery = current_delivery_;
  current_delivery_ = &m;
  m.deliver(*this);
  current_delivery_ = prev_delivery;
  --handler_depth_;
  THAM_HOOK(on_deliver_end(id_));
  // The handler may have satisfied a condition some parked task is waiting
  // on (e.g. an RMI completion): wake every inbox waiter to re-check.
  wake_inbox_waiters();
  return true;
}

void Node::wake_inbox_waiters() {
  // Deliveries wake predicate waiters (their condition may now hold) but
  // not pure polling loops (nothing due means nothing for them to do).
  // Compacted in place: this runs once per delivery, so it must not touch
  // the allocator the way a scratch vector would.
  std::size_t kept = 0;
  for (Task* w : inbox_waiters_) {
    if (w->poll_only_wait_ && !inbox_due()) {
      inbox_waiters_[kept++] = w;
      continue;
    }
    w->why_ = Task::Why::Ready;
    w->in_runq_ = true;
    runq_.push_back(w);
  }
  inbox_waiters_.resize(kept);
}

bool Node::inbox_due() const {
  return !inbox_.empty() && inbox_.top().arrival <= clock_;
}

SimTime Node::next_arrival() const {
  return inbox_.empty() ? SimTime{-1} : inbox_.top().arrival;
}

bool Node::has_work_at(SimTime t) const {
  if (!runq_.empty()) return true;
  if (!inbox_.empty() && inbox_.top().arrival <= t) return true;
  for (const Task* w : inbox_waiters_) {
    if (w->wait_deadline_ <= t) return true;
  }
  return false;
}

void Node::on_wake(SimTime t) {
  if (t > clock_) {
    // A stale activation (a timer deadline that was re-armed or satisfied
    // after the wake was queued) must not advance the clock: nothing
    // happens here, so no virtual time passes. Every activation that does
    // carry work still jumps — message arrivals are checked against their
    // own wake time, and live timer deadlines against the waiting task's.
    if (!has_work_at(t)) return;
    // Idle time (waiting for a message to arrive) is attributed to the
    // component of the waiting task — normally Net, since the waiter sits
    // inside the messaging layer. This keeps breakdown().total() == now().
    // A jump can only happen while the node is fully idle: every causality
    // pause leaves an activation at the paused clock, so a wake beyond the
    // clock implies no task was mid-flight.
    Component c = inbox_waiters_.empty() ? Component::Cpu
                                         : inbox_waiters_.front()->comp_;
    breakdown_[c] += t - clock_;
    clock_ = t;
  }
  // Waiter wakeups happen in run_ready_tasks once the run queue drains —
  // a decision made purely from node state at a deterministic point, so a
  // spurious extra activation (parallel epochs insert some) is a no-op.
  run_ready_tasks();
}

void Node::wake_expired_waiters() {
  // Timed waiters whose deadline the clock has reached resume regardless
  // of inbox state — the sim-timer half of wait_for_inbox_until. Decided
  // only from node state at run-queue drain, like every waiter wakeup, so
  // the engine schedule cannot leak into who runs. Compacted in place.
  std::size_t kept = 0;
  for (Task* w : inbox_waiters_) {
    if (w->wait_deadline_ > clock_) {
      inbox_waiters_[kept++] = w;
      continue;
    }
    w->why_ = Task::Why::Ready;
    w->in_runq_ = true;
    runq_.push_back(w);
  }
  inbox_waiters_.resize(kept);
}

void Node::run_ready_tasks() {
  while (true) {
    if (runq_.empty()) {
      // Nothing runnable. Timed waiters whose deadline has arrived resume
      // first (they were parked explicitly for this clock), then, if a
      // message is already due and someone is parked waiting for the
      // inbox, wake the most recently parked waiter (it drains all due
      // messages when it runs; waking everyone would charge spurious
      // context switches the real system never paid). Future arrivals
      // need no action here: every queued message already has an engine
      // activation at its arrival time.
      wake_expired_waiters();
      if (!runq_.empty()) continue;
      if (inbox_waiters_.empty() || !inbox_due()) return;
      Task* w = inbox_waiters_.back();
      inbox_waiters_.pop_back();
      w->why_ = Task::Why::Ready;
      w->in_runq_ = true;
      runq_.push_back(w);
    }
    Task* t = runq_.front();
    // Charge one context switch when control passes from one simulated
    // thread to a different one (Table 4's "Yield" column counts these).
    if (t != last_ran_ && last_ran_ != nullptr && !shutting_down_) {
      ++counters_.context_switches;
      breakdown_[Component::ThreadMgmt] += cost().context_switch;
      clock_ += cost().context_switch;
    }
    if (clock_ > engine_.head_limit(id_)) {
      // Pausing before the resume: remember the switch is already paid.
      last_ran_ = t;
      engine_.wake(this, clock_);
      return;
    }
    current_ = t;
    Node* prev_node = g_current_node;
    g_current_node = this;
    THAM_HOOK(on_task_resume(id_, t->id_, clock_));
    t->fiber_.resume();
    THAM_HOOK(on_task_out(id_, t->id_, clock_));
    g_current_node = prev_node;
    current_ = nullptr;
    last_ran_ = t;

    if (t->done()) {
      runq_.pop_front();
      t->in_runq_ = false;
      finish_task(t);
      continue;
    }
    switch (t->why_) {
      case Task::Why::CausalityPause:
        // advance() already scheduled our continuation; keep `t` at the
        // front so it resumes exactly where it paused.
        return;
      case Task::Why::Done:
        THAM_CHECK_MSG(false, "unreachable: Done handled above");
        break;
      case Task::Why::Yield:
        runq_.pop_front();
        runq_.push_back(t);
        t->why_ = Task::Why::Ready;
        break;
      case Task::Why::Blocked:
        runq_.pop_front();
        t->in_runq_ = false;
        break;
      case Task::Why::InboxWait:
        runq_.pop_front();
        t->in_runq_ = false;
        inbox_waiters_.push_back(t);
        break;
      case Task::Why::Ready:
        THAM_CHECK_MSG(false, "task suspended without a reason");
    }
  }
}

void Node::finish_task(Task* t) {
  THAM_HOOK(on_task_finish(id_, t->id_));
  for (Task* w : t->join_waiters_) wake(w);
  t->join_waiters_.clear();
  // Control passing from a finished thread to the next one is not counted
  // as a context switch (matching the paper's yield accounting).
  if (last_ran_ == t) last_ran_ = nullptr;
  if (t->detached_) reap(t);  // frees t
}

void Node::reap(Task* t) {
  THAM_CHECK(t->done());
  THAM_HOOK(on_task_reaped(id_, t->id_));
  std::size_t slot = t->slot_;
  THAM_CHECK(tasks_[slot].get() == t);
  if (last_ran_ == t) last_ran_ = nullptr;
  std::unique_ptr<Task> dead = std::move(tasks_[slot]);
  if (slot != tasks_.size() - 1) {
    tasks_[slot] = std::move(tasks_.back());
    tasks_[slot]->slot_ = slot;
  }
  tasks_.pop_back();
  if (task_free_.size() < kMaxFreeTasks) {
    task_free_.push_back(std::move(dead));
  }
}

void Node::begin_shutdown() {
  shutting_down_ = true;
  std::vector<Task*> waiters;
  waiters.swap(inbox_waiters_);
  for (Task* w : waiters) {
    w->why_ = Task::Why::Ready;
    w->in_runq_ = true;
    runq_.push_back(w);
  }
  if (!runq_.empty()) engine_.wake(this, clock_);
}

void Node::audit_terminal(check::Checker& chk) const {
  for (const auto& t : tasks_) {
    if (!t->done() && !t->daemon_) {
      chk.audit_stuck_task(id_, t->id_, t->name_,
                           why_name(static_cast<std::uint8_t>(t->why_)),
                           clock_);
    }
  }
  if (!inbox_.empty()) {
    // Records carrying fault markers (an injector-made duplicate copy, a
    // corrupted frame a receiver refused, transport acks/retransmits in
    // flight past the end of the program) are expected residue of a lossy
    // run, not lost application messages. The earliest *genuine* pending
    // message names the real problem when there is one.
    std::size_t artifacts = 0;
    const Message* earliest = nullptr;
    inbox_.for_each_pending([&](const Message& m) {
      if (m.fault_flags != 0) {
        ++artifacts;
        return;
      }
      if (earliest == nullptr || m.arrival < earliest->arrival) {
        earliest = &m;
      }
    });
    const Message& top = earliest != nullptr ? *earliest : inbox_.top();
    chk.audit_inbox(id_, inbox_.pending(), artifacts, top.arrival, top.src,
                    clock_);
  }
  chk.audit_pool(id_, inbox_.capacity(), inbox_.free_records(),
                 inbox_.pending(), clock_);
}

std::vector<std::string> Node::stuck_tasks() const {
  std::vector<std::string> out;
  for (const auto& t : tasks_) {
    if (!t->done() && !t->daemon_) {
      out.push_back("node " + std::to_string(id_) + ": " + t->name() + " (" +
                    why_name(static_cast<std::uint8_t>(t->why_)) + ")");
    }
  }
  return out;
}

}  // namespace tham::sim
