#pragma once
// Execution-time components, matching the stacked-bar decomposition of the
// paper's Figures 5 and 6: cpu / net / thread mgmt / thread sync / runtime.
// Every virtual-time charge is attributed to the component currently active
// on the charging simulated thread.

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace tham::sim {

enum class Component : std::uint8_t {
  Cpu = 0,     ///< application computation
  Net,         ///< messaging layer (AM / MPL / TCP) incl. waiting for comms
  ThreadMgmt,  ///< thread creation and context switches
  ThreadSync,  ///< locks, condition variables, sync variables
  Runtime,     ///< language runtime: marshalling, stub lookup, buffers
  kCount
};

inline constexpr int kNumComponents = static_cast<int>(Component::kCount);

inline const char* component_name(Component c) {
  switch (c) {
    case Component::Cpu: return "cpu";
    case Component::Net: return "net";
    case Component::ThreadMgmt: return "thread mgmt";
    case Component::ThreadSync: return "thread sync";
    case Component::Runtime: return "runtime";
    default: return "?";
  }
}

/// Per-node (or per-measurement-window) virtual-time breakdown.
struct Breakdown {
  std::array<SimTime, kNumComponents> t{};

  SimTime& operator[](Component c) { return t[static_cast<int>(c)]; }
  SimTime operator[](Component c) const { return t[static_cast<int>(c)]; }

  SimTime total() const {
    SimTime s = 0;
    for (SimTime v : t) s += v;
    return s;
  }

  Breakdown& operator+=(const Breakdown& o) {
    for (int i = 0; i < kNumComponents; ++i) t[i] += o.t[i];
    return *this;
  }

  Breakdown operator-(const Breakdown& o) const {
    Breakdown r = *this;
    for (int i = 0; i < kNumComponents; ++i) r.t[i] -= o.t[i];
    return r;
  }
};

}  // namespace tham::sim
