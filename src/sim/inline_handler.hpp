#pragma once
// Fixed-capacity inline closures — the allocation-free replacement for
// std::function on hot paths. The callable is stored in place; a closure
// that does not fit is rejected with a static_assert at its construction
// site, so capacity violations are compile errors where the lambda is
// written, never runtime heap fallbacks.
//
// InlineFn<Sig, Cap> is the general shape: a move-only, inline-storage
// callable with signature Sig. Two hot paths use it:
//   * message delivery closures  — InlineHandler = InlineFn<void(Node&)>
//     (PR 1's allocation-free hot path);
//   * AM handler registration tables (am::ShortHandler / am::BulkHandler),
//     so registering and dispatching handlers never touches the heap.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tham::sim {

class Node;

template <typename Sig, std::size_t Cap = 96>
class InlineFn;  // primary template: only the function-signature
                 // specialization below exists

template <typename R, typename... Args, std::size_t Cap>
class InlineFn<R(Args...), Cap> {
 public:
  /// Inline storage size. The default (96 bytes) is sized for the largest
  /// steady-state delivery closure: the AM bulk-transfer delivery (layer
  /// pointer + token + handler id + destination address + payload vector +
  /// 6 argument words = 96 bytes).
  static constexpr std::size_t kCapacity = Cap;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "closure exceeds InlineFn::kCapacity: shrink the captures "
                  "(or raise the capacity parameter)");
    static_assert(alignof(Fn) <= kAlign,
                  "closure over-aligned for InlineFn storage");
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "closure not callable with this InlineFn's signature");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    ops_ = &OpsFor<Fn>::ops;
  }

  InlineFn(InlineFn&& o) noexcept { move_from(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True if the stored closure can be duplicated (copy-constructible).
  /// The fault injector needs a second delivery closure to materialize a
  /// duplicated message; move-only closures simply cannot be duplicated.
  bool copyable() const { return ops_ != nullptr && ops_->copy != nullptr; }

  /// Duplicates the stored closure. Caller must check copyable() first; a
  /// clone of an empty or move-only InlineFn returns an empty one.
  InlineFn clone() const {
    InlineFn out;
    if (copyable()) {
      ops_->copy(buf_, out.buf_);
      out.ops_ = ops_;
    }
    return out;
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* f, Args... args);
    void (*relocate)(void* from, void* to);  ///< move-construct, destroy src
    void (*copy)(const void* from, void* to);  ///< null if move-only
    void (*destroy)(void* f);
  };

  template <typename Fn>
  struct OpsFor {
    static R invoke(void* f, Args... args) {
      return (*static_cast<Fn*>(f))(std::forward<Args>(args)...);
    }
    static void relocate(void* from, void* to) {
      Fn* src = static_cast<Fn*>(from);
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void copy(const void* from, void* to) {
      if constexpr (std::is_copy_constructible_v<Fn>) {
        ::new (to) Fn(*static_cast<const Fn*>(from));
      }
    }
    static void destroy(void* f) { static_cast<Fn*>(f)->~Fn(); }
    static constexpr Ops ops{
        &invoke, &relocate,
        std::is_copy_constructible_v<Fn> ? &copy : nullptr, &destroy};
  };

  void move_from(InlineFn& o) {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(o.buf_, buf_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    } else {
      ops_ = nullptr;
    }
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

/// The message-delivery closure: what Network::send carries to the
/// destination inbox.
using InlineHandler = InlineFn<void(Node&)>;

}  // namespace tham::sim
