#pragma once
// Fixed-capacity inline closure for message delivery — the allocation-free
// replacement for std::function<void(Node&)> on the message hot path. The
// callable is stored in place; a closure that does not fit is rejected with
// a static_assert at its construction site, so capacity violations are
// compile errors where the lambda is written, never runtime heap fallbacks.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tham::sim {

class Node;

class InlineHandler {
 public:
  /// Inline storage size, sized for the largest steady-state closure: the
  /// AM bulk-transfer delivery (layer pointer + token + handler id +
  /// destination address + payload vector + 6 argument words = 96 bytes).
  static constexpr std::size_t kCapacity = 96;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  InlineHandler() = default;

  template <typename F, typename = std::enable_if_t<!std::is_same_v<
                            std::decay_t<F>, InlineHandler>>>
  InlineHandler(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "delivery closure exceeds InlineHandler::kCapacity: "
                  "shrink the captures (or raise kCapacity)");
    static_assert(alignof(Fn) <= kAlign,
                  "delivery closure over-aligned for InlineHandler storage");
    static_assert(std::is_invocable_v<Fn&, Node&>,
                  "delivery closure must be callable as void(Node&)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
    ops_ = &OpsFor<Fn>::ops;
  }

  InlineHandler(InlineHandler&& o) noexcept { move_from(o); }
  InlineHandler& operator=(InlineHandler&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;
  ~InlineHandler() { reset(); }

  void operator()(Node& n) { ops_->invoke(buf_, n); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* f, Node& n);
    void (*relocate)(void* from, void* to);  ///< move-construct, destroy src
    void (*destroy)(void* f);
  };

  template <typename Fn>
  struct OpsFor {
    static void invoke(void* f, Node& n) { (*static_cast<Fn*>(f))(n); }
    static void relocate(void* from, void* to) {
      Fn* src = static_cast<Fn*>(from);
      ::new (to) Fn(std::move(*src));
      src->~Fn();
    }
    static void destroy(void* f) { static_cast<Fn*>(f)->~Fn(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(InlineHandler& o) {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(o.buf_, buf_);
      ops_ = o.ops_;
      o.ops_ = nullptr;
    } else {
      ops_ = nullptr;
    }
  }

  alignas(kAlign) unsigned char buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace tham::sim
