#pragma once
// Execution strategies for Engine::run(). The engine owns the event state
// (shards, queues, outboxes); an executor owns only the host threads and
// the epoch protocol that drive it. See engine.hpp for the determinism
// argument both executors implement.

#include <atomic>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace tham::sim {

/// Reference semantics: one scheduler thread drains all shards' queues
/// merged in global (time, node) order.
class SequentialExecutor {
 public:
  explicit SequentialExecutor(Engine& eng) : eng_(eng) {}
  void run();

 private:
  Engine& eng_;
};

/// Conservative-lookahead parallel executor. Each shard gets a host worker
/// (the calling thread doubles as worker 0). Workers advance in epochs:
///
///   plan (serial): gmin = min event time anywhere; window = [gmin,
///                  gmin + lookahead - 1]; done when queues are empty
///   drain (parallel): each worker pops its shard's events with t <= limit
///   exchange (parallel): each worker moves messages parked for its shard
///                        out of every outbox into its own nodes' inboxes
///
/// separated by a sense-reversing spin-then-yield barrier whose last
/// arriver runs the next plan as the serial section. Cross-shard sends
/// arrive no earlier than gmin + lookahead, i.e. outside the window, so
/// draining shards concurrently cannot miss or reorder a delivery.
class ParallelExecutor {
 public:
  ParallelExecutor(Engine& eng, int shards);
  void run();

 private:
  void worker(int slot);
  void drain_window(int slot);
  void exchange(int slot);
  /// Serial section: computes the next epoch window, or sets done_.
  void plan_epoch();
  /// Sense-reversing barrier; the last arriver runs plan_epoch() when
  /// `plan` is set, then releases the others.
  void arrive(bool my_sense, bool plan);

  Engine& eng_;
  int count_;
  SimTime lookahead_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> global_sense_{false};
  std::atomic<bool> done_{false};
};

}  // namespace tham::sim
