#pragma once
// Execution strategies for Engine::run(). The engine owns the event state
// (shards, queues, outboxes); an executor owns only the host threads and
// the epoch protocol that drive it. See engine.hpp for the determinism
// argument both executors implement.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "sim/engine.hpp"

namespace tham::sim {

/// Reference semantics: one scheduler thread drains all shards' queues
/// merged in global (time, node) order.
class SequentialExecutor {
 public:
  explicit SequentialExecutor(Engine& eng) : eng_(eng) {}
  void run();

 private:
  Engine& eng_;
};

/// Conservative-lookahead parallel executor. Each shard gets a host worker
/// (the calling thread doubles as worker 0). Workers advance in epochs
/// over a *participant set* — the shards that actually have work inside
/// their horizon:
///
///   plan (serial): per shard s, an effective head h[s] = min(queue head,
///       earliest unmerged inbound outbox arrival). Horizon limit[s] =
///       min over shards o (including s itself) of h[o] + D[o][s] - 1,
///       where D is the *reaction distance* matrix: the all-pairs
///       shortest-path closure of the shard-pair lookahead edges (declared
///       per-link wire floors, or the global CostModel::lookahead()), with
///       D[s][s] the shortest proper cycle. Chains matter, not just direct
///       links: a message s sends this epoch can wake a far-ahead shard
///       whose response returns at h[s] + cycle, long before that shard's
///       own head plus one hop. The limit is additionally capped one tick
///       below any unmerged inbound arrival. Participants = shards with a
///       queue head inside their horizon or inbound traffic to merge;
///       everyone else stays parked on a per-worker mailbox and costs the
///       epoch nothing (the idle-shard fast path). Done when every h[s] is
///       infinite.
///   drain (parallel, participants): pop shard events with t <= limit[s];
///       cross-shard sends park in per-(src, dst) outboxes.
///   merge (parallel, participants): batch-move every outbox addressed to
///       this shard into its nodes' inboxes and bulk-insert the armed
///       activations into the shard queue in one pass.
///
/// The two phases are separated by barriers over the participant set; the
/// last arriver of the merge barrier runs the next plan as the serial
/// section. All outbox and queue handoff is sealed by those barriers (a
/// parked shard's boxes are only read after the epoch in which they were
/// written has fully barriered), so no phase ever reads state another
/// thread is still writing. Workers wait with an adaptive spin: the
/// planner measures the epoch wall time and sizes the spin budget to it,
/// so short epochs never yield and long ones never burn a core.
///
/// Progress: the shard with the globally minimal effective head is always
/// a participant (every bound on it is at least its own head), so each
/// epoch advances at least one shard.
class ParallelExecutor {
 public:
  ParallelExecutor(Engine& eng, int shards);
  void run();

 private:
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

  /// Per-worker release mailbox, one cache line each. The serial sections
  /// hand a worker its next phase by bumping `go`; the worker spin-then-
  /// yield waits for it. Parked shards simply never get bumped — an idle
  /// shard costs no barrier traffic at all.
  struct alignas(64) WorkerCtl {
    std::atomic<std::uint64_t> go{0};
    std::uint64_t seen = 0;  ///< worker-local; lives here to stay padded
  };

  /// Per-worker counters, one cache line each; folded into
  /// Engine::EpochProfile when the run ends.
  struct alignas(64) WorkerStats {
    std::uint64_t epochs = 0;
    std::uint64_t live = 0;
    std::uint64_t stale = 0;
    std::uint64_t max_epoch = 0;
    std::uint64_t merged = 0;
    std::uint64_t flushes = 0;
    std::uint64_t drain_ns = 0;
    std::uint64_t merge_ns = 0;
    std::uint64_t barrier_ns = 0;
    std::uint64_t parked_ns = 0;
  };

  void worker(int slot);
  void drain_window(int slot);
  void merge_boxes(int slot);
  /// Serial section: computes the next epoch's horizons and participant
  /// set and releases the participants — or sets done_ and releases
  /// everyone. Runs on whichever worker arrived last at the merge barrier
  /// (or on the caller of run() for the first epoch).
  void plan_epoch();
  /// Epoch barrier over the current participant set. The last arriver
  /// either releases the participants into the merge phase or runs
  /// plan_epoch(); everyone then falls through to wait_go().
  void arrive(bool planning);
  /// Waits for this worker's next release; wait time is added to
  /// *wait_ns (barrier wait vs. parked time, depending on the call site).
  void wait_go(int slot, std::uint64_t* wait_ns);
  void release(int slot) {
    ctl_[static_cast<std::size_t>(slot)].go.fetch_add(
        1, std::memory_order_release);
  }

  Engine& eng_;
  int count_;
  /// Reaction-distance matrix D, count_²: shortest-path closure of the
  /// shard-pair lookahead edges; diagonal = shortest proper cycle.
  std::vector<SimTime> la_;
  std::vector<WorkerCtl> ctl_;
  std::vector<WorkerStats> stats_;
  /// The current epoch's participant list, rebuilt by each plan. Both
  /// release loops iterate this list instead of per-shard flags: a release
  /// loop must never read an entry the *next* planner may already be
  /// rewriting, and the list is only read before the releases that make
  /// that next planner reachable.
  std::vector<int> to_release_;
  std::vector<SimTime> heads_;    ///< plan scratch: effective heads
  std::vector<SimTime> inbound_;  ///< plan scratch: unmerged inbound mins
  std::vector<std::vector<Engine::Ev>> scratch_;  ///< per-worker bulk batch
  /// Barrier size = participant count, set by plan. Atomic because a
  /// non-last arriver's read overlaps the last arriver's store for the
  /// next epoch; ordering comes from arrived_ and the mailboxes.
  std::atomic<int> expected_{0};
  std::atomic<int> arrived_{0};
  std::atomic<bool> done_{false};
  std::atomic<std::uint32_t> spin_budget_{4096};
  std::uint64_t epochs_ = 0;
  std::uint64_t plan_ns_ = 0;
  double ewma_epoch_ns_ = 0;
  std::chrono::steady_clock::time_point last_plan_{};
  bool have_last_plan_ = false;
};

}  // namespace tham::sim
