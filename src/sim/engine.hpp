#pragma once
// The discrete-event engine: owns the nodes, the sharded event queues, and
// the fiber stack pool. Virtual time only; real execution is delegated to
// one of two executors (sim/executor.hpp):
//
//   * SequentialExecutor — one scheduler thread drains the merged queues in
//     global (time, node) order; the reference semantics.
//   * ParallelExecutor — nodes are sharded across host worker threads that
//     advance in conservative lookahead epochs. The horizon of shard s is
//     per-shard: no other shard s' can cause an arrival at s before
//     (s' head) + L[s'][s], where L is the shard-pair wire-time floor — the
//     declared topology's minimum wire cost under the per-link policy, or
//     CostModel::lookahead() (the LogGP latency L) globally. Events
//     strictly inside a shard's window commute with every other shard;
//     cross-shard messages are buffered in per-(src, dst) shard outboxes
//     and batch-merged at the epoch boundary. Arrival-time ties break on
//     (src node, per-source seq) and event-queue ties on node id — keys
//     every run derives deterministically — so dispatch order, and
//     therefore every checksum, counter, and breakdown, is bit-identical
//     to the sequential engine.
//
// Thread count comes from set_threads() or THAM_SIM_THREADS (default 1).
// Node→shard assignment and the lookahead policy come from
// THAM_SIM_SHARD_POLICY ("block" | "roundrobin") and THAM_SIM_LOOKAHEAD
// ("link" | "global"), or the matching setters. Runs that attach
// instrumentation which is not shard-safe (a tham-check checker, a network
// observer) are forced onto the sequential executor with a diagnostic.

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/cost_model.hpp"
#include "common/machine.hpp"
#include "common/types.hpp"
#include "sim/node.hpp"
#include "sim/quad_heap.hpp"

namespace tham::analyze {
struct Report;
}

namespace tham::sim {

class SequentialExecutor;
class ParallelExecutor;

class Engine {
 public:
  /// Builds a multicomputer with `num_nodes` nodes sharing one cost model.
  /// The default is the machine profile named by THAM_MACHINE ("sp2" when
  /// unset); pass an explicit model or call set_machine() to override.
  explicit Engine(int num_nodes, const CostModel& cm = default_cost_model(),
                  std::size_t stack_bytes = 128 * 1024);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return num_nodes_; }
  Node& node(NodeId i) {
    THAM_CHECK(i >= 0 && i < num_nodes_);
    return nodes_[static_cast<std::size_t>(i)];
  }
  const CostModel& cost() const { return cost_; }
  StackPool& stack_pool() { return stack_pool_; }

  /// Replaces the cost model with the named machine profile (see
  /// common/machine.hpp); aborts on an unknown name. Must be called before
  /// run() — swapping the calibration mid-run would tear the lookahead
  /// horizon out from under in-flight messages.
  void set_machine(std::string_view name);
  /// Name of the machine profile in effect ("sp2" unless overridden).
  const char* machine() const { return cost_.machine; }

  /// Monotonic engine-wide sequence. No longer part of any ordering key
  /// (message FIFO ties break on per-source sequences); kept for tests and
  /// benches that hand-build Message records and want unique seq values.
  /// Atomic so those call sites stay defined under the parallel executor.
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Host worker threads the next run() may use. 1 (default, or from
  /// THAM_SIM_THREADS) selects the sequential executor. Clamped to
  /// [1, min(size(), StackPool::kMaxSlots)] at run time. Must be called
  /// before run().
  void set_threads(int n);
  int threads() const { return threads_; }
  /// Shards the last run() actually used (1 = sequential executor; may be
  /// forced to 1, see require_sequential()).
  int shards_used() const { return shards_used_; }

  /// How node ids map to shards under the parallel executor. Block (the
  /// default) gives each shard one contiguous node-id range — neighbour-
  /// heavy graphs keep most edges shard-local and each worker walks a
  /// contiguous slice of the node arena. RoundRobin stripes ids modulo the
  /// shard count. Results are bit-identical under either (the dispatch
  /// order is a pure function of (t, node) keys, not of shard shape).
  enum class ShardPolicy { Block, RoundRobin };
  /// Overrides THAM_SIM_SHARD_POLICY. Must be called before run().
  void set_shard_policy(ShardPolicy p);
  ShardPolicy shard_policy() const { return shard_policy_; }

  /// How parallel epoch horizons are derived. PerLink (the default) uses
  /// the declared topology's per-shard-pair wire-time floors, so a shard
  /// whose inbound links are all slow advances in wider epochs; it falls
  /// back to Global when no topology was declared. Global uses
  /// CostModel::lookahead() for every pair.
  enum class LookaheadPolicy { PerLink, Global };
  /// Overrides THAM_SIM_LOOKAHEAD. Must be called before run().
  void set_lookahead_policy(LookaheadPolicy p);
  LookaheadPolicy lookahead_policy() const { return lookahead_policy_; }

  /// Declares that messages may flow src -> dst with wire time >=
  /// `min_wire` (virtual ns, > 0). transport::Channel::declare_link prices
  /// this from a wire class; multiple declarations per pair keep the
  /// minimum. Once anything is declared the topology is closed: every send
  /// is checked against the declared floor of its shard pair and the run
  /// aborts on a send that undercuts it (or crosses a shard pair with no
  /// declared link) — the invariant per-link lookahead horizons rely on.
  /// Must be called before run(). Throws tham::RuntimeError on an invalid
  /// declaration: out-of-range ids, a self link, a nonpositive floor, or an
  /// exact duplicate of an earlier declaration (same src, dst, and floor —
  /// a duplicate is always a bug in topology setup; distinct floors on one
  /// pair remain legal and keep the minimum).
  void declare_link(NodeId src, NodeId dst, SimTime min_wire);
  bool topology_declared() const { return !links_.empty(); }

  /// One declared link (see declare_link). Exposed for the static
  /// analyzer's topology harvest.
  struct Link {
    NodeId src;
    NodeId dst;
    SimTime min_wire;
  };
  const std::vector<Link>& links() const { return links_; }

  /// Static pre-execution analysis of this engine's declared topology
  /// against its cost model (lookahead-floor soundness and link shape; the
  /// full protocol-level audits need a flow model, see src/analyze).
  /// Defined in the tham_analyze library — callers must link it.
  analyze::Report analyze() const;

  /// The declared-topology enforcement check, called on every
  /// Network::send. No-op unless a topology was declared. Granularity is
  /// the shard pair — exactly the floor the epoch planner uses. THAM_CHECK
  /// builds additionally assert at exact (src, dst) link granularity, so an
  /// undercut hidden by a cheaper link elsewhere in the same shard pair
  /// still aborts with a diagnostic before it can skew a horizon.
  void check_wire_floor(NodeId src, NodeId dst, SimTime wire_time) const {
    if (wire_floor_.empty()) return;
    SimTime floor =
        wire_floor_[static_cast<std::size_t>(
                        shard_ix_[static_cast<std::size_t>(src)]) *
                        shards_.size() +
                    static_cast<std::size_t>(
                        shard_ix_[static_cast<std::size_t>(dst)])];
    THAM_CHECK_MSG(wire_time >= floor,
                   "send undercuts the declared link wire-time floor "
                   "(or crosses a pair with no declared link)");
#if defined(THAM_CHECK_ENABLED)
    auto it = link_floor_.find(link_key(src, dst));
    THAM_CHECK_MSG(it != link_floor_.end(),
                   "send crosses a node pair with no declared link");
    THAM_CHECK_MSG(wire_time >= it->second,
                   "send undercuts its own link's declared wire-time floor");
#endif
  }

  /// Forces every run() of this engine onto the sequential executor and
  /// remembers why, for the one-line diagnostic printed when a parallel
  /// run was requested. Called by subsystems whose instrumentation is not
  /// safe under sharded dispatch (network observers, attached checkers).
  void require_sequential(const char* why);

  /// Timestamp of the earliest pending event anywhere (max SimTime if
  /// none). Sequential-phase view; tests and idle checks only.
  SimTime head_time() const;

  /// Earliest pending virtual time node `n` may run ahead of: its shard's
  /// queue head, additionally capped by the shard's epoch horizon while a
  /// parallel window is executing. This is the causality bound
  /// Node::advance checks.
  SimTime head_limit(NodeId n) const {
    auto sx = static_cast<std::size_t>(shard_ix_[static_cast<std::size_t>(n)]);
    const Shard& s = *shards_[sx];
    SimTime h = s.queue.empty() ? std::numeric_limits<SimTime>::max()
                                : s.queue.top().t;
    if (in_parallel_window_.load(std::memory_order_relaxed)) {
      SimTime lim = shard_limits_[sx].v.load(std::memory_order_relaxed);
      if (lim < h) h = lim;
    } else if (shards_.size() > 1) {
      // Post-epoch sequential drain over a sharded queue set: the bound is
      // the global head, same as the one-shard sequential engine.
      for (const auto& sh : shards_) {
        if (!sh->queue.empty() && sh->queue.top().t < h) h = sh->queue.top().t;
      }
    }
    return h;
  }

  /// Schedules a node activation at virtual time `t`. Coalesced: a node
  /// carries at most one *live* activation (Node::armed_at); a wake at or
  /// after the armed time is covered by it and enqueues nothing. After the
  /// live activation dispatches, the engine re-arms from
  /// Node::next_activation_time(), which reconstructs whatever the
  /// coalescing suppressed. Keeps dispatch order bit-identical to the
  /// one-activation-per-request scheme while doing O(live events) heap
  /// work instead of O(requests).
  void wake(Node* n, SimTime t);

  /// Routes a freshly sent message to `dst`: pushed straight into the
  /// destination inbox, except mid-epoch across shards, where it is
  /// buffered in the sending shard's outbox and batch-merged at the epoch
  /// boundary.
  void deliver(NodeId dst, Message m);

  /// Runs the simulation until the event queues drain, then shuts down
  /// daemon tasks. Aborts with a diagnostic naming every stuck task and its
  /// block reason if any non-daemon task is still blocked (simulated-
  /// program deadlock) unless allow_deadlock(true).
  void run();

  /// Latest event timestamp dispatched: the global elapsed virtual time.
  SimTime vtime() const { return vtime_; }

  void allow_deadlock(bool v) { allow_deadlock_ = v; }
  /// After run(): true if non-daemon tasks were left blocked.
  bool deadlocked() const { return deadlocked_; }
  /// After run(): "node N: name (reason)" for every stuck non-daemon task.
  const std::vector<std::string>& stuck_tasks() const { return stuck_; }

  /// Host-side counters from the last parallel run's epoch protocol, for
  /// perf work (`bench_scaling --json` dumps them). Wall times in host ns.
  /// All zero after a sequential run.
  struct EpochProfile {
    std::uint64_t epochs = 0;        ///< parallel epochs planned
    std::uint64_t shard_epochs = 0;  ///< sum of per-shard participations
    std::uint64_t parked_epochs = 0; ///< shard-epochs skipped by the idle
                                     ///< fast path (no barrier traffic)
    std::uint64_t events = 0;        ///< live events dispatched in windows
    std::uint64_t stale_events = 0;  ///< coalesced entries dropped on pop
    std::uint64_t max_epoch_events = 0;  ///< most events one shard drained
                                         ///< in one epoch
    std::uint64_t merged_msgs = 0;   ///< cross-shard messages batch-merged
    std::uint64_t flushes = 0;       ///< non-empty outboxes merged
    std::uint64_t drain_ns = 0;      ///< in-window event execution
    std::uint64_t merge_ns = 0;      ///< batched exchange/merge phases
    std::uint64_t barrier_ns = 0;    ///< waiting at epoch barriers
    std::uint64_t parked_ns = 0;     ///< parked by the idle fast path (and
                                     ///< waiting on the serial plan)
    std::uint64_t plan_ns = 0;       ///< serial planning sections
    std::uint64_t wall_ns = 0;       ///< parallel section wall clock
  };
  const EpochProfile& epoch_profile() const { return profile_; }

  /// One parallel epoch, as seen by the serial planning section.
  struct EpochInfo {
    std::uint64_t index;    ///< 0-based epoch number
    SimTime window_start;   ///< earliest effective shard head
    int participants;      ///< shards in this epoch's barrier group
  };
  /// Observes every parallel epoch. Invoked from the serial planning
  /// section — never concurrently — so, unlike a network observer, it does
  /// NOT force the sequential executor. Only fired in THAM_CHECK builds
  /// (stats::EpochTrace documents this); a plain build never pays the
  /// std::function call on the epoch path.
  using EpochObserver = std::function<void(const EpochInfo&)>;
  void set_epoch_observer(EpochObserver obs) {
    epoch_observer_ = std::move(obs);
  }

  /// The tham-check instance auditing this engine. Non-null only in
  /// THAM_CHECK=ON builds with Checker::auto_attach() left on at
  /// construction; the checker is installed for the engine's lifetime and
  /// its diagnostics are printed (not fatal) at the end of run().
  check::Checker* checker() const { return checker_.get(); }

  /// Registers a hook called during the terminal audit (after the per-node
  /// audits, before diagnostics print) when a checker is attached.
  /// Subsystems outside the engine — the fault injector's drop ledger —
  /// use it to contribute run-level audit context.
  void add_audit_hook(std::function<void(check::Checker&)> hook) {
    audit_hooks_.push_back(std::move(hook));
  }

 private:
  friend class SequentialExecutor;
  friend class ParallelExecutor;

  struct Ev {
    SimTime t;
    NodeId n;
  };
  /// Earliest timestamp first; node id among equal timestamps. Events of
  /// different nodes inside one lookahead window commute, so a total order
  /// on (t, n) — derivable by any schedule — is all determinism needs.
  /// Duplicate (t, n) entries are idempotent re-wakes.
  struct EvBefore {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.n < b.n;
    }
  };

  /// A cross-shard message parked until the epoch boundary.
  struct PendingMsg {
    NodeId dst;
    Message m;
  };

  /// Mid-epoch cross-shard traffic parked for one destination shard.
  /// min_arrival caps the destination's horizon until it merges: the
  /// sender's head no longer bounds a message that is already in flight.
  struct Outbox {
    std::vector<PendingMsg> msgs;
    SimTime min_arrival = std::numeric_limits<SimTime>::max();
  };

  /// One shard: a slice of the nodes, their event queue, and the outboxes
  /// holding mid-epoch messages for every other shard. Cache-line aligned;
  /// only its worker thread touches it between barriers.
  struct alignas(64) Shard {
    QuadHeap<Ev, EvBefore> queue;
    std::vector<Outbox> outbox;  ///< indexed by dest shard
  };

  /// Per-shard epoch horizon, one cache line each: the planner writes
  /// them, each worker re-reads only its own on the event hot path.
  struct alignas(64) ShardLimit {
    std::atomic<SimTime> v{0};
  };

  /// Dispatches one popped event: a stale entry (superseded by an earlier
  /// wake, or belonging to an already-dispatched time) is dropped; a live
  /// one runs Node::on_wake and re-arms the node from its own state.
  /// Returns true when the event was live. The single dispatch path of
  /// both executors and the shutdown drain.
  bool dispatch(const Ev& ev);

  /// Decides the shard count for this run (1 = sequential), printing the
  /// fallback diagnostic when parallelism was requested but is unsafe.
  int plan_shards();
  void setup_shards(int count);
  /// Rebuilds the shard-pair wire-time floor matrix from the declared
  /// links for the current shard count (empty when none are declared).
  void build_wire_floors();
  /// Audits the terminal state and aborts on deadlock (see run()).
  void finish_run();

  CostModel cost_;
  StackPool stack_pool_;
  /// The nodes, placement-constructed in one contiguous cache-line-aligned
  /// arena: with block sharding each worker owns a contiguous slice, and
  /// the per-event fields it touches (clock, counters, queues) never share
  /// a line with another shard's nodes.
  Node* nodes_ = nullptr;
  int num_nodes_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_ix_;  ///< node -> shard
  std::vector<ShardLimit> shard_limits_;
  std::atomic<std::uint64_t> seq_{0};
  SimTime vtime_ = 0;
  int threads_;  ///< from THAM_SIM_THREADS; see set_threads()
  int shards_used_ = 1;
  ShardPolicy shard_policy_;          ///< from THAM_SIM_SHARD_POLICY
  LookaheadPolicy lookahead_policy_;  ///< from THAM_SIM_LOOKAHEAD
  static std::uint64_t link_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(dst);
  }
  std::vector<Link> links_;        ///< declared topology (see declare_link)
  /// Minimum declared floor per exact (src, dst) pair; duplicate detection
  /// at declare time and the per-link THAM_CHECK assert at send time.
  std::unordered_map<std::uint64_t, SimTime> link_floor_;
  std::vector<SimTime> wire_floor_;  ///< shard-pair floors; empty = no topo
  const char* seq_only_why_ = nullptr;
  bool allow_deadlock_ = false;
  bool deadlocked_ = false;
  bool ran_ = false;
  /// True while parallel epoch windows execute; switches deliver() to
  /// outbox buffering and head_limit() to the epoch horizon.
  std::atomic<bool> in_parallel_window_{false};
  EpochProfile profile_;
  EpochObserver epoch_observer_;
  std::vector<std::string> stuck_;
  std::vector<std::function<void(check::Checker&)>> audit_hooks_;
  std::unique_ptr<check::Checker> checker_;  ///< null when not auto-attached
};

}  // namespace tham::sim
