#pragma once
// The discrete-event engine: owns the nodes, the sharded event queues, and
// the fiber stack pool. Virtual time only; real execution is delegated to
// one of two executors (sim/executor.hpp):
//
//   * SequentialExecutor — one scheduler thread drains the merged queues in
//     global (time, node) order; the reference semantics.
//   * ParallelExecutor — nodes are sharded across host worker threads that
//     advance in conservative lookahead epochs of width CostModel::
//     lookahead() (the LogGP latency L). No message sent at virtual time t
//     can arrive before t + L, so all events strictly inside one epoch
//     window commute across shards; cross-shard messages are buffered in
//     per-shard outboxes and exchanged at the epoch barrier. Arrival-time
//     ties break on (src node, per-source seq) and event-queue ties on
//     node id — keys every run derives deterministically — so dispatch
//     order, and therefore every checksum, counter, and breakdown, is
//     bit-identical to the sequential engine.
//
// Thread count comes from set_threads() or THAM_SIM_THREADS (default 1).
// Runs that attach instrumentation which is not shard-safe (a tham-check
// checker, a network observer) are forced onto the sequential executor
// with a diagnostic.

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "common/cost_model.hpp"
#include "common/machine.hpp"
#include "common/types.hpp"
#include "sim/node.hpp"
#include "sim/quad_heap.hpp"

namespace tham::sim {

class SequentialExecutor;
class ParallelExecutor;

class Engine {
 public:
  /// Builds a multicomputer with `num_nodes` nodes sharing one cost model.
  /// The default is the machine profile named by THAM_MACHINE ("sp2" when
  /// unset); pass an explicit model or call set_machine() to override.
  explicit Engine(int num_nodes, const CostModel& cm = default_cost_model(),
                  std::size_t stack_bytes = 128 * 1024);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  const CostModel& cost() const { return cost_; }
  StackPool& stack_pool() { return stack_pool_; }

  /// Replaces the cost model with the named machine profile (see
  /// common/machine.hpp); aborts on an unknown name. Must be called before
  /// run() — swapping the calibration mid-run would tear the lookahead
  /// horizon out from under in-flight messages.
  void set_machine(std::string_view name);
  /// Name of the machine profile in effect ("sp2" unless overridden).
  const char* machine() const { return cost_.machine; }

  /// Monotonic engine-wide sequence. No longer part of any ordering key
  /// (message FIFO ties break on per-source sequences); kept for tests and
  /// benches that hand-build Message records and want unique seq values.
  /// Atomic so those call sites stay defined under the parallel executor.
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Host worker threads the next run() may use. 1 (default, or from
  /// THAM_SIM_THREADS) selects the sequential executor. Clamped to
  /// [1, min(size(), StackPool::kMaxSlots)] at run time. Must be called
  /// before run().
  void set_threads(int n);
  int threads() const { return threads_; }
  /// Shards the last run() actually used (1 = sequential executor; may be
  /// forced to 1, see require_sequential()).
  int shards_used() const { return shards_used_; }

  /// Forces every run() of this engine onto the sequential executor and
  /// remembers why, for the one-line diagnostic printed when a parallel
  /// run was requested. Called by subsystems whose instrumentation is not
  /// safe under sharded dispatch (network observers, attached checkers).
  void require_sequential(const char* why);

  /// Timestamp of the earliest pending event anywhere (max SimTime if
  /// none). Sequential-phase view; tests and idle checks only.
  SimTime head_time() const;

  /// Earliest pending virtual time node `n` may run ahead of: its shard's
  /// queue head, additionally capped by the epoch horizon while a parallel
  /// window is executing. This is the causality bound Node::advance checks.
  SimTime head_limit(NodeId n) const {
    const Shard& s = *shards_[shard_ix_[static_cast<std::size_t>(n)]];
    SimTime h = s.queue.empty() ? std::numeric_limits<SimTime>::max()
                                : s.queue.top().t;
    if (in_parallel_window_.load(std::memory_order_relaxed)) {
      SimTime lim = epoch_limit_.load(std::memory_order_relaxed);
      if (lim < h) h = lim;
    } else if (shards_.size() > 1) {
      // Post-epoch sequential drain over a sharded queue set: the bound is
      // the global head, same as the one-shard sequential engine.
      for (const auto& sh : shards_) {
        if (!sh->queue.empty() && sh->queue.top().t < h) h = sh->queue.top().t;
      }
    }
    return h;
  }

  /// Schedules a node activation at virtual time `t`.
  void wake(Node* n, SimTime t);

  /// Routes a freshly sent message to `dst`: pushed straight into the
  /// destination inbox, except mid-epoch across shards, where it is
  /// buffered in the sending shard's outbox and exchanged at the barrier.
  void deliver(NodeId dst, Message m);

  /// Runs the simulation until the event queues drain, then shuts down
  /// daemon tasks. Aborts with a diagnostic naming every stuck task and its
  /// block reason if any non-daemon task is still blocked (simulated-
  /// program deadlock) unless allow_deadlock(true).
  void run();

  /// Latest event timestamp dispatched: the global elapsed virtual time.
  SimTime vtime() const { return vtime_; }

  void allow_deadlock(bool v) { allow_deadlock_ = v; }
  /// After run(): true if non-daemon tasks were left blocked.
  bool deadlocked() const { return deadlocked_; }
  /// After run(): "node N: name (reason)" for every stuck non-daemon task.
  const std::vector<std::string>& stuck_tasks() const { return stuck_; }

  /// The tham-check instance auditing this engine. Non-null only in
  /// THAM_CHECK=ON builds with Checker::auto_attach() left on at
  /// construction; the checker is installed for the engine's lifetime and
  /// its diagnostics are printed (not fatal) at the end of run().
  check::Checker* checker() const { return checker_.get(); }

  /// Registers a hook called during the terminal audit (after the per-node
  /// audits, before diagnostics print) when a checker is attached.
  /// Subsystems outside the engine — the fault injector's drop ledger —
  /// use it to contribute run-level audit context.
  void add_audit_hook(std::function<void(check::Checker&)> hook) {
    audit_hooks_.push_back(std::move(hook));
  }

 private:
  friend class SequentialExecutor;
  friend class ParallelExecutor;

  struct Ev {
    SimTime t;
    NodeId n;
  };
  /// Earliest timestamp first; node id among equal timestamps. Events of
  /// different nodes inside one lookahead window commute, so a total order
  /// on (t, n) — derivable by any schedule — is all determinism needs.
  /// Duplicate (t, n) entries are idempotent re-wakes.
  struct EvBefore {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.n < b.n;
    }
  };

  /// A cross-shard message parked until the epoch barrier.
  struct PendingMsg {
    NodeId dst;
    Message m;
  };

  /// One shard: a slice of the nodes, their event queue, and the outboxes
  /// holding mid-epoch messages for every other shard. Cache-line aligned;
  /// only its worker thread touches it between barriers.
  struct alignas(64) Shard {
    QuadHeap<Ev, EvBefore> queue;
    std::vector<std::vector<PendingMsg>> outbox;  ///< indexed by dest shard
  };

  /// Decides the shard count for this run (1 = sequential), printing the
  /// fallback diagnostic when parallelism was requested but is unsafe.
  int plan_shards();
  void setup_shards(int count);
  /// Audits the terminal state and aborts on deadlock (see run()).
  void finish_run();

  CostModel cost_;
  StackPool stack_pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_ix_;  ///< node -> shard
  std::atomic<std::uint64_t> seq_{0};
  SimTime vtime_ = 0;
  int threads_;  ///< from THAM_SIM_THREADS; see set_threads()
  int shards_used_ = 1;
  const char* seq_only_why_ = nullptr;
  bool allow_deadlock_ = false;
  bool deadlocked_ = false;
  bool ran_ = false;
  /// True while parallel epoch windows execute; switches deliver() to
  /// outbox buffering and head_limit() to the epoch horizon.
  std::atomic<bool> in_parallel_window_{false};
  /// Inclusive upper bound of the current epoch window (window start
  /// + lookahead - 1): tasks pause once their clock would pass it.
  std::atomic<SimTime> epoch_limit_{0};
  std::vector<std::string> stuck_;
  std::vector<std::function<void(check::Checker&)>> audit_hooks_;
  std::unique_ptr<check::Checker> checker_;  ///< null when not auto-attached
};

}  // namespace tham::sim
