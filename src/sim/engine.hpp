#pragma once
// The discrete-event engine: owns the nodes, the global event queue, and the
// fiber stack pool. Single real thread; virtual time only.

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "sim/node.hpp"
#include "sim/quad_heap.hpp"

namespace tham::sim {

class Engine {
 public:
  /// Builds a multicomputer with `num_nodes` nodes sharing one cost model.
  explicit Engine(int num_nodes, const CostModel& cm = sp2_cost_model(),
                  std::size_t stack_bytes = 128 * 1024);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int size() const { return static_cast<int>(nodes_.size()); }
  Node& node(NodeId i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  const CostModel& cost() const { return cost_; }
  StackPool& stack_pool() { return stack_pool_; }

  /// Monotonic sequence for message FIFO tie-breaking.
  std::uint64_t next_seq() { return seq_++; }

  /// Timestamp of the earliest pending event (max SimTime if none).
  SimTime head_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::max()
                          : queue_.top().t;
  }

  /// Schedules a node activation at virtual time `t`.
  void wake(Node* n, SimTime t);

  /// Runs the simulation until the event queue drains, then shuts down
  /// daemon tasks. Aborts with a diagnostic if any non-daemon task is still
  /// blocked (simulated-program deadlock) unless allow_deadlock(true).
  void run();

  /// Latest event timestamp dispatched: the global elapsed virtual time.
  SimTime vtime() const { return vtime_; }

  void allow_deadlock(bool v) { allow_deadlock_ = v; }
  /// After run(): true if non-daemon tasks were left blocked.
  bool deadlocked() const { return deadlocked_; }
  const std::vector<std::string>& stuck_tasks() const { return stuck_; }

  /// The tham-check instance auditing this engine. Non-null only in
  /// THAM_CHECK=ON builds with Checker::auto_attach() left on at
  /// construction; the checker is installed for the engine's lifetime and
  /// its diagnostics are printed (not fatal) at the end of run().
  check::Checker* checker() const { return checker_.get(); }

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    NodeId n;
  };
  /// Earliest timestamp first; FIFO (wake order) among equal timestamps.
  struct EvBefore {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };

  CostModel cost_;
  StackPool stack_pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  QuadHeap<Ev, EvBefore> queue_;
  std::uint64_t seq_ = 0;
  SimTime vtime_ = 0;
  bool allow_deadlock_ = false;
  bool deadlocked_ = false;
  bool ran_ = false;
  std::vector<std::string> stuck_;
  std::unique_ptr<check::Checker> checker_;  ///< null when not auto-attached
};

}  // namespace tham::sim
