#include "sim/fiber.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>

#include "common/check.hpp"

namespace tham::sim {

namespace {
// The fiber being started or resumed. Set immediately before swapcontext so
// the trampoline can find its Fiber. Single real thread -> plain static.
Fiber* g_current = nullptr;
}  // namespace

StackPool::StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

StackPool::~StackPool() {
  for (char* s : free_) ::operator delete[](s, std::align_val_t{64});
}

char* StackPool::acquire() {
  if (!free_.empty()) {
    char* s = free_.back();
    free_.pop_back();
    return s;
  }
  ++allocated_;
  return static_cast<char*>(
      ::operator new[](stack_bytes_, std::align_val_t{64}));
}

void StackPool::release(char* stack) { free_.push_back(stack); }

Fiber::Fiber(std::function<void()> body, StackPool& pool)
    : body_(std::move(body)), pool_(pool) {}

Fiber::~Fiber() {
  // Destroying a *running* fiber is always a bug. Destroying a *suspended*
  // one is allowed only as teardown of an abandoned (deadlocked) task: the
  // destructors of its live stack frames never run, so the stack is simply
  // returned to the pool.
  THAM_CHECK_MSG(state_ != State::Running,
                 "fiber destroyed while running");
  if (stack_ != nullptr) pool_.release(stack_);
}

void Fiber::trampoline() {
  Fiber* self = g_current;
  self->run_body();
  // Unreachable: run_body never returns.
}

void Fiber::run_body() {
  try {
    body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: uncaught exception in simulated thread: %s\n",
                 e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: uncaught exception in simulated thread\n");
    std::abort();
  }
  state_ = State::Done;
  body_ = nullptr;  // release captured resources now, not at destruction
  pool_.release(stack_);
  stack_ = nullptr;
  // Return to the main context for good. setcontext (not swap): this stack
  // is already back in the pool, so we must never run on it again.
  ucontext_t* ret = &return_ctx_;
  g_current = nullptr;
  setcontext(ret);
  THAM_CHECK_MSG(false, "resumed a finished fiber");
}

void Fiber::resume() {
  THAM_CHECK_MSG(g_current == nullptr, "resume() from inside a fiber");
  THAM_CHECK_MSG(state_ == State::Ready || state_ == State::Suspended,
                 "resume() on a fiber that is not runnable");
  if (state_ == State::Ready) {
    stack_ = pool_.acquire();
    THAM_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_;
    ctx_.uc_stack.ss_size = pool_.stack_bytes();
    ctx_.uc_link = nullptr;  // run_body handles termination explicitly
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  state_ = State::Running;
  g_current = this;
  THAM_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
  // Back in main: the fiber either suspended or finished.
  THAM_CHECK(g_current == nullptr);
}

void Fiber::suspend() {
  Fiber* self = g_current;
  THAM_CHECK_MSG(self != nullptr, "suspend() outside a fiber");
  self->state_ = State::Suspended;
  g_current = nullptr;
  THAM_CHECK(swapcontext(&self->ctx_, &self->return_ctx_) == 0);
  // Resumed again.
  g_current = self;
  self->state_ = State::Running;
}

Fiber* Fiber::current() { return g_current; }

}  // namespace tham::sim
