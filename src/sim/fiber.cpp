#include "sim/fiber.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "common/check.hpp"

#if defined(THAM_FIBER_FAST_SWITCH)
// Defined in fiber_switch_x86_64.S: swaps stacks entirely in userspace.
extern "C" void tham_fctx_switch(void** save_sp, void* target_sp);
extern "C" void tham_fctx_entry();
#endif

// AddressSanitizer must be told about every stack switch, or its shadow
// state says the program is running below the thread stack and fake-stack
// frames of fibers get recycled under live ones. The protocol: announce the
// destination stack before switching away, confirm the arrival right after
// gaining control (__sanitizer_{start,finish}_switch_fiber).
#if defined(__SANITIZE_ADDRESS__)
#define THAM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define THAM_ASAN_FIBERS 1
#endif
#endif

#if defined(THAM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
// The trampolines must not be instrumented: run_body never returns, so the
// compiler inserts __asan_handle_no_return before the call — which would
// run on the fresh fiber stack *before* __sanitizer_finish_switch_fiber
// has told ASan about it, and unpoison the wrong stack.
#define THAM_NO_ASAN __attribute__((no_sanitize_address))
#else
#define THAM_NO_ASAN
#endif

// ThreadSanitizer keeps per-context shadow state (stack bounds, clocks,
// the happens-before graph) just like ASan keeps shadow stacks, so it too
// must be told about every stack switch or each fiber switch looks like a
// wild jump below the thread stack and every resumed fiber races with its
// scheduler. The protocol mirrors the ASan one above: one TSan context per
// Fiber (__tsan_create_fiber, created lazily at first resume),
// __tsan_switch_to_fiber immediately before each stack switch — with the
// default sync flag, so the switch itself establishes happens-before between
// scheduler and fiber — and __tsan_destroy_fiber only from the scheduler
// side once the fiber is Done (a context cannot destroy itself). The
// scheduler's own context is re-captured on every resume because a fiber can
// suspend on one shard worker and resume on another.
#if defined(__SANITIZE_THREAD__)
#define THAM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define THAM_TSAN_FIBERS 1
#endif
#endif

#if defined(THAM_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#define THAM_NO_TSAN __attribute__((no_sanitize_thread))
#else
#define THAM_NO_TSAN
#endif

namespace tham::sim {

namespace {
// The fiber being started or resumed. Set immediately before the switch so
// the trampoline can find its Fiber. thread_local: each shard worker of the
// parallel engine is its own scheduler context with its own running fiber.
thread_local Fiber* g_current = nullptr;

// Which StackPool free-list shard this thread uses (0 = main/sequential).
thread_local int g_worker_slot = 0;

// Bounds of the scheduler (this thread's main-context) stack, captured every
// time a fiber gains control; suspend() and the final death switch name it
// as their destination. Unused (but kept declared) without ASan.
[[maybe_unused]] thread_local const void* g_sched_stack_bottom = nullptr;
[[maybe_unused]] thread_local std::size_t g_sched_stack_size = 0;

// A fiber can suspend on one scheduler thread and (after an executor
// barrier) be resumed on another, so thread-local accesses made *after* a
// switch must recompute their TLS address on the new thread. The single
// x86-64 instruction local-exec TLS uses does that on every access already;
// the noinline helpers make it hold under any TLS model or inliner.
[[gnu::noinline]] void set_current_fiber(Fiber* f) { g_current = f; }

#if defined(THAM_ASAN_FIBERS)
void asan_leave(void** fake_save, const void* bottom, std::size_t size) {
  __sanitizer_start_switch_fiber(fake_save, bottom, size);
}
// Arriving on a fiber stack: remember where we came from (the scheduler).
// noinline so the thread_local slots are those of the resuming thread even
// when the previous suspension happened on a different one.
[[gnu::noinline]] void asan_enter_fiber(void* fake_save) {
  __sanitizer_finish_switch_fiber(fake_save, &g_sched_stack_bottom,
                                  &g_sched_stack_size);
}
// Arriving back on the scheduler stack.
void asan_enter_sched(void* fake_save) {
  __sanitizer_finish_switch_fiber(fake_save, nullptr, nullptr);
}
#else
inline void asan_leave(void**, const void*, std::size_t) {}
inline void asan_enter_fiber(void*) {}
inline void asan_enter_sched(void*) {}
#endif

#if defined(THAM_TSAN_FIBERS)
void* tsan_self() { return __tsan_get_current_fiber(); }
void* tsan_create() { return __tsan_create_fiber(0); }
void tsan_destroy(void* ctx) {
  if (ctx != nullptr) __tsan_destroy_fiber(ctx);
}
// Must run immediately before the stack switch that makes `ctx` current.
void tsan_switch(void* ctx) { __tsan_switch_to_fiber(ctx, 0); }
#else
inline void* tsan_self() { return nullptr; }
inline void* tsan_create() { return nullptr; }
inline void tsan_destroy(void*) {}
inline void tsan_switch(void*) {}
#endif
}  // namespace

int worker_slot() { return g_worker_slot; }

void set_worker_slot(int slot) {
  THAM_CHECK(slot >= 0 && slot < StackPool::kMaxSlots);
  g_worker_slot = slot;
}

StackPool::StackPool(std::size_t stack_bytes) : stack_bytes_(stack_bytes) {}

StackPool::~StackPool() {
  for (auto& slot : free_) {
    for (char* s : slot) ::operator delete[](s, std::align_val_t{64});
  }
}

char* StackPool::acquire() {
  auto& slot = free_[static_cast<std::size_t>(g_worker_slot)];
  if (!slot.empty()) {
    char* s = slot.back();
    slot.pop_back();
    return s;
  }
  allocated_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<char*>(
      ::operator new[](stack_bytes_, std::align_val_t{64}));
}

void StackPool::release(char* stack) {
  free_[static_cast<std::size_t>(g_worker_slot)].push_back(stack);
}

Fiber::Fiber(std::function<void()> body, StackPool& pool)
    : body_(std::move(body)), pool_(pool) {}

Fiber::~Fiber() {
  // Destroying a *running* fiber is always a bug. Destroying a *suspended*
  // one is allowed only as teardown of an abandoned (deadlocked) task: the
  // destructors of its live stack frames never run, so the stack is simply
  // returned to the pool.
  THAM_CHECK_MSG(state_ != State::Running,
                 "fiber destroyed while running");
  if (stack_ != nullptr) pool_.release(stack_);
  tsan_destroy(tsan_fiber_);  // abandoned fibers still hold their context
}

#if defined(THAM_FIBER_FAST_SWITCH)

void* Fiber::make_initial_sp() {
  // Builds the frame tham_fctx_switch expects to restore (see the layout
  // comment in fiber_switch_x86_64.S): FPU control words, six callee-saved
  // registers with this Fiber in the r12 slot, and tham_fctx_entry as the
  // return address. The frame is 64 bytes below a 16-byte-aligned top, so
  // the entry thunk runs with the alignment the SysV ABI requires.
  auto top = reinterpret_cast<std::uintptr_t>(stack_ + pool_.stack_bytes());
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<std::uintptr_t*>(top - 64);
  std::memset(frame, 0, 64);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  asm volatile("stmxcsr %0" : "=m"(mxcsr));
  asm volatile("fnstcw %0" : "=m"(fcw));
  std::memcpy(frame, &mxcsr, sizeof(mxcsr));
  std::memcpy(reinterpret_cast<char*>(frame) + 4, &fcw, sizeof(fcw));
  frame[4] = reinterpret_cast<std::uintptr_t>(this);  // r12 slot
  frame[7] = reinterpret_cast<std::uintptr_t>(&tham_fctx_entry);
  return frame;
}

#else  // ucontext fallback

THAM_NO_ASAN THAM_NO_TSAN void Fiber::trampoline() {
  Fiber* self = g_current;
  self->run_body();
  // Unreachable: run_body never returns.
}

#endif

void Fiber::run_body() {
  asan_enter_fiber(nullptr);  // first entry: confirm the switch onto this stack
  try {
    body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: uncaught exception in simulated thread: %s\n",
                 e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: uncaught exception in simulated thread\n");
    std::abort();
  }
  state_ = State::Done;
  body_ = nullptr;  // release captured resources now, not at destruction
  pool_.release(stack_);
  stack_ = nullptr;
  // Return to the main context for good. The stack is already back in the
  // pool, but nothing can reuse it until the main context runs, and the
  // final switch never touches this stack again. set_current_fiber: this
  // fiber may have migrated scheduler threads since run_body was entered.
  set_current_fiber(nullptr);
  // nullptr fake-stack save: this fiber is dying, let ASan free its state.
  asan_leave(nullptr, g_sched_stack_bottom, g_sched_stack_size);
  // The TSan context outlives this switch (a context cannot destroy itself);
  // resume() destroys it scheduler-side once it observes Done.
  tsan_switch(tsan_return_);
#if defined(THAM_FIBER_FAST_SWITCH)
  void* scratch;
  tham_fctx_switch(&scratch, return_sp_);
#else
  setcontext(&return_ctx_);
#endif
  THAM_CHECK_MSG(false, "resumed a finished fiber");
}

void Fiber::resume() {
  THAM_CHECK_MSG(g_current == nullptr, "resume() from inside a fiber");
  THAM_CHECK_MSG(state_ == State::Ready || state_ == State::Suspended,
                 "resume() on a fiber that is not runnable");
  if (tsan_fiber_ == nullptr) tsan_fiber_ = tsan_create();
  // Captured fresh on every resume: after an executor barrier this fiber may
  // be running on a different scheduler thread than last time.
  tsan_return_ = tsan_self();
  void* fake = nullptr;
#if defined(THAM_FIBER_FAST_SWITCH)
  if (state_ == State::Ready) {
    stack_ = pool_.acquire();
    sp_ = make_initial_sp();
  }
  state_ = State::Running;
  g_current = this;
  asan_leave(&fake, stack_, pool_.stack_bytes());
  tsan_switch(tsan_fiber_);
  tham_fctx_switch(&return_sp_, sp_);
#else
  if (state_ == State::Ready) {
    stack_ = pool_.acquire();
    THAM_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_;
    ctx_.uc_stack.ss_size = pool_.stack_bytes();
    ctx_.uc_link = nullptr;  // run_body handles termination explicitly
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  state_ = State::Running;
  g_current = this;
  asan_leave(&fake, stack_, pool_.stack_bytes());
  tsan_switch(tsan_fiber_);
  THAM_CHECK(swapcontext(&return_ctx_, &ctx_) == 0);
#endif
  asan_enter_sched(fake);
  // Back in main: the fiber either suspended or finished.
  THAM_CHECK(g_current == nullptr);
  if (state_ == State::Done) {
    // reset() may rearm this object; a fresh context is created then.
    tsan_destroy(tsan_fiber_);
    tsan_fiber_ = nullptr;
  }
}

void Fiber::reset(std::function<void()> body) {
  THAM_CHECK_MSG(state_ == State::Done, "reset() on an unfinished fiber");
  body_ = std::move(body);
  state_ = State::Ready;
}

void Fiber::suspend() {
  Fiber* self = g_current;
  THAM_CHECK_MSG(self != nullptr, "suspend() outside a fiber");
  self->state_ = State::Suspended;
  g_current = nullptr;
  void* fake = nullptr;
  asan_leave(&fake, g_sched_stack_bottom, g_sched_stack_size);
  tsan_switch(self->tsan_return_);
#if defined(THAM_FIBER_FAST_SWITCH)
  tham_fctx_switch(&self->sp_, self->return_sp_);
#else
  THAM_CHECK(swapcontext(&self->ctx_, &self->return_ctx_) == 0);
#endif
  // Resumed again — possibly on a different scheduler thread than the one
  // that suspended, so the TLS write goes through the noinline helper.
  asan_enter_fiber(fake);
  set_current_fiber(self);
  self->state_ = State::Running;
}

Fiber* Fiber::current() { return g_current; }

}  // namespace tham::sim

#if defined(THAM_FIBER_FAST_SWITCH)
extern "C" THAM_NO_ASAN THAM_NO_TSAN void tham_fiber_trampoline(void* fiber) {
  static_cast<tham::sim::Fiber*>(fiber)->run_body();
  // Unreachable: run_body never returns.
}
#endif
