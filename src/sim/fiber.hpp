#pragma once
// Stackful fibers — the execution substrate for simulated threads. One real
// OS thread runs the whole simulation; every simulated thread on every
// simulated node is a Fiber that the node scheduler resumes and that
// suspends back to the scheduler at blocking points.
//
// Two switch backends: on x86-64 ELF (THAM_FIBER_FAST_SWITCH, selected by
// the build) switches are a userspace register swap (~tens of ns); the
// portable fallback uses ucontext, whose swapcontext costs a sigprocmask
// syscall per switch.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#if !defined(THAM_FIBER_FAST_SWITCH)
#include <ucontext.h>
#endif

#if defined(THAM_FIBER_FAST_SWITCH)
extern "C" void tham_fiber_trampoline(void* fiber);
#endif

namespace tham::sim {

/// A pooled fiber stack. Stacks are recycled because MPMD workloads create
/// and destroy millions of short-lived threads (one per threaded RMI).
class StackPool {
 public:
  explicit StackPool(std::size_t stack_bytes);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  char* acquire();
  void release(char* stack);
  std::size_t stack_bytes() const { return stack_bytes_; }
  std::size_t allocated() const { return allocated_; }

 private:
  std::size_t stack_bytes_;
  std::size_t allocated_ = 0;
  std::vector<char*> free_;
};

/// A suspendable execution context. Fibers form a strict two-level scheme:
/// the "main" context (the discrete-event engine) resumes a fiber; the fiber
/// later suspends back to main. Fibers never resume each other directly.
class Fiber {
 public:
  enum class State { Ready, Running, Suspended, Done };

  /// Creates a fiber that will run `body` when first resumed. The stack is
  /// taken from `pool` and returned to it when the body finishes.
  Fiber(std::function<void()> body, StackPool& pool);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs or continues the fiber until it suspends or finishes.
  /// Must be called from the main context.
  void resume();

  /// Rearms a finished fiber with a new body (Task recycling): the object
  /// returns to Ready as if freshly constructed. Must be Done.
  void reset(std::function<void()> body);

  /// Suspends the currently running fiber, returning control to the caller
  /// of resume(). Must be called from inside a fiber.
  static void suspend();

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  State state() const { return state_; }
  bool done() const { return state_ == State::Done; }

 private:
#if defined(THAM_FIBER_FAST_SWITCH)
  friend void ::tham_fiber_trampoline(void* fiber);
  void* make_initial_sp();
#else
  static void trampoline();
#endif
  void run_body();

  std::function<void()> body_;
  StackPool& pool_;
  char* stack_ = nullptr;
#if defined(THAM_FIBER_FAST_SWITCH)
  void* sp_ = nullptr;         ///< fiber's saved stack pointer while parked
  void* return_sp_ = nullptr;  ///< main context's stack pointer while running
#else
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
#endif
  State state_ = State::Ready;
};

}  // namespace tham::sim
