#pragma once
// Stackful fibers — the execution substrate for simulated threads. Every
// simulated thread on every simulated node is a Fiber that the node
// scheduler resumes and that suspends back to the scheduler at blocking
// points. The scheduler context that resumes a fiber may be the main thread
// (sequential engine) or one of the parallel engine's shard workers; a
// fiber only ever runs on its node's current scheduler thread, and all
// cross-thread handoffs happen at executor barriers.
//
// Two switch backends: on x86-64 ELF (THAM_FIBER_FAST_SWITCH, selected by
// the build) switches are a userspace register swap (~tens of ns); the
// portable fallback uses ucontext, whose swapcontext costs a sigprocmask
// syscall per switch.

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#if !defined(THAM_FIBER_FAST_SWITCH)
#include <ucontext.h>
#endif

#if defined(THAM_FIBER_FAST_SWITCH)
extern "C" void tham_fiber_trampoline(void* fiber);
#endif

namespace tham::sim {

/// Index of the shard worker the calling thread is executing for (0 on the
/// main thread and in sequential runs). Set by the parallel executor; used
/// to pick the lock-free per-worker free list inside StackPool.
int worker_slot();
void set_worker_slot(int slot);

/// A pooled fiber stack. Stacks are recycled because MPMD workloads create
/// and destroy millions of short-lived threads (one per threaded RMI).
///
/// Thread safety: free lists are sharded per worker slot. A stack is always
/// released on the thread that ran the fiber, and a node's fibers run on
/// exactly one worker per run, so acquire/release stay within one slot and
/// need no lock; only the allocated-stacks counter is shared (atomic).
class StackPool {
 public:
  /// Upper bound on shard workers (and so on engine threads).
  static constexpr int kMaxSlots = 64;

  explicit StackPool(std::size_t stack_bytes);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  char* acquire();
  void release(char* stack);
  std::size_t stack_bytes() const { return stack_bytes_; }
  std::size_t allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t stack_bytes_;
  std::atomic<std::size_t> allocated_{0};
  std::array<std::vector<char*>, kMaxSlots> free_;
};

/// A suspendable execution context. Fibers form a strict two-level scheme:
/// the "main" context (the discrete-event engine) resumes a fiber; the fiber
/// later suspends back to main. Fibers never resume each other directly.
class Fiber {
 public:
  enum class State { Ready, Running, Suspended, Done };

  /// Creates a fiber that will run `body` when first resumed. The stack is
  /// taken from `pool` and returned to it when the body finishes.
  Fiber(std::function<void()> body, StackPool& pool);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs or continues the fiber until it suspends or finishes.
  /// Must be called from the main context.
  void resume();

  /// Rearms a finished fiber with a new body (Task recycling): the object
  /// returns to Ready as if freshly constructed. Must be Done.
  void reset(std::function<void()> body);

  /// Suspends the currently running fiber, returning control to the caller
  /// of resume(). Must be called from inside a fiber.
  static void suspend();

  /// The fiber currently executing, or nullptr when in the main context.
  static Fiber* current();

  State state() const { return state_; }
  bool done() const { return state_ == State::Done; }

 private:
#if defined(THAM_FIBER_FAST_SWITCH)
  friend void ::tham_fiber_trampoline(void* fiber);
  void* make_initial_sp();
#else
  static void trampoline();
#endif
  void run_body();

  std::function<void()> body_;
  StackPool& pool_;
  char* stack_ = nullptr;
#if defined(THAM_FIBER_FAST_SWITCH)
  void* sp_ = nullptr;         ///< fiber's saved stack pointer while parked
  void* return_sp_ = nullptr;  ///< main context's stack pointer while running
#else
  ucontext_t ctx_{};
  ucontext_t return_ctx_{};
#endif
  // ThreadSanitizer shadow contexts (see the TSan protocol note in
  // fiber.cpp). Declared unconditionally so the class layout does not vary
  // with sanitizer flags; both stay nullptr outside TSan builds.
  void* tsan_fiber_ = nullptr;   ///< __tsan_create_fiber context, owned
  void* tsan_return_ = nullptr;  ///< resuming scheduler's TSan context
  State state_ = State::Ready;
};

}  // namespace tham::sim
