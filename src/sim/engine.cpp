#include "sim/engine.hpp"

#include <cstdio>
#include <string>

#include "check/checker.hpp"
#include "common/check.hpp"
#include "common/env.hpp"
#include "sim/executor.hpp"

namespace tham::sim {

Engine::Engine(int num_nodes, const CostModel& cm, std::size_t stack_bytes)
    : cost_(cm), stack_pool_(stack_bytes), threads_(env_sim_threads()) {
  THAM_CHECK(num_nodes > 0);
#if defined(THAM_CHECK_ENABLED)
  if (check::Checker::auto_attach()) {
    checker_ = std::make_unique<check::Checker>();
    checker_->install();
  }
#endif
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
  }
  setup_shards(1);
}

Engine::~Engine() {
  if (checker_) checker_->uninstall();
}

void Engine::set_threads(int n) {
  THAM_CHECK_MSG(!ran_, "set_threads() after run()");
  threads_ = n < 1 ? 1 : n;
}

void Engine::set_machine(std::string_view name) {
  THAM_CHECK_MSG(!ran_, "set_machine() after run()");
  cost_ = make_machine(name);
}

void Engine::require_sequential(const char* why) {
  if (seq_only_why_ == nullptr) seq_only_why_ = why;
}

SimTime Engine::head_time() const {
  SimTime h = std::numeric_limits<SimTime>::max();
  for (const auto& s : shards_) {
    if (!s->queue.empty() && s->queue.top().t < h) h = s->queue.top().t;
  }
  return h;
}

void Engine::wake(Node* n, SimTime t) {
  shards_[shard_ix_[static_cast<std::size_t>(n->id())]]->queue.push(
      Ev{t, n->id()});
}

void Engine::deliver(NodeId dst, Message m) {
  if (in_parallel_window_.load(std::memory_order_relaxed)) {
    int ds = shard_ix_[static_cast<std::size_t>(dst)];
    int ss = worker_slot();
    if (ds != ss) {
      // Mid-epoch cross-shard send: park it in this shard's outbox; the
      // owning worker moves it into the destination inbox at the barrier
      // (its arrival is beyond the epoch horizon, so nothing is lost).
      shards_[static_cast<std::size_t>(ss)]->outbox[static_cast<std::size_t>(
          ds)].push_back(PendingMsg{dst, std::move(m)});
      return;
    }
  }
  nodes_[static_cast<std::size_t>(dst)]->enqueue_message(std::move(m));
}

int Engine::plan_shards() {
  int want = threads_;
  if (want > size()) want = size();
  if (want > StackPool::kMaxSlots) want = StackPool::kMaxSlots;
  if (want <= 1) return 1;
  const char* why = seq_only_why_;
#if defined(THAM_CHECK_ENABLED)
  // Checker hooks funnel every shard's events into one vector-clock state;
  // keep those runs on the reference executor rather than lock the hot path.
  if (why == nullptr && check::Checker::active() != nullptr) {
    why = "a tham-check checker is attached";
  }
#endif
  if (why == nullptr && cost_.lookahead() <= 0) {
    why = "the cost model has zero network lookahead";
  }
  if (why != nullptr) {
    std::fprintf(stderr,
                 "tham-sim: %d-thread run forced onto the sequential "
                 "executor: %s\n",
                 threads_, why);
    return 1;
  }
  return want;
}

void Engine::setup_shards(int count) {
  // Collect any events already queued (pre-run sends from tests/benches)
  // so re-sharding never drops an activation.
  std::vector<Ev> pending;
  for (auto& s : shards_) {
    while (!s->queue.empty()) {
      pending.push_back(s->queue.top());
      s->queue.pop();
    }
  }
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto s = std::make_unique<Shard>();
    s->outbox.resize(static_cast<std::size_t>(count));
    shards_.push_back(std::move(s));
  }
  shard_ix_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    shard_ix_[i] = static_cast<int>(i) % count;
  }
  for (const Ev& ev : pending) {
    shards_[static_cast<std::size_t>(shard_ix_[static_cast<std::size_t>(
        ev.n)])]->queue.push(ev);
  }
}

void Engine::run() {
  THAM_CHECK_MSG(!ran_, "Engine::run() called twice");
  ran_ = true;

  int count = plan_shards();
  shards_used_ = count;
  if (count != static_cast<int>(shards_.size())) setup_shards(count);

  // Kick every node that already has spawned tasks.
  for (auto& n : nodes_) wake(n.get(), 0);

  if (count > 1) {
    ParallelExecutor ex(*this, count);
    ex.run();
  } else {
    SequentialExecutor ex(*this);
    ex.run();
  }
  // Elapsed virtual time: the furthest any node's clock reached while the
  // program ran. Defined on node clocks, not on dispatched event
  // timestamps, because the activation multiset contains engine-dependent
  // bookkeeping wakes (epoch pauses) while node clocks are bit-identical
  // across executors.
  for (const auto& n : nodes_) {
    if (n->now() > vtime_) vtime_ = n->now();
  }

  // Event queues drained: the program is over. Unwind daemon tasks (polling
  // threads) so their fibers finish cleanly, then look for real deadlocks.
  // This drain runs merged on the calling thread regardless of shard count.
  for (auto& n : nodes_) n->begin_shutdown();
  for (;;) {
    Shard* best = nullptr;
    for (auto& s : shards_) {
      if (s->queue.empty()) continue;
      if (best == nullptr || EvBefore{}(s->queue.top(), best->queue.top())) {
        best = s.get();
      }
    }
    if (best == nullptr) break;
    Ev ev = best->queue.top();
    best->queue.pop();
    nodes_[static_cast<std::size_t>(ev.n)]->on_wake(ev.t);
  }

  finish_run();
}

void Engine::finish_run() {
  if (checker_ && check::Checker::active() == checker_.get()) {
    for (auto& n : nodes_) n->audit_terminal(*checker_);
    for (auto& hook : audit_hooks_) hook(*checker_);
    checker_->finish_run();
    // Diagnostics are advisory: print them, leave pass/fail to the caller
    // (tests assert on checker()->diagnostics(), apps on the smoke gate).
    checker_->print(stderr);
  }

  for (auto& n : nodes_) {
    for (auto& s : n->stuck_tasks()) stuck_.push_back(s);
  }
  deadlocked_ = !stuck_.empty();
  if (deadlocked_ && !allow_deadlock_) {
    // The abort diagnostic carries the full stuck-task list (task name and
    // the reason it parked), so a deadlock in a batch run is debuggable
    // from the abort message alone.
    std::string diag = "simulated program deadlock: " +
                       std::to_string(stuck_.size()) +
                       " task(s) never finished";
    for (const auto& s : stuck_) diag += "\n  stuck: " + s;
    std::fprintf(stderr, "%s\n", diag.c_str());
    THAM_CHECK_MSG(false, diag.c_str());
  }
}

}  // namespace tham::sim
