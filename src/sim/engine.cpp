#include "sim/engine.hpp"

#include <cstdio>

#include "check/checker.hpp"
#include "common/check.hpp"

namespace tham::sim {

Engine::Engine(int num_nodes, const CostModel& cm, std::size_t stack_bytes)
    : cost_(cm), stack_pool_(stack_bytes) {
  THAM_CHECK(num_nodes > 0);
#if defined(THAM_CHECK_ENABLED)
  if (check::Checker::auto_attach()) {
    checker_ = std::make_unique<check::Checker>();
    checker_->install();
  }
#endif
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (NodeId i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
  }
}

Engine::~Engine() {
  if (checker_) checker_->uninstall();
}

void Engine::wake(Node* n, SimTime t) {
  queue_.push(Ev{t, next_seq(), n->id()});
}

void Engine::run() {
  THAM_CHECK_MSG(!ran_, "Engine::run() called twice");
  ran_ = true;

  // Kick every node that already has spawned tasks.
  for (auto& n : nodes_) wake(n.get(), 0);

  while (!queue_.empty()) {
    Ev ev = queue_.top();
    queue_.pop();
    if (ev.t > vtime_) vtime_ = ev.t;
    nodes_[static_cast<std::size_t>(ev.n)]->on_wake(ev.t);
  }

  // Event queue drained: the program is over. Unwind daemon tasks (polling
  // threads) so their fibers finish cleanly, then look for real deadlocks.
  for (auto& n : nodes_) n->begin_shutdown();
  while (!queue_.empty()) {
    Ev ev = queue_.top();
    queue_.pop();
    nodes_[static_cast<std::size_t>(ev.n)]->on_wake(ev.t);
  }

  if (checker_ && check::Checker::active() == checker_.get()) {
    for (auto& n : nodes_) n->audit_terminal(*checker_);
    checker_->finish_run();
    // Diagnostics are advisory: print them, leave pass/fail to the caller
    // (tests assert on checker()->diagnostics(), apps on the smoke gate).
    checker_->print(stderr);
  }

  for (auto& n : nodes_) {
    for (auto& s : n->stuck_tasks()) stuck_.push_back(s);
  }
  deadlocked_ = !stuck_.empty();
  if (deadlocked_ && !allow_deadlock_) {
    std::fprintf(stderr,
                 "simulated program deadlock: %zu task(s) never finished\n",
                 stuck_.size());
    for (const auto& s : stuck_) std::fprintf(stderr, "  stuck: %s\n", s.c_str());
    THAM_CHECK_MSG(false, "simulated program deadlock");
  }
}

}  // namespace tham::sim
