#include "sim/engine.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "check/checker.hpp"
#include "common/check.hpp"
#include "common/env.hpp"
#include "sim/executor.hpp"

namespace tham::sim {

namespace {

Engine::ShardPolicy env_shard_policy() {
  const char* s = env_str("THAM_SIM_SHARD_POLICY", "block");
  if (std::strcmp(s, "block") == 0) return Engine::ShardPolicy::Block;
  if (std::strcmp(s, "roundrobin") == 0 || std::strcmp(s, "rr") == 0) {
    return Engine::ShardPolicy::RoundRobin;
  }
  std::fprintf(stderr,
               "tham-sim: unknown THAM_SIM_SHARD_POLICY '%s' "
               "(expected block|roundrobin); using block\n",
               s);
  return Engine::ShardPolicy::Block;
}

Engine::LookaheadPolicy env_lookahead_policy() {
  const char* s = env_str("THAM_SIM_LOOKAHEAD", "link");
  if (std::strcmp(s, "link") == 0) return Engine::LookaheadPolicy::PerLink;
  if (std::strcmp(s, "global") == 0) return Engine::LookaheadPolicy::Global;
  std::fprintf(stderr,
               "tham-sim: unknown THAM_SIM_LOOKAHEAD '%s' "
               "(expected link|global); using link\n",
               s);
  return Engine::LookaheadPolicy::PerLink;
}

}  // namespace

Engine::Engine(int num_nodes, const CostModel& cm, std::size_t stack_bytes)
    : cost_(cm),
      stack_pool_(stack_bytes),
      threads_(env_sim_threads()),
      shard_policy_(env_shard_policy()),
      lookahead_policy_(env_lookahead_policy()) {
  THAM_CHECK(num_nodes > 0);
#if defined(THAM_CHECK_ENABLED)
  if (check::Checker::auto_attach()) {
    checker_ = std::make_unique<check::Checker>();
    checker_->install();
  }
#endif
  num_nodes_ = num_nodes;
  nodes_ = std::allocator<Node>{}.allocate(static_cast<std::size_t>(num_nodes));
  for (NodeId i = 0; i < num_nodes; ++i) {
    std::construct_at(nodes_ + i, *this, i);
  }
  setup_shards(1);
}

Engine::~Engine() {
  if (checker_) checker_->uninstall();
  for (NodeId i = num_nodes_; i-- > 0;) std::destroy_at(nodes_ + i);
  std::allocator<Node>{}.deallocate(nodes_,
                                    static_cast<std::size_t>(num_nodes_));
}

void Engine::set_threads(int n) {
  THAM_CHECK_MSG(!ran_, "set_threads() after run()");
  threads_ = n < 1 ? 1 : n;
}

void Engine::set_shard_policy(ShardPolicy p) {
  THAM_CHECK_MSG(!ran_, "set_shard_policy() after run()");
  shard_policy_ = p;
}

void Engine::set_lookahead_policy(LookaheadPolicy p) {
  THAM_CHECK_MSG(!ran_, "set_lookahead_policy() after run()");
  lookahead_policy_ = p;
}

void Engine::set_machine(std::string_view name) {
  THAM_CHECK_MSG(!ran_, "set_machine() after run()");
  cost_ = make_machine(name);
}

void Engine::declare_link(NodeId src, NodeId dst, SimTime min_wire) {
  THAM_CHECK_MSG(!ran_, "declare_link() after run()");
  // Declaration mistakes throw (not abort): topology is host-side setup
  // driven by app/config code, and the planner silently absorbing a
  // duplicate or a nonpositive floor is exactly the footgun the static
  // analyzer exists to close.
  auto where = [&] {
    return " (link " + std::to_string(src) + " -> " + std::to_string(dst) +
           ", floor " + std::to_string(min_wire) + " ns)";
  };
  THAM_REQUIRE(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_,
               "declare_link(): node id out of range" + where());
  THAM_REQUIRE(src != dst, "declare_link() on a self link" + where());
  THAM_REQUIRE(min_wire > 0,
               "declare_link() needs a positive wire-time floor" + where());
  auto [it, inserted] = link_floor_.emplace(link_key(src, dst), min_wire);
  if (!inserted) {
    THAM_REQUIRE(it->second != min_wire,
                 "declare_link(): exact duplicate declaration" + where());
    if (min_wire < it->second) it->second = min_wire;
  }
  links_.push_back(Link{src, dst, min_wire});
}

void Engine::require_sequential(const char* why) {
  if (seq_only_why_ == nullptr) seq_only_why_ = why;
}

SimTime Engine::head_time() const {
  SimTime h = std::numeric_limits<SimTime>::max();
  for (const auto& s : shards_) {
    if (!s->queue.empty() && s->queue.top().t < h) h = s->queue.top().t;
  }
  return h;
}

void Engine::wake(Node* n, SimTime t) {
  // Coalesced (see engine.hpp): the armed activation already covers any
  // wake at or after it; re-arming after dispatch reconstructs the rest.
  if (t >= n->armed_at()) return;
  n->set_armed(t);
  shards_[static_cast<std::size_t>(
              shard_ix_[static_cast<std::size_t>(n->id())])]
      ->queue.push(Ev{t, n->id()});
}

bool Engine::dispatch(const Ev& ev) {
  Node& n = nodes_[static_cast<std::size_t>(ev.n)];
  if (ev.t != n.armed_at()) return false;  // superseded entry: drop
  n.set_armed(Node::kNeverArmed);
  n.on_wake(ev.t);
  SimTime next = n.next_activation_time();
  if (next != Node::kNeverArmed) wake(&n, next);
  return true;
}

void Engine::deliver(NodeId dst, Message m) {
  if (in_parallel_window_.load(std::memory_order_relaxed)) {
    int ds = shard_ix_[static_cast<std::size_t>(dst)];
    int ss = worker_slot();
    if (ds != ss) {
      // Mid-epoch cross-shard send: park it in this shard's outbox; the
      // destination shard batch-merges it at the epoch boundary (its
      // arrival is beyond the epoch horizon, so nothing is lost).
      // min_arrival caps the destination's horizon until then.
      Outbox& box = shards_[static_cast<std::size_t>(ss)]
                        ->outbox[static_cast<std::size_t>(ds)];
      if (m.arrival < box.min_arrival) box.min_arrival = m.arrival;
      box.msgs.push_back(PendingMsg{dst, std::move(m)});
      return;
    }
  }
  nodes_[static_cast<std::size_t>(dst)].enqueue_message(std::move(m));
}

int Engine::plan_shards() {
  int want = threads_;
  if (want > size()) want = size();
  if (want > StackPool::kMaxSlots) want = StackPool::kMaxSlots;
  if (want <= 1) return 1;
  const char* why = seq_only_why_;
#if defined(THAM_CHECK_ENABLED)
  // Checker hooks funnel every shard's events into one vector-clock state;
  // keep those runs on the reference executor rather than lock the hot path.
  if (why == nullptr && check::Checker::active() != nullptr) {
    why = "a tham-check checker is attached";
  }
#endif
  if (why == nullptr && cost_.lookahead() <= 0) {
    why = "the cost model has zero network lookahead";
  }
  if (why != nullptr) {
    std::fprintf(stderr,
                 "tham-sim: %d-thread run forced onto the sequential "
                 "executor: %s\n",
                 threads_, why);
    return 1;
  }
  return want;
}

void Engine::setup_shards(int count) {
  // Collect any events already queued (pre-run sends from tests/benches)
  // so re-sharding never drops an activation. Armed times live on the
  // nodes and survive the move unchanged.
  std::vector<Ev> pending;
  for (auto& s : shards_) {
    while (!s->queue.empty()) {
      pending.push_back(s->queue.top());
      s->queue.pop();
    }
  }
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    auto s = std::make_unique<Shard>();
    s->outbox.resize(static_cast<std::size_t>(count));
    shards_.push_back(std::move(s));
  }
  shard_limits_ = std::vector<ShardLimit>(static_cast<std::size_t>(count));
  shard_ix_.resize(static_cast<std::size_t>(num_nodes_));
  if (shard_policy_ == ShardPolicy::RoundRobin) {
    for (std::size_t i = 0; i < shard_ix_.size(); ++i) {
      shard_ix_[i] = static_cast<int>(i) % count;
    }
  } else {
    // Block: shard s owns the contiguous id range [s*base + min(s, rem),
    // ...) — the first `rem` shards get one extra node. Contiguous ranges
    // keep each worker's slice of the node arena contiguous too.
    std::size_t n = shard_ix_.size();
    std::size_t base = n / static_cast<std::size_t>(count);
    std::size_t rem = n % static_cast<std::size_t>(count);
    std::size_t i = 0;
    for (int s = 0; s < count; ++s) {
      std::size_t take = base + (static_cast<std::size_t>(s) < rem ? 1 : 0);
      for (std::size_t k = 0; k < take; ++k) shard_ix_[i++] = s;
    }
    THAM_CHECK(i == n);
  }
  for (const Ev& ev : pending) {
    shards_[static_cast<std::size_t>(
                shard_ix_[static_cast<std::size_t>(ev.n)])]
        ->queue.push(ev);
  }
}

void Engine::build_wire_floors() {
  wire_floor_.clear();
  if (links_.empty()) return;
  auto count = shards_.size();
  wire_floor_.assign(count * count, std::numeric_limits<SimTime>::max());
  for (const Link& l : links_) {
    auto ix = static_cast<std::size_t>(
                  shard_ix_[static_cast<std::size_t>(l.src)]) *
                  count +
              static_cast<std::size_t>(
                  shard_ix_[static_cast<std::size_t>(l.dst)]);
    if (l.min_wire < wire_floor_[ix]) wire_floor_[ix] = l.min_wire;
  }
}

void Engine::run() {
  THAM_CHECK_MSG(!ran_, "Engine::run() called twice");
  ran_ = true;

  int count = plan_shards();
  shards_used_ = count;
  if (count != static_cast<int>(shards_.size())) setup_shards(count);
  build_wire_floors();
  profile_ = EpochProfile{};

  // Kick every node that already has spawned tasks.
  for (NodeId i = 0; i < num_nodes_; ++i) wake(nodes_ + i, 0);

  if (count > 1) {
    ParallelExecutor ex(*this, count);
    ex.run();
  } else {
    SequentialExecutor ex(*this);
    ex.run();
  }
  // Elapsed virtual time: the furthest any node's clock reached while the
  // program ran. Defined on node clocks, not on dispatched event
  // timestamps, because the activation multiset contains engine-dependent
  // bookkeeping wakes (epoch pauses) while node clocks are bit-identical
  // across executors.
  for (NodeId i = 0; i < num_nodes_; ++i) {
    if (nodes_[i].now() > vtime_) vtime_ = nodes_[i].now();
  }

  // Event queues drained: the program is over. Unwind daemon tasks (polling
  // threads) so their fibers finish cleanly, then look for real deadlocks.
  // This drain runs merged on the calling thread regardless of shard count.
  for (NodeId i = 0; i < num_nodes_; ++i) nodes_[i].begin_shutdown();
  for (;;) {
    Shard* best = nullptr;
    for (auto& s : shards_) {
      if (s->queue.empty()) continue;
      if (best == nullptr || EvBefore{}(s->queue.top(), best->queue.top())) {
        best = s.get();
      }
    }
    if (best == nullptr) break;
    Ev ev = best->queue.top();
    best->queue.pop();
    dispatch(ev);
  }

  finish_run();
}

void Engine::finish_run() {
  if (checker_ && check::Checker::active() == checker_.get()) {
    for (NodeId i = 0; i < num_nodes_; ++i) {
      nodes_[i].audit_terminal(*checker_);
    }
    for (auto& hook : audit_hooks_) hook(*checker_);
    checker_->finish_run();
    // Diagnostics are advisory: print them, leave pass/fail to the caller
    // (tests assert on checker()->diagnostics(), apps on the smoke gate).
    checker_->print(stderr);
  }

  for (NodeId i = 0; i < num_nodes_; ++i) {
    for (auto& s : nodes_[i].stuck_tasks()) stuck_.push_back(s);
  }
  deadlocked_ = !stuck_.empty();
  if (deadlocked_ && !allow_deadlock_) {
    // The abort diagnostic carries the full stuck-task list (task name and
    // the reason it parked), so a deadlock in a batch run is debuggable
    // from the abort message alone.
    std::string diag = "simulated program deadlock: " +
                       std::to_string(stuck_.size()) +
                       " task(s) never finished";
    for (const auto& s : stuck_) diag += "\n  stuck: " + s;
    std::fprintf(stderr, "%s\n", diag.c_str());
    THAM_CHECK_MSG(false, diag.c_str());
  }
}

}  // namespace tham::sim
