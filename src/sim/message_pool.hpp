#pragma once
// Slab-backed pool of in-flight Message records plus an index min-heap over
// them, replacing the per-node std::priority_queue<Message>. Records live in
// fixed slabs (never moved, recycled through a free list), and the heap
// orders 4-byte indices keyed on (arrival, seq) — so every sift moves ints
// instead of ~120-byte Message objects, and a steady-state push/pop cycle
// touches no allocator at all once the high-water mark is reached.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "sim/message.hpp"
#include "sim/quad_heap.hpp"

namespace tham::sim {

class MessagePool {
 public:
  using Index = std::uint32_t;

  MessagePool() : heap_(EarlierRecord{this}) {}

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// The earliest queued message: min (arrival, seq).
  const Message& top() const { return record(heap_.top()); }

  void push(Message m) {
    Index i = acquire();
    record(i) = std::move(m);
    heap_.push(i);
  }

  /// Removes and returns the earliest message; its record returns to the
  /// free list immediately (the returned Message owns the moved-out state).
  Message pop() {
    Index i = heap_.top();
    heap_.pop();
    Message m = std::move(record(i));
    free_.push_back(i);
    return m;
  }

  // --- Introspection (tests / stats) ---------------------------------------
  std::size_t capacity() const { return slabs_.size() * kSlabSize; }
  std::size_t free_records() const { return free_.size(); }

  /// Visits every pending message in unspecified order (terminal audits:
  /// distinguishing injected-fault artifacts from genuinely lost messages).
  template <typename F>
  void for_each_pending(F&& f) const {
    for (Index i : heap_.data()) f(record(i));
  }

 private:
  static constexpr std::size_t kSlabSize = 64;

  Message& record(Index i) { return slabs_[i / kSlabSize][i % kSlabSize]; }
  const Message& record(Index i) const {
    return slabs_[i / kSlabSize][i % kSlabSize];
  }

  Index acquire() {
    if (free_.empty()) grow();
    Index i = free_.back();
    free_.pop_back();
    return i;
  }

  void grow() {
    THAM_CHECK_MSG(capacity() + kSlabSize <= UINT32_MAX,
                   "MessagePool exhausted the 32-bit index space");
    auto base = static_cast<Index>(capacity());
    slabs_.push_back(std::make_unique<Message[]>(kSlabSize));
    // Descending, so records are first handed out in index order.
    for (std::size_t k = kSlabSize; k-- > 0;) {
      free_.push_back(base + static_cast<Index>(k));
    }
  }

  struct EarlierRecord {
    const MessagePool* pool;
    bool operator()(Index a, Index b) const {
      const Message& ma = pool->record(a);
      const Message& mb = pool->record(b);
      if (ma.arrival != mb.arrival) return ma.arrival < mb.arrival;
      // seq is per-source: ties across sources order by source id, ties
      // within a source by its own send order. Engine-schedule independent.
      if (ma.src != mb.src) return ma.src < mb.src;
      return ma.seq < mb.seq;
    }
  };

  std::vector<std::unique_ptr<Message[]>> slabs_;
  std::vector<Index> free_;
  QuadHeap<Index, EarlierRecord> heap_;
};

}  // namespace tham::sim
