#pragma once
// The unit of inter-node communication at the simulation level. Higher
// layers (AM, MPL, Nexus) encode their protocols in the `deliver` closure;
// the simulator only cares about timestamps and ordering.

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace tham::sim {

class Node;

struct Message {
  SimTime arrival = 0;     ///< virtual time the message is available at dst
  NodeId src = kInvalidNode;
  std::uint64_t seq = 0;   ///< global send order; breaks arrival-time ties
  std::size_t wire_bytes = 0;  ///< payload size on the wire (stats only)
  /// Runs at the receiving node, in the context of the simulated thread
  /// that polled the message (exactly Active Message handler semantics).
  std::function<void(Node&)> deliver;
};

/// Ordering for the per-node inbox min-heap: earliest arrival first,
/// FIFO (send order) among equal arrivals.
struct MessageLater {
  bool operator()(const Message& a, const Message& b) const {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.seq > b.seq;
  }
};

}  // namespace tham::sim
