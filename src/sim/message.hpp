#pragma once
// The unit of inter-node communication at the simulation level. Higher
// layers (AM, MPL, Nexus) encode their protocols in the `deliver` closure;
// the simulator only cares about timestamps and ordering.

#include <cstdint>

#include "common/types.hpp"
#include "sim/inline_handler.hpp"

namespace tham::sim {

class Node;

/// Message::fault_flags bits. Set by the fault injector (net boundary) and
/// the reliable transport; zero on every message of a fault-free run.
enum : std::uint8_t {
  /// Payload-corruption marker: the bits arrived damaged. Receivers that
  /// care (transport::Reliable) drop the message instead of acking it.
  kFaultCorrupt = 1u << 0,
  /// This record is the injector-made duplicate copy, not the original.
  kFaultInjectedDup = 1u << 1,
  /// Protocol-internal frame (ack or retransmission) of the reliable
  /// transport: if still undelivered when the run drains it is transport
  /// residue, not an application message loss.
  kFaultProtoAux = 1u << 2,
};

struct Message {
  SimTime arrival = 0;     ///< virtual time the message is available at dst
  NodeId src = kInvalidNode;
  /// Per-source send order (Node::next_send_seq). Arrival-time ties break
  /// on (src, seq) — a key each sender produces deterministically on its
  /// own, with no globally interleaved counter, so sequential and parallel
  /// engines derive the identical delivery order.
  std::uint64_t seq = 0;
  std::size_t wire_bytes = 0;  ///< payload size on the wire (stats only)
  /// Runs at the receiving node, in the context of the simulated thread
  /// that polled the message (exactly Active Message handler semantics).
  /// Stored inline — a send never heap-allocates for the closure.
  InlineHandler deliver;
  /// tham-check send-clock id: carries the sender's vector-clock snapshot
  /// to the delivery hook. 0 (no snapshot) whenever no checker is attached.
  std::uint32_t check_clock = 0;
  /// Fault-injection markers (kFault* bits above). Last on purpose:
  /// positional aggregate initializers stay valid.
  std::uint8_t fault_flags = 0;
};

}  // namespace tham::sim
