#pragma once
// Cache-friendly 4-ary min-heap over a flat vector. Compared with the
// std::priority_queue binary heap, a 4-ary layout halves the tree depth, so
// sift operations touch half as many (likely-cold) levels while the four
// children of a node share one or two cache lines. Element moves on sift are
// plain value moves, so keeping the element small (an index or a 20-byte
// event record) keeps every reheap cheap.

#include <cstddef>
#include <utility>
#include <vector>

namespace tham::sim {

/// `Before(a, b)` returns true when `a` must be popped before `b`; it must
/// be a strict weak ordering. Pop order among equivalent elements is
/// unspecified, so orderings used by the simulator always include a unique
/// sequence number to stay deterministic.
template <typename T, typename Before>
class QuadHeap {
 public:
  explicit QuadHeap(Before before = Before{}) : before_(before) {}

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  const T& top() const { return v_.front(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  /// The backing vector, in heap (not pop) order. For whole-container scans
  /// (terminal audits) that need every element but no particular order.
  const std::vector<T>& data() const { return v_; }

  void push(T x) {
    v_.push_back(std::move(x));
    sift_up(v_.size() - 1);
  }

  void pop() {
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      v_.front() = std::move(last);
      sift_down(0);
    }
  }

  /// Inserts [first, last) in one pass: append everything, then repair the
  /// heap either by sifting each new element up (small batches) or by a
  /// full Floyd rebuild (large batches, O(n) total instead of O(k log n)).
  /// Equivalent to push()-ing each element: the internal layout may differ
  /// between the two strategies, but pop order is fixed by the ordering,
  /// which simulator keys make total (equal elements are identical).
  template <typename InputIt>
  void bulk_push(InputIt first, InputIt last) {
    const std::size_t old = v_.size();
    v_.insert(v_.end(), first, last);
    const std::size_t added = v_.size() - old;
    if (added == 0) return;
    if (added * 4 >= v_.size()) {
      rebuild();
    } else {
      for (std::size_t i = old; i < v_.size(); ++i) sift_up(i);
    }
  }

 private:
  /// Floyd heap construction: sift every internal node down, deepest
  /// parents first. O(n) for a 4-ary heap.
  void rebuild() {
    if (v_.size() < 2) return;
    for (std::size_t i = (v_.size() - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }

  void sift_up(std::size_t i) {
    T x = std::move(v_[i]);
    while (i > 0) {
      std::size_t parent = (i - 1) / 4;
      if (!before_(x, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(x);
  }

  void sift_down(std::size_t i) {
    T x = std::move(v_[i]);
    const std::size_t n = v_.size();
    for (;;) {
      std::size_t child = 4 * i + 1;
      if (child >= n) break;
      std::size_t best = child;
      std::size_t end = child + 4 < n ? child + 4 : n;
      for (std::size_t k = child + 1; k < end; ++k) {
        if (before_(v_[k], v_[best])) best = k;
      }
      if (!before_(v_[best], x)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(x);
  }

  std::vector<T> v_;
  Before before_;
};

}  // namespace tham::sim
