#pragma once
// Power-of-two ring buffer FIFO. Replaces std::deque for the node run
// queue: a deque releases and re-acquires its block storage as the window
// of live elements slides, so a steady spawn/finish rhythm keeps touching
// the allocator. The ring only allocates on capacity growth, which stops
// once the workload's high-water mark is reached.

#include <cstddef>
#include <utility>
#include <vector>

namespace tham::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  void push_back(T x) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(x);
    ++count_;
  }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

 private:
  void grow() {
    std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_.swap(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace tham::sim
