#pragma once
// Spread arrays: Split-C's block-cyclic parallel storage layout
// (`double A[n]::[b]`). Storage is allocated per node before the SPMD
// program starts (mirroring Split-C's static allocation) and elements are
// addressed with global pointers computed from the layout — the "arithmetic
// on the node part of the global pointer" the paper describes.

#include <cstddef>
#include <vector>

#include "common/check.hpp"
#include "sim/engine.hpp"
#include "splitc/global_ptr.hpp"

namespace tham::splitc {

template <typename T>
class SpreadArray {
 public:
  /// `n` elements spread over all nodes in blocks of `block` elements,
  /// round-robin: element i lives on node (i/block) % P at local offset
  /// (i/(block*P))*block + i%block.
  SpreadArray(sim::Engine& engine, std::size_t n, std::size_t block = 1)
      : procs_(engine.size()), n_(n), block_(block),
        local_(static_cast<std::size_t>(procs_)) {
    THAM_CHECK(block_ > 0);
    std::size_t per_node =
        (n_ / (block_ * static_cast<std::size_t>(procs_)) + 1) * block_;
    for (auto& v : local_) v.assign(per_node, T{});
  }

  std::size_t size() const { return n_; }
  std::size_t block() const { return block_; }

  NodeId owner(std::size_t i) const {
    return static_cast<NodeId>((i / block_) %
                               static_cast<std::size_t>(procs_));
  }

  std::size_t local_index(std::size_t i) const {
    std::size_t stride = block_ * static_cast<std::size_t>(procs_);
    return (i / stride) * block_ + i % block_;
  }

  /// Global pointer to element i.
  global_ptr<T> gp(std::size_t i) {
    THAM_CHECK(i < n_);
    auto node = owner(i);
    return global_ptr<T>(node,
                         &local_[static_cast<std::size_t>(node)]
                                [local_index(i)]);
  }

  /// Direct host-side access (for setup and verification outside the
  /// simulated program only).
  T& at_host(std::size_t i) {
    return local_[static_cast<std::size_t>(owner(i))][local_index(i)];
  }
  const T& at_host(std::size_t i) const {
    return local_[static_cast<std::size_t>(owner(i))][local_index(i)];
  }

 private:
  int procs_;
  std::size_t n_;
  std::size_t block_;
  std::vector<std::vector<T>> local_;
};

}  // namespace tham::splitc
