#pragma once
// Split-C global pointers: a (processing node, local address) pair whose
// structure is visible to the programmer (Section 2 of the paper).
// Arithmetic acts on the local-address part; the node part is explicit.

#include <cstddef>

#include "common/types.hpp"

namespace tham::splitc {

template <typename T>
struct global_ptr {
  NodeId node = 0;
  T* addr = nullptr;

  constexpr global_ptr() = default;
  constexpr global_ptr(NodeId n, T* a) : node(n), addr(a) {}

  constexpr bool is_null() const { return addr == nullptr; }

  constexpr global_ptr operator+(std::ptrdiff_t d) const {
    return global_ptr(node, addr + d);
  }
  constexpr global_ptr operator-(std::ptrdiff_t d) const {
    return global_ptr(node, addr - d);
  }
  global_ptr& operator+=(std::ptrdiff_t d) {
    addr += d;
    return *this;
  }
  constexpr bool operator==(const global_ptr&) const = default;

  /// Re-types the pointer (the Split-C cast).
  template <typename U>
  constexpr global_ptr<U> cast() const {
    return global_ptr<U>(node, reinterpret_cast<U*>(addr));
  }
};

}  // namespace tham::splitc
