#pragma once
// The Split-C runtime system: an SPMD world in which every node runs the
// same program, synchronizing through barriers and communicating through
// global-pointer accesses implemented directly on Active Messages — the
// highly tuned SPMD baseline of the paper.

#include <cstddef>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "am/am.hpp"
#include "coll/coll.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "splitc/global_ptr.hpp"

namespace tham::splitc {

/// An atomic remote procedure (Figure 2's `atomic(foo, 0)`): runs in the
/// remote handler, atomically with respect to that node's computation.
/// Up to four argument words.
using AtomicFn = std::function<am::Word(sim::Node& self, am::Word a0,
                                        am::Word a1, am::Word a2, am::Word a3)>;

class World {
 public:
  /// Builds the runtime on an existing machine. One World per Engine.
  World(sim::Engine& engine, net::Network& net, am::AmLayer& am);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `program` SPMD-style: one main thread per node, then drives the
  /// simulation to completion.
  void run(std::function<void()> program);

  /// The world of the running program (for the free-function API).
  static World& current();

  int procs() const { return engine_.size(); }
  sim::Engine& engine() { return engine_; }
  am::AmLayer& am() { return am_; }

  /// Registers an atomic remote procedure; same index on all nodes.
  int register_atomic(AtomicFn fn);

  // --- Communication primitives (operate on the current node) -------------
  // Synchronous element access. T must be trivially copyable, <= 8 bytes
  // (larger types go through the bulk primitives, as in Split-C).
  am::Word read_word(NodeId node, const void* addr, std::size_t nbytes);
  void write_word(NodeId node, void* addr, am::Word value, std::size_t nbytes);

  // Split-phase: completion via sync().
  void get_word(NodeId node, const void* addr, void* dst, std::size_t nbytes);
  void put_word(NodeId node, void* addr, am::Word value, std::size_t nbytes);
  /// Waits for all outstanding split-phase gets and puts of this node.
  void sync();

  // One-way stores; global completion via all_store_sync().
  void store_word(NodeId node, void* addr, am::Word value, std::size_t nbytes);
  void bulk_store(NodeId node, void* addr, const void* src, std::size_t len);
  /// Global barrier that additionally waits until every store issued
  /// anywhere has been deposited (Split-C's all_store_sync).
  void all_store_sync();

  // Bulk synchronous transfers.
  void bulk_read(void* dst, NodeId node, const void* addr, std::size_t len);
  void bulk_write(NodeId node, void* addr, const void* src, std::size_t len);
  /// Split-phase bulk get; completion via sync().
  void bulk_get(void* dst, NodeId node, const void* addr, std::size_t len);

  /// Barrier across all nodes.
  void barrier();

  /// Runs atomic procedure `fn_index` on `node`, returning its result
  /// (blocking).
  am::Word atomic(int fn_index, NodeId node, am::Word a0 = 0, am::Word a1 = 0,
                  am::Word a2 = 0, am::Word a3 = 0);

  /// Global sum reduction (every node calls it; everyone gets the total).
  double all_reduce_sum(double v);
  /// Global min / max reductions (same protocol, different combiner).
  double all_reduce_min(double v);
  double all_reduce_max(double v);
  /// Broadcast `v` from `root` to everyone (returns the root's value).
  double broadcast(NodeId root, double v);

 private:
  struct ProcState {
    std::uint64_t outstanding = 0;  ///< split-phase gets+puts in flight
    // Store totals are cumulative over the node's lifetime, never reset:
    // all_store_sync terminates when the global sent and received totals
    // agree (a combining-tree count reduce), and cumulative counters make
    // that test immune to the reset race where a fast node's next-epoch
    // store lands before a slow peer rearmed its counters.
    std::uint64_t stores_sent = 0;  ///< one-way stores this node issued
    std::uint64_t stores_recv = 0;  ///< one-way stores deposited here
  };

  ProcState& self_state();
  ProcState& state_of(const sim::Node& n);

  sim::Engine& engine_;
  net::Network& net_;
  am::AmLayer& am_;
  std::vector<ProcState> state_;
  std::vector<AtomicFn> atomics_;

  // Handler ids.
  am::HandlerId h_read_, h_read_done_, h_write_, h_ack_;
  am::HandlerId h_get_, h_get_done_, h_put_, h_put_done_;
  am::HandlerId h_store_, h_store_bulk_;
  am::HandlerId h_bulk_write_, h_bulk_done_, h_bulk_get_done_;
  am::HandlerId h_atomic_, h_atomic_done_;

  /// The collectives layer: barrier/reduce/broadcast and the combining
  /// tree behind all_store_sync. Polling progress — Split-C waiters drive
  /// the network themselves. Declared last so its handlers register after
  /// the sc.* set.
  coll::Collectives coll_;

  static World* current_;
};

/// Index of the executing processor (Split-C's MYPROC).
NodeId MYPROC();
/// Number of processors (Split-C's PROCS).
int PROCS();

// Free-function API over World::current(), so application code reads like
// the paper's Figure 2.

template <typename T>
T read(global_ptr<T> gp) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  am::Word w = World::current().read_word(gp.node, gp.addr, sizeof(T));
  T out;
  std::memcpy(&out, &w, sizeof(T));
  return out;
}

template <typename T>
void write(global_ptr<T> gp, const T& v) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  am::Word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  World::current().write_word(gp.node, gp.addr, w, sizeof(T));
}

/// Split-phase read into *dst; complete with sync().
template <typename T>
void get(T* dst, global_ptr<T> src) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  World::current().get_word(src.node, src.addr, dst, sizeof(T));
}

/// Split-phase write; complete with sync().
template <typename T>
void put(global_ptr<T> dst, const T& v) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  am::Word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  World::current().put_word(dst.node, dst.addr, w, sizeof(T));
}

/// One-way store; global completion with all_store_sync().
template <typename T>
void store(global_ptr<T> dst, const T& v) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8);
  am::Word w = 0;
  std::memcpy(&w, &v, sizeof(T));
  World::current().store_word(dst.node, dst.addr, w, sizeof(T));
}

inline void sync() { World::current().sync(); }
inline void all_store_sync() { World::current().all_store_sync(); }
inline void barrier() { World::current().barrier(); }

template <typename T>
void bulk_read(T* dst, global_ptr<T> src, std::size_t bytes) {
  World::current().bulk_read(dst, src.node, src.addr, bytes);
}
template <typename T>
void bulk_write(global_ptr<T> dst, const T* src, std::size_t bytes) {
  World::current().bulk_write(dst.node, dst.addr, src, bytes);
}
template <typename T>
void bulk_get(T* dst, global_ptr<T> src, std::size_t bytes) {
  World::current().bulk_get(dst, src.node, src.addr, bytes);
}
template <typename T>
void bulk_store(global_ptr<T> dst, const T* src, std::size_t bytes) {
  World::current().bulk_store(dst.node, dst.addr, src, bytes);
}

}  // namespace tham::splitc
