#include "splitc/world.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tham::splitc {

using am::to_ptr;
using am::to_word;
using am::Word;
using sim::Component;
using sim::ComponentScope;

World* World::current_ = nullptr;

namespace {
/// Local completion flags live on the waiting thread's stack.
struct WordWait {
  bool done = false;
  Word val = 0;
};
}  // namespace

NodeId MYPROC() { return sim::this_node().id(); }
int PROCS() { return World::current().procs(); }

World& World::current() {
  THAM_CHECK_MSG(current_ != nullptr, "no Split-C world is active");
  return *current_;
}

World::ProcState& World::self_state() {
  return state_[static_cast<std::size_t>(sim::this_node().id())];
}

World::ProcState& World::state_of(const sim::Node& n) {
  return state_[static_cast<std::size_t>(n.id())];
}

World::~World() { current_ = nullptr; }

World::World(sim::Engine& engine, net::Network& net, am::AmLayer& am)
    : engine_(engine), net_(net), am_(am),
      state_(static_cast<std::size_t>(engine.size())),
      coll_(engine, am, coll::Config{}) {
  THAM_CHECK_MSG(current_ == nullptr, "only one Split-C world at a time");
  current_ = this;

  // ---- Synchronous read/write ------------------------------------------
  h_read_done_ = am_.register_short(
      "sc.read_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        auto* wt = to_ptr<WordWait>(w[0]);
        wt->val = w[1];
        wt->done = true;
      });
  h_read_ = am_.register_short(
      "sc.read", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = 0;
        std::memcpy(&v, to_ptr<const void>(w[0]),
                    static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_read_done_, w[2], v);
      });
  h_ack_ = am_.register_short(
      "sc.ack", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        *to_ptr<bool>(w[0]) = true;
      });
  h_write_ = am_.register_short(
      "sc.write", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_ack_, w[3]);
      });

  // ---- Split-phase get/put ----------------------------------------------
  h_get_done_ = am_.register_short(
      "sc.get_done", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        Word v = w[1];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[2]));
        --state_of(self).outstanding;
      });
  h_get_ = am_.register_short(
      "sc.get", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = 0;
        std::memcpy(&v, to_ptr<const void>(w[0]),
                    static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_get_done_, w[2], v, w[1]);
      });
  h_put_done_ = am_.register_short(
      "sc.put_done", [this](sim::Node& self, am::Token, const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        --state_of(self).outstanding;
      });
  h_put_ = am_.register_short(
      "sc.put", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_put_done_);
      });

  // ---- One-way stores -----------------------------------------------------
  h_store_ = am_.register_short(
      "sc.store", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        ++state_of(self).stores_recv;
      });
  h_store_bulk_ = am_.register_bulk(
      "sc.store_bulk", [this](sim::Node& self, am::Token, void*, std::size_t,
                              const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        ++state_of(self).stores_recv;
      });
  // ---- Bulk transfers -----------------------------------------------------
  h_bulk_done_ = am_.register_short(
      "sc.bulk_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        *to_ptr<bool>(w[2]) = true;  // cookie = &flag
      });
  h_bulk_get_done_ = am_.register_short(
      "sc.bulk_get_done",
      [this](sim::Node& self, am::Token, const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        --state_of(self).outstanding;
      });
  h_bulk_write_ = am_.register_bulk(
      "sc.bulk_write", [this](sim::Node& self, am::Token tok, void*,
                              std::size_t, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        am_.reply(tok, h_ack_, w[0]);
      });

  // ---- Atomic RPC ------------------------------------------------------------
  h_atomic_done_ = am_.register_short(
      "sc.atomic_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        auto* wt = to_ptr<WordWait>(w[0]);
        wt->val = w[1];
        wt->done = true;
      });
  h_atomic_ = am_.register_short(
      "sc.atomic", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        Word r = atomics_.at(static_cast<std::size_t>(w[0]))(self, w[2], w[3],
                                                             w[4], w[5]);
        am_.reply(tok, h_atomic_done_, w[1], r);
      });
}

void World::run(std::function<void()> program) {
  for (NodeId i = 0; i < engine_.size(); ++i) {
    engine_.node(i).spawn(program, "splitc-main");
  }
  engine_.run();
}

int World::register_atomic(AtomicFn fn) {
  atomics_.push_back(std::move(fn));
  return static_cast<int>(atomics_.size() - 1);
}

Word World::read_word(NodeId node, const void* addr, std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    Word v = 0;
    std::memcpy(&v, addr, nbytes);
    return v;
  }
  n.advance(n.cost().sc_issue);
  WordWait wt;
  am_.request(node, h_read_, to_word(addr), nbytes, to_word(&wt));
  am_.poll_until([&wt] { return wt.done; });
  return wt.val;
}

void World::write_word(NodeId node, void* addr, Word value,
                       std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.request(node, h_write_, to_word(addr), nbytes, value, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::get_word(NodeId node, const void* addr, void* dst,
                     std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(dst, addr, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.request(node, h_get_, to_word(addr), nbytes, to_word(dst));
}

void World::put_word(NodeId node, void* addr, Word value, std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.request(node, h_put_, to_word(addr), nbytes, value);
}

void World::sync() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  am_.poll_until([&st] { return st.outstanding == 0; });
}

void World::store_word(NodeId node, void* addr, Word value,
                       std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().stores_sent;
  am_.request(node, h_store_, to_word(addr), nbytes, value);
}

void World::bulk_store(NodeId node, void* addr, const void* src,
                       std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(addr, src, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().stores_sent;
  am_.xfer(node, addr, src, len, h_store_bulk_);
}

void World::all_store_sync() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  // Combining-tree termination detection: reduce the exact (sent, recv)
  // totals until they agree globally. This node's sent total is frozen at
  // entry (stores issued after the sync belong to the next epoch), the
  // received total climbs monotonically toward it, and equality means no
  // store is in flight anywhere. Every rank leaves on the same round —
  // the round count is the same deterministic function of message timing
  // on every node — and the final reduce doubles as the exit barrier.
  std::uint64_t sent = st.stores_sent;
  for (;;) {
    n.advance(n.cost().sc_barrier_fan);
    coll::Pair64 totals = coll_.all_reduce_counts(sent, st.stores_recv);
    if (totals.a == totals.b) break;
  }
}

void World::bulk_read(void* dst, NodeId node, const void* addr,
                      std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(dst, addr, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.get(node, addr, dst, len, h_bulk_done_, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::bulk_get(void* dst, NodeId node, const void* addr,
                     std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(dst, addr, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.get(node, addr, dst, len, h_bulk_get_done_);
}

void World::bulk_write(NodeId node, void* addr, const void* src,
                       std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(addr, src, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.xfer(node, addr, src, len, h_bulk_write_, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::barrier() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().sc_barrier_fan);  // runtime-entry bookkeeping
  coll_.barrier();
}

Word World::atomic(int fn_index, NodeId node, Word a0, Word a1, Word a2,
                   Word a3) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    return atomics_.at(static_cast<std::size_t>(fn_index))(n, a0, a1, a2, a3);
  }
  n.advance(n.cost().sc_issue);
  WordWait wt;
  am_.request(node, h_atomic_, static_cast<Word>(fn_index), to_word(&wt), a0,
              a1, a2, a3);
  am_.poll_until([&wt] { return wt.done; });
  return wt.val;
}

// The reductions and the broadcast are straight delegations: the coll
// layer's rank-ordered tree fold keeps every result a pure function of the
// contributions (see coll::canonical_fold), exactly the determinism
// contract the old linear rank-slot protocol provided — now in log depth.
double World::all_reduce_sum(double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().sc_barrier_fan);
  return coll_.all_reduce_sum(v);
}

double World::all_reduce_min(double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().sc_barrier_fan);
  return coll_.all_reduce_min(v);
}

double World::all_reduce_max(double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().sc_barrier_fan);
  return coll_.all_reduce_max(v);
}

double World::broadcast(NodeId root, double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().sc_barrier_fan);
  return coll_.broadcast(root, v);
}

}  // namespace tham::splitc
