#include "splitc/world.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tham::splitc {

using am::to_ptr;
using am::to_word;
using am::Word;
using sim::Component;
using sim::ComponentScope;

World* World::current_ = nullptr;

namespace {
/// Local completion flags live on the waiting thread's stack.
struct WordWait {
  bool done = false;
  Word val = 0;
};
}  // namespace

NodeId MYPROC() { return sim::this_node().id(); }
int PROCS() { return World::current().procs(); }

World& World::current() {
  THAM_CHECK_MSG(current_ != nullptr, "no Split-C world is active");
  return *current_;
}

World::ProcState& World::self_state() {
  return state_[static_cast<std::size_t>(sim::this_node().id())];
}

World::ProcState& World::state_of(const sim::Node& n) {
  return state_[static_cast<std::size_t>(n.id())];
}

World::~World() { current_ = nullptr; }

World::World(sim::Engine& engine, net::Network& net, am::AmLayer& am)
    : engine_(engine), net_(net), am_(am),
      state_(static_cast<std::size_t>(engine.size())) {
  THAM_CHECK_MSG(current_ == nullptr, "only one Split-C world at a time");
  current_ = this;

  // ---- Synchronous read/write ------------------------------------------
  h_read_done_ = am_.register_short(
      "sc.read_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        auto* wt = to_ptr<WordWait>(w[0]);
        wt->val = w[1];
        wt->done = true;
      });
  h_read_ = am_.register_short(
      "sc.read", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = 0;
        std::memcpy(&v, to_ptr<const void>(w[0]),
                    static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_read_done_, w[2], v);
      });
  h_ack_ = am_.register_short(
      "sc.ack", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        *to_ptr<bool>(w[0]) = true;
      });
  h_write_ = am_.register_short(
      "sc.write", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_ack_, w[3]);
      });

  // ---- Split-phase get/put ----------------------------------------------
  h_get_done_ = am_.register_short(
      "sc.get_done", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        Word v = w[1];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[2]));
        --state_of(self).outstanding;
      });
  h_get_ = am_.register_short(
      "sc.get", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = 0;
        std::memcpy(&v, to_ptr<const void>(w[0]),
                    static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_get_done_, w[2], v, w[1]);
      });
  h_put_done_ = am_.register_short(
      "sc.put_done", [this](sim::Node& self, am::Token, const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        --state_of(self).outstanding;
      });
  h_put_ = am_.register_short(
      "sc.put", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        am_.reply(tok, h_put_done_);
      });

  // ---- One-way stores -----------------------------------------------------
  h_store_ = am_.register_short(
      "sc.store", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler + self.cost().mem_word_touch);
        Word v = w[2];
        std::memcpy(to_ptr<void>(w[0]), &v, static_cast<std::size_t>(w[1]));
        ++state_of(self).stores_recv;
      });
  h_store_bulk_ = am_.register_bulk(
      "sc.store_bulk", [this](sim::Node& self, am::Token, void*, std::size_t,
                              const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        ++state_of(self).stores_recv;
      });
  h_store_count_ = am_.register_short(
      "sc.store_count", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        auto& st = state_of(self);
        st.store_expect += w[0];
        ++st.store_counts_got;
      });

  // ---- Bulk transfers -----------------------------------------------------
  h_bulk_done_ = am_.register_short(
      "sc.bulk_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        *to_ptr<bool>(w[2]) = true;  // cookie = &flag
      });
  h_bulk_get_done_ = am_.register_short(
      "sc.bulk_get_done",
      [this](sim::Node& self, am::Token, const am::Words&) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        --state_of(self).outstanding;
      });
  h_bulk_write_ = am_.register_bulk(
      "sc.bulk_write", [this](sim::Node& self, am::Token tok, void*,
                              std::size_t, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        am_.reply(tok, h_ack_, w[0]);
      });

  // ---- Barrier -------------------------------------------------------------
  h_bar_release_ = am_.register_short(
      "sc.bar_release", [this](sim::Node& self, am::Token, const am::Words& w) {
        state_of(self).release_epoch = w[0];
      });
  h_bar_arrive_ = am_.register_short(
      "sc.bar_arrive", [this](sim::Node& self, am::Token, const am::Words&) {
        THAM_CHECK(self.id() == 0);
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_barrier_fan);
        auto& s0 = state_of(self);
        ++s0.barrier_arrivals;
        if (s0.barrier_arrivals == procs()) release_barrier(self);
      });

  // ---- Atomic RPC ------------------------------------------------------------
  h_atomic_done_ = am_.register_short(
      "sc.atomic_done", [](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_complete);
        auto* wt = to_ptr<WordWait>(w[0]);
        wt->val = w[1];
        wt->done = true;
      });
  h_atomic_ = am_.register_short(
      "sc.atomic", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_handler);
        Word r = atomics_.at(static_cast<std::size_t>(w[0]))(self, w[2], w[3],
                                                             w[4], w[5]);
        am_.reply(tok, h_atomic_done_, w[1], r);
      });

  // ---- Reduction --------------------------------------------------------------
  h_red_release_ = am_.register_short(
      "sc.red_release", [this](sim::Node& self, am::Token, const am::Words& w) {
        auto& st = state_of(self);
        double v;
        Word bits = w[1];
        std::memcpy(&v, &bits, sizeof(v));
        st.red_result = v;
        st.red_release = w[0];
      });
  h_red_arrive_ = am_.register_short(
      "sc.red_arrive", [this](sim::Node& self, am::Token t, const am::Words& w) {
        THAM_CHECK(self.id() == 0);
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().sc_barrier_fan);
        double v;
        Word bits = w[0];
        std::memcpy(&v, &bits, sizeof(v));
        reduce_arrive(self, t.reply_to, v);
      });
}

void World::release_barrier(sim::Node& node0) {
  auto& s0 = state_[0];
  s0.barrier_arrivals = 0;
  ++s0.barrier_epoch;
  s0.release_epoch = s0.barrier_epoch;
  for (NodeId j = 1; j < procs(); ++j) {
    node0.advance(node0.cost().sc_barrier_fan);
    am_.request(j, h_bar_release_, s0.barrier_epoch);
  }
}

void World::reduce_arrive(sim::Node& node0, NodeId rank, double v) {
  auto& s0 = state_[0];
  if (s0.red_vals.empty()) {
    s0.red_vals.resize(static_cast<std::size_t>(procs()), 0.0);
  }
  s0.red_vals[static_cast<std::size_t>(rank)] = v;
  ++s0.red_arrivals;
  if (s0.red_arrivals == procs()) release_reduction(node0);
}

void World::release_reduction(sim::Node& node0) {
  auto& s0 = state_[0];
  s0.red_arrivals = 0;
  ++s0.red_epoch;
  s0.red_release = s0.red_epoch;
  // Rank-ordered summation: the result is a pure function of the
  // contributions, whatever order the arrive messages landed in.
  double acc = 0;
  for (double v : s0.red_vals) acc += v;
  s0.red_result = acc;
  Word bits;
  std::memcpy(&bits, &acc, sizeof(bits));
  for (NodeId j = 1; j < procs(); ++j) {
    node0.advance(node0.cost().sc_barrier_fan);
    am_.request(j, h_red_release_, s0.red_epoch, bits);
  }
}

void World::run(std::function<void()> program) {
  for (NodeId i = 0; i < engine_.size(); ++i) {
    engine_.node(i).spawn(program, "splitc-main");
  }
  engine_.run();
}

int World::register_atomic(AtomicFn fn) {
  atomics_.push_back(std::move(fn));
  return static_cast<int>(atomics_.size() - 1);
}

Word World::read_word(NodeId node, const void* addr, std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    Word v = 0;
    std::memcpy(&v, addr, nbytes);
    return v;
  }
  n.advance(n.cost().sc_issue);
  WordWait wt;
  am_.request(node, h_read_, to_word(addr), nbytes, to_word(&wt));
  am_.poll_until([&wt] { return wt.done; });
  return wt.val;
}

void World::write_word(NodeId node, void* addr, Word value,
                       std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.request(node, h_write_, to_word(addr), nbytes, value, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::get_word(NodeId node, const void* addr, void* dst,
                     std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(dst, addr, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.request(node, h_get_, to_word(addr), nbytes, to_word(dst));
}

void World::put_word(NodeId node, void* addr, Word value, std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.request(node, h_put_, to_word(addr), nbytes, value);
}

void World::sync() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  am_.poll_until([&st] { return st.outstanding == 0; });
}

void World::store_word(NodeId node, void* addr, Word value,
                       std::size_t nbytes) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  THAM_CHECK(nbytes <= 8);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memcpy(addr, &value, nbytes);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().stores_sent[node];
  am_.request(node, h_store_, to_word(addr), nbytes, value);
}

void World::bulk_store(NodeId node, void* addr, const void* src,
                       std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(addr, src, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().stores_sent[node];
  am_.xfer(node, addr, src, len, h_store_bulk_);
}

void World::all_store_sync() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  NodeId me = n.id();
  for (NodeId j = 0; j < procs(); ++j) {
    if (j == me) continue;
    n.advance(n.cost().sc_barrier_fan);
    auto it = st.stores_sent.find(j);
    am_.request(j, h_store_count_, it == st.stores_sent.end() ? 0 : it->second);
  }
  int expect_counts = procs() - 1;
  am_.poll_until([&st, expect_counts] {
    return st.store_counts_got == expect_counts &&
           st.stores_recv == st.store_expect;
  });
  st.store_counts_got = 0;
  st.store_expect = 0;
  st.stores_recv = 0;
  st.stores_sent.clear();
  barrier();
}

void World::bulk_read(void* dst, NodeId node, const void* addr,
                      std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(dst, addr, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.get(node, addr, dst, len, h_bulk_done_, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::bulk_get(void* dst, NodeId node, const void* addr,
                     std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(dst, addr, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  ++self_state().outstanding;
  am_.get(node, addr, dst, len, h_bulk_get_done_);
}

void World::bulk_write(NodeId node, void* addr, const void* src,
                       std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    std::memmove(addr, src, len);
    return;
  }
  n.advance(n.cost().sc_issue);
  bool done = false;
  am_.xfer(node, addr, src, len, h_bulk_write_, to_word(&done));
  am_.poll_until([&done] { return done; });
}

void World::barrier() {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  ++st.my_epoch;
  std::uint64_t target = st.my_epoch;
  n.advance(n.cost().sc_barrier_fan);
  if (n.id() == 0) {
    auto& s0 = state_[0];
    ++s0.barrier_arrivals;
    if (s0.barrier_arrivals == procs()) release_barrier(n);
  } else {
    am_.request(0, h_bar_arrive_);
  }
  am_.poll_until([&st, target] { return st.release_epoch >= target; });
}

Word World::atomic(int fn_index, NodeId node, Word a0, Word a1, Word a2,
                   Word a3) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  if (node == n.id()) {
    n.advance(n.cost().sc_local_access);
    return atomics_.at(static_cast<std::size_t>(fn_index))(n, a0, a1, a2, a3);
  }
  n.advance(n.cost().sc_issue);
  WordWait wt;
  am_.request(node, h_atomic_, static_cast<Word>(fn_index), to_word(&wt), a0,
              a1, a2, a3);
  am_.poll_until([&wt] { return wt.done; });
  return wt.val;
}

// min/max/broadcast reuse the sum-reduction message protocol by encoding
// the combiner in the value stream: we run a sum over transformed values.
// Simpler and fully deterministic: run the generic reduce with a combiner
// selected per call via a per-epoch mode kept on node 0.
double World::all_reduce_min(double v) {
  // Implemented as -max(-v).
  return -all_reduce_max(-v);
}

double World::all_reduce_max(double v) {
  // max(a,b) = log-free trick is messy; use iterated pairwise exchange:
  // everyone contributes to node 0 via the existing arrive path, but we
  // cannot reuse the sum-reduction slots. Instead: reduce the *bit
  // pattern* via
  // repeated all_reduce_sum rounds of indicator comparisons would be
  // expensive; so: gather via P point-to-point reads after a barrier.
  sim::Node& n = sim::this_node();
  NodeId me = n.id();
  auto& st = self_state();
  st.red_gather = v;
  barrier();
  double best = v;
  for (NodeId j = 0; j < procs(); ++j) {
    if (j == me) continue;
    Word w = read_word(j, &state_[static_cast<std::size_t>(j)].red_gather,
                       sizeof(double));
    double other;
    std::memcpy(&other, &w, sizeof(other));
    best = std::max(best, other);
  }
  barrier();
  return best;
}

double World::broadcast(NodeId root, double v) {
  sim::Node& n = sim::this_node();
  auto& st = self_state();
  if (n.id() == root) st.red_gather = v;
  barrier();
  double out;
  if (n.id() == root) {
    out = v;
  } else {
    Word w = read_word(root,
                       &state_[static_cast<std::size_t>(root)].red_gather,
                       sizeof(double));
    std::memcpy(&out, &w, sizeof(out));
  }
  barrier();
  return out;
}

double World::all_reduce_sum(double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  auto& st = self_state();
  std::uint64_t target = st.red_release + 1;
  Word bits;
  std::memcpy(&bits, &v, sizeof(bits));
  n.advance(n.cost().sc_barrier_fan);
  if (n.id() == 0) {
    reduce_arrive(n, 0, v);
  } else {
    am_.request(0, h_red_arrive_, bits);
  }
  am_.poll_until([&st, target] { return st.red_release >= target; });
  return st.red_result;
}

}  // namespace tham::splitc
