#include "analyze/analyze.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "coll/coll.hpp"
#include "sim/engine.hpp"

namespace tham::analyze {

namespace {

using transport::charge_cost;
using transport::wire_cost;

const char* wire_name(net::Wire w) {
  switch (w) {
    case net::Wire::AmShort: return "AmShort";
    case net::Wire::AmBulk: return "AmBulk";
    case net::Wire::Mpl: return "Mpl";
    case net::Wire::Tcp: return "Tcp";
  }
  return "?";
}

const char* collective_name(Collective::Kind k) {
  switch (k) {
    case Collective::Kind::Barrier: return "barrier";
    case Collective::Kind::Reduce: return "reduce";
    case Collective::Kind::AllStoreSync: return "all_store_sync";
  }
  return "?";
}

const char* shape_name(Collective::Shape s) {
  switch (s) {
    case Collective::Shape::Linear: return "linear";
    case Collective::Shape::Tree: return "tree";
    case Collective::Shape::Dissemination: return "dissemination";
  }
  return "?";
}

std::uint64_t pair_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

std::string pair_str(NodeId src, NodeId dst) {
  return std::to_string(src) + " -> " + std::to_string(dst);
}

/// The cheapest zero-byte wire time any class can carry on this profile —
/// the weakest floor a link could ever soundly declare.
SimTime cheapest_wire(const CostModel& cm) {
  SimTime best = std::numeric_limits<SimTime>::max();
  for (net::Wire w : {net::Wire::AmShort, net::Wire::AmBulk, net::Wire::Mpl,
                      net::Wire::Tcp}) {
    best = std::min(best, wire_cost(cm, w, 0).wire_time);
  }
  return best;
}

struct Auditor {
  const CommGraph& g;
  std::vector<Finding>& out;

  void add(Finding::Severity sev, const char* code, std::string msg) {
    out.push_back(Finding{sev, code, std::move(msg)});
  }

  bool node_ok(NodeId n) const { return n >= 0 && n < g.nodes; }

  // -- Link-shape and lookahead-floor soundness ---------------------------
  void audit_links() {
    std::unordered_map<std::uint64_t, SimTime> floor;  // pair -> min floor
    std::set<std::tuple<NodeId, NodeId, SimTime>> exact;
    for (const Link& l : g.links) {
      if (!node_ok(l.src) || !node_ok(l.dst)) {
        add(Finding::Severity::Error, "link-node-range",
            "link " + pair_str(l.src, l.dst) + ": node id out of range");
        continue;
      }
      if (l.src == l.dst) {
        add(Finding::Severity::Error, "self-link",
            "link " + pair_str(l.src, l.dst) + ": self link declared");
        continue;
      }
      if (l.min_wire <= 0) {
        add(Finding::Severity::Error, "nonpositive-floor",
            "link " + pair_str(l.src, l.dst) + ": nonpositive floor " +
                std::to_string(l.min_wire) + " ns");
        continue;
      }
      if (!exact.emplace(l.src, l.dst, l.min_wire).second) {
        add(Finding::Severity::Error, "duplicate-link",
            "link " + pair_str(l.src, l.dst) + ": duplicate declaration at "
                "floor " + std::to_string(l.min_wire) + " ns");
      }
      auto [it, fresh] = floor.emplace(pair_key(l.src, l.dst), l.min_wire);
      if (!fresh) it->second = std::min(it->second, l.min_wire);
    }

    // Cheapest modeled traffic per pair: the floor every send on that pair
    // is guaranteed to meet is the zero-byte wire time of its class.
    std::unordered_map<std::uint64_t, const Flow*> cheapest;
    for (const Flow& f : g.flows) {
      if (!node_ok(f.src) || !node_ok(f.dst)) continue;
      SimTime zc = wire_cost(g.cost, f.wire, 0).wire_time;
      auto [it, fresh] = cheapest.emplace(pair_key(f.src, f.dst), &f);
      if (!fresh &&
          zc < wire_cost(g.cost, it->second->wire, 0).wire_time) {
        it->second = &f;
      }
    }

    if (g.links.empty()) {
      if (!g.flows.empty()) {
        add(Finding::Severity::Info, "no-topology",
            "no links declared; the parallel engine falls back to the "
            "global lookahead floor");
      }
      return;
    }

    for (const auto& [key, f] : cheapest) {
      auto it = floor.find(key);
      if (it == floor.end()) {
        add(Finding::Severity::Error, "undeclared-pair",
            "flow " + pair_str(f->src, f->dst) + " (" + f->handler + ", " +
                std::to_string(f->count) +
                " msgs) crosses a pair with no declared link; the run "
                "aborts at send time once the topology is closed");
        continue;
      }
      SimTime zc = wire_cost(g.cost, f->wire, 0).wire_time;
      if (it->second > zc) {
        add(Finding::Severity::Error, "lookahead-floor",
            "link " + pair_str(f->src, f->dst) + ": declared floor " +
                std::to_string(it->second) + " ns exceeds the cheapest "
                "wire cost " + std::to_string(zc) + " ns of its traffic (" +
                wire_name(f->wire) + ", handler " + f->handler +
                "); per-link lookahead horizons would be unsound");
      }
    }

    // Without modeled traffic a floor can only be checked against the
    // cheapest wire the machine has at all.
    SimTime wire_min = cheapest_wire(g.cost);
    for (const auto& [key, fl] : floor) {
      auto src = static_cast<NodeId>(key >> 32);
      auto dst = static_cast<NodeId>(key & 0xffffffffu);
      if (cheapest.find(key) == cheapest.end()) {
        if (fl > wire_min) {
          add(Finding::Severity::Warning, "floor-above-cheapest-wire",
              "link " + pair_str(src, dst) + ": declared floor " +
                  std::to_string(fl) + " ns exceeds the machine's cheapest "
                  "wire time " + std::to_string(wire_min) +
                  " ns and the link has no modeled traffic to justify it");
        } else if (!g.flows.empty()) {
          add(Finding::Severity::Info, "idle-link",
              "link " + pair_str(src, dst) + " carries no modeled traffic");
        }
      }
    }
  }

  // -- Handler-table consistency ------------------------------------------
  void audit_handlers() {
    if (g.handlers.empty()) return;  // nothing harvested: nothing to check
    std::unordered_map<std::string, const HandlerDecl*> table;
    for (const HandlerDecl& h : g.handlers) table.emplace(h.name, &h);

    std::unordered_set<std::string> reached;
    for (const Flow& f : g.flows) {
      reached.insert(f.handler);
      if (!f.reply_handler.empty()) reached.insert(f.reply_handler);
      auto it = table.find(f.handler);
      if (it == table.end()) {
        add(Finding::Severity::Error, "unknown-handler",
            "flow " + pair_str(f.src, f.dst) + " targets unregistered "
                "handler " + f.handler);
        continue;
      }
      if (f.wire == net::Wire::AmShort && !it->second->has_short) {
        add(Finding::Severity::Error, "handler-kind",
            "flow " + pair_str(f.src, f.dst) + ": short message targets "
                "bulk-only handler " + f.handler);
      }
      // A bulk flow may legally finish in a short handler (the am::get
      // completion path runs one after the deposit), so only a handler
      // serving neither kind is an error — caught above as unknown.
    }

    for (const HandlerDecl& h : g.handlers) {
      if (h.name == "am.none") continue;  // reserved empty slot
      if (reached.find(h.name) == reached.end()) {
        add(Finding::Severity::Info, "unreachable-handler",
            "handler " + h.name + " is registered but no modeled flow "
                "reaches it");
      }
    }
  }

  // -- Request/reply pairing ----------------------------------------------
  void audit_replies() {
    std::set<std::pair<std::uint64_t, std::string>> present;
    for (const Flow& f : g.flows) {
      present.emplace(pair_key(f.src, f.dst), f.handler);
    }
    for (const Flow& f : g.flows) {
      if (f.reply_handler.empty()) continue;
      if (present.find({pair_key(f.dst, f.src), f.reply_handler}) ==
          present.end()) {
        add(Finding::Severity::Error, "unpaired-reply",
            "flow " + pair_str(f.src, f.dst) + " (" + f.handler +
                ") expects reply " + f.reply_handler + " but no " +
                pair_str(f.dst, f.src) + " flow runs it; the requester "
                "waits forever");
      }
    }
  }

  // -- Charge coverage -----------------------------------------------------
  void audit_charges() {
    for (const Flow& f : g.flows) {
      if (f.charges.empty()) {
        add(Finding::Severity::Error, "unpriced-path",
            "flow " + pair_str(f.src, f.dst) + " (" + f.handler + ", " +
                wire_name(f.wire) + ") carries no receive-side charge; "
                "the path escapes the cost model");
      }
    }
  }

  // -- Wait-for deadlock ----------------------------------------------------
  // Edges only for task-serviced blocking: a polling waiter services
  // inbound requests while blocked (the AM discipline), so two pollers
  // waiting on each other still make progress; two task-serviced waiters
  // do not.
  void audit_deadlock() {
    std::map<NodeId, std::vector<const Flow*>> adj;
    for (const Flow& f : g.flows) {
      if (f.waits != Flow::Waits::TaskServiced) continue;
      if (!node_ok(f.src) || !node_ok(f.dst)) continue;
      adj[f.src].push_back(&f);
    }
    // Iterative DFS with tri-color marking; first back edge reported.
    std::unordered_map<NodeId, int> color;  // 0 white, 1 gray, 2 black
    std::vector<const Flow*> path;
    for (const auto& [start, unused] : adj) {
      if (color[start] != 0) continue;
      if (dfs(start, adj, color, path)) return;  // one cycle is enough
    }
  }

  bool dfs(NodeId n, const std::map<NodeId, std::vector<const Flow*>>& adj,
           std::unordered_map<NodeId, int>& color,
           std::vector<const Flow*>& path) {
    color[n] = 1;
    auto it = adj.find(n);
    if (it != adj.end()) {
      for (const Flow* f : it->second) {
        int c = color[f->dst];
        if (c == 1) {
          // Back edge: the cycle is the path suffix from f->dst plus f.
          std::string cyc;
          bool in_cycle = false;
          for (const Flow* p : path) {
            if (p->src == f->dst) in_cycle = true;
            if (in_cycle) {
              cyc += pair_str(p->src, p->dst) + " (" + p->handler + "), ";
            }
          }
          cyc += pair_str(f->src, f->dst) + " (" + f->handler + ")";
          add(Finding::Severity::Error, "wait-for-cycle",
              "wait-for cycle over task-serviced blocking flows: " + cyc);
          return true;
        }
        if (c == 0) {
          path.push_back(f);
          if (dfs(f->dst, adj, color, path)) return true;
          path.pop_back();
        }
      }
    }
    color[n] = 2;
    return false;
  }

  // -- Collective rank coverage --------------------------------------------
  // Beyond plain coverage of 0..nodes-1, the shape-aware checks walk the
  // protocol's actual vertex set: a tree rank whose parent never
  // participates hangs that whole subtree (the result rides parent ->
  // child), and a dissemination rank whose round-k partner is missing
  // never clears round k.
  void audit_collectives() {
    for (std::size_t i = 0; i < g.collectives.size(); ++i) {
      const Collective& c = g.collectives[i];
      std::set<NodeId> ranks(c.ranks.begin(), c.ranks.end());
      std::string label = std::string(collective_name(c.kind)) + " #" +
                          std::to_string(i) + " (" + shape_name(c.shape) +
                          ", root " + std::to_string(c.root) + ")";
      for (NodeId r : ranks) {
        if (!node_ok(r)) {
          add(Finding::Severity::Error, "collective-rank-range",
              label + ": rank " + std::to_string(r) + " out of range");
        }
      }
      for (NodeId r = 0; r < g.nodes; ++r) {
        if (ranks.find(r) == ranks.end()) {
          add(Finding::Severity::Error, "collective-rank-gap",
              label + ": rank " + std::to_string(r) + " of " +
                  std::to_string(g.nodes) + " never participates; the "
                  "release fan-out never fires and every arrived rank "
                  "waits forever");
        }
      }
      if (c.shape == Collective::Shape::Tree) {
        if (c.radix < 1) {
          add(Finding::Severity::Error, "collective-shape",
              label + ": tree shape with radix " + std::to_string(c.radix));
          continue;
        }
        for (NodeId r : ranks) {
          if (r <= 0 || !node_ok(r)) continue;
          auto parent = static_cast<NodeId>(coll::tree_parent(r, c.radix));
          if (ranks.find(parent) == ranks.end()) {
            add(Finding::Severity::Error, "collective-tree-orphan",
                label + ": rank " + std::to_string(r) + "'s tree parent " +
                    std::to_string(parent) + " never participates; the "
                    "combined partial never reaches the root and no result "
                    "comes back down that subtree");
          }
        }
      } else if (c.shape == Collective::Shape::Dissemination) {
        int want = coll::dissemination_rounds(g.nodes);
        if (c.rounds != want) {
          add(Finding::Severity::Error, "collective-shape",
              label + ": " + std::to_string(c.rounds) + " rounds modeled "
                  "but " + std::to_string(g.nodes) + " nodes need ceil(log2)"
                  " = " + std::to_string(want));
          continue;
        }
        // Rank r clears round k on the notification from the partner at
        // distance -2^k; a missing inbound partner stalls r right there.
        for (NodeId r : ranks) {
          if (!node_ok(r) || g.nodes < 2) continue;
          for (int k = 0; k < c.rounds; ++k) {
            auto partner = static_cast<NodeId>(
                (r - (1 << k) % g.nodes + g.nodes) % g.nodes);
            if (ranks.find(partner) == ranks.end()) {
              add(Finding::Severity::Error, "collective-partner-gap",
                  label + ": rank " + std::to_string(r) + "'s round-" +
                      std::to_string(k) + " inbound partner " +
                      std::to_string(partner) + " never participates; "
                      "rank " + std::to_string(r) + " never clears that "
                      "round");
            }
          }
        }
      }
    }
  }

  // -- Flow shape -----------------------------------------------------------
  void audit_flows() {
    for (const Flow& f : g.flows) {
      if (!node_ok(f.src) || !node_ok(f.dst)) {
        add(Finding::Severity::Error, "flow-node-range",
            "flow " + pair_str(f.src, f.dst) + " (" + f.handler +
                "): node id out of range");
      } else if (f.src == f.dst) {
        add(Finding::Severity::Warning, "self-flow",
            "flow " + pair_str(f.src, f.dst) + " (" + f.handler +
                "): the runtimes short-circuit local access; a modeled "
                "self message is usually a model bug");
      }
    }
  }
};

std::vector<SimTime> lower_bounds(const CommGraph& g) {
  std::vector<SimTime> lb(static_cast<std::size_t>(g.nodes > 0 ? g.nodes : 0),
                          0);
  for (const Flow& f : g.flows) {
    if (f.src < 0 || f.src >= g.nodes || f.dst < 0 || f.dst >= g.nodes) {
      continue;
    }
    auto cnt = static_cast<SimTime>(f.count);
    lb[static_cast<std::size_t>(f.src)] +=
        cnt * wire_cost(g.cost, f.wire, f.bytes).sender_cpu;
    for (transport::Charge c : f.charges) {
      lb[static_cast<std::size_t>(f.dst)] += cnt * charge_cost(g.cost, c);
    }
  }
  return lb;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

const char* severity_name(Finding::Severity s) {
  switch (s) {
    case Finding::Severity::Info: return "info";
    case Finding::Severity::Warning: return "warning";
    case Finding::Severity::Error: return "error";
  }
  return "?";
}

int Report::count(Finding::Severity s) const {
  int n = 0;
  for (const Finding& f : findings) n += f.severity == s ? 1 : 0;
  return n;
}

SimTime Report::max_bound() const {
  SimTime m = 0;
  for (SimTime b : node_lower_bound) m = std::max(m, b);
  return m;
}

Report analyze(CommGraph g) {
  Report r;
  r.node_lower_bound = lower_bounds(g);
  Auditor a{g, r.findings};
  a.audit_flows();
  a.audit_links();
  a.audit_handlers();
  a.audit_replies();
  a.audit_charges();
  a.audit_deadlock();
  a.audit_collectives();
  // Stable order: severity (errors first), then code, then message — the
  // golden reports diff cleanly and tests can assert on the first finding.
  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const Finding& x, const Finding& y) {
                     if (x.severity != y.severity) {
                       return static_cast<int>(x.severity) >
                              static_cast<int>(y.severity);
                     }
                     if (x.code != y.code) return x.code < y.code;
                     return x.message < y.message;
                   });
  r.graph = std::move(g);
  return r;
}

std::string dump_dot(const CommGraph& g) {
  // Aggregate per directed pair, with per-wire message counts.
  std::map<std::pair<NodeId, NodeId>, std::map<net::Wire, std::uint64_t>>
      edges;
  for (const Flow& f : g.flows) {
    edges[{f.src, f.dst}][f.wire] += f.count;
  }
  std::ostringstream os;
  os << "digraph \"" << g.program << "\" {\n";
  os << "  label=\"" << g.program << " on " << g.cost.machine << " ("
     << g.nodes << " nodes, " << g.total_messages() << " msgs)\";\n";
  os << "  node [shape=circle];\n";
  for (NodeId n = 0; n < g.nodes; ++n) {
    os << "  n" << n << " [label=\"" << n << "\"];\n";
  }
  for (const auto& [pair, wires] : edges) {
    os << "  n" << pair.first << " -> n" << pair.second << " [label=\"";
    bool first = true;
    for (const auto& [w, cnt] : wires) {
      if (!first) os << "\\n";
      os << wire_name(w) << " x" << cnt;
      first = false;
    }
    os << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string dump_json(const Report& r) {
  const CommGraph& g = r.graph;
  std::ostringstream os;
  os << "{\n";
  os << "  \"program\": \"" << json_escape(g.program) << "\",\n";
  os << "  \"machine\": \"" << g.cost.machine << "\",\n";
  os << "  \"nodes\": " << g.nodes << ",\n";
  os << "  \"links\": " << g.links.size() << ",\n";
  os << "  \"handlers\": " << g.handlers.size() << ",\n";
  os << "  \"flows\": " << g.flows.size() << ",\n";
  os << "  \"collectives\": " << g.collectives.size() << ",\n";
  os << "  \"messages\": " << g.total_messages() << ",\n";
  os << "  \"errors\": " << r.count(Finding::Severity::Error) << ",\n";
  os << "  \"warnings\": " << r.count(Finding::Severity::Warning) << ",\n";
  os << "  \"infos\": " << r.count(Finding::Severity::Info) << ",\n";
  os << "  \"verdict\": \"" << (r.clean() ? "clean" : "errors") << "\",\n";
  SimTime mn = 0, mx = 0, sum = 0;
  if (!r.node_lower_bound.empty()) {
    mn = *std::min_element(r.node_lower_bound.begin(),
                           r.node_lower_bound.end());
    mx = r.max_bound();
    for (SimTime b : r.node_lower_bound) sum += b;
  }
  os << "  \"bound_min_ns\": " << mn << ",\n";
  os << "  \"bound_max_ns\": " << mx << ",\n";
  os << "  \"bound_sum_ns\": " << sum << ",\n";
  os << "  \"collective_ops\": [";
  for (std::size_t i = 0; i < g.collectives.size(); ++i) {
    const Collective& c = g.collectives[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kind\": \"" << collective_name(c.kind) << "\", \"shape\": \""
       << shape_name(c.shape) << "\", \"radix\": " << c.radix
       << ", \"rounds\": " << c.rounds << ", \"count\": " << c.count << "}";
  }
  os << "\n  ],\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"severity\": \"" << severity_name(f.severity)
       << "\", \"code\": \"" << json_escape(f.code) << "\", \"message\": \""
       << json_escape(f.message) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace tham::analyze

namespace tham::sim {

// Defined here, in the analyze library, so the sim layer does not link
// upward: Engine declares analyze() against a forward-declared Report, and
// only callers that link tham_analyze can call it.
analyze::Report Engine::analyze() const {
  analyze::CommGraph g;
  g.program = "engine";
  g.nodes = size();
  g.cost = cost();
  g.links.reserve(links().size());
  for (const Link& l : links()) {
    g.links.push_back(analyze::Link{l.src, l.dst, l.min_wire});
  }
  return analyze::analyze(std::move(g));
}

}  // namespace tham::sim
