// tham_analyze: static communication-graph analysis of the ThAM apps.
//
//   tham_analyze [--app NAME|all] [--machine NAME|all]
//                [--dot FILE] [--json FILE] [--validate]
//
// For each selected (app, machine) pair: builds the app's static
// communication model, runs every audit plus the per-node cost lower
// bound, and prints a verdict line. --validate additionally executes the
// real app on a fresh engine and checks bound <= measured virtual time on
// every node, printing the bound-vs-measured table. Exit status is
// nonzero when any audit reports an Error or a bound is violated.
//
// --dot/--json write the graph/report for the selection; with more than
// one (app, machine) pair the app and machine names are appended to the
// file stem so every report lands in its own file.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "analyze/analyze.hpp"
#include "analyze/app_models.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/serving.hpp"
#include "apps/topology.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "common/machine.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace {

using namespace tham;          // NOLINT(google-build-using-namespace)
using namespace tham::analyze; // NOLINT(google-build-using-namespace)

struct AppSpec {
  const char* name;
  int procs;
  std::function<CommGraph(const CostModel&)> model;
  /// Runs the real app on the given engine (for --validate).
  std::function<void(sim::Engine&, net::Network&, am::AmLayer&)> run;
};

std::vector<AppSpec> app_specs() {
  using apps::em3d::Version;
  apps::em3d::Config ec;
  apps::water::Config wc;
  apps::lu::Config lc;
  std::vector<AppSpec> specs;
  auto em = [&](Version v) {
    return AppSpec{
        apps::em3d::version_name(v), ec.procs,
        [=](const CostModel& cm) { return model_em3d(ec, v, cm); },
        [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
          apps::em3d::run_splitc(e, n, a, ec, v);
        }};
  };
  specs.push_back(em(Version::Base));
  specs.push_back(em(Version::Ghost));
  specs.push_back(em(Version::Bulk));
  auto water = [&](apps::water::Version v) {
    return AppSpec{
        apps::water::version_name(v), wc.procs,
        [=](const CostModel& cm) { return model_water(wc, v, cm); },
        [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
          apps::water::run_splitc(e, n, a, wc, v);
        }};
  };
  specs.push_back(water(apps::water::Version::Atomic));
  specs.push_back(water(apps::water::Version::Prefetch));
  specs.push_back(AppSpec{
      "sc-lu", lc.procs,
      [=](const CostModel& cm) { return model_lu(lc, cm); },
      [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
        apps::lu::run_splitc(e, n, a, lc);
      }});
  auto serving = [](const char* name, serve::Config sc) {
    return AppSpec{
        name, sc.procs(),
        [=](const CostModel& cm) { return model_serving(sc, cm); },
        [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
          ccxx::Runtime rt(e, n, a);
          serve::run(rt, sc);
        }};
  };
  specs.push_back(serving("serving-rr", apps::serving::small_open()));
  specs.push_back(serving("serving-lo", apps::serving::small_closed()));
  return specs;
}

/// "reports/em3d.json" -> "reports/em3d-<app>-<machine>.json".
std::string suffixed(const std::string& path, const std::string& app,
                     const std::string& machine) {
  auto dot = path.rfind('.');
  auto slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "-" + app + "-" + machine;
  }
  return path.substr(0, dot) + "-" + app + "-" + machine + path.substr(dot);
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "tham_analyze: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int usage(int code) {
  std::fprintf(
      stderr,
      "usage: tham_analyze [--app NAME|all] [--machine NAME|all]\n"
      "                    [--dot FILE] [--json FILE] [--validate]\n"
      "apps: em3d-base em3d-ghost em3d-bulk water-atomic water-prefetch "
      "sc-lu serving-rr serving-lo\n"
      "machines:");
  for (const MachineProfile& p : machine_profiles()) {
    std::fprintf(stderr, " %s", p.name);
  }
  std::fprintf(stderr, "\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_sel = "all";
  std::string machine_sel;
  std::string dot_path;
  std::string json_path;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tham_analyze: %s needs a value\n", arg.c_str());
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--app") {
      app_sel = value();
    } else if (arg == "--machine") {
      machine_sel = value();
    } else if (arg == "--dot") {
      dot_path = value();
    } else if (arg == "--json") {
      json_path = value();
    } else if (arg == "--validate") {
      validate = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::fprintf(stderr, "tham_analyze: unknown option %s\n", arg.c_str());
      return usage(2);
    }
  }

  std::vector<AppSpec> apps;
  for (AppSpec& s : app_specs()) {
    if (app_sel == "all" || app_sel == s.name) apps.push_back(std::move(s));
  }
  if (apps.empty()) {
    std::fprintf(stderr, "tham_analyze: unknown app \"%s\"\n",
                 app_sel.c_str());
    return usage(2);
  }
  std::vector<CostModel> machines;
  if (machine_sel == "all") {
    for (const MachineProfile& p : machine_profiles()) {
      machines.push_back(p.make());
    }
  } else if (machine_sel.empty()) {
    machines.push_back(default_cost_model());
  } else if (const MachineProfile* p = find_machine(machine_sel)) {
    machines.push_back(p->make());
  } else {
    std::fprintf(stderr, "tham_analyze: unknown machine \"%s\"\n",
                 machine_sel.c_str());
    return usage(2);
  }

  bool many = apps.size() * machines.size() > 1;
  int failures = 0;
  for (const AppSpec& spec : apps) {
    for (const CostModel& cm : machines) {
      Report report = tham::analyze::analyze(spec.model(cm));
      const CommGraph& g = report.graph;
      std::printf("%-14s %-15s nodes %d  flows %zu  msgs %llu  "
                  "bound_max %lld ns  %s (%dE/%dW/%dI)\n",
                  g.program.c_str(), cm.machine, g.nodes, g.flows.size(),
                  static_cast<unsigned long long>(g.total_messages()),
                  static_cast<long long>(report.max_bound()),
                  report.clean() ? "clean" : "ERRORS",
                  report.count(Finding::Severity::Error),
                  report.count(Finding::Severity::Warning),
                  report.count(Finding::Severity::Info));
      for (const Finding& f : report.findings) {
        if (f.severity == Finding::Severity::Error) {
          std::printf("    error [%s] %s\n", f.code.c_str(),
                      f.message.c_str());
        }
      }
      if (!report.clean()) ++failures;

      if (!dot_path.empty()) {
        std::string p = many ? suffixed(dot_path, g.program, cm.machine)
                             : dot_path;
        if (!write_file(p, dump_dot(g))) ++failures;
      }
      if (!json_path.empty()) {
        std::string p = many ? suffixed(json_path, g.program, cm.machine)
                             : json_path;
        if (!write_file(p, dump_json(report))) ++failures;
      }

      if (validate) {
        sim::Engine engine(spec.procs, cm);
        net::Network net(engine);
        am::AmLayer am(net);
        apps::declare_full_topology(am);
        spec.run(engine, net, am);
        std::printf("    %-5s %16s %16s\n", "node", "bound(ns)",
                    "measured(ns)");
        for (NodeId p = 0; p < engine.size(); ++p) {
          SimTime bound = report.node_lower_bound[static_cast<std::size_t>(p)];
          SimTime measured = engine.node(p).now();
          bool ok = bound <= measured;
          std::printf("    %-5d %16lld %16lld%s\n", p,
                      static_cast<long long>(bound),
                      static_cast<long long>(measured),
                      ok ? "" : "  BOUND VIOLATED");
          if (!ok) ++failures;
        }
      }
    }
  }
  return failures == 0 ? 0 : 1;
}
