#include "analyze/app_models.hpp"

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "am/am.hpp"
#include "ccxx/runtime.hpp"
#include "coll/coll.hpp"
#include "common/check.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "splitc/world.hpp"

namespace tham::analyze {

namespace {

using transport::Charge;
using transport::wire_cost;

/// Every short AM rides the same fixed envelope (the cost model prices it
/// flat regardless).
constexpr std::size_t kShortBytes = sizeof(am::Words);

/// Assembles a CommGraph from protocol-level strokes, aggregating repeated
/// message classes into single flows with counts. All insertion orders are
/// deterministic functions of the app inputs, so the resulting graph (and
/// its golden JSON dump) is stable run to run.
struct Builder {
  CommGraph g;
  std::map<std::tuple<NodeId, NodeId, int, std::size_t, std::string,
                      std::string>,
           std::size_t>
      flow_at;
  std::map<int, std::size_t> collective_at;

  explicit Builder(std::string program, int nodes, const CostModel& cm) {
    g.program = std::move(program);
    g.nodes = nodes;
    g.cost = cm;
  }

  void add_flow(NodeId src, NodeId dst, net::Wire wire, std::size_t bytes,
                const std::string& handler, const std::string& reply,
                Flow::Waits waits, std::vector<Charge> charges,
                std::uint64_t count) {
    if (count == 0) return;
    auto key = std::make_tuple(src, dst, static_cast<int>(wire), bytes,
                               handler, reply);
    auto it = flow_at.find(key);
    if (it != flow_at.end()) {
      g.flows[it->second].count += count;
      return;
    }
    Flow f;
    f.src = src;
    f.dst = dst;
    f.wire = wire;
    f.bytes = bytes;
    f.count = count;
    f.handler = handler;
    f.reply_handler = reply;
    f.waits = waits;
    f.charges = std::move(charges);
    flow_at.emplace(std::move(key), g.flows.size());
    g.flows.push_back(std::move(f));
  }

  /// One-way short message (fire and forget at the protocol level).
  void short_oneway(NodeId src, NodeId dst, const std::string& handler,
                    std::uint64_t count) {
    add_flow(src, dst, net::Wire::AmShort, kShortBytes, handler, "",
             Flow::Waits::None, {Charge::AmShortRecv}, count);
  }

  /// Short request/short reply round trip, completion awaited by polling.
  void short_rt(NodeId src, NodeId dst, const std::string& handler,
                const std::string& reply, std::uint64_t count) {
    add_flow(src, dst, net::Wire::AmShort, kShortBytes, handler, reply,
             Flow::Waits::Polling, {Charge::AmShortRecv}, count);
    short_oneway(dst, src, reply, count);
  }

  /// One-way bulk deposit running a bulk handler at the receiver.
  void bulk_oneway(NodeId src, NodeId dst, const std::string& handler,
                   std::size_t bytes, std::uint64_t count) {
    add_flow(src, dst, net::Wire::AmBulk, bytes, handler, "",
             Flow::Waits::None, {Charge::AmBulkRecv}, count);
  }

  /// am::get: short request to the internal server, bulk reply that lands
  /// the payload and runs the completion handler at the requester.
  void bulk_get(NodeId src, NodeId dst, std::size_t bytes,
                std::uint64_t count) {
    add_flow(src, dst, net::Wire::AmShort, kShortBytes, "am.get_server",
             "sc.bulk_get_done", Flow::Waits::Polling, {Charge::AmShortRecv},
             count);
    add_flow(dst, src, net::Wire::AmBulk, bytes, "sc.bulk_get_done", "",
             Flow::Waits::None, {Charge::AmBulkRecv}, count);
  }

  void record_collective(Collective::Kind kind, Collective::Shape shape,
                         std::uint64_t count) {
    auto it = collective_at.find(static_cast<int>(kind));
    if (it != collective_at.end()) {
      g.collectives[it->second].count += count;
      return;
    }
    Collective c;
    c.kind = kind;
    c.shape = shape;
    c.root = 0;
    c.radix = coll::default_radix(g.cost);
    c.rounds = coll::dissemination_rounds(g.nodes);
    for (NodeId r = 0; r < g.nodes; ++r) c.ranks.push_back(r);
    c.count = count;
    collective_at.emplace(static_cast<int>(kind), g.collectives.size());
    g.collectives.push_back(std::move(c));
  }

  /// Dissemination barrier (the collectives layer both runtimes share):
  /// every rank sends one notification to its partner at distance 2^r in
  /// each of ceil(log2 P) rounds. Same topology functions as the wire
  /// protocol, so the modeled flows match it by construction.
  void barrier(std::uint64_t count) {
    if (count == 0 || g.nodes < 2) return;
    for (NodeId p = 0; p < g.nodes; ++p) {
      for (int r = 0; r < coll::dissemination_rounds(g.nodes); ++r) {
        auto partner = static_cast<NodeId>((p + (1 << r)) % g.nodes);
        short_oneway(p, partner, "coll.bar", count);
      }
    }
    record_collective(Collective::Kind::Barrier,
                      Collective::Shape::Dissemination, count);
  }

  /// Radix-k combining-tree reduction: each non-root rank sends one
  /// partial up to its tree parent and receives one result back down.
  void reduce_tree_flows(std::uint64_t count) {
    int radix = coll::default_radix(g.cost);
    for (NodeId p = 1; p < g.nodes; ++p) {
      auto parent = static_cast<NodeId>(coll::tree_parent(p, radix));
      short_oneway(p, parent, "coll.red_up", count);
      short_oneway(parent, p, "coll.red_dn", count);
    }
  }

  void reduce(std::uint64_t count) {
    if (count == 0 || g.nodes < 2) return;
    reduce_tree_flows(count);
    record_collective(Collective::Kind::Reduce, Collective::Shape::Tree,
                      count);
  }

  /// Store completion: the runtime reduces the global (sent, received)
  /// store totals through the combining tree until they agree. At least
  /// one count-reduce round always runs — more only when stores are still
  /// in flight, which is dynamic — so one round is the sound floor.
  void all_store_sync(std::uint64_t count) {
    if (count == 0 || g.nodes < 2) return;
    reduce_tree_flows(count);
    record_collective(Collective::Kind::AllStoreSync,
                      Collective::Shape::Tree, count);
  }

  /// Mirrors apps::declare_full_topology: the AmShort floor on every
  /// ordered pair.
  void all_pairs_links() {
    SimTime floor = wire_cost(g.cost, net::Wire::AmShort, 0).wire_time;
    for (NodeId p = 0; p < g.nodes; ++p) {
      for (NodeId q = 0; q < g.nodes; ++q) {
        if (p != q) g.links.push_back(Link{p, q, floor});
      }
    }
  }

  /// Harvests the Split-C handler table from a throwaway one-node machine
  /// (the table is static program structure: identical on every node and
  /// for every app).
  void harvest_splitc_handlers() {
    sim::Engine engine(1, g.cost);
    net::Network net(engine);
    am::AmLayer am(net);
    splitc::World world(engine, net, am);
    for (const auto& h : am.handlers()) {
      g.handlers.push_back(HandlerDecl{h.name, h.has_short, h.has_bulk});
    }
  }

  /// Same harvest for a CC++ runtime (the cc.* protocol handler table).
  void harvest_ccxx_handlers() {
    sim::Engine engine(1, g.cost);
    net::Network net(engine);
    am::AmLayer am(net);
    ccxx::Runtime rt(engine, net, am);
    for (const auto& h : am.handlers()) {
      g.handlers.push_back(HandlerDecl{h.name, h.has_short, h.has_bulk});
    }
  }

  /// A staged CC++ invocation (every rmi_spawn with arguments, and every
  /// cold call, lands in cc.invoke_staged's per-node staging area).
  void cc_staged(NodeId src, NodeId dst, std::size_t bytes,
                 std::uint64_t count) {
    add_flow(src, dst, net::Wire::AmBulk, bytes, "cc.invoke_staged", "",
             Flow::Waits::None, {Charge::AmBulkRecv}, count);
  }

  /// The one-time stub-cache update a cold call's receiver sends back.
  void cc_update(NodeId receiver, NodeId caller) {
    if (!g.cost.cc_stub_caching) return;
    short_oneway(receiver, caller, "cc.update", 1);
  }

  /// CC++ barrier: the runtime delegates to the same collectives layer
  /// (daemon progress instead of polling, but identical wire shape).
  void cc_barrier(std::uint64_t count) { barrier(count); }
};

/// Water's half-shell membership (mirrors the app's pair enumeration).
bool in_half_shell(int i, int dj, int n) {
  if (dj == n / 2 && n % 2 == 0) return i < n / 2;
  return true;
}

}  // namespace

CommGraph model_em3d(const apps::em3d::Config& cfg, apps::em3d::Version v,
                     const CostModel& cm) {
  using apps::em3d::Version;
  apps::em3d::Graph graph = apps::em3d::build_graph(cfg);
  Builder b(apps::em3d::version_name(v), cfg.procs, cm);
  b.all_pairs_links();
  b.harvest_splitc_handlers();
  auto iters = static_cast<std::uint64_t>(cfg.iters);

  if (v == Version::Base) {
    // Every remote edge is re-read through a global pointer each
    // iteration: one sc.read round trip per remote edge per iteration.
    std::map<std::pair<NodeId, NodeId>, std::uint64_t> reads;
    for (int p = 0; p < cfg.procs; ++p) {
      auto up = static_cast<std::size_t>(p);
      for (const auto* edges : {&graph.e_edges[up], &graph.h_edges[up]}) {
        for (const apps::em3d::Edge& e : *edges) {
          if (e.src_proc != p) ++reads[{p, e.src_proc}];
        }
      }
    }
    for (const auto& [pq, n] : reads) {
      b.short_rt(pq.first, pq.second, "sc.read", "sc.read_done", n * iters);
    }
  } else {
    // Ghost and bulk both communicate the *deduplicated* remote value set:
    // the distinct (producer, index) pairs each consumer reads, per kind.
    // need[kind][{consumer, producer}] = distinct indices.
    std::map<std::pair<NodeId, NodeId>, std::set<int>> need[2];
    for (int p = 0; p < cfg.procs; ++p) {
      auto up = static_cast<std::size_t>(p);
      for (int kind = 0; kind < 2; ++kind) {
        const auto& edges = kind == 0 ? graph.e_edges[up] : graph.h_edges[up];
        for (const apps::em3d::Edge& e : edges) {
          if (e.src_proc != p) need[kind][{p, e.src_proc}].insert(e.src_index);
        }
      }
    }
    if (v == Version::Ghost) {
      // One sc.get round trip per distinct remote value per iteration.
      for (int kind = 0; kind < 2; ++kind) {
        for (const auto& [pq, idx] : need[kind]) {
          b.short_rt(pq.first, pq.second, "sc.get", "sc.get_done",
                     idx.size() * iters);
        }
      }
    } else {
      // The producer pushes each consumer's packed values with one one-way
      // bulk store per iteration, then everyone runs all_store_sync.
      for (int kind = 0; kind < 2; ++kind) {
        for (const auto& [pq, idx] : need[kind]) {
          b.bulk_oneway(pq.second, pq.first, "sc.store_bulk",
                        idx.size() * sizeof(double), iters);
        }
      }
      b.all_store_sync(2 * iters);
    }
  }
  b.barrier(2 * iters);  // the two per-iteration phase barriers
  b.reduce(1);           // the final checksum reduction
  return std::move(b.g);
}

CommGraph model_water(const apps::water::Config& cfg, apps::water::Version v,
                      const CostModel& cm) {
  using apps::water::Version;
  THAM_CHECK(cfg.molecules % cfg.procs == 0 && cfg.molecules % 2 == 0);
  int n = cfg.molecules;
  int per_proc = n / cfg.procs;
  Builder b(apps::water::version_name(v), cfg.procs, cm);
  b.all_pairs_links();
  b.harvest_splitc_handlers();
  auto steps = static_cast<std::uint64_t>(cfg.steps);

  // Remote half-shell pairs per (owner of i, owner of j) — the app's pair
  // enumeration with local pairs dropped (they short-circuit).
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> pairs;
  for (int i = 0; i < n; ++i) {
    int me = i / per_proc;
    for (int dj = 1; dj <= n / 2; ++dj) {
      if (!in_half_shell(i, dj, n)) continue;
      int qj = ((i + dj) % n) / per_proc;
      if (qj != me) ++pairs[{me, qj}];
    }
  }

  for (const auto& [pq, cnt] : pairs) {
    if (v == Version::Atomic) {
      // Three coordinate reads per remote pair, as split-phase gets.
      b.short_rt(pq.first, pq.second, "sc.get", "sc.get_done",
                 3 * cnt * steps);
    }
    // The reaction force lands with an atomic RPC in both versions.
    b.short_rt(pq.first, pq.second, "sc.atomic", "sc.atomic_done",
               cnt * steps);
  }
  if (v == Version::Prefetch) {
    // One bundled position fetch per remote processor per step.
    auto bytes = static_cast<std::size_t>(per_proc) * 3 * sizeof(double);
    for (NodeId p = 0; p < cfg.procs; ++p) {
      for (NodeId q = 0; q < cfg.procs; ++q) {
        if (p != q) b.bulk_get(p, q, bytes, steps);
      }
    }
  }
  b.barrier(3 * steps);  // post-intra, post-pairs, post-update
  b.reduce(1);
  return std::move(b.g);
}

CommGraph model_lu(const apps::lu::Config& cfg, const CostModel& cm) {
  THAM_CHECK(cfg.n % cfg.block == 0);
  apps::lu::Layout layout;
  layout.nb = cfg.n / cfg.block;
  layout.pr = static_cast<int>(std::lround(std::sqrt(cfg.procs)));
  THAM_CHECK_MSG(layout.pr * layout.pr == cfg.procs,
                 "LU needs a square processor count");
  std::size_t bb_bytes = static_cast<std::size_t>(cfg.block) *
                         static_cast<std::size_t>(cfg.block) * sizeof(double);
  Builder b("sc-lu", cfg.procs, cm);
  b.all_pairs_links();
  b.harvest_splitc_handlers();
  int nb = layout.nb;

  for (int k = 0; k < nb; ++k) {
    // Sub-step 1: the pivot owner pushes the factored block to everyone.
    int o = layout.owner(k, k);
    for (int q = 0; q < cfg.procs; ++q) {
      if (q != o) b.bulk_oneway(o, q, "sc.store_bulk", bb_bytes, 1);
    }
    // Sub-step 3 prefetch: each proc bulk-gets the row/column blocks it
    // needs for its interior updates but does not own.
    for (int me = 0; me < cfg.procs; ++me) {
      for (int j = k + 1; j < nb; ++j) {
        if (layout.owner(k, j) == me) continue;
        bool needed = false;
        for (int i = k + 1; i < nb && !needed; ++i) {
          needed = layout.owner(i, j) == me;
        }
        if (needed) b.bulk_get(me, layout.owner(k, j), bb_bytes, 1);
      }
      for (int i = k + 1; i < nb; ++i) {
        if (layout.owner(i, k) == me) continue;
        bool needed = false;
        for (int j = k + 1; j < nb && !needed; ++j) {
          needed = layout.owner(i, j) == me;
        }
        if (needed) b.bulk_get(me, layout.owner(i, k), bb_bytes, 1);
      }
    }
  }
  auto rounds = static_cast<std::uint64_t>(nb);
  b.all_store_sync(rounds);  // pivot distribution sync, once per k
  b.barrier(2 * rounds);     // post-solve and post-update barriers
  b.reduce(1);
  return std::move(b.g);
}

CommGraph model_serving(const serve::Config& cfg, const CostModel& cm) {
  Builder b(cfg.policy == serve::Policy::RoundRobin ? "serving-rr"
                                                    : "serving-lo",
            cfg.procs(), cm);
  b.all_pairs_links();
  b.harvest_ccxx_handlers();

  // Marshalled floors: a Request is 24 trivially-copyable bytes; every
  // batch is a vector<> (u64 length prefix) holding at least one 24-byte
  // element. Real batches are never smaller, so these bytes undercount.
  constexpr std::size_t kRequestBytes = 24;
  constexpr std::size_t kBatchBytes = 8 + 24;

  auto per = static_cast<std::uint64_t>(cfg.requests_per_client);
  auto bm = static_cast<std::uint64_t>(cfg.batch_max);
  std::uint64_t total = cfg.total_requests();
  NodeId bal = cfg.balancer_node();

  for (int c = 0; c < cfg.clients; ++c) {
    NodeId cn = cfg.client_node(c);
    // Every request is its own staged submit (rmi_spawn with arguments).
    b.cc_staged(cn, bal, kRequestBytes, per);
    // The client's `per` replies arrive in delivery groups of at most
    // batch_max (a group never outgrows the server batch it came from).
    b.cc_staged(bal, cn, kBatchBytes, (per + bm - 1) / bm);
    // First submit and first delivery on each pair are cold calls.
    b.cc_update(bal, cn);
    b.cc_update(cn, bal);
  }

  // The dispatcher forwards at least ceil(total / batch_max) batches.
  // Round-robin spreads them evenly, so each server is guaranteed the
  // floor share; least-outstanding starts at server 0 (all-zero tie) but
  // guarantees nothing further statically.
  std::uint64_t batches = (total + bm - 1) / bm;
  auto servers = static_cast<std::uint64_t>(cfg.servers);
  for (int s = 0; s < cfg.servers; ++s) {
    std::uint64_t share =
        cfg.policy == serve::Policy::RoundRobin ? batches / servers
                                                : (s == 0 ? 1 : 0);
    if (share == 0) continue;
    NodeId sn = cfg.server_node(s);
    b.cc_staged(bal, sn, kBatchBytes, share);
    // Each forwarded request comes back in a completion batch of at most
    // batch_max replies (rejections included).
    b.cc_staged(sn, bal, kBatchBytes, (share + bm - 1) / bm);
    b.cc_update(sn, bal);
    b.cc_update(bal, sn);
  }

  // Backend lookups are omitted: whether a given server ever takes the
  // hop depends on which requests land on it, which is dynamic state.

  b.cc_barrier(1);  // the end-of-run release every node sits through
  return std::move(b.g);
}

}  // namespace tham::analyze
