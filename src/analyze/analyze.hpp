#pragma once
// Static pre-execution analysis over a CommGraph (ISSUE 7): the audits
// that can be discharged from program *structure* alone, before a single
// event runs, and the CAMP-style per-node cost lower bound.
//
// Audits (each yields Findings; an Error finding fails the verdict):
//   * lookahead soundness — every declared floor must be <= the cheapest
//     wire cost the machine profile assigns to traffic modeled on that
//     link, and (once any link is declared) every flow must ride a
//     declared pair — the static counterpart of the engine's send-time
//     floor check;
//   * wait-for deadlock — cycles over task-serviced blocking flows,
//     plus unknown/unreachable handlers, unpaired request/reply flows,
//     and collective rank-coverage gaps;
//   * charge coverage — every flow must carry at least one receive-side
//     charge, so no reachable message path escapes the cost model.
//
// The cost bound composes the flow counts with the LogGP machine profile:
// for each node, the send overheads of its outbound flows plus the receive
// charges of its inbound flows. Everything else a run pays — polls,
// handler bodies, compute, idle — is nonnegative and excluded, so the
// bound is a certified undercount: bound <= measured per-node vtime on
// every machine profile (asserted by tests/test_analyze.cpp).

#include <string>
#include <vector>

#include "analyze/comm_graph.hpp"

namespace tham::analyze {

struct Finding {
  enum class Severity { Info, Warning, Error };
  Severity severity = Severity::Info;
  std::string code;     ///< stable kebab-case id, e.g. "lookahead-floor"
  std::string message;  ///< names the node/link/handler concerned
};

const char* severity_name(Finding::Severity s);

struct Report {
  CommGraph graph;
  std::vector<Finding> findings;
  /// Per-node lower bound on final virtual time (communication costs of
  /// certainly-occurring messages only).
  std::vector<SimTime> node_lower_bound;

  int count(Finding::Severity s) const;
  /// True when no Error-severity finding was raised.
  bool clean() const { return count(Finding::Severity::Error) == 0; }
  /// Largest per-node bound (0 for an empty graph).
  SimTime max_bound() const;
};

/// Runs every audit and the cost bound over `g`.
Report analyze(CommGraph g);

/// Graphviz dump: one edge per communicating pair, labelled with message
/// counts per wire class.
std::string dump_dot(const CommGraph& g);

/// Flat JSON dump of a report: graph shape, findings, verdict, bounds.
std::string dump_json(const Report& r);

}  // namespace tham::analyze
