#pragma once
// Static communication models of the three applications: the exact message
// flows an EM3D/Water/LU run will put on the wire, derived from the same
// deterministic inputs (graph, molecule count, block layout) the run itself
// uses — before any event executes.
//
// Each model mirrors its app's communication loop message for message:
// the same Split-C protocol flows (read/get/atomic round trips, one-way
// bulk stores, am::get request + bulk reply), the same collective protocol
// (arrive/release fan-in/out, store counts), the same counts and payload
// sizes. The handler table is harvested from a throwaway World (not
// transcribed by hand), and the links mirror apps::declare_full_topology.
// tests/test_analyze.cpp holds the models to account: the per-node cost
// bound computed from them must lower-bound the measured vtime of the real
// run on every machine profile.

#include "analyze/comm_graph.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "serve/serve.hpp"

namespace tham::analyze {

CommGraph model_em3d(const apps::em3d::Config& cfg, apps::em3d::Version v,
                     const CostModel& cm = default_cost_model());

CommGraph model_water(const apps::water::Config& cfg, apps::water::Version v,
                      const CostModel& cm = default_cost_model());

CommGraph model_lu(const apps::lu::Config& cfg,
                   const CostModel& cm = default_cost_model());

/// Static model of the serving fabric (CC++ RMI protocol flows). Because
/// admission, batch boundaries, and balancing outcomes depend on queue
/// state at virtual-time instants, the model is a certified floor rather
/// than an exact transcript: it counts only the messages every execution
/// must send — per-client submits, the minimum delivery/forward/completion
/// batch counts, the cold-call stub updates, and the closing barrier —
/// and omits the dynamic remainder (backend hops, extra under-filled
/// batches). The cost audit's bound <= measured contract still holds.
CommGraph model_serving(const serve::Config& cfg,
                        const CostModel& cm = default_cost_model());

}  // namespace tham::analyze
