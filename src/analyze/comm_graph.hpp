#pragma once
// The static communication graph: an explicit, pre-execution model of who
// talks to whom, through which wire class, at what cost — the substrate the
// analyzer's audits and CAMP-style cost bounds run on (ISSUE 7; see
// DESIGN.md "Static analysis").
//
// A CommGraph is assembled from three sources:
//   * the declared link topology (Engine::declare_link, harvested via
//     Engine::links() or mirrored by an app model);
//   * the registered handler tables (AmLayer::handlers(),
//     NexusLayer::handlers());
//   * the message flows: per-(src, dst) message classes with exact counts,
//     wire classes, payload sizes, receive-side charges, and blocking
//     semantics. Flows come either from an app model (src/analyze
//     app_models.hpp — static mirrors of the EM3D/Water/LU communication
//     loops) or are hand-built by tests planting defects.
//
// Collectives are carried twice, deliberately: their point-to-point
// protocol messages appear as ordinary flows (so the cost bound prices
// them), and a Collective record names the participating ranks (so the
// rank-coverage audit can prove the release fan-out fires).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "transport/transport.hpp"

namespace tham::analyze {

/// A declared link, mirroring sim::Engine::Link (kept structurally
/// separate so hand-built graphs need no engine).
struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  SimTime min_wire = 0;  ///< declared wire-time floor (virtual ns)
};

/// A registered message handler, as harvested from a handler table.
struct HandlerDecl {
  std::string name;
  bool has_short = true;  ///< serves short (word-payload) dispatch
  bool has_bulk = false;  ///< serves bulk (memory-deposit) dispatch
};

/// One directed message class: `count` messages src -> dst on `wire`, each
/// carrying `bytes` of payload and running `handler` at the receiver.
struct Flow {
  /// How the sender waits for this flow's completion. Polling waiters
  /// service inbound requests while blocked (the AM discipline), so they
  /// contribute no wait-for edge; a TaskServiced waiter parks its task
  /// until the peer's runtime serves it, and does.
  enum class Waits { None, Polling, TaskServiced };

  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  net::Wire wire = net::Wire::AmShort;
  std::size_t bytes = 0;       ///< payload size (per message)
  std::uint64_t count = 1;     ///< messages of this class over the run
  std::string handler;         ///< receiver handler name
  std::string reply_handler;   ///< expected reply handler ("" = one-way)
  Waits waits = Waits::None;
  /// Receive-side charges per message (normally the wire class's recv
  /// charge; empty = unpriced path, which the charge-coverage lint flags).
  std::vector<transport::Charge> charges;
};

/// A collective operation and its participating ranks.
struct Collective {
  enum class Kind { Barrier, Reduce, AllStoreSync };
  /// Wire shape of the protocol: a linear coordinator fan, the radix-k
  /// combining tree, or the dissemination exchange. The rank-coverage
  /// audit walks the shape's actual vertex set — a missing tree parent or
  /// dissemination partner hangs a specific subtree, not just "someone".
  enum class Shape { Linear, Tree, Dissemination };
  Kind kind = Kind::Barrier;
  Shape shape = Shape::Linear;
  NodeId root = 0;
  int radix = 0;              ///< tree arity (Shape::Tree)
  int rounds = 0;             ///< exchange rounds (Shape::Dissemination)
  std::vector<NodeId> ranks;  ///< participants (must cover 0..nodes-1)
  std::uint64_t count = 1;    ///< occurrences over the run
};

/// The full static model of one program run.
struct CommGraph {
  std::string program;  ///< label, e.g. "em3d-bulk"
  int nodes = 0;
  CostModel cost;  ///< machine profile the graph is analyzed against
  std::vector<Link> links;
  std::vector<HandlerDecl> handlers;
  std::vector<Flow> flows;
  std::vector<Collective> collectives;

  /// Total messages across all flows.
  std::uint64_t total_messages() const {
    std::uint64_t n = 0;
    for (const Flow& f : flows) n += f.count;
    return n;
  }
};

}  // namespace tham::analyze
