#pragma once
// A small two-sided, tag-matched messaging layer in the style of IBM MPL /
// MPI point-to-point. The paper uses MPL's 88 us round-trip as the native
// messaging reference point in Table 4; this layer reproduces that line and
// doubles as the "lower-level messaging system" MPMD programs could fall
// back to (Section 1).
//
// A thin protocol backend over transport::Channel/Endpoint: this layer
// contributes the (source, tag) envelope, the matching rule, and the MPL
// charges; inbox draining and all CostModel reads live in src/transport.

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "sim/node.hpp"
#include "transport/transport.hpp"

namespace tham::msg {

inline constexpr NodeId kAnySource = -2;
inline constexpr int kAnyTag = -1;

class MplLayer {
 public:
  explicit MplLayer(net::Network& net);

  MplLayer(const MplLayer&) = delete;
  MplLayer& operator=(const MplLayer&) = delete;

  /// Eager send: copies the buffer out and returns immediately.
  void send(NodeId dst, int tag, const void* buf, std::size_t len);

  /// Blocking receive with (source, tag) matching; kAnySource / kAnyTag
  /// wildcards supported. `len` must be >= the matching message's length.
  /// Returns the number of bytes received.
  std::size_t recv(NodeId src, int tag, void* buf, std::size_t len);

  /// True if a matching message is already queued (non-blocking probe).
  bool probe(NodeId src, int tag) const;

  /// Non-blocking receive handle. Post with irecv, complete with wait().
  class Request {
   public:
    bool valid() const { return layer_ != nullptr; }

   private:
    friend class MplLayer;
    MplLayer* layer_ = nullptr;
    NodeId src = kAnySource;
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t cap = 0;
    std::size_t got = 0;
    bool done = false;
  };

  /// Posts a receive; the message may be matched now or on a later poll.
  /// Complete with wait(). Requests complete in post order against the
  /// matching stream.
  Request irecv(NodeId src, int tag, void* buf, std::size_t len);
  /// Blocks until the request completes; returns bytes received.
  std::size_t wait(Request& r);
  /// Completes all requests (any order of arrival).
  void wait_all(std::vector<Request*> rs);

  /// This layer's transport channel (per-layer send accounting).
  transport::Channel& channel() { return chan_; }

 private:
  struct Unexpected {
    NodeId src;
    int tag;
    std::vector<std::byte> data;
  };
  struct NodeState {
    std::deque<Unexpected> unexpected;
  };

  bool match(const Unexpected& u, NodeId src, int tag) const {
    return (src == kAnySource || u.src == src) &&
           (tag == kAnyTag || u.tag == tag);
  }

  transport::Channel chan_;
  std::vector<NodeState> state_;
};

}  // namespace tham::msg
