#include "msg/mpl.hpp"

#include <cstring>

#include "common/check.hpp"

namespace tham::msg {

using sim::Component;
using sim::ComponentScope;

MplLayer::MplLayer(net::Network& net)
    : chan_(net), state_(static_cast<std::size_t>(net.engine().size())) {}

void MplLayer::send(NodeId dst, int tag, const void* buf, std::size_t len) {
  sim::Node& src = sim::this_node();
  ComponentScope scope(src, Component::Net);
  std::vector<std::byte> data(len);
  if (len > 0) std::memcpy(data.data(), buf, len);
  NodeId from = src.id();
  chan_.send(src, dst, net::Wire::Mpl, len,
             [this, from, tag, data = std::move(data)](sim::Node& self) {
               // Tag matching and enqueueing happen when the receiver
               // polls; the matching cost is charged in recv().
               state_[static_cast<std::size_t>(self.id())]
                   .unexpected.push_back(Unexpected{from, tag,
                                                    std::move(data)});
             });
}

std::size_t MplLayer::recv(NodeId src, int tag, void* buf, std::size_t len) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Net);
  transport::Endpoint ep(n);
  auto& q = state_[static_cast<std::size_t>(n.id())].unexpected;
  for (;;) {
    // Drain every due delivery, then look for a match. Two-sided
    // reception charges nothing per poll; the matching cost is paid once
    // per received message, below.
    ep.drain_due();
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (match(*it, src, tag)) {
        ep.charge(transport::Charge::MplMatch);
        THAM_CHECK_MSG(it->data.size() <= len, "MPL recv buffer too small");
        std::size_t got = it->data.size();
        if (got > 0) std::memcpy(buf, it->data.data(), got);
        q.erase(it);
        return got;
      }
    }
    if (!ep.wait()) {
      THAM_CHECK_MSG(false, "MPL recv aborted by shutdown");
    }
  }
}

MplLayer::Request MplLayer::irecv(NodeId src, int tag, void* buf,
                                  std::size_t len) {
  Request r;
  r.layer_ = this;
  r.src = src;
  r.tag = tag;
  r.buf = buf;
  r.cap = len;
  // Eager match against already-delivered messages.
  sim::Node& n = sim::this_node();
  auto& q = state_[static_cast<std::size_t>(n.id())].unexpected;
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (match(*it, src, tag)) {
      THAM_CHECK_MSG(it->data.size() <= len, "MPL irecv buffer too small");
      r.got = it->data.size();
      if (r.got > 0) std::memcpy(buf, it->data.data(), r.got);
      q.erase(it);
      r.done = true;
      break;
    }
  }
  return r;
}

std::size_t MplLayer::wait(Request& r) {
  THAM_CHECK_MSG(r.valid(), "wait() on an invalid request");
  if (r.done) return r.got;
  r.got = recv(r.src, r.tag, r.buf, r.cap);
  r.done = true;
  return r.got;
}

void MplLayer::wait_all(std::vector<Request*> rs) {
  for (Request* r : rs) wait(*r);
}

bool MplLayer::probe(NodeId src, int tag) const {
  const sim::Node& n = sim::this_node();
  const auto& q = state_[static_cast<std::size_t>(n.id())].unexpected;
  for (const auto& u : q) {
    if (match(u, src, tag)) return true;
  }
  return false;
}

}  // namespace tham::msg
