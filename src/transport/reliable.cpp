#include "transport/reliable.hpp"

#include <algorithm>
#include <cstdio>

#include "check/checker.hpp"
#include "check/hooks.hpp"
#include "common/check.hpp"
#include "sim/engine.hpp"

namespace tham::transport {

using sim::Component;
using sim::ComponentScope;

Reliable::Reliable(Channel& chan, Config cfg) : chan_(chan), cfg_(cfg) {
  const CostModel& cm = chan.cost();
  // Defaults scale with the machine's wire latency: the RTO starts a few
  // round-trips out, never drops under one round-trip, and backoff is
  // capped so a long loss burst cannot park a link for ever.
  SimTime lat = wire_cost(cm, Wire::AmShort, 0).wire_time;
  if (lat <= 0) lat = 1;
  if (cfg_.rto_initial <= 0) cfg_.rto_initial = 8 * lat;
  if (cfg_.rto_min <= 0) cfg_.rto_min = 2 * lat;
  if (cfg_.rto_max <= 0) cfg_.rto_max = 1024 * lat;
  THAM_CHECK_MSG(cfg_.backoff >= 1, "Reliable: backoff multiplier < 1");
  THAM_CHECK_MSG(cfg_.max_retries >= 1, "Reliable: max_retries < 1");

  sim::Engine& e = chan.engine();
  int n = e.size();
  for (int i = 0; i < n; ++i) {
    NodeState& st = state_.emplace_back();
    st.tx.resize(static_cast<std::size_t>(n));
    st.rx.resize(static_cast<std::size_t>(n));
  }
  for (NodeId i = 0; i < n; ++i) {
    sim::Node& node = e.node(i);
    state_[static_cast<std::size_t>(i)].daemon = node.spawn(
        [this, &node] { daemon_loop(node); }, "rel.timer", /*daemon=*/true);
  }
  chan.set_reliable(this);
}

Reliable::Stats Reliable::total() const {
  Stats t;
  for (const NodeState& st : state_) {
    t.data_frames += st.st.data_frames;
    t.retransmits += st.st.retransmits;
    t.dup_drops += st.st.dup_drops;
    t.corrupt_drops += st.st.corrupt_drops;
    t.acks_sent += st.st.acks_sent;
    t.acks_recv += st.st.acks_recv;
    t.gave_up += st.st.gave_up;
  }
  return t;
}

Reliable::Frame* Reliable::alloc_frame(NodeState& st) {
  if (!st.free_frames.empty()) {
    Frame* f = st.free_frames.back();
    st.free_frames.pop_back();
    return f;
  }
  st.arena.emplace_back();
  return &st.arena.back();
}

void Reliable::free_frame(NodeState& st, Frame* f) {
  f->payload = sim::InlineHandler();
  st.free_frames.push_back(f);
}

void Reliable::send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
                    sim::InlineHandler deliver) {
  NodeState& st = state_[static_cast<std::size_t>(src.id())];
  LinkTx& tx = st.tx[static_cast<std::size_t>(dst)];
  Frame* f = alloc_frame(st);
  f->dst = dst;
  f->wire = wire;
  f->bytes = bytes;
  f->rseq = tx.next_rseq++;
  f->tries = 0;
  f->payload = std::move(deliver);
  tx.unacked.push_back(f);
  ++st.st.data_frames;
  src.advance(Component::Net,
              charge_cost(chan_.cost(), Charge::RelFrameSend));
  transmit(src, tx, *f, /*flags=*/0);
  nudge(src, st);
}

void Reliable::transmit(sim::Node& src, LinkTx& tx, Frame& f,
                        std::uint8_t flags) {
  if (f.tries == 0) f.first_sent = src.now();
  f.last_sent = src.now();
  ++f.tries;
  Reliable* rel = this;
  NodeId s = src.id();
  std::uint64_t rseq = f.rseq;
  Frame* fp = &f;
  chan_.raw_send(src, f.dst, f.wire, f.bytes, flags,
                 [rel, s, rseq, fp](sim::Node& n) {
                   rel->on_frame(n, s, rseq, fp);
                 });
  if (tx.unacked.front() == &f) {
    if (tx.rto_cur <= 0) tx.rto_cur = cfg_.rto_initial;
    tx.deadline = src.now() + tx.rto_cur;
  }
}

void Reliable::send_ack(sim::Node& recv, NodeId to, std::uint64_t acked,
                        NodeState& st) {
  ++st.st.acks_sent;
  Reliable* rel = this;
  NodeId from = recv.id();
  chan_.raw_send(recv, to, Wire::AmShort, 0, net::kSendAck,
                 [rel, from, acked](sim::Node& n) {
                   rel->on_ack(n, from, acked);
                 });
}

void Reliable::on_frame(sim::Node& n, NodeId src, std::uint64_t rseq,
                        Frame* f) {
  NodeState& st = state_[static_cast<std::size_t>(n.id())];
  LinkRx& rx = st.rx[static_cast<std::size_t>(src)];
  n.advance(Component::Net,
            charge_cost(chan_.cost(), Charge::RelFrameRecv));
  const sim::Message* m = n.current_delivery();
  if (m != nullptr && (m->fault_flags & sim::kFaultCorrupt) != 0) {
    // A corrupted frame fails its (modelled) checksum: discard without
    // acking and let the sender's timer repair it.
    ++st.st.corrupt_drops;
    return;
  }
  bool buffered_dup =
      std::any_of(rx.buffered.begin(), rx.buffered.end(),
                  [rseq](const auto& p) { return p.first == rseq; });
  if (rseq < rx.expected || buffered_dup) {
    // A duplicate: an injected copy, or a retransmit whose original made
    // it through. The frame pointer may be stale (sender frees frames once
    // they are cumulatively acked, and rseq < expected implies this one
    // was acked), so the sequence check alone decides — never touch `f`.
    ++st.st.dup_drops;
    send_ack(n, src, rx.expected - 1, st);
    return;
  }
  if (rseq == rx.expected) {
    f->payload(n);
    ++rx.expected;
    // Drain frames the gap was holding back. Each drained payload is its
    // own delivery in the checker's eyes (fresh reply-lint frame, same
    // source); the happens-before edge was already joined when the
    // buffered copy arrived through poll_one.
    while (!rx.buffered.empty() &&
           rx.buffered.front().first == rx.expected) {
      Frame* next = rx.buffered.front().second;
      rx.buffered.erase(rx.buffered.begin());
      THAM_HOOK(on_deliver_end(n.id()));
      THAM_HOOK(on_deliver_begin(n.id(), src, /*clock_id=*/0, n.now()));
      next->payload(n);
      ++rx.expected;
    }
    send_ack(n, src, rx.expected - 1, st);
  } else {
    // Out of order: hold for the gap, ack what we have (the cumulative
    // ack doubles as a duplicate-ack hint that something is missing).
    auto it = std::lower_bound(
        rx.buffered.begin(), rx.buffered.end(), rseq,
        [](const auto& p, std::uint64_t v) { return p.first < v; });
    rx.buffered.insert(it, {rseq, f});
    send_ack(n, src, rx.expected - 1, st);
  }
}

void Reliable::on_ack(sim::Node& n, NodeId from, std::uint64_t acked) {
  NodeState& st = state_[static_cast<std::size_t>(n.id())];
  LinkTx& tx = st.tx[static_cast<std::size_t>(from)];
  n.advance(Component::Net, charge_cost(chan_.cost(), Charge::RelAckRecv));
  const sim::Message* m = n.current_delivery();
  if (m != nullptr && (m->fault_flags & sim::kFaultCorrupt) != 0) {
    return;  // corrupted ack: discard; a retransmit re-acks
  }
  ++st.st.acks_recv;
  bool popped = false;
  while (!tx.unacked.empty() && tx.unacked.front()->rseq <= acked) {
    Frame* f = tx.unacked.front();
    tx.unacked.pop_front();
    popped = true;
    if (f->tries == 1) {
      // Karn's rule: only never-retransmitted frames give an unambiguous
      // RTT sample (a retransmitted frame's ack could answer either copy).
      SimTime sample = n.now() - f->first_sent;
      tx.srtt = tx.srtt == 0 ? sample : (7 * tx.srtt + sample) / 8;
      tx.rto_cur = std::clamp(3 * tx.srtt, cfg_.rto_min, cfg_.rto_max);
    }
    free_frame(st, f);
  }
  if (!popped) return;  // stale/duplicate ack
  if (tx.unacked.empty()) {
    tx.deadline = kNoTimer;
  } else {
    SimTime rto = tx.rto_cur > 0 ? tx.rto_cur : cfg_.rto_initial;
    tx.deadline = std::max(n.now(), tx.unacked.front()->last_sent + rto);
  }
  nudge(n, st);
}

SimTime Reliable::next_deadline(const NodeState& st) const {
  SimTime dl = kNoTimer;
  for (const LinkTx& tx : st.tx) dl = std::min(dl, tx.deadline);
  return dl;
}

void Reliable::nudge(sim::Node& n, NodeState& st) {
  if (n.shutting_down() || st.daemon == nullptr || st.daemon->done()) return;
  SimTime want = next_deadline(st);
  if (want == st.armed) return;
  bool earlier =
      want != kNoTimer && (st.armed == kNoTimer || want < st.armed);
  bool disarm = want == kNoTimer && st.armed != kNoTimer;
  // Waking on disarm lets the daemon re-park untimed; the engine wake
  // queued for the old deadline then finds no expired waiter and does not
  // jump the node clock (Node::has_work_at), so cancelled timers never
  // inflate the run's virtual time.
  if (earlier || disarm) n.wake(st.daemon);
}

void Reliable::daemon_loop(sim::Node& n) {
  ComponentScope scope(n, Component::Net);
  NodeState& st = state_[static_cast<std::size_t>(n.id())];
  for (;;) {
    SimTime dl = next_deadline(st);
    st.armed = dl;
    bool alive = dl == kNoTimer
                     ? n.wait_for_inbox(/*poll_only=*/true)
                     : n.wait_for_inbox_until(dl, /*poll_only=*/true);
    if (!alive) return;
    // Contract of a poll_only waiter woken for due traffic: deliver it.
    Endpoint(n).drain_due();
    fire_due(n, st);
  }
}

void Reliable::fire_due(sim::Node& n, NodeState& st) {
  const CostModel& cm = chan_.cost();
  // Destination order keeps multi-link timeout bursts deterministic.
  for (std::size_t dst = 0; dst < st.tx.size(); ++dst) {
    LinkTx& tx = st.tx[dst];
    if (tx.unacked.empty() || tx.deadline == kNoTimer ||
        tx.deadline > n.now()) {
      continue;
    }
    Frame* f = tx.unacked.front();
    if (f->tries > cfg_.max_retries) {
      // Retransmission budget exhausted: the message is genuinely lost,
      // reliability notwithstanding. Surface it loudly — this is the one
      // loss a reliable transport must never paper over.
      tx.unacked.pop_front();
      ++st.st.gave_up;
      std::fprintf(stderr,
                   "tham-transport: node %d gave up on frame %llu to node "
                   "%d after %d attempts\n",
                   n.id(), static_cast<unsigned long long>(f->rseq), f->dst,
                   f->tries);
      if (auto* chk = check::Checker::active()) {
        chk->on_reliable_give_up(n.id(), f->dst, f->rseq, f->tries, n.now());
      }
      free_frame(st, f);
      if (tx.unacked.empty()) {
        tx.deadline = kNoTimer;
      } else {
        tx.deadline = n.now() + tx.rto_cur;
      }
      continue;
    }
    ++st.st.retransmits;
    if (tx.rto_cur <= 0) tx.rto_cur = cfg_.rto_initial;
    tx.rto_cur = std::min(tx.rto_cur * cfg_.backoff, cfg_.rto_max);
    n.advance(Component::Net, charge_cost(cm, Charge::RelFrameSend));
    transmit(n, tx, *f, net::kSendRetransmit);
  }
}

}  // namespace tham::transport
