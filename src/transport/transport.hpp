#pragma once
// The common messaging substrate under the three runtimes' messaging
// layers. The paper's premise is that AM, MPL, and Nexus are three *cost
// structures* over the same interconnect; this layer is that shared
// machinery, so each backend contributes only its protocol: envelope,
// matching rule, and which named charges it pays.
//
//   * Channel  — a backend's send side: resolves the wire-class cost pair
//     (sender CPU, wire time) from the machine profile, keeps per-wire
//     send counters, and hands the message to net::Network (which is now
//     pure mechanics: FIFO clamp, arrival, inbox routing).
//   * Endpoint — a node's receive side: the poll / drain / wait loops over
//     the node inbox, and the receive-side protocol charges.
//   * Charge   — the named receive/dispatch costs a backend may pay.
//
// Every messaging-related CostModel field is read HERE (or in
// wire_cost/charge_cost below) and nowhere else: swapping the machine
// profile (common/machine.hpp) re-prices all three backends at once, and
// no backend can drift from the calibration by reading constants directly.
//
// Delivery closures stay sim::InlineHandler and messages stay pooled in
// the per-node MessagePool, so the PR 1 allocation-free hot path is
// unchanged.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"

namespace tham::transport {

using net::Wire;

/// Send-side cost of one message: what the sending CPU pays and how long
/// the message spends on the wire (latency + serialization).
struct WireCost {
  SimTime sender_cpu = 0;
  SimTime wire_time = 0;
};

/// Resolves the wire-class cost pair from a machine profile.
WireCost wire_cost(const CostModel& cm, Wire wire, std::size_t bytes);

/// Receive-side / dispatch charge classes a backend may pay. Each names a
/// protocol step; the mapping to CostModel fields lives in charge_cost().
enum class Charge {
  AmShortRecv,  ///< AM short-message handler dispatch
  AmBulkRecv,   ///< AM bulk deposit: dispatch + bulk startup
  MplMatch,     ///< MPL tag matching at recv time
  TcpRecv,      ///< kernel TCP receive path + interrupt upcall
  TcpDispatch,  ///< dynamic buffer + full-name handler resolution
  TcpTxBuffer,  ///< outgoing dynamic message buffer (send side)
  RelFrameSend, ///< reliable transport: frame sequencing/bookkeeping (tx)
  RelFrameRecv, ///< reliable transport: frame sequencing/dedup check (rx)
  RelAckRecv,   ///< reliable transport: cumulative-ack processing
};

SimTime charge_cost(const CostModel& cm, Charge c);

class Reliable;

/// A backend's send side. Each messaging layer owns one Channel, so the
/// per-wire counters double as per-layer counters.
class Channel {
 public:
  explicit Channel(net::Network& net) : net_(net) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sends from the current task on `src`: prices the message for the
  /// active machine profile, counts it, and hands it to the network.
  /// When a Reliable service is attached, the message is framed and
  /// sequenced through it instead of going straight to the wire.
  void send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
            sim::InlineHandler deliver);

  /// The unsequenced path: prices, counts, and hands to the network with
  /// the given net::kSend* flags, bypassing any attached Reliable service.
  /// This is what Reliable itself uses for frames, retransmits, and acks.
  void raw_send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
                std::uint8_t flags, sim::InlineHandler deliver);

  /// Declares a src -> dst link of the given wire class in the engine's
  /// communication topology, priced from the machine profile (the zero-
  /// byte wire time of the class, i.e. its latency floor). The parallel
  /// engine's per-link lookahead derives shard horizons from declared
  /// floors, and once anything is declared every send is checked against
  /// them — declare every link (per wire class) the program will use,
  /// before Engine::run(). Programs that declare nothing keep the global
  /// CostModel::lookahead() horizon and pay no check. Validation follows
  /// Engine::declare_link: declaring the same (src, dst, wire class) twice
  /// throws tham::RuntimeError (wire classes that price to distinct floors
  /// may coexist on one pair and keep the minimum).
  void declare_link(NodeId src, NodeId dst, Wire wire) {
    engine().declare_link(src, dst, wire_cost(cost(), wire, 0).wire_time);
  }

  /// Attaches (or detaches, with nullptr) a reliable-delivery service; all
  /// subsequent send() calls are framed through it. The service must
  /// outlive the channel's traffic.
  void set_reliable(Reliable* r) { reliable_ = r; }
  Reliable* reliable() const { return reliable_; }

  /// Messages / payload bytes this channel has sent on `w`.
  std::uint64_t sends(Wire w) const {
    return sends_[static_cast<std::size_t>(w)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t send_bytes(Wire w) const {
    return bytes_[static_cast<std::size_t>(w)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t total_sends() const;

  net::Network& network() { return net_; }
  sim::Engine& engine() { return net_.engine(); }
  const CostModel& cost() const { return net_.engine().cost(); }

 private:
  static constexpr std::size_t kWires = 4;  // AmShort, AmBulk, Mpl, Tcp

  net::Network& net_;
  Reliable* reliable_ = nullptr;
  std::array<std::atomic<std::uint64_t>, kWires> sends_{};
  std::array<std::atomic<std::uint64_t>, kWires> bytes_{};
};

/// A node's receive side: the one place the per-node inbox is polled,
/// drained, and waited on, and where receive-side charges are paid.
/// Lightweight handle — construct on the fly from any node reference.
class Endpoint {
 public:
  explicit Endpoint(sim::Node& node) : node_(node) {}

  /// The endpoint of the node the current task runs on.
  static Endpoint current() { return Endpoint(sim::this_node()); }

  sim::Node& node() { return node_; }

  /// True while a delivery closure (message handler) is running on this
  /// node — sends issued there must not poll (the AM discipline).
  bool in_handler() const { return node_.in_handler(); }

  /// True if a message is due for delivery now.
  bool has_due() const { return node_.inbox_due(); }

  /// Advances the node by the named protocol charge, under the caller's
  /// component scope.
  void charge(Charge c) { node_.advance(charge_cost(node_.cost(), c)); }

  /// One AM-discipline poll: pays the poll cost, then delivers every due
  /// message, paying the per-message dispatch cost. Counts as one poll in
  /// the node counters. Returns the number delivered.
  int poll();

  /// Polls until `pred()` holds, idling in virtual time while the inbox
  /// is empty. The standard split-phase completion wait.
  void poll_until(const std::function<bool()>& pred);

  /// Delivers every due message with NO poll charges — the two-sided /
  /// interrupt-style backends, whose reception costs are charged at match
  /// or delivery time instead. Returns the number delivered.
  int drain_due();

  /// Blocks the current task until a message is due (or shutdown; returns
  /// false). poll_only marks the wait as satisfiable only by delivery,
  /// exactly Node::wait_for_inbox.
  bool wait(bool poll_only = false) { return node_.wait_for_inbox(poll_only); }

  /// Like wait(), but also returns (true) when the node clock reaches
  /// `deadline` — the timer wait protocol-timeout daemons are built on.
  bool wait_until(SimTime deadline, bool poll_only = false) {
    return node_.wait_for_inbox_until(deadline, poll_only);
  }

 private:
  sim::Node& node_;
};

/// Spawns one daemon task per node that drains the inbox whenever messages
/// are due — the "kernel upcall thread" of interrupt-driven runtimes
/// (Nexus), or any backend whose receivers do not poll explicitly.
void start_service_daemons(sim::Engine& engine, const char* name);

}  // namespace tham::transport
