#include "transport/transport.hpp"

#include "common/check.hpp"
#include "transport/reliable.hpp"

namespace tham::transport {

using sim::Component;
using sim::ComponentScope;

WireCost wire_cost(const CostModel& cm, Wire wire, std::size_t bytes) {
  WireCost c;
  SimTime payload = static_cast<SimTime>(bytes);
  switch (wire) {
    case Wire::AmShort:
      c.sender_cpu = cm.am_send_overhead;
      c.wire_time = cm.am_wire_latency;
      break;
    case Wire::AmBulk:
      c.sender_cpu = cm.am_send_overhead + cm.am_bulk_startup_send;
      c.wire_time = cm.am_wire_latency + payload * cm.am_per_byte;
      break;
    case Wire::Mpl:
      c.sender_cpu = cm.mpl_send_overhead;
      c.wire_time = cm.am_wire_latency + payload * cm.mpl_per_byte;
      break;
    case Wire::Tcp:
      c.sender_cpu = cm.nx_tcp_send;
      c.wire_time = cm.nx_tcp_latency +
                    (payload + cm.nx_envelope_bytes) * cm.nx_per_byte;
      break;
  }
  return c;
}

SimTime charge_cost(const CostModel& cm, Charge c) {
  switch (c) {
    case Charge::AmShortRecv:
      return cm.am_recv_overhead;
    case Charge::AmBulkRecv:
      return cm.am_recv_overhead + cm.am_bulk_startup_recv;
    case Charge::MplMatch:
      return cm.mpl_recv_overhead;
    case Charge::TcpRecv:
      return cm.nx_interrupt + cm.nx_tcp_recv;
    case Charge::TcpDispatch:
      return cm.nx_buffer_alloc + cm.nx_name_resolve;
    case Charge::TcpTxBuffer:
      return cm.nx_buffer_alloc;
    case Charge::RelFrameSend:
    case Charge::RelFrameRecv:
      return cm.rel_frame_overhead;
    case Charge::RelAckRecv:
      return cm.rel_ack_overhead;
  }
  return 0;  // unreachable
}

void Channel::send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
                   sim::InlineHandler deliver) {
  if (reliable_ != nullptr) {
    reliable_->send(src, dst, wire, bytes, std::move(deliver));
    return;
  }
  raw_send(src, dst, wire, bytes, /*flags=*/0, std::move(deliver));
}

void Channel::raw_send(sim::Node& src, NodeId dst, Wire wire,
                       std::size_t bytes, std::uint8_t flags,
                       sim::InlineHandler deliver) {
  WireCost wc = wire_cost(cost(), wire, bytes);
  sends_[static_cast<std::size_t>(wire)].fetch_add(1,
                                                   std::memory_order_relaxed);
  bytes_[static_cast<std::size_t>(wire)].fetch_add(
      bytes, std::memory_order_relaxed);
  net_.send(src, dst, wire, bytes, wc.sender_cpu, wc.wire_time,
            std::move(deliver), flags);
}

std::uint64_t Channel::total_sends() const {
  std::uint64_t total = 0;
  for (const auto& s : sends_) total += s.load(std::memory_order_relaxed);
  return total;
}

int Endpoint::poll() {
  ComponentScope scope(node_, Component::Net);
  ++node_.counters().polls;
  node_.advance(node_.cost().am_poll_empty);
  int delivered = 0;
  while (node_.inbox_due()) {
    node_.advance(node_.cost().am_poll_found);
    node_.poll_one();
    ++delivered;
  }
  return delivered;
}

void Endpoint::poll_until(const std::function<bool()>& pred) {
  ComponentScope scope(node_, Component::Net);
  while (!pred()) {
    poll();
    if (pred()) break;
    if (!node_.inbox_due()) {
      if (!node_.wait_for_inbox()) break;  // shutdown
    }
  }
  THAM_CHECK_MSG(pred(), "poll_until aborted by shutdown before completion");
}

int Endpoint::drain_due() {
  int delivered = 0;
  while (node_.poll_one()) ++delivered;
  return delivered;
}

void start_service_daemons(sim::Engine& engine, const char* name) {
  for (NodeId i = 0; i < engine.size(); ++i) {
    engine.node(i).spawn(
        [] {
          Endpoint ep = Endpoint::current();
          ComponentScope scope(ep.node(), Component::Net);
          while (ep.wait(/*poll_only=*/true)) {
            ep.drain_due();
          }
        },
        name, /*daemon=*/true);
  }
}

}  // namespace tham::transport
