#pragma once
// transport::Reliable — a reliable-delivery service over an unreliable
// Channel, in the spirit of the reliability sublayers the paper's three
// runtimes carried over lossy fabrics (AM's request/reply retry layer,
// MPL's sequenced packets, Nexus-over-UDP): per-link sequence numbers,
// cumulative acknowledgements, timeout-driven retransmission with
// exponential backoff, and receiver-side deduplication.
//
// The service sits between a messaging layer and its Channel: attach it
// with Channel::set_reliable() and every Channel::send() is framed
// through it, while the service itself uses Channel::raw_send() (flagged
// net::kSendRetransmit / net::kSendAck) so protocol traffic is priced
// through the same WireCost/Charge machinery as application traffic —
// retransmits pay the full wire cost again, and the bookkeeping costs are
// the CostModel's rel_frame_overhead / rel_ack_overhead.
//
// Determinism: every protocol decision is a function of virtual time and
// single-node state. Timeouts run on a per-node "rel.timer" daemon parked
// in Node::wait_for_inbox_until (the sim-timer primitive), deadlines are
// re-armed from deterministic points (send, ack processing), and frames
// retransmit in destination order — so runs are bit-identical across host
// thread counts even while the fault injector drops, duplicates, delays,
// and corrupts traffic (see tests/test_property.cpp's fault fuzz leg).
//
// Memory discipline matches the PR 1 hot path: frames are pooled
// per node (address-stable arena + free list), the wire closure is a
// 32-byte {service, src, rseq, frame} capture, and the application
// payload is invoked by reference from the frame — never cloned, even
// across retransmits. A receiver validates the sequence number BEFORE
// touching the frame pointer: a stale pointer can only arrive on a
// duplicate of an already-delivered frame (the sender frees frames only
// after the cumulative ack, which happens-after the receiver advanced
// past them), and duplicates are dropped on the sequence check alone.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "transport/transport.hpp"

namespace tham::check {
class Checker;
}

namespace tham::transport {

class Reliable {
 public:
  struct Config {
    /// Retransmission timer before the first RTT sample; 0 = derive from
    /// the machine profile (a small multiple of the wire latency).
    SimTime rto_initial = 0;
    SimTime rto_min = 0;      ///< 0 = derive (floor under the RTT estimate)
    SimTime rto_max = 0;      ///< 0 = derive (cap on backoff growth)
    int backoff = 2;          ///< RTO multiplier per timeout
    int max_retries = 20;     ///< retransmissions before giving up
  };

  /// Per-node protocol counters (owner-shard writes; read after run()).
  struct Stats {
    std::uint64_t data_frames = 0;    ///< application frames sent
    std::uint64_t retransmits = 0;    ///< timeout-driven re-sends
    std::uint64_t dup_drops = 0;      ///< duplicate frames discarded (rx)
    std::uint64_t corrupt_drops = 0;  ///< corrupted frames discarded (rx)
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_recv = 0;
    std::uint64_t gave_up = 0;        ///< frames that exhausted max_retries
  };

  /// Attaches to `chan` (Channel::set_reliable) and spawns one "rel.timer"
  /// daemon per node. Construct before Engine::run(); the service must
  /// outlive the run.
  explicit Reliable(Channel& chan) : Reliable(chan, Config()) {}
  Reliable(Channel& chan, Config cfg);

  Reliable(const Reliable&) = delete;
  Reliable& operator=(const Reliable&) = delete;

  /// Frames, sequences, and transmits one application message. Called by
  /// Channel::send() when the service is attached.
  void send(sim::Node& src, NodeId dst, Wire wire, std::size_t bytes,
            sim::InlineHandler deliver);

  const Config& config() const { return cfg_; }
  const Stats& stats(NodeId node) const {
    return state_[static_cast<std::size_t>(node)].st;
  }
  Stats total() const;
  /// Smoothed RTT estimate of the src->dst link (0 until first sample).
  SimTime srtt(NodeId src, NodeId dst) const {
    return state_[static_cast<std::size_t>(src)]
        .tx[static_cast<std::size_t>(dst)]
        .srtt;
  }

 private:
  /// "No retransmission timer armed" sentinel.
  static constexpr SimTime kNoTimer = std::numeric_limits<SimTime>::max();

  /// One in-flight application message. Pooled per sending node; the
  /// address is stable for the frame's lifetime (arena of deque slabs).
  struct Frame {
    NodeId dst = kInvalidNode;
    Wire wire = Wire::AmShort;
    std::size_t bytes = 0;
    std::uint64_t rseq = 0;    ///< 1-based per-link sequence number
    int tries = 0;             ///< transmissions so far
    SimTime first_sent = 0;    ///< for Karn-rule RTT sampling
    SimTime last_sent = 0;
    sim::InlineHandler payload;
  };

  /// Sender side of one (this node -> dst) link.
  struct LinkTx {
    std::uint64_t next_rseq = 1;
    std::deque<Frame*> unacked;   ///< in rseq order; front owns the timer
    SimTime srtt = 0;             ///< smoothed RTT (0 = no sample yet)
    SimTime rto_cur = 0;          ///< current timeout (0 = cfg default)
    SimTime deadline = kNoTimer;  ///< when the front frame times out
  };

  /// Receiver side of one (src -> this node) link.
  struct LinkRx {
    std::uint64_t expected = 1;   ///< next in-order rseq
    /// Out-of-order frames held for the gap to fill, sorted by rseq.
    std::vector<std::pair<std::uint64_t, Frame*>> buffered;
  };

  struct NodeState {
    std::vector<LinkTx> tx;       ///< indexed by destination node
    std::vector<LinkRx> rx;       ///< indexed by source node
    std::deque<Frame> arena;      ///< address-stable frame storage
    std::vector<Frame*> free_frames;
    sim::Task* daemon = nullptr;
    /// Deadline the daemon last parked with (kNoTimer = untimed wait);
    /// nudge() compares against it to decide whether to wake the daemon.
    SimTime armed = kNoTimer;
    Stats st;
  };

  Frame* alloc_frame(NodeState& st);
  void free_frame(NodeState& st, Frame* f);
  /// (Re)transmits `f` on the wire and re-arms the link timer if `f` is
  /// the front of the unacked queue.
  void transmit(sim::Node& src, LinkTx& tx, Frame& f, std::uint8_t flags);
  void send_ack(sim::Node& recv, NodeId to, std::uint64_t acked,
                NodeState& st);
  /// Receiver-side frame processing (the wire delivery closure).
  void on_frame(sim::Node& n, NodeId src, std::uint64_t rseq, Frame* f);
  /// Sender-side cumulative-ack processing (the ack delivery closure).
  void on_ack(sim::Node& n, NodeId from, std::uint64_t acked);
  /// Earliest armed deadline across this node's links.
  SimTime next_deadline(const NodeState& st) const;
  /// Wakes the node's timer daemon when the earliest deadline moved
  /// earlier than what it parked with (or all timers were disarmed, so a
  /// stale park deadline never inflates the node clock at drain).
  void nudge(sim::Node& n, NodeState& st);
  /// Timer daemon body: park until the earliest deadline, deliver due
  /// messages, fire expired retransmissions in destination order.
  void daemon_loop(sim::Node& n);
  void fire_due(sim::Node& n, NodeState& st);

  Channel& chan_;
  Config cfg_;
  /// Indexed by node; owner-shard access only. A deque so NodeState (which
  /// holds a move-only frame arena) is constructed in place, never moved.
  std::deque<NodeState> state_;
};

}  // namespace tham::transport
