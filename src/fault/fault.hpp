#pragma once
// Deterministic fault injection for the simulated interconnect.
//
// A fault::Plan describes how the wire misbehaves (loss, duplication,
// delay spikes, payload corruption, per-link degradation windows); a
// fault::Injector turns the plan into per-message decisions at the
// net::Network boundary.
//
// The load-bearing property is schedule independence: a decision is a pure
// function of (plan seed, src, dst, per-source seq) — plus the send
// timestamp for degradation windows, which is itself deterministic — and
// NEVER of host scheduling, wall clock, or any global counter. Each sender
// stamps its own per-source sequence, so the same program produces the
// same fault pattern on the sequential engine and on any shard count of
// the parallel engine: the bit-identity guarantees of PR 3 extend
// unchanged to lossy runs (the golden-trace and ScheduleFuzz harnesses
// assert it).
//
// Injected artifacts are marked on the Message (sim/message.hpp kFault*
// bits) so the terminal-state auditor can tell transport residue from a
// genuinely lost application message, and the injector keeps a ledger
// (drops/dups/delays/corruptions, per-link drops) that the checker reports
// as info at the end of a run.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cost_model.hpp"
#include "common/types.hpp"

namespace tham::fault {

/// A window of elevated loss on one directed link — a flaky cable or a
/// congested uplink for part of the run. Matched on the (deterministic)
/// virtual send time.
struct Window {
  NodeId src = kInvalidNode;  ///< kInvalidNode = every source
  NodeId dst = kInvalidNode;  ///< kInvalidNode = every destination
  SimTime begin = 0;
  SimTime end = 0;            ///< exclusive
  double extra_loss = 0;      ///< added to Plan::loss inside the window
};

/// What the wire does to traffic. All probabilities in [0, 1]; a
/// default-constructed plan is a perfect wire.
struct Plan {
  std::uint64_t seed = 1;
  double loss = 0;         ///< message vanishes
  double dup = 0;          ///< a second copy arrives dup_gap later
  double delay = 0;        ///< message is held back delay_spike longer
  double corrupt = 0;      ///< payload arrives damaged (flag only)
  SimTime delay_spike = 0; ///< extra wire time of a delayed message
  /// Arrival spacing of a duplicate's second copy. 0 = one minimal tick,
  /// so the copy sorts strictly after the original without reordering
  /// against later traffic.
  SimTime dup_gap = 0;
  std::vector<Window> windows;

  /// The machine profile's fault defaults (fault_* fields of CostModel)
  /// under the given seed — how `lossy-cluster` runs get their plan.
  static Plan from_machine(const CostModel& cm, std::uint64_t seed);
};

/// The per-message outcome. `drop` wins over everything else; a duplicated
/// message may also be delayed or corrupted (the copy shares the fate of
/// the original's payload).
struct Decision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  SimTime extra_delay = 0;
  bool faulty() const { return drop || duplicate || corrupt || extra_delay > 0; }
};

class Injector {
 public:
  /// `num_nodes` sizes the per-link drop ledger.
  Injector(Plan plan, int num_nodes);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  const Plan& plan() const { return plan_; }

  /// The fault decision for one message. Pure: depends only on the plan
  /// and the arguments, so any engine schedule derives the same outcome.
  Decision decide(NodeId src, NodeId dst, std::uint64_t seq,
                  SimTime send_time) const;

  /// Counts a decision in the ledger. Split from decide() so the decision
  /// function stays const/pure; called once per message by the network.
  void record(const Decision& d, NodeId src, NodeId dst);

  // --- Ledger (atomics: shard workers record concurrently) -----------------
  std::uint64_t decisions() const { return ld(decisions_); }
  std::uint64_t drops() const { return ld(drops_); }
  std::uint64_t dups() const { return ld(dups_); }
  std::uint64_t delays() const { return ld(delays_); }
  std::uint64_t corruptions() const { return ld(corruptions_); }
  std::uint64_t drops_on(NodeId src, NodeId dst) const;

 private:
  static std::uint64_t ld(const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  }

  Plan plan_;
  int num_nodes_;
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> dups_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> corruptions_{0};
  std::vector<std::atomic<std::uint64_t>> link_drops_;  ///< src * N + dst
};

/// The keyed hash behind every decision: a strong 64-bit mix of
/// (seed, src, dst, seq, salt). Exposed for the determinism unit tests.
std::uint64_t fault_hash(std::uint64_t seed, NodeId src, NodeId dst,
                         std::uint64_t seq, std::uint64_t salt);

/// Maps a hash to a uniform double in [0, 1).
double hash_uniform(std::uint64_t h);

}  // namespace tham::fault
