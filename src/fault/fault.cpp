#include "fault/fault.hpp"

#include "common/check.hpp"
#include "common/hash.hpp"

namespace tham::fault {

namespace {

// Salts separating the independent per-message draws. Arbitrary distinct
// constants; part of the meaning of a seed, so never renumber.
constexpr std::uint64_t kLoss = 0xd1ceb01dfa117e57ull;
constexpr std::uint64_t kDup = 0x2b1ade5ca1ab1e00ull;
constexpr std::uint64_t kDelay = 0x5107fee1b0a7ed11ull;
constexpr std::uint64_t kCorrupt = 0xbadc0ffee0ddf00dull;

/// Finalizer of splitmix64 (Steele et al.): full-avalanche bijection, so
/// consecutive seq values map to uncorrelated draws.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}
}  // namespace

std::uint64_t fault_hash(std::uint64_t seed, NodeId src, NodeId dst,
                         std::uint64_t seq, std::uint64_t salt) {
  std::uint64_t h = hash_mix(seed, salt);
  h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = hash_mix(h, seq);
  return mix64(h);
}

double hash_uniform(std::uint64_t h) {
  // Top 53 bits -> [0, 1): every double in the range is reachable and the
  // mapping is exact (no rounding), so thresholds compare reproducibly.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Plan Plan::from_machine(const CostModel& cm, std::uint64_t seed) {
  Plan p;
  p.seed = seed;
  p.loss = cm.fault_loss;
  p.dup = cm.fault_dup;
  p.delay = cm.fault_delay;
  p.corrupt = cm.fault_corrupt;
  p.delay_spike = cm.fault_delay_spike;
  return p;
}

Injector::Injector(Plan plan, int num_nodes)
    : plan_(std::move(plan)),
      num_nodes_(num_nodes),
      link_drops_(static_cast<std::size_t>(num_nodes) *
                  static_cast<std::size_t>(num_nodes)) {
  THAM_CHECK(num_nodes > 0);
  THAM_CHECK_MSG(plan_.loss >= 0 && plan_.loss <= 1 && plan_.dup >= 0 &&
                     plan_.dup <= 1 && plan_.delay >= 0 && plan_.delay <= 1 &&
                     plan_.corrupt >= 0 && plan_.corrupt <= 1,
                 "fault::Plan probabilities must be in [0, 1]");
}

Decision Injector::decide(NodeId src, NodeId dst, std::uint64_t seq,
                          SimTime send_time) const {
  Decision d;
  double loss = plan_.loss;
  for (const Window& w : plan_.windows) {
    if (w.src != kInvalidNode && w.src != src) continue;
    if (w.dst != kInvalidNode && w.dst != dst) continue;
    if (send_time < w.begin || send_time >= w.end) continue;
    loss += w.extra_loss;
  }
  if (loss > 0 &&
      hash_uniform(fault_hash(plan_.seed, src, dst, seq, kLoss)) < loss) {
    d.drop = true;
    return d;  // a dropped message has no other fate
  }
  if (plan_.dup > 0 &&
      hash_uniform(fault_hash(plan_.seed, src, dst, seq, kDup)) < plan_.dup) {
    d.duplicate = true;
  }
  if (plan_.delay > 0 && plan_.delay_spike > 0 &&
      hash_uniform(fault_hash(plan_.seed, src, dst, seq, kDelay)) <
          plan_.delay) {
    d.extra_delay = plan_.delay_spike;
  }
  if (plan_.corrupt > 0 &&
      hash_uniform(fault_hash(plan_.seed, src, dst, seq, kCorrupt)) <
          plan_.corrupt) {
    d.corrupt = true;
  }
  return d;
}

void Injector::record(const Decision& d, NodeId src, NodeId dst) {
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (d.drop) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    link_drops_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(num_nodes_) +
                static_cast<std::size_t>(dst)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  if (d.duplicate) dups_.fetch_add(1, std::memory_order_relaxed);
  if (d.extra_delay > 0) delays_.fetch_add(1, std::memory_order_relaxed);
  if (d.corrupt) corruptions_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Injector::drops_on(NodeId src, NodeId dst) const {
  return ld(link_drops_[static_cast<std::size_t>(src) *
                            static_cast<std::size_t>(num_nodes_) +
                        static_cast<std::size_t>(dst)]);
}

}  // namespace tham::fault
