#pragma once
// Active Messages, after von Eicken et al. [22] and the SP port of Chang et
// al. [5]: a request carries a handler identifier and up to four words; the
// handler runs at the receiver, in the context of the thread that polls the
// message, and may send at most a reply. Bulk transfers (xfer/get) move
// contiguous memory into a remote address and then run a handler there.
//
// Message reception is polling-based: every send polls the inbox (the
// paper: "message reception is based on polling that occurs on a node every
// time a message is sent"), and runtimes poll explicitly in wait loops.
//
// This layer is a thin protocol backend over transport::Channel /
// transport::Endpoint: it contributes the AM envelope (handler id + 6
// words), the handler tables, and the AM cost charges; the poll/drain
// machinery and all CostModel reads live in src/transport.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/inline_handler.hpp"
#include "sim/node.hpp"
#include "transport/transport.hpp"

namespace tham::am {

using Word = std::uint64_t;
using HandlerId = std::uint32_t;
/// Short-message argument words. The SP2 AM layer carried 4 x 32-bit words;
/// we carry 6 x 64-bit words so that full 64-bit simulated addresses fit —
/// the cost model treats every short message as one flat-cost packet either
/// way, so this does not change the measured shape.
using Words = std::array<Word, 6>;

/// Identifies the requesting node inside a handler; used to reply.
struct Token {
  NodeId reply_to = kInvalidNode;
};

/// Runs at the receiver for 4-word messages. Stored inline in the handler
/// table (sim::InlineFn): registration and dispatch never touch the heap.
using ShortHandler =
    sim::InlineFn<void(sim::Node& self, Token, const Words&)>;
/// Runs at the receiver after a bulk payload has been deposited at `addr`.
using BulkHandler = sim::InlineFn<void(sim::Node& self, Token, void* addr,
                                       std::size_t len, const Words&)>;

/// Casts between pointers and AM words (one address space per simulated
/// node, but one *process* overall, so addresses are exchangeable — exactly
/// as on the SP where every node ran the same binary image).
static_assert(sizeof(Word) >= sizeof(std::uintptr_t),
              "AM words must be able to carry a host pointer");
inline Word to_word(const void* p) {
  return static_cast<Word>(reinterpret_cast<std::uintptr_t>(p));
}
template <typename T>
T* to_ptr(Word w) {
  return reinterpret_cast<T*>(static_cast<std::uintptr_t>(w));
}

class AmLayer {
 public:
  explicit AmLayer(net::Network& net);

  AmLayer(const AmLayer&) = delete;
  AmLayer& operator=(const AmLayer&) = delete;

  /// Registers a handler (same table on every node: single program image).
  /// `name` must outlive the layer — in practice a string literal, as on a
  /// real AM layer where handler tables are static program structure.
  HandlerId register_short(const char* name, ShortHandler fn);
  HandlerId register_bulk(const char* name, BulkHandler fn);
  const char* handler_name(HandlerId h) const;

  /// One registered handler-table entry, as seen by the static analyzer's
  /// harvest (src/analyze): the id, the registered name, and which
  /// dispatch kinds the slot serves. Slot 0 is the reserved "am.none".
  struct HandlerInfo {
    HandlerId id;
    const char* name;
    bool has_short;
    bool has_bulk;
  };
  /// Snapshot of the whole handler table, in registration order.
  std::vector<HandlerInfo> handlers() const;

  // --- Sending (all send from the current task's node, poll on send) ------
  /// Short request; `h` must be a short handler.
  void request(NodeId dst, HandlerId h, Word w0 = 0, Word w1 = 0, Word w2 = 0,
               Word w3 = 0, Word w4 = 0, Word w5 = 0);
  /// Reply from inside a handler (short).
  void reply(const Token& tok, HandlerId h, Word w0 = 0, Word w1 = 0,
             Word w2 = 0, Word w3 = 0, Word w4 = 0, Word w5 = 0);
  /// Bulk store: deposits [data, data+len) at `dst_addr` in `dst`'s address
  /// space, then runs bulk handler `h` there.
  void xfer(NodeId dst, void* dst_addr, const void* data, std::size_t len,
            HandlerId h, Word w0 = 0, Word w1 = 0, Word w2 = 0, Word w3 = 0);
  /// Bulk get: fetches len bytes at `remote_addr` on `dst` into
  /// `local_addr`, then runs short handler `done` locally with
  /// w0 = local_addr, w1 = len, w2 = cookie.
  void get(NodeId dst, const void* remote_addr, void* local_addr,
           std::size_t len, HandlerId done, Word cookie = 0);

  // --- Receiving -----------------------------------------------------------
  /// Drains every due message on the current node. Returns # delivered.
  int poll();
  /// Polls until `pred()` holds, idling (virtual time) while the inbox is
  /// empty. The standard split-phase completion wait.
  void poll_until(const std::function<bool()>& pred);

  transport::Channel& channel() { return chan_; }
  net::Network& network() { return chan_.network(); }
  const CostModel& cost() const { return chan_.cost(); }

 private:
  struct Entry {
    const char* name;
    ShortHandler short_fn;
    BulkHandler bulk_fn;
  };

  /// Handler-table slots reserved up front so steady-state registration
  /// never reallocates (the runtimes register ~35 handlers combined).
  static constexpr std::size_t kReservedHandlers = 64;

  void send_short(NodeId dst, HandlerId h, const Words& w);
  void deliver_short(sim::Node& self, Token tok, HandlerId h, const Words& w);
  void deliver_bulk(sim::Node& self, Token tok, HandlerId h, void* dst_addr,
                    std::vector<std::byte> payload, const Words& w);

  transport::Channel chan_;
  std::vector<Entry> handlers_;
  HandlerId get_server_ = 0;  ///< internal handler servicing am::get
};

}  // namespace tham::am
