#include "am/am.hpp"

#include <cstring>

#include "check/hooks.hpp"
#include "common/check.hpp"

namespace tham::am {

using sim::Component;
using sim::ComponentScope;
using transport::Charge;
using transport::Endpoint;

AmLayer::AmLayer(net::Network& net) : chan_(net) {
  handlers_.reserve(kReservedHandlers);
  // Handler 0 is reserved as "none".
  handlers_.push_back(Entry{"am.none", nullptr, nullptr});
  // Internal server for am::get: sends the requested bytes back with a bulk
  // transfer that finishes by invoking the caller's completion handler.
  get_server_ = register_short(
      "am.get_server",
      [this](sim::Node& self, Token tok, const Words& w) {
        const void* remote_addr = to_ptr<const void>(w[0]);
        void* local_addr = to_ptr<void>(w[1]);
        auto len = static_cast<std::size_t>(w[2]);
        // w[3] = completion handler id, w[4] = caller cookie.
        self.advance(self.cost().mem_word_touch);  // touch the source line
        xfer(tok.reply_to, local_addr, remote_addr, len,
             /*h=*/0, /*w0=*/w[3], /*w1=*/w[4]);
      });
  // The bulk side of am::get runs this pseudo-handler at the requester.
  // (Encoded via h==0 + w0 != 0 in deliver_bulk.)
}

HandlerId AmLayer::register_short(const char* name, ShortHandler fn) {
  THAM_CHECK(static_cast<bool>(fn));
  handlers_.push_back(Entry{name, std::move(fn), nullptr});
  return static_cast<HandlerId>(handlers_.size() - 1);
}

HandlerId AmLayer::register_bulk(const char* name, BulkHandler fn) {
  THAM_CHECK(static_cast<bool>(fn));
  handlers_.push_back(Entry{name, nullptr, std::move(fn)});
  return static_cast<HandlerId>(handlers_.size() - 1);
}

const char* AmLayer::handler_name(HandlerId h) const {
  return handlers_.at(h).name;
}

std::vector<AmLayer::HandlerInfo> AmLayer::handlers() const {
  std::vector<HandlerInfo> out;
  out.reserve(handlers_.size());
  for (std::size_t i = 0; i < handlers_.size(); ++i) {
    const Entry& e = handlers_[i];
    out.push_back(HandlerInfo{static_cast<HandlerId>(i), e.name,
                              static_cast<bool>(e.short_fn),
                              static_cast<bool>(e.bulk_fn)});
  }
  return out;
}

void AmLayer::send_short(NodeId dst, HandlerId h, const Words& w) {
  sim::Node& src = sim::this_node();
  ComponentScope scope(src, Component::Net);
  Token tok{src.id()};
  chan_.send(src, dst, net::Wire::AmShort, sizeof(Words),
             [this, tok, h, w](sim::Node& self) {
               deliver_short(self, tok, h, w);
             });
  // Poll on send — but never from inside a handler (the AM discipline:
  // handlers run to completion and only reply; polling there would nest
  // handler frames unboundedly).
  if (!src.in_handler()) poll();
}

void AmLayer::request(NodeId dst, HandlerId h, Word w0, Word w1, Word w2,
                      Word w3, Word w4, Word w5) {
  THAM_CHECK_MSG(static_cast<bool>(handlers_.at(h).short_fn),
                 "request with a non-short handler");
  send_short(dst, h, Words{w0, w1, w2, w3, w4, w5});
}

void AmLayer::reply(const Token& tok, HandlerId h, Word w0, Word w1, Word w2,
                    Word w3, Word w4, Word w5) {
  THAM_CHECK_MSG(static_cast<bool>(handlers_.at(h).short_fn),
                 "reply with a non-short handler");
  THAM_HOOK(on_am_reply(sim::this_node().id(), tok.reply_to));
  send_short(tok.reply_to, h, Words{w0, w1, w2, w3, w4, w5});
}

void AmLayer::xfer(NodeId dst, void* dst_addr, const void* data,
                   std::size_t len, HandlerId h, Word w0, Word w1, Word w2,
                   Word w3) {
  sim::Node& src = sim::this_node();
  ComponentScope scope(src, Component::Net);
  THAM_HOOK(on_am_bulk_send(src.id(), dst_addr, len));
  Token tok{src.id()};
  std::vector<std::byte> payload(len);
  if (len > 0) std::memcpy(payload.data(), data, len);
  Words w{w0, w1, w2, w3, 0, 0};
  chan_.send(src, dst, net::Wire::AmBulk, len,
             [this, tok, h, dst_addr, payload = std::move(payload),
              w](sim::Node& self) mutable {
               deliver_bulk(self, tok, h, dst_addr, std::move(payload), w);
             });
  if (!src.in_handler()) poll();  // poll on send (see send_short)
}

void AmLayer::get(NodeId dst, const void* remote_addr, void* local_addr,
                  std::size_t len, HandlerId done, Word cookie) {
  THAM_CHECK_MSG(static_cast<bool>(handlers_.at(done).short_fn),
                 "get completion must be a short handler");
  request(dst, get_server_, to_word(remote_addr), to_word(local_addr),
          static_cast<Word>(len), static_cast<Word>(done), cookie);
}

void AmLayer::deliver_short(sim::Node& self, Token tok, HandlerId h,
                            const Words& w) {
  ComponentScope scope(self, Component::Net);
  Endpoint(self).charge(Charge::AmShortRecv);
  Entry& e = handlers_.at(h);
  THAM_CHECK(static_cast<bool>(e.short_fn));
  e.short_fn(self, tok, w);
}

void AmLayer::deliver_bulk(sim::Node& self, Token tok, HandlerId h,
                           void* dst_addr, std::vector<std::byte> payload,
                           const Words& w) {
  ComponentScope scope(self, Component::Net);
  Endpoint(self).charge(Charge::AmBulkRecv);
  if (!payload.empty()) std::memcpy(dst_addr, payload.data(), payload.size());
  if (h != 0) {
    Entry& e = handlers_.at(h);
    THAM_CHECK(static_cast<bool>(e.bulk_fn));
    e.bulk_fn(self, tok, dst_addr, payload.size(), w);
  } else if (w[0] != 0) {
    // Completion of an am::get: w[0] = done handler id, w[1] = cookie.
    auto done = static_cast<HandlerId>(w[0]);
    Entry& e = handlers_.at(done);
    THAM_CHECK(static_cast<bool>(e.short_fn));
    e.short_fn(self, tok,
               Words{to_word(dst_addr), static_cast<Word>(payload.size()),
                     w[1], 0, 0, 0});
  }
}

int AmLayer::poll() { return Endpoint::current().poll(); }

void AmLayer::poll_until(const std::function<bool()>& pred) {
  Endpoint::current().poll_until(pred);
}

}  // namespace tham::am
