#pragma once
// Scalable collectives over Active Messages: the synchronization layer both
// runtimes (splitc::World, ccxx::Runtime) and the serving fabric share.
//
// Every operation here replaces a linear coordinator protocol (all N-1
// participants funneling through node 0) with a log-depth one:
//
//   * barrier        — dissemination: ceil(log2 N) rounds, round r pairing
//                      rank i with rank (i + 2^r) mod N.
//   * all_reduce     — rank-ordered radix tree rooted at 0: contributions
//                      climb the tree, each vertex combining its own value
//                      and its children's partials in ascending rank order,
//                      then the result rides the same tree back down.
//   * broadcast      — the reduce tree re-rooted by rank rotation.
//   * all_to_all     — staged permutation exchange: stage s sends to
//                      (i + s) mod N and waits on (i - s) mod N, so no rank
//                      is ever a fan-in hotspot.
//
// Determinism is the design center, not an afterthought. A reduce vertex
// never combines on arrival: contributions land in per-child slots and are
// folded in fixed rank order once the last one is in, so the floating-point
// result equals canonical_fold() — a pure function of (N, radix, values) —
// no matter how message timing, host-thread count, or injected faults
// (over transport::Reliable, which re-delivers in order, exactly once)
// interleave the arrivals. The linear coordinator algorithm is retained
// behind Algo::Linear as the reference point benchmarks compare against.
//
// Progress comes in the two disciplines the paper contrasts:
//   * Polling — waiters drive the network themselves (am::poll_until);
//     handlers run on the waiter's own stack, splitc-style.
//   * Daemon  — waiters block on a per-node condition variable and some
//     other task (ccxx's polling thread, or start_progress_daemons()) drains
//     the endpoint; handlers signal through a gate mutex, ccxx-style, with
//     a check::checked epoch stamp so the race detector sees every edge.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "am/am.hpp"
#include "check/checked.hpp"
#include "common/cost_model.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"
#include "threads/threads.hpp"

namespace tham::coll {

enum class Algo {
  Linear,  ///< coordinator fan-in/fan-out on rank 0 (the reference point)
  Tree,    ///< dissemination barrier, radix-tree reduce/broadcast, staged A2A
};

enum class Progress {
  Polling,  ///< waiters poll the endpoint themselves
  Daemon,   ///< waiters block on a condvar; an external task drains the inbox
};

/// Reduction combiner. Applied in ascending rank order at every vertex, so
/// each op defines exactly one canonical fold per (N, radix) — see
/// canonical_fold().
enum class Op : std::uint8_t { SumF64, MinF64, MaxF64, SumU64Pair };

struct Config {
  Algo algo = Algo::Tree;
  Progress progress = Progress::Polling;
  /// Tree arity; 0 picks the machine profile's default (default_radix).
  int radix = 0;
};

/// Two-word exact payload (Op::SumU64Pair): the combining-tree currency of
/// all_store_sync termination detection.
struct Pair64 {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// --- Topology (pure functions; the analyze layer's static models use the
// --- same ones, so modeled flows match the wire protocol by construction).

/// Tree arity for a machine profile: minimizes per-level cost divided by
/// ln(arity), the continuous proxy for (depth x level time). Deterministic.
int default_radix(const CostModel& cm);

/// Parent of `rank` in the radix tree rooted at 0 (rank > 0).
inline int tree_parent(int rank, int radix) { return (rank - 1) / radix; }
/// First child of `rank` in the radix tree rooted at 0.
inline int tree_first_child(int rank, int radix) { return radix * rank + 1; }
/// Number of children `rank` has among ranks 0..procs-1.
inline int tree_child_count(int rank, int radix, int procs) {
  long first = static_cast<long>(radix) * rank + 1;
  if (first >= procs) return 0;
  long n = static_cast<long>(procs) - first;
  return static_cast<int>(n < radix ? n : radix);
}
/// Rounds of the dissemination barrier: ceil(log2 procs).
inline int dissemination_rounds(int procs) {
  int r = 0;
  while ((1 << r) < procs) ++r;
  return r;
}

/// Host-side mirror of the runtime's rank-ordered tree fold: the value
/// every rank returns from all_reduce(vals[rank], op) with this radix,
/// computed serially. Algo::Linear folds like radix >= N-1 (one flat
/// rank-ordered pass).
double canonical_fold(const std::vector<double>& vals, int radix, Op op);

/// Every (src, dst) pair the Tree-algorithm collectives rooted at 0 can
/// touch: dissemination partners for every round plus the radix tree's
/// edges, both directions (reduce results ride the down-tree, barrier
/// notifications the forward ring offsets). Deduplicated and sorted, for
/// tests and tools that pre-declare links. Broadcasts from root r rotate
/// the tree by r; declare per-root when broadcasting from r != 0.
std::vector<std::pair<NodeId, NodeId>> collective_links(int procs, int radix);

class Collectives {
 public:
  /// Registers this instance's AM handlers; one Collectives per AmLayer.
  Collectives(sim::Engine& engine, am::AmLayer& am, Config cfg = {});

  Collectives(const Collectives&) = delete;
  Collectives& operator=(const Collectives&) = delete;

  // All operations are SPMD: every rank calls the same ops in the same
  // order, from a node task (not a handler).

  void barrier();
  double all_reduce(double v, Op op);
  double all_reduce_sum(double v) { return all_reduce(v, Op::SumF64); }
  double all_reduce_min(double v) { return all_reduce(v, Op::MinF64); }
  double all_reduce_max(double v) { return all_reduce(v, Op::MaxF64); }
  /// Exact pairwise u64 sum — overflow-free counting for termination
  /// detection (all_store_sync). Fully synchronizing, like any reduce.
  Pair64 all_reduce_counts(std::uint64_t a, std::uint64_t b);
  /// Broadcast `v` from `root`; returns the root's value on every rank.
  double broadcast(NodeId root, double v);
  /// One word to every peer: out[j] is delivered to rank j (out[me] is
  /// copied locally); in[j] receives rank j's word. Staged under
  /// Algo::Tree, eager fan-out under Algo::Linear.
  void all_to_all(const std::vector<std::uint64_t>& out,
                  std::vector<std::uint64_t>& in);

  /// Spawns one inbox-draining daemon per node ("coll-daemon"). Required
  /// under Progress::Daemon when no runtime-owned poller (e.g. ccxx's
  /// polling thread) is driving the endpoint.
  void start_progress_daemons();

  int procs() const { return engine_.size(); }
  int radix() const { return radix_; }
  int rounds() const { return rounds_; }
  const Config& config() const { return cfg_; }

 private:
  struct NodeState {
    // Dissemination barrier: arrivals ever received per round. Monotone
    // counters suffice — the sender for (receiver, round) is one fixed
    // rank and links deliver in order, so the count doubles as an epoch.
    std::vector<std::uint64_t> bar_recv;
    std::uint64_t bar_epoch = 0;  ///< epochs entered

    // Reduce. A vertex's children deposit into per-child slots; the fold
    // happens only when the vertex has its own contribution and all
    // child partials (rank order is then forced, not arrival order).
    // A child cannot start epoch e+1 before its parent consumed epoch e
    // (the release comes from the parent), so one slot per child is safe.
    std::uint64_t red_epoch = 0;  ///< epochs entered
    std::uint64_t red_done = 0;   ///< results delivered
    bool red_entered = false;
    std::uint8_t red_op = 0;
    std::uint64_t red_own0 = 0, red_own1 = 0;
    int red_got = 0;
    std::vector<std::uint64_t> red_sub0, red_sub1;
    std::vector<char> red_fill;  ///< per-child occupancy (protocol check)
    std::uint64_t red_res0 = 0, red_res1 = 0;

    // Linear coordinator (rank slots; allocated lazily on rank 0 only).
    int lin_arrivals = 0;
    std::uint64_t lin_epoch = 0;
    std::vector<std::uint64_t> lin_slot0, lin_slot1;
    std::uint8_t lin_op = 0;

    // Broadcast. Values park per node because the root never waits: it
    // can enter broadcast e+1 while a slow rank still holds e unread.
    // Keyed by epoch, NOT arrival order: consecutive broadcasts from
    // different roots travel over different links, and nothing orders one
    // link's delivery against another's, so arrivals can cross.
    std::uint64_t bc_entered = 0;
    std::map<std::uint64_t, std::uint64_t> bc_vals;  ///< epoch -> bits

    // All-to-all: per-source monotone arrival counts plus a two-deep
    // value ring. A source reaches epoch e+2 only after this rank sent
    // its own e+1 traffic — i.e. after it consumed e — so parity slots
    // cannot be overwritten before they are read. Allocated lazily
    // (O(procs) per node would be O(procs^2) across a 100k-node world).
    std::uint64_t a2a_epoch = 0;
    std::vector<std::uint64_t> a2a_cnt;
    std::vector<std::uint64_t> a2a_val;

    // Daemon-mode gate: handlers bump the checked stamp under the mutex
    // and broadcast; waiters re-test their predicate per wakeup. The
    // stamp is the race detector's witness for the handler->waiter edge.
    threads::Mutex gate_mu;
    threads::CondVar gate_cv;
    check::checked<std::uint64_t> gate_stamp;
  };

  NodeState& state_of(const sim::Node& n) {
    return *state_[static_cast<std::size_t>(n.id())];
  }

  /// Blocks until pred() holds, per the configured progress discipline.
  void wait_local(NodeState& st, const std::function<bool()>& pred);
  /// Handler-side wakeup (no-op under Polling).
  void notify(NodeState& st);

  Pair64 reduce_words(std::uint64_t w0, std::uint64_t w1, Op op);
  void try_complete_reduce(sim::Node& self);
  void deliver_reduce_result(sim::Node& self, std::uint64_t epoch,
                             std::uint64_t r0, std::uint64_t r1);
  void lin_arrive(sim::Node& node0, NodeId rank, std::uint8_t op,
                  std::uint64_t v0, std::uint64_t v1);
  void ensure_a2a(NodeState& st);

  sim::Engine& engine_;
  am::AmLayer& am_;
  Config cfg_;
  int radix_;
  int rounds_;
  std::vector<std::unique_ptr<NodeState>> state_;

  am::HandlerId h_bar_ = 0;
  am::HandlerId h_red_up_ = 0, h_red_dn_ = 0;
  am::HandlerId h_bcast_ = 0;
  am::HandlerId h_a2a_ = 0;
  am::HandlerId h_lin_arrive_ = 0, h_lin_release_ = 0;
};

}  // namespace tham::coll
