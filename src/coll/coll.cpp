#include "coll/coll.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>

#include "common/check.hpp"
#include "transport/transport.hpp"

namespace tham::coll {

using am::Word;
using sim::Component;
using sim::ComponentScope;

namespace {

double f64(Word bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Word bits64(double v) {
  Word w;
  std::memcpy(&w, &v, sizeof(w));
  return w;
}

/// In-place rank-ordered combine: (a0,a1) := (a0,a1) op (b0,b1). The left
/// operand is always the lower-ranked partial.
void combine(std::uint8_t op, std::uint64_t& a0, std::uint64_t& a1,
             std::uint64_t b0, std::uint64_t b1) {
  switch (static_cast<Op>(op)) {
    case Op::SumF64:
      a0 = bits64(f64(a0) + f64(b0));
      break;
    case Op::MinF64:
      a0 = bits64(std::min(f64(a0), f64(b0)));
      break;
    case Op::MaxF64:
      a0 = bits64(std::max(f64(a0), f64(b0)));
      break;
    case Op::SumU64Pair:
      a0 += b0;
      a1 += b1;
      break;
  }
}

std::uint64_t fold_vertex(const std::vector<std::uint64_t>& vals, int rank,
                          int radix, Op op) {
  std::uint64_t a = vals[static_cast<std::size_t>(rank)];
  int procs = static_cast<int>(vals.size());
  int first = tree_first_child(rank, radix);
  int nc = tree_child_count(rank, radix, procs);
  for (int i = 0; i < nc; ++i) {
    std::uint64_t dummy = 0, sub1 = 0;
    std::uint64_t sub0 = fold_vertex(vals, first + i, radix, op);
    combine(static_cast<std::uint8_t>(op), a, dummy, sub0, sub1);
  }
  return a;
}

}  // namespace

int default_radix(const CostModel& cm) {
  // Level cost of a radix-k tree: one hop of wire plus k child messages
  // serialized at the vertex; depth scales as 1/ln(k). Minimize the
  // product's continuous proxy over a fixed candidate set so the choice
  // is a deterministic function of the profile alone.
  const int candidates[] = {2, 3, 4, 8, 16};
  int best = 2;
  double best_cost = 0;
  for (int k : candidates) {
    double level = static_cast<double>(cm.am_wire_latency) +
                   static_cast<double>(cm.am_send_overhead) +
                   static_cast<double>(k) *
                       (static_cast<double>(cm.am_recv_overhead) +
                        static_cast<double>(cm.coll_step));
    double c = level / std::log(static_cast<double>(k));
    if (best_cost == 0 || c < best_cost) {
      best_cost = c;
      best = k;
    }
  }
  return best;
}

double canonical_fold(const std::vector<double>& vals, int radix, Op op) {
  THAM_CHECK(!vals.empty());
  THAM_CHECK(radix >= 1);
  std::vector<std::uint64_t> bits(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) bits[i] = bits64(vals[i]);
  return f64(fold_vertex(bits, 0, radix, op));
}

std::vector<std::pair<NodeId, NodeId>> collective_links(int procs,
                                                        int radix) {
  THAM_CHECK(procs >= 1 && radix >= 1);
  std::set<std::pair<NodeId, NodeId>> links;
  auto add = [&](int s, int d) {
    if (s != d) links.emplace(static_cast<NodeId>(s), static_cast<NodeId>(d));
  };
  for (int i = 0; i < procs; ++i) {
    for (int r = 0; r < dissemination_rounds(procs); ++r) {
      int partner = (i + (1 << r)) % procs;
      add(i, partner);
      add(partner, i);
    }
    if (i > 0) {
      add(i, tree_parent(i, radix));
      add(tree_parent(i, radix), i);
    }
  }
  return {links.begin(), links.end()};
}

Collectives::Collectives(sim::Engine& engine, am::AmLayer& am, Config cfg)
    : engine_(engine), am_(am), cfg_(cfg) {
  radix_ = cfg_.radix > 0 ? cfg_.radix : default_radix(engine.cost());
  rounds_ = dissemination_rounds(engine.size());
  state_.reserve(static_cast<std::size_t>(engine.size()));
  for (int i = 0; i < engine.size(); ++i) {
    auto st = std::make_unique<NodeState>();
    st->bar_recv.assign(static_cast<std::size_t>(rounds_), 0);
    int nc = tree_child_count(i, radix_, engine.size());
    st->red_sub0.assign(static_cast<std::size_t>(nc), 0);
    st->red_sub1.assign(static_cast<std::size_t>(nc), 0);
    st->red_fill.assign(static_cast<std::size_t>(nc), 0);
    state_.push_back(std::move(st));
  }

  // ---- Dissemination barrier ---------------------------------------------
  // w0 = round. The count is the epoch: sender of (receiver, round) is one
  // fixed rank, and links are FIFO, so arrivals land in epoch order.
  h_bar_ = am_.register_short(
      "coll.bar", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        auto& st = state_of(self);
        ++st.bar_recv[static_cast<std::size_t>(w[0])];
        notify(st);
      });

  // ---- Tree reduce ---------------------------------------------------------
  // Up: w0 = epoch, w1 = op, w2/w3 = partial. The sender is a child of this
  // vertex; its partial goes in that child's slot, never into a running
  // accumulator — rank order at fold time is what makes the result a pure
  // function of the contributions.
  h_red_up_ = am_.register_short(
      "coll.red_up", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        auto& st = state_of(self);
        int idx = static_cast<int>(tok.reply_to) -
                  tree_first_child(self.id(), radix_);
        THAM_CHECK(idx >= 0 && idx < static_cast<int>(st.red_sub0.size()));
        THAM_CHECK_MSG(!st.red_fill[static_cast<std::size_t>(idx)],
                       "reduce child slot reused before the fold");
        if (st.red_entered) THAM_CHECK(static_cast<std::uint8_t>(w[1]) == st.red_op);
        st.red_sub0[static_cast<std::size_t>(idx)] = w[2];
        st.red_sub1[static_cast<std::size_t>(idx)] = w[3];
        st.red_fill[static_cast<std::size_t>(idx)] = 1;
        ++st.red_got;
        try_complete_reduce(self);
      });
  // Down: w0 = epoch, w1/w2 = result; forwarded along the same tree.
  h_red_dn_ = am_.register_short(
      "coll.red_dn", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        deliver_reduce_result(self, w[0], w[1], w[2]);
      });

  // ---- Broadcast -----------------------------------------------------------
  // w0 = epoch, w1 = root, w2 = value bits. Forwarded along the radix tree
  // re-rooted at w1 by rank rotation (Tree); the root sends directly to
  // everyone under Linear, so there is nothing to forward. Delivery is
  // keyed by the epoch word: back-to-back broadcasts from different roots
  // arrive over different links, so arrival order proves nothing.
  h_bcast_ = am_.register_short(
      "coll.bcast", [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        auto& st = state_of(self);
        THAM_CHECK_MSG(st.bc_vals.emplace(w[0], w[2]).second,
                       "broadcast epoch delivered twice");
        if (cfg_.algo == Algo::Tree) {
          int p = procs();
          int root = static_cast<int>(w[1]);
          int vrank = (self.id() - root + p) % p;
          int first = tree_first_child(vrank, radix_);
          int nc = tree_child_count(vrank, radix_, p);
          for (int i = 0; i < nc; ++i) {
            am_.request((first + i + root) % p, h_bcast_, w[0], w[1], w[2]);
          }
        }
        notify(st);
      });

  // ---- All-to-all ----------------------------------------------------------
  // w0 = epoch, w1 = value. The sender identifies the slot; the two-deep
  // parity ring is explained on NodeState.
  h_a2a_ = am_.register_short(
      "coll.a2a", [this](sim::Node& self, am::Token tok, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        auto& st = state_of(self);
        ensure_a2a(st);
        auto src = static_cast<std::size_t>(tok.reply_to);
        st.a2a_val[src * 2 + (w[0] & 1)] = w[1];
        ++st.a2a_cnt[src];
        THAM_CHECK(st.a2a_cnt[src] == w[0]);
        notify(st);
      });

  // ---- Linear coordinator (Algo::Linear reference path) -------------------
  // Arrive: w0 = epoch, w1 = op, w2/w3 = contribution, into rank slots on
  // node 0. Release: w0 = epoch, w1/w2 = result.
  h_lin_release_ = am_.register_short(
      "coll.lin_release",
      [this](sim::Node& self, am::Token, const am::Words& w) {
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        deliver_reduce_result(self, w[0], w[1], w[2]);
      });
  h_lin_arrive_ = am_.register_short(
      "coll.lin_arrive",
      [this](sim::Node& self, am::Token tok, const am::Words& w) {
        THAM_CHECK(self.id() == 0);
        ComponentScope scope(self, Component::Runtime);
        self.advance(self.cost().coll_step);
        lin_arrive(self, tok.reply_to, static_cast<std::uint8_t>(w[1]), w[2],
                   w[3]);
      });
}

void Collectives::wait_local(NodeState& st,
                             const std::function<bool()>& pred) {
  if (cfg_.progress == Progress::Polling) {
    am_.poll_until(pred);
    return;
  }
  st.gate_mu.lock();
  while (!pred()) {
    // The checked read pairs with the handler's checked write under the
    // same mutex: the handler->waiter happens-before edge the race
    // detector certifies.
    st.gate_stamp.get("coll.gate");
    st.gate_cv.wait(st.gate_mu);
  }
  st.gate_mu.unlock();
}

void Collectives::notify(NodeState& st) {
  if (cfg_.progress == Progress::Polling) return;
  st.gate_mu.lock();
  st.gate_stamp.set(st.gate_stamp.raw() + 1, "coll.gate");
  st.gate_cv.broadcast();
  st.gate_mu.unlock();
}

void Collectives::barrier() {
  if (cfg_.algo == Algo::Linear) {
    all_reduce_counts(0, 0);
    return;
  }
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().coll_step);
  if (procs() == 1) return;
  auto& st = state_of(n);
  std::uint64_t e = ++st.bar_epoch;
  int me = n.id(), p = procs();
  for (int r = 0; r < rounds_; ++r) {
    am_.request((me + (1 << r)) % p, h_bar_, static_cast<Word>(r));
    std::size_t round = static_cast<std::size_t>(r);
    wait_local(st, [&st, round, e] { return st.bar_recv[round] >= e; });
  }
}

double Collectives::all_reduce(double v, Op op) {
  THAM_CHECK(op != Op::SumU64Pair);
  Pair64 r = reduce_words(bits64(v), 0, op);
  return f64(r.a);
}

Pair64 Collectives::all_reduce_counts(std::uint64_t a, std::uint64_t b) {
  return reduce_words(a, b, Op::SumU64Pair);
}

Pair64 Collectives::reduce_words(std::uint64_t w0, std::uint64_t w1, Op op) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().coll_step);
  auto& st = state_of(n);
  std::uint64_t target = ++st.red_epoch;
  if (procs() == 1) {
    st.red_res0 = w0;
    st.red_res1 = w1;
    ++st.red_done;
    return {w0, w1};
  }
  auto op8 = static_cast<std::uint8_t>(op);
  if (cfg_.algo == Algo::Linear) {
    if (n.id() == 0) {
      lin_arrive(n, 0, op8, w0, w1);
    } else {
      am_.request(0, h_lin_arrive_, target, op8, w0, w1);
    }
  } else {
    st.red_entered = true;
    st.red_op = op8;
    st.red_own0 = w0;
    st.red_own1 = w1;
    try_complete_reduce(n);  // leaves (and late parents) complete here
  }
  wait_local(st, [&st, target] { return st.red_done >= target; });
  return {st.red_res0, st.red_res1};
}

void Collectives::try_complete_reduce(sim::Node& self) {
  auto& st = state_of(self);
  int nc = static_cast<int>(st.red_sub0.size());
  if (!st.red_entered || st.red_got < nc) return;
  // Fold in rank order: this vertex's rank precedes all its children's.
  std::uint64_t a0 = st.red_own0, a1 = st.red_own1;
  for (int i = 0; i < nc; ++i) {
    combine(st.red_op, a0, a1, st.red_sub0[static_cast<std::size_t>(i)],
            st.red_sub1[static_cast<std::size_t>(i)]);
  }
  st.red_entered = false;
  st.red_got = 0;
  std::fill(st.red_fill.begin(), st.red_fill.end(), 0);
  std::uint64_t e = st.red_epoch;
  if (self.id() == 0) {
    deliver_reduce_result(self, e, a0, a1);
  } else {
    am_.request(tree_parent(self.id(), radix_), h_red_up_, e, st.red_op, a0,
                a1);
  }
}

void Collectives::deliver_reduce_result(sim::Node& self, std::uint64_t epoch,
                                        std::uint64_t r0, std::uint64_t r1) {
  auto& st = state_of(self);
  st.red_res0 = r0;
  st.red_res1 = r1;
  ++st.red_done;
  THAM_CHECK(st.red_done == epoch);
  if (cfg_.algo == Algo::Tree) {
    int first = tree_first_child(self.id(), radix_);
    int nc = tree_child_count(self.id(), radix_, procs());
    for (int i = 0; i < nc; ++i) {
      am_.request(first + i, h_red_dn_, epoch, r0, r1);
    }
  } else if (self.id() == 0) {
    for (NodeId j = 1; j < procs(); ++j) {
      self.advance(self.cost().coll_step);  // coordinator fan serialization
      am_.request(j, h_lin_release_, epoch, r0, r1);
    }
  }
  notify(st);
}

void Collectives::lin_arrive(sim::Node& node0, NodeId rank, std::uint8_t op,
                             std::uint64_t v0, std::uint64_t v1) {
  auto& s0 = *state_[0];
  if (s0.lin_slot0.empty()) {
    s0.lin_slot0.assign(static_cast<std::size_t>(procs()), 0);
    s0.lin_slot1.assign(static_cast<std::size_t>(procs()), 0);
  }
  if (s0.lin_arrivals > 0) THAM_CHECK(op == s0.lin_op);
  s0.lin_op = op;
  s0.lin_slot0[static_cast<std::size_t>(rank)] = v0;
  s0.lin_slot1[static_cast<std::size_t>(rank)] = v1;
  ++s0.lin_arrivals;
  if (s0.lin_arrivals < procs()) return;
  s0.lin_arrivals = 0;
  ++s0.lin_epoch;
  // Rank-ordered flat fold: arrival order cannot change the result.
  std::uint64_t a0 = s0.lin_slot0[0], a1 = s0.lin_slot1[0];
  for (std::size_t j = 1; j < s0.lin_slot0.size(); ++j) {
    combine(op, a0, a1, s0.lin_slot0[j], s0.lin_slot1[j]);
  }
  deliver_reduce_result(node0, s0.lin_epoch, a0, a1);
}

double Collectives::broadcast(NodeId root, double v) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().coll_step);
  if (procs() == 1) return v;
  auto& st = state_of(n);
  std::uint64_t target = ++st.bc_entered;
  if (n.id() == root) {
    Word bits = bits64(v);
    st.bc_vals.emplace(target, bits);
    if (cfg_.algo == Algo::Tree) {
      int p = procs();
      int first = tree_first_child(0, radix_);
      int nc = tree_child_count(0, radix_, p);
      for (int i = 0; i < nc; ++i) {
        am_.request((first + i + root) % p, h_bcast_, target,
                    static_cast<Word>(root), bits);
      }
    } else {
      for (NodeId j = 0; j < procs(); ++j) {
        if (j == root) continue;
        n.advance(n.cost().coll_step);
        am_.request(j, h_bcast_, target, static_cast<Word>(root), bits);
      }
    }
  }
  wait_local(st, [&st, target] { return st.bc_vals.count(target) != 0; });
  auto it = st.bc_vals.find(target);
  Word out = it->second;
  st.bc_vals.erase(it);
  return f64(out);
}

void Collectives::ensure_a2a(NodeState& st) {
  if (st.a2a_cnt.empty()) {
    st.a2a_cnt.assign(static_cast<std::size_t>(procs()), 0);
    st.a2a_val.assign(static_cast<std::size_t>(procs()) * 2, 0);
  }
}

void Collectives::all_to_all(const std::vector<std::uint64_t>& out,
                             std::vector<std::uint64_t>& in) {
  sim::Node& n = sim::this_node();
  ComponentScope scope(n, Component::Runtime);
  n.advance(n.cost().coll_step);
  int p = procs();
  THAM_CHECK(static_cast<int>(out.size()) == p);
  in.assign(static_cast<std::size_t>(p), 0);
  auto& st = state_of(n);
  ensure_a2a(st);
  std::uint64_t e = ++st.a2a_epoch;
  int me = n.id();
  in[static_cast<std::size_t>(me)] = out[static_cast<std::size_t>(me)];
  if (cfg_.algo == Algo::Linear) {
    // Eager fan-out: every rank fires all p-1 messages, then drains — the
    // fan-in-prone shape the staged schedule exists to avoid.
    for (int s = 1; s < p; ++s) {
      int dst = (me + s) % p;
      am_.request(dst, h_a2a_, e, out[static_cast<std::size_t>(dst)]);
    }
    wait_local(st, [&st, me, p, e] {
      for (int j = 0; j < p; ++j) {
        if (j != me && st.a2a_cnt[static_cast<std::size_t>(j)] < e) return false;
      }
      return true;
    });
    for (int j = 0; j < p; ++j) {
      if (j == me) continue;
      in[static_cast<std::size_t>(j)] =
          st.a2a_val[static_cast<std::size_t>(j) * 2 + (e & 1)];
    }
  } else {
    // Staged permutation: stage s pairs i -> (i+s); each rank has exactly
    // one send and one receive in flight per stage.
    for (int s = 1; s < p; ++s) {
      int dst = (me + s) % p;
      auto src = static_cast<std::size_t>((me - s % p + p) % p);
      am_.request(dst, h_a2a_, e, out[static_cast<std::size_t>(dst)]);
      wait_local(st, [&st, src, e] { return st.a2a_cnt[src] >= e; });
      in[src] = st.a2a_val[src * 2 + (e & 1)];
    }
  }
}

void Collectives::start_progress_daemons() {
  for (int i = 0; i < engine_.size(); ++i) {
    engine_.node(i).spawn(
        [this] {
          transport::Endpoint ep = transport::Endpoint::current();
          ComponentScope scope(ep.node(), Component::Net);
          while (!ep.node().shutting_down()) {
            if (!ep.wait(/*poll_only=*/true)) break;
            am_.poll();
          }
        },
        "coll-daemon", /*daemon=*/true);
  }
}

}  // namespace tham::coll
