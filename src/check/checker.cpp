#include "check/checker.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace tham::check {

namespace {
/// A checked address keeps at most this many concurrent-reader epochs;
/// beyond it the read set is restarted (a bounded, conservative forget).
constexpr std::size_t kMaxReadSet = 64;
}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Race: return "race";
    case Kind::Deadlock: return "deadlock";
    case Kind::LostMessage: return "lost-message";
    case Kind::LeakedRecord: return "leaked-record";
    case Kind::AmProtocol: return "am-protocol";
  }
  return "?";
}

Checker::Checker() {
  // Slot 0 is the host pseudo-task: everything the driver does before and
  // after Engine::run() (building graphs, reading results).
  slot_floor_.push_back(0);
  TaskState host;
  host.slot = 0;
  host.node = -1;
  host.id = 0;
  host.name = "<host>";
  host.vc.assign(1, 1);
  tasks_.emplace(0, std::move(host));
}

Checker::~Checker() {
  if (installed_) uninstall();
}

void Checker::install() noexcept {
  prev_ = active_;
  active_ = this;
  installed_ = true;
}

void Checker::uninstall() noexcept {
  if (!installed_) return;
  // Stacked discipline: only the innermost checker may detach, but be
  // forgiving if an outer engine is destroyed first.
  if (active_ == this) active_ = prev_;
  installed_ = false;
}

Checker::TaskState& Checker::cur() {
  auto it = tasks_.find(cur_key_);
  THAM_CHECK_MSG(it != tasks_.end(), "checker lost its current context");
  return it->second;
}

Checker::TaskState& Checker::state_of(int node, std::uint64_t task) {
  auto it = tasks_.find(key_of(node, task));
  THAM_CHECK_MSG(it != tasks_.end(), "checker hook for an unknown task");
  return it->second;
}

std::uint32_t Checker::alloc_slot() {
  if (!free_slots_.empty()) {
    std::uint32_t s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slot_floor_.push_back(0);
  return static_cast<std::uint32_t>(slot_floor_.size() - 1);
}

void Checker::join_vc(VC& dst, const VC& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

// --- Task lifecycle --------------------------------------------------------

void Checker::on_task_start(int node, std::uint64_t task, const char* name) {
  TaskState& creator = cur();
  TaskState t;
  t.slot = alloc_slot();
  t.node = node;
  t.id = task;
  t.name = name;
  t.vc = creator.vc;  // spawn edge: the child sees everything so far
  if (t.vc.size() <= t.slot) t.vc.resize(t.slot + 1, 0);
  // A recycled slot continues past its previous occupant's final clock, so
  // stale epochs of a dead task can never pair with the new one.
  t.vc[t.slot] = std::max(t.vc[t.slot], slot_floor_[t.slot]) + 1;
  tick(creator);  // the creator's later work is not ordered into the child
  tasks_[key_of(node, task)] = std::move(t);
}

void Checker::on_task_resume(int node, std::uint64_t task, SimTime now) {
  cur_key_ = key_of(node, task);
  cur().last_vtime = now;
}

void Checker::on_task_out(int node, std::uint64_t task, SimTime now) {
  auto it = tasks_.find(key_of(node, task));
  if (it != tasks_.end()) {
    it->second.last_vtime = now;
    // Each scheduling segment is its own epoch: a yield orders nothing
    // across tasks, it only closes the yielding task's current epoch.
    if (it->second.live) tick(it->second);
  }
  cur_key_ = 0;  // back in the engine loop / host
}

void Checker::on_task_finish(int node, std::uint64_t task) {
  TaskState& t = state_of(node, task);
  t.live = false;
  // Free the slot but remember how far its clock got; the final VC stays
  // in tasks_ until the join/reap so joiners can inherit it.
  slot_floor_[t.slot] = std::max(slot_floor_[t.slot], t.vc[t.slot]);
  free_slots_.push_back(t.slot);
}

void Checker::on_task_join(int node, std::uint64_t task) {
  auto it = tasks_.find(key_of(node, task));
  if (it == tasks_.end()) return;
  join_vc(cur().vc, it->second.vc);  // join edge: child's work is visible
}

void Checker::on_task_reaped(int node, std::uint64_t task) {
  tasks_.erase(key_of(node, task));
}

// --- Sync objects ----------------------------------------------------------

void Checker::on_acquire(const void* obj) {
  auto it = sync_.find(obj);
  if (it != sync_.end()) join_vc(cur().vc, it->second);
}

void Checker::on_release(const void* obj) {
  TaskState& t = cur();
  join_vc(sync_[obj], t.vc);
  tick(t);
}

// --- Messages --------------------------------------------------------------

std::uint32_t Checker::on_send(int /*src_node*/) {
  TaskState& t = cur();
  std::uint32_t id;
  if (!free_msg_ids_.empty()) {
    id = free_msg_ids_.back();
    free_msg_ids_.pop_back();
    msg_clocks_[id - 1] = t.vc;
  } else {
    msg_clocks_.push_back(t.vc);
    id = static_cast<std::uint32_t>(msg_clocks_.size());
  }
  tick(t);
  return id;
}

void Checker::on_deliver_begin(int /*node*/, int src_node,
                               std::uint32_t clock_id, SimTime now) {
  TaskState& t = cur();
  // Frames are per task, so this only fires when one task starts a second
  // delivery under an unfinished handler — real reentrancy, not another
  // task delivering while this handler waits out a causality pause.
  if (!t.frames.empty()) {
    report(Kind::AmProtocol, t,
           "message from node " + std::to_string(src_node) +
               " delivered while a handler from node " +
               std::to_string(t.frames.back().src) +
               " is still running (handler reentrancy)");
  }
  t.frames.push_back(Frame{src_node, false});
  if (clock_id != 0) {
    // Deliver edge: the handler sees everything the sender did before send.
    join_vc(t.vc, msg_clocks_[clock_id - 1]);
    msg_clocks_[clock_id - 1].clear();
    free_msg_ids_.push_back(clock_id);
  }
  t.last_vtime = now;
}

void Checker::on_deliver_end(int /*node*/) {
  TaskState& t = cur();
  THAM_CHECK_MSG(!t.frames.empty(), "deliver_end without deliver_begin");
  t.frames.pop_back();
}

// --- AM protocol -----------------------------------------------------------

void Checker::on_am_reply(int /*node*/, int reply_to) {
  TaskState& t = cur();
  if (t.frames.empty()) {
    report(Kind::AmProtocol, t,
           "reply() to node " + std::to_string(reply_to) +
               " outside any message handler (orphaned reply)");
    return;
  }
  Frame& f = t.frames.back();
  if (f.replied) {
    report(Kind::AmProtocol, t,
           "handler replied more than once to node " +
               std::to_string(reply_to));
  } else if (f.src != reply_to) {
    report(Kind::AmProtocol, t,
           "reply addressed to node " + std::to_string(reply_to) +
               " but the request came from node " + std::to_string(f.src));
  }
  f.replied = true;
}

void Checker::on_am_bulk_send(int /*node*/, const void* dst_addr,
                              std::size_t len) {
  if (len > 0 && dst_addr == nullptr) {
    report(Kind::AmProtocol, cur(),
           "bulk transfer of " + std::to_string(len) +
               " bytes with a null destination address");
  }
}

// --- Instrumented variables ------------------------------------------------

Checker::Access Checker::snapshot(const char* /*what*/) {
  TaskState& t = cur();
  Access a;
  a.slot = t.slot;
  a.clock = t.vc[t.slot];
  a.key = cur_key_;
  a.task = t.id;
  a.task_name = t.name;
  a.node = t.node;
  a.vtime = t.last_vtime;
  return a;
}

void Checker::on_read(const void* addr, const char* what) {
  VarState& v = vars_[addr];
  Access me = snapshot(what);
  if (v.has_write && v.write.key != me.key && !ordered(v.write, cur())) {
    report_race(v.write, "write", me, "read", what);
    v.has_write = false;  // one report per conflicting pair, not per access
  }
  for (Access& r : v.reads) {
    if (r.key == me.key) {
      r = me;  // same task read again: keep only the latest epoch
      return;
    }
  }
  if (v.reads.size() >= kMaxReadSet) v.reads.clear();
  v.reads.push_back(me);
}

void Checker::on_write(const void* addr, const char* what) {
  VarState& v = vars_[addr];
  Access me = snapshot(what);
  if (v.has_write && v.write.key != me.key && !ordered(v.write, cur())) {
    report_race(v.write, "write", me, "write", what);
  }
  for (const Access& r : v.reads) {
    if (r.key != me.key && !ordered(r, cur())) {
      report_race(r, "read", me, "write", what);
      break;  // one report per write is enough to localize the bug
    }
  }
  v.write = me;
  v.has_write = true;
  v.reads.clear();
}

void Checker::on_var_destroy(const void* addr) { vars_.erase(addr); }

// --- Terminal audit --------------------------------------------------------

void Checker::audit_stuck_task(int node, std::uint64_t task, const char* name,
                               const char* why, SimTime node_time) {
  Diagnostic d;
  d.kind = Kind::Deadlock;
  d.node = node;
  d.task = task;
  d.task_name = name;
  d.vtime = node_time;
  d.message = std::string("task never finished: parked as ") + why +
              " when the event queue drained";
  diags_.push_back(std::move(d));
  ++process_diags_;
}

void Checker::audit_inbox(int node, std::size_t pending, std::size_t artifacts,
                          SimTime earliest_arrival, int earliest_src,
                          SimTime node_time) {
  // Injected-fault residue (duplicate copies, protocol acks/retransmits
  // still in flight when the program finished) is expected on a lossy run:
  // info, not a failure. A genuine message still pending means some
  // protocol really did lose track of it.
  if (artifacts > 0) {
    infos_.push_back("node " + std::to_string(node) + ": " +
                     std::to_string(artifacts) +
                     " injected-fault artifact(s) undelivered at drain "
                     "(duplicate copies / transport protocol residue)");
  }
  if (pending <= artifacts) return;
  Diagnostic d;
  d.kind = Kind::LostMessage;
  d.node = node;
  d.vtime = node_time;
  d.message = std::to_string(pending - artifacts) +
              " message(s) never delivered (earliest from node " +
              std::to_string(earliest_src) + ", arrival t=" +
              std::to_string(earliest_arrival) + ")";
  diags_.push_back(std::move(d));
  ++process_diags_;
}

void Checker::audit_injector(std::uint64_t drops, std::uint64_t dups,
                             std::uint64_t delays, std::uint64_t corruptions) {
  if (drops + dups + delays + corruptions == 0) return;
  infos_.push_back("fault injector ledger: " + std::to_string(drops) +
                   " dropped, " + std::to_string(dups) + " duplicated, " +
                   std::to_string(delays) + " delay-spiked, " +
                   std::to_string(corruptions) +
                   " corrupted (injected on purpose; not diagnostics)");
}

void Checker::on_reliable_give_up(int node, int dst, std::uint64_t rseq,
                                  int tries, SimTime now) {
  Diagnostic d;
  d.kind = Kind::LostMessage;
  d.node = node;
  d.vtime = now;
  d.message = "reliable transport gave up on frame " + std::to_string(rseq) +
              " to node " + std::to_string(dst) + " after " +
              std::to_string(tries) + " attempts: message genuinely lost";
  diags_.push_back(std::move(d));
  ++process_diags_;
}

void Checker::audit_pool(int node, std::size_t capacity,
                         std::size_t free_records, std::size_t pending,
                         SimTime node_time) {
  if (free_records + pending == capacity) return;
  Diagnostic d;
  d.kind = Kind::LeakedRecord;
  d.node = node;
  d.vtime = node_time;
  d.message = "MessagePool leak: capacity " + std::to_string(capacity) +
              " != free " + std::to_string(free_records) + " + pending " +
              std::to_string(pending);
  diags_.push_back(std::move(d));
  ++process_diags_;
}

void Checker::finish_run() {
  cur_key_ = 0;
  TaskState& host = tasks_.at(0);
  for (auto& [key, t] : tasks_) {
    if (key != 0) join_vc(host.vc, t.vc);
  }
  tick(host);
}

// --- Reporting -------------------------------------------------------------

std::size_t Checker::count(Kind k) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.kind == k) ++n;
  }
  return n;
}

void Checker::report(Kind kind, const TaskState& where, std::string message) {
  Diagnostic d;
  d.kind = kind;
  d.node = where.node;
  d.task = where.id;
  d.task_name = where.name;
  d.vtime = where.last_vtime;
  d.message = std::move(message);
  diags_.push_back(std::move(d));
  ++process_diags_;
}

void Checker::report_race(const Access& prev, const char* prev_op,
                          const Access& now, const char* now_op,
                          const char* what) {
  std::string msg = std::string("data race on '") + what + "': " + now_op +
                    " by task '" + now.task_name + "' (node " +
                    std::to_string(now.node) + ", t=" +
                    std::to_string(now.vtime) + ") is unordered with " +
                    prev_op + " by task '" + prev.task_name + "' (node " +
                    std::to_string(prev.node) + ", t=" +
                    std::to_string(prev.vtime) + ")";
  report(Kind::Race, cur(), std::move(msg));
}

void Checker::print(std::FILE* out) const {
  for (const auto& i : infos_) {
    std::fprintf(out, "tham-check: info: %s\n", i.c_str());
  }
  for (const auto& d : diags_) {
    std::fprintf(out, "tham-check: [%s] node %d task %llu '%s' t=%lld: %s\n",
                 kind_name(d.kind), d.node,
                 static_cast<unsigned long long>(d.task), d.task_name.c_str(),
                 static_cast<long long>(d.vtime), d.message.c_str());
  }
}

}  // namespace tham::check
