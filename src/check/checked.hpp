#pragma once
// tham::checked<T>: a shared-state wrapper that reports every access to the
// happens-before race detector. Storage is a plain T; in THAM_CHECK=OFF
// builds get()/set() compile down to the bare load/store.
//
// Use it for state crossed between simulated threads (sync-variable
// payloads, completion flags, gate epochs). raw() is the documented escape
// hatch for reads whose ordering comes from the cooperative poll protocol
// rather than a lock (e.g. a poll_until predicate spinning on a flag its
// own task's handlers set): such reads are sanctioned by construction and
// would only add noise to the detector.

#include <utility>

#include "check/hooks.hpp"

namespace tham::check {

template <class T>
class checked {
 public:
  checked() = default;
  explicit checked(T v) : value_(std::move(v)) {}
  ~checked() { THAM_HOOK(on_var_destroy(&value_)); }

  // A copied/moved wrapper is a new variable at a new address; the access
  // history stays with the source.
  checked(const checked& other) : value_(other.value_) {}
  checked& operator=(const checked& other) {
    value_ = other.value_;
    return *this;
  }

  /// Instrumented load. `what` names the variable in race reports.
  T get([[maybe_unused]] const char* what) const {
    THAM_HOOK(on_read(&value_, what));
    return value_;
  }

  /// Instrumented store.
  void set(T v, [[maybe_unused]] const char* what) {
    THAM_HOOK(on_write(&value_, what));
    value_ = std::move(v);
  }

  /// Uninstrumented access (see header comment for when this is sound).
  const T& raw() const { return value_; }
  T& raw() { return value_; }

 private:
  T value_{};
};

}  // namespace tham::check

namespace tham {
using check::checked;  // the spelling used at instrumentation sites
}
