#pragma once
// tham-check: runtime correctness checking for the simulated MPMD machine.
//
// Three analyses share one Checker instance:
//
//  1. Happens-before race detection. Every task (and the host, as a
//     pseudo-task) carries a vector clock. Edges come from the places the
//     cooperative runtime actually synchronizes: task spawn/join, Mutex
//     unlock->lock, CondVar signal->wait-return, Semaphore release->acquire
//     (ThreadBarrier synchronizes transitively through its Mutex/CondVar),
//     and message send->deliver. A yield is only an epoch boundary for the
//     yielding task — it orders nothing across tasks — so two accesses that
//     merely happen not to interleave under the cooperative schedule are
//     still flagged as a race, exactly the bugs a preemptive schedule would
//     surface. Accesses are reported through tham::checked<T> (checked.hpp)
//     or the raw on_read/on_write hooks.
//
//  2. Terminal-state audit. When the engine drains, each node reports tasks
//     still blocked (with their Task::Why), undelivered inbox messages, and
//     MessagePool records that escaped the free list, all stamped with the
//     node's final virtual time.
//
//  3. AM/RMI protocol lint. Request/reply pairing (a reply must come from
//     inside a handler, at most once, addressed to the requester), handler
//     reentrancy (no delivery may start while another handler is running),
//     and bulk-payload invariants (a non-empty transfer needs a
//     destination address).
//
// The checker deliberately speaks only in primitive ids (node index, task
// id, void* addresses) so it sits between common and sim in the layer
// stack: every layer above can call into it without an inclusion cycle.
//
// Builds with THAM_CHECK=OFF compile this header too (tests drive the
// Checker directly in both flavors); only the THAM_HOOK call sites in the
// runtime vanish, which is what makes the OFF build zero-cost.

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace tham::check {

#if defined(THAM_CHECK_ENABLED)
/// True when the runtime was built with its THAM_HOOK call sites enabled.
inline constexpr bool kHooksCompiledIn = true;
#else
inline constexpr bool kHooksCompiledIn = false;
#endif

enum class Kind : std::uint8_t {
  Race,        ///< unordered read/write pair on a checked variable
  Deadlock,    ///< non-daemon task still blocked at engine drain
  LostMessage, ///< inbox messages never delivered
  LeakedRecord,///< MessagePool records missing from free list + heap
  AmProtocol,  ///< reply pairing / reentrancy / payload violations
};

const char* kind_name(Kind k);

struct Diagnostic {
  Kind kind = Kind::Race;
  int node = -1;               ///< -1 = host context
  std::uint64_t task = 0;      ///< node-local task id (0 for host)
  std::string task_name;
  SimTime vtime = 0;           ///< node virtual time at detection
  std::string message;
};

class Checker {
 public:
  Checker();
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  /// The installed checker the THAM_HOOK sites report to (null when none).
  static Checker* active() noexcept { return active_; }
  /// Makes this the active checker (stacked: uninstall restores the
  /// previous one, so nested engines each audit their own run).
  void install() noexcept;
  void uninstall() noexcept;

  /// When true (the default), every Engine built with THAM_CHECK=ON
  /// constructs and installs its own Checker. Turn off for A/B runs and
  /// for zero-allocation assertions (see ScopedAutoAttach).
  static bool auto_attach() noexcept { return auto_attach_; }
  static void set_auto_attach(bool v) noexcept { auto_attach_ = v; }

  // --- Task lifecycle (Node) ---------------------------------------------
  void on_task_start(int node, std::uint64_t task, const char* name);
  void on_task_resume(int node, std::uint64_t task, SimTime now);
  void on_task_out(int node, std::uint64_t task, SimTime now);
  void on_task_finish(int node, std::uint64_t task);
  void on_task_join(int node, std::uint64_t task);
  void on_task_reaped(int node, std::uint64_t task);

  // --- Sync objects (threads) --------------------------------------------
  void on_acquire(const void* obj);
  void on_release(const void* obj);

  // --- Messages (net + Node) ---------------------------------------------
  /// Snapshots the sender's clock; the returned id rides in the Message.
  std::uint32_t on_send(int src_node);
  void on_deliver_begin(int node, int src_node, std::uint32_t clock_id,
                        SimTime now);
  void on_deliver_end(int node);

  // --- AM protocol (am) ---------------------------------------------------
  void on_am_reply(int node, int reply_to);
  void on_am_bulk_send(int node, const void* dst_addr, std::size_t len);

  // --- Instrumented variables (checked<T>) --------------------------------
  void on_read(const void* addr, const char* what);
  void on_write(const void* addr, const char* what);
  /// Forgets a variable's access history (called from ~checked<T> so a
  /// reused address never pairs with a dead object's epochs).
  void on_var_destroy(const void* addr);

  // --- Terminal audit (Engine / Node, at drain) ---------------------------
  void audit_stuck_task(int node, std::uint64_t task, const char* name,
                        const char* why, SimTime node_time);
  /// Undelivered inbox messages at drain. `artifacts` of the `pending`
  /// records carry fault-injection / transport-protocol markers
  /// (sim::kFault* bits): residue of injected faults, reported as info.
  /// Any remaining genuine message is a LostMessage diagnostic — a real
  /// protocol bug, fault injection or not.
  void audit_inbox(int node, std::size_t pending, std::size_t artifacts,
                   SimTime earliest_arrival, int earliest_src,
                   SimTime node_time);
  void audit_pool(int node, std::size_t capacity, std::size_t free_records,
                  std::size_t pending, SimTime node_time);
  /// The fault injector's ledger, reported as info: these messages were
  /// dropped on purpose, so their absence is not a protocol bug.
  void audit_injector(std::uint64_t drops, std::uint64_t dups,
                      std::uint64_t delays, std::uint64_t corruptions);

  // --- Reliable transport (transport::Reliable) ---------------------------
  /// A frame exhausted its retransmission budget: the message is genuinely
  /// lost despite the reliability protocol. Always a LostMessage
  /// diagnostic — this is the failure a reliable transport must surface.
  void on_reliable_give_up(int node, int dst, std::uint64_t rseq, int tries,
                           SimTime now);
  /// Joins every surviving task clock into the host context so post-run
  /// host-side reads of checked variables are ordered after the run.
  void finish_run();

  // --- Results ------------------------------------------------------------
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  /// Advisory context lines (injected-fault residue, drop ledgers):
  /// printed alongside diagnostics but never counted as failures.
  const std::vector<std::string>& infos() const noexcept { return infos_; }
  std::size_t count(Kind k) const noexcept;
  void print(std::FILE* out) const;

  /// Total diagnostics emitted by every Checker since process start;
  /// lets tests assert "this run was clean" across engines they did not
  /// construct themselves.
  static std::uint64_t process_diagnostic_count() noexcept {
    return process_diags_;
  }

 private:
  using VC = std::vector<std::uint64_t>;

  struct Frame {
    int src = kInvalidNode;  ///< requester the handler may reply to
    bool replied = false;
  };

  struct TaskState {
    std::uint32_t slot = 0;  ///< vector-clock dimension
    int node = -1;
    std::uint64_t id = 0;
    const char* name = "";
    SimTime last_vtime = 0;  ///< node time at the last scheduling point
    bool live = true;        ///< false between finish and reap
    VC vc;
    /// Handler frames are per task: a handler that pauses for causality
    /// leaves its frame open while other tasks legitimately deliver.
    std::vector<Frame> frames;
  };

  /// One endpoint of a potential race, kept per checked address.
  struct Access {
    std::uint32_t slot = 0;
    std::uint64_t clock = 0;
    std::uint64_t key = 0;
    std::uint64_t task = 0;
    const char* task_name = "";
    int node = -1;
    SimTime vtime = 0;
  };

  struct VarState {
    bool has_write = false;
    Access write;
    std::vector<Access> reads;
  };

  static std::uint64_t key_of(int node, std::uint64_t task) {
    return (static_cast<std::uint64_t>(node) + 2) << 48 | task;
  }
  TaskState& cur();
  TaskState& state_of(int node, std::uint64_t task);
  std::uint32_t alloc_slot();
  void tick(TaskState& t) { ++t.vc[t.slot]; }
  static void join_vc(VC& dst, const VC& src);
  /// True if the access epoch happened-before everything `t` has seen.
  static bool ordered(const Access& a, const TaskState& t) {
    return a.slot < t.vc.size() && a.clock <= t.vc[a.slot];
  }
  Access snapshot(const char* what);
  void report(Kind kind, const TaskState& where, std::string message);
  void report_race(const Access& prev, const char* prev_op,
                   const Access& now, const char* now_op, const char* what);

  inline static Checker* active_ = nullptr;
  inline static bool auto_attach_ = true;
  inline static std::uint64_t process_diags_ = 0;

  Checker* prev_ = nullptr;      ///< restored by uninstall()
  bool installed_ = false;
  std::uint64_t cur_key_ = 0;    ///< 0 = host pseudo-task
  std::unordered_map<std::uint64_t, TaskState> tasks_;
  std::vector<std::uint64_t> slot_floor_;  ///< last clock a freed slot reached
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<const void*, VC> sync_;
  std::vector<VC> msg_clocks_;             ///< index = message clock id - 1
  std::vector<std::uint32_t> free_msg_ids_;
  std::unordered_map<const void*, VarState> vars_;
  std::vector<Diagnostic> diags_;
  std::vector<std::string> infos_;
};

/// RAII override of the auto-attach flag: tests use it to run an engine
/// with the checker forced on (smoke runs) or off (A/B timing and
/// zero-allocation assertions). Compiled in both build flavors.
class ScopedAutoAttach {
 public:
  explicit ScopedAutoAttach(bool v) : prev_(Checker::auto_attach()) {
    Checker::set_auto_attach(v);
  }
  ~ScopedAutoAttach() { Checker::set_auto_attach(prev_); }
  ScopedAutoAttach(const ScopedAutoAttach&) = delete;
  ScopedAutoAttach& operator=(const ScopedAutoAttach&) = delete;

 private:
  bool prev_;
};

}  // namespace tham::check
