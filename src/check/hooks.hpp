#pragma once
// The instrumentation macro the runtime layers use to talk to tham-check.
//
//   THAM_HOOK(on_task_start(id_, t->id(), t->name()));
//
// With THAM_CHECK=ON this forwards to the installed Checker (if any); with
// THAM_CHECK=OFF the argument tokens are discarded unexpanded, so the hot
// path carries no branch, no load, and no side effects — the zero-cost-
// when-off guarantee the OFF-build benchmarks assert.

#if defined(THAM_CHECK_ENABLED)

#include "check/checker.hpp"

#define THAM_HOOK(call)                                            \
  do {                                                             \
    if (auto* tham_hook_chk_ = ::tham::check::Checker::active()) { \
      tham_hook_chk_->call;                                        \
    }                                                              \
  } while (0)

#else

#define THAM_HOOK(call) ((void)0)

#endif
