#include "threads/threads.hpp"

#include "check/hooks.hpp"
#include "common/check.hpp"

namespace tham::threads {

using sim::Component;

namespace {

/// Charges one synchronization operation (lock/unlock/signal/wait call).
void charge_sync(sim::Node& n) {
  ++n.counters().sync_ops;
  n.advance(Component::ThreadSync, n.cost().sync_op);
}

}  // namespace

Thread spawn(std::function<void()> body, const char* name) {
  sim::Node& n = sim::this_node();
  ++n.counters().thread_creates;
  n.advance(Component::ThreadMgmt, n.cost().thread_create);
  Thread t;
  t.node_ = &n;
  t.task_ = n.spawn(std::move(body), name, /*daemon=*/false);
  return t;
}

Thread spawn_daemon(std::function<void()> body, const char* name) {
  sim::Node& n = sim::this_node();
  ++n.counters().thread_creates;
  n.advance(Component::ThreadMgmt, n.cost().thread_create);
  Thread t;
  t.node_ = &n;
  t.task_ = n.spawn(std::move(body), name, /*daemon=*/true);
  return t;
}

void join(Thread& t) {
  THAM_CHECK_MSG(t.valid(), "join() on an invalid thread");
  sim::Node& n = sim::this_node();
  THAM_CHECK_MSG(t.node_ == &n, "join() across nodes");
  charge_sync(n);
  n.join(t.task_);
  t.task_ = nullptr;
}

void detach(Thread& t) {
  THAM_CHECK_MSG(t.valid(), "detach() on an invalid thread");
  t.node_->detach(t.task_);
  t.task_ = nullptr;
}

void yield() { sim::this_node().yield(); }

void Mutex::lock() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  ++n.counters().lock_acquires;
  if (owner_ != nullptr) {
    ++n.counters().lock_contended;
    do {
      waiters_.push_back(n.current());
      n.block();
    } while (owner_ != nullptr);
  }
  owner_ = n.current();
  THAM_HOOK(on_acquire(this));
}

bool Mutex::try_lock() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  ++n.counters().lock_acquires;
  if (owner_ != nullptr) return false;
  owner_ = n.current();
  THAM_HOOK(on_acquire(this));
  return true;
}

void Mutex::unlock() {
  sim::Node& n = sim::this_node();
  THAM_CHECK_MSG(owner_ == n.current(), "unlock() by non-owner");
  charge_sync(n);
  THAM_HOOK(on_release(this));
  owner_ = nullptr;
  if (!waiters_.empty()) {
    sim::Task* w = waiters_.front();
    waiters_.pop_front();
    n.wake(w);
  }
}

void CondVar::wait(Mutex& m) {
  sim::Node& n = sim::this_node();
  THAM_CHECK_MSG(m.owner_ == n.current(), "CondVar::wait without the lock");
  charge_sync(n);
  waiters_.push_back(n.current());
  m.unlock();
  n.block();
  // Signal->wakeup edge; the mutex edges come from unlock()/lock() above.
  THAM_HOOK(on_acquire(this));
  m.lock();
}

void CondVar::signal() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  THAM_HOOK(on_release(this));
  if (!waiters_.empty()) {
    sim::Task* w = waiters_.front();
    waiters_.pop_front();
    n.wake(w);
  }
}

void CondVar::broadcast() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  THAM_HOOK(on_release(this));
  while (!waiters_.empty()) {
    sim::Task* w = waiters_.front();
    waiters_.pop_front();
    n.wake(w);
  }
}

void Semaphore::acquire() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  while (count_ == 0) {
    waiters_.push_back(n.current());
    n.block();
  }
  --count_;
  THAM_HOOK(on_acquire(this));
}

bool Semaphore::try_acquire() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  if (count_ == 0) return false;
  --count_;
  THAM_HOOK(on_acquire(this));
  return true;
}

void Semaphore::release() {
  sim::Node& n = sim::this_node();
  charge_sync(n);
  THAM_HOOK(on_release(this));
  ++count_;
  if (!waiters_.empty()) {
    sim::Task* w = waiters_.front();
    waiters_.pop_front();
    n.wake(w);
  }
}

ThreadBarrier::ThreadBarrier(int parties) : parties_(parties) {
  THAM_CHECK(parties > 0);
}

bool ThreadBarrier::arrive_and_wait() {
  mu_.lock();
  std::uint64_t gen = generation_;
  ++arrived_;
  bool serial = arrived_ == parties_;
  if (serial) {
    arrived_ = 0;
    ++generation_;
    cv_.broadcast();
  } else {
    while (generation_ == gen) cv_.wait(mu_);
  }
  mu_.unlock();
  return serial;
}

}  // namespace tham::threads
