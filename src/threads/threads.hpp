#pragma once
// The lightweight, non-preemptive, POSIX-style threads package the new CC++
// runtime is built on (Section 4 of the paper). A thin, instrumented facade
// over the node scheduler: every create, context switch, lock, unlock,
// signal and wait is counted and charged its calibrated cost, because the
// paper's Table 4 "Threads" column is exactly (counts x unit costs).
//
// All objects are node-local (one address space): a Mutex created on node 3
// may only ever be touched by simulated threads of node 3.

#include <cstdint>
#include <deque>
#include <functional>

#include "common/types.hpp"
#include "sim/node.hpp"

namespace tham::threads {

/// Handle to a simulated thread. Join-once semantics (like pthreads).
class Thread {
 public:
  Thread() = default;
  bool valid() const { return task_ != nullptr; }

 private:
  friend Thread spawn(std::function<void()>, const char*);
  friend Thread spawn_daemon(std::function<void()>, const char*);
  friend void join(Thread&);
  friend void detach(Thread&);
  sim::Task* task_ = nullptr;
  sim::Node* node_ = nullptr;
};

/// Creates a thread on the current node. Charges the thread-creation cost
/// to the spawner under ThreadMgmt.
Thread spawn(std::function<void()> body, const char* name = "thread");

/// Daemon variant (e.g. the polling thread): not charged against deadlock
/// detection; unwound automatically at simulation shutdown.
Thread spawn_daemon(std::function<void()> body, const char* name = "daemon");

/// Blocks until `t` finishes. Each thread joined or detached exactly once.
void join(Thread& t);

/// Relinquishes the thread; its resources are reclaimed when it finishes.
void detach(Thread& t);

/// Cooperative yield to the back of the node's run queue. The context
/// switch itself is charged by the scheduler when control actually moves.
void yield();

/// Non-recursive mutex.
class Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();
  bool held() const { return owner_ != nullptr; }

 private:
  friend class CondVar;
  sim::Task* owner_ = nullptr;
  std::deque<sim::Task*> waiters_;
};

/// RAII lock guard.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable (Mesa semantics: always re-check the predicate).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m);
  void signal();
  void broadcast();

 private:
  std::deque<sim::Task*> waiters_;
};

/// Counting semaphore (node-local).
class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Decrements; blocks while the count is zero.
  void acquire();
  /// Increments; wakes one waiter if any.
  void release();
  bool try_acquire();
  int value() const { return count_; }

 private:
  int count_;
  std::deque<sim::Task*> waiters_;
};

/// Reusable node-local thread barrier for `parties` threads.
class ThreadBarrier {
 public:
  explicit ThreadBarrier(int parties);
  ThreadBarrier(const ThreadBarrier&) = delete;
  ThreadBarrier& operator=(const ThreadBarrier&) = delete;

  /// Blocks until `parties` threads have arrived; then all proceed.
  /// Returns true for exactly one thread per generation (the "serial"
  /// thread, as in std::barrier's completion step).
  bool arrive_and_wait();

 private:
  int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  Mutex mu_;
  CondVar cv_;
};

}  // namespace tham::threads
