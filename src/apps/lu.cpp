#include "apps/lu.hpp"

#include <cmath>

#include "apps/topology.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace tham::apps::lu {

namespace {

/// In-place unblocked LU (no pivoting; the matrix is made diagonally
/// dominant at construction) of a B x B block.
void factor_block(double* a, int b) {
  for (int c = 0; c < b; ++c) {
    double inv = 1.0 / a[c * b + c];
    for (int r = c + 1; r < b; ++r) a[r * b + c] *= inv;
    for (int r = c + 1; r < b; ++r) {
      double l = a[r * b + c];
      for (int cc = c + 1; cc < b; ++cc) a[r * b + cc] -= l * a[c * b + cc];
    }
  }
}

/// A[k][j] <- L(pivot)^-1 * A[k][j] (forward substitution, unit lower).
void row_solve(const double* pivot, double* a, int b) {
  for (int c = 0; c < b; ++c) {
    for (int r = c + 1; r < b; ++r) {
      double l = pivot[r * b + c];
      for (int cc = 0; cc < b; ++cc) a[r * b + cc] -= l * a[c * b + cc];
    }
  }
}

/// A[i][k] <- A[i][k] * U(pivot)^-1 (backward substitution on columns).
void col_solve(const double* pivot, double* a, int b) {
  for (int c = 0; c < b; ++c) {
    double inv = 1.0 / pivot[c * b + c];
    for (int r = 0; r < b; ++r) a[r * b + c] *= inv;
    for (int cc = c + 1; cc < b; ++cc) {
      double u = pivot[c * b + cc];
      for (int r = 0; r < b; ++r) a[r * b + cc] -= a[r * b + c] * u;
    }
  }
}

/// A[i][j] -= A[i][k] * A[k][j] (dgemm).
void update_block(double* aij, const double* aik, const double* akj, int b) {
  for (int r = 0; r < b; ++r) {
    for (int c2 = 0; c2 < b; ++c2) {
      double l = aik[r * b + c2];
      if (l == 0.0) continue;
      const double* src = &akj[c2 * b];
      double* dst = &aij[r * b];
      for (int c = 0; c < b; ++c) dst[c] -= l * src[c];
    }
  }
}

SimTime factor_cost(const CostModel& cm, int b) {
  return static_cast<SimTime>(2.0 / 3.0 * b * b * b) * cm.flop;
}
SimTime solve_cost(const CostModel& cm, int b) {
  return static_cast<SimTime>(b) * b * b * cm.flop;
}
SimTime gemm_cost(const CostModel& cm, int b) {
  return static_cast<SimTime>(2 * b) * b * b * cm.flop;
}

}  // namespace

Matrix build_matrix(const Config& cfg) {
  THAM_CHECK(cfg.n % cfg.block == 0);
  int pr = static_cast<int>(std::lround(std::sqrt(cfg.procs)));
  THAM_CHECK_MSG(pr * pr == cfg.procs, "LU needs a square processor count");
  Matrix m;
  m.cfg = cfg;
  m.layout.nb = cfg.n / cfg.block;
  m.layout.pr = pr;
  auto nb = static_cast<std::size_t>(m.layout.nb);
  auto bb = static_cast<std::size_t>(cfg.block) *
            static_cast<std::size_t>(cfg.block);
  Rng rng(cfg.seed);
  m.blocks.assign(nb, std::vector<std::vector<double>>(nb));
  for (std::size_t bi = 0; bi < nb; ++bi) {
    for (std::size_t bj = 0; bj < nb; ++bj) {
      auto& blk = m.blocks[bi][bj];
      blk.resize(bb);
      for (auto& v : blk) v = rng.next_double(-1.0, 1.0);
      if (bi == bj) {
        // Diagonal dominance so unpivoted LU is stable.
        for (int d = 0; d < cfg.block; ++d) {
          blk[static_cast<std::size_t>(d * cfg.block + d)] += 2.0 * cfg.n;
        }
      }
    }
  }
  return m;
}

double run_serial(const Config& cfg) {
  Matrix m = build_matrix(cfg);
  int nb = m.layout.nb, b = cfg.block;
  for (int k = 0; k < nb; ++k) {
    auto uk = static_cast<std::size_t>(k);
    factor_block(m.blocks[uk][uk].data(), b);
    for (int j = k + 1; j < nb; ++j) {
      row_solve(m.blocks[uk][uk].data(),
                m.blocks[uk][static_cast<std::size_t>(j)].data(), b);
    }
    for (int i = k + 1; i < nb; ++i) {
      col_solve(m.blocks[uk][uk].data(),
                m.blocks[static_cast<std::size_t>(i)][uk].data(), b);
    }
    for (int i = k + 1; i < nb; ++i) {
      for (int j = k + 1; j < nb; ++j) {
        update_block(
            m.blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]
                .data(),
            m.blocks[static_cast<std::size_t>(i)][uk].data(),
            m.blocks[uk][static_cast<std::size_t>(j)].data(), b);
      }
    }
  }
  double sum = 0;
  for (auto& row : m.blocks) {
    for (auto& blk : row) {
      for (double v : blk) sum += v;
    }
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Split-C version (sc-lu): one-way stores for pivot blocks, split-phase
// bulk-get prefetch before the interior update.
// ---------------------------------------------------------------------------

RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg) {
  Matrix m = build_matrix(cfg);
  splitc::World world(engine, net, am);
  int nb = m.layout.nb, b = cfg.block;
  auto bb = static_cast<std::size_t>(b) * static_cast<std::size_t>(b);
  double checksum = 0;

  // Per-processor landing areas (host-allocated; each proc only touches
  // its own row).
  std::vector<std::vector<double>> pivot_land(
      static_cast<std::size_t>(cfg.procs), std::vector<double>(bb));

  world.run([&] {
    sim::Node& node = sim::this_node();
    NodeId me = splitc::MYPROC();
    const CostModel& cm = engine.cost();
    auto owner = [&](int i, int j) { return m.layout.owner(i, j); };
    auto blk = [&](int i, int j) -> std::vector<double>& {
      return m.blocks[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)];
    };

    // Prefetch caches for the interior update.
    std::vector<std::vector<double>> row_cache(static_cast<std::size_t>(nb)),
        col_cache(static_cast<std::size_t>(nb));

    for (int k = 0; k < nb; ++k) {
      // --- Sub-step 1: factor the pivot block -----------------------------
      if (owner(k, k) == me) {
        node.advance(factor_cost(cm, b));
        factor_block(blk(k, k).data(), b);
        // Push the pivot to every other processor with one-way stores.
        for (int q = 0; q < cfg.procs; ++q) {
          if (q == me) continue;
          splitc::bulk_store(
              splitc::global_ptr<double>(
                  q, pivot_land[static_cast<std::size_t>(q)].data()),
              blk(k, k).data(), bb * sizeof(double));
        }
        pivot_land[static_cast<std::size_t>(me)] = blk(k, k);
      }
      splitc::all_store_sync();
      const double* pivot = pivot_land[static_cast<std::size_t>(me)].data();

      // --- Sub-step 2: triangular solves on row k and column k ------------
      for (int j = k + 1; j < nb; ++j) {
        if (owner(k, j) == me) {
          node.advance(solve_cost(cm, b));
          row_solve(pivot, blk(k, j).data(), b);
        }
      }
      for (int i = k + 1; i < nb; ++i) {
        if (owner(i, k) == me) {
          node.advance(solve_cost(cm, b));
          col_solve(pivot, blk(i, k).data(), b);
        }
      }
      splitc::barrier();

      // --- Sub-step 3: prefetch all needed blocks, then update -------------
      for (int j = k + 1; j < nb; ++j) {
        if (owner(k, j) == me) continue;
        bool needed = false;
        for (int i = k + 1; i < nb && !needed; ++i) {
          needed = owner(i, j) == me;
        }
        if (!needed) continue;
        auto uj = static_cast<std::size_t>(j);
        row_cache[uj].resize(bb);
        splitc::bulk_get(row_cache[uj].data(),
                         splitc::global_ptr<double>(owner(k, j),
                                                    blk(k, j).data()),
                         bb * sizeof(double));
      }
      for (int i = k + 1; i < nb; ++i) {
        if (owner(i, k) == me) continue;
        bool needed = false;
        for (int j = k + 1; j < nb && !needed; ++j) {
          needed = owner(i, j) == me;
        }
        if (!needed) continue;
        auto ui = static_cast<std::size_t>(i);
        col_cache[ui].resize(bb);
        splitc::bulk_get(col_cache[ui].data(),
                         splitc::global_ptr<double>(owner(i, k),
                                                    blk(i, k).data()),
                         bb * sizeof(double));
      }
      splitc::sync();

      for (int i = k + 1; i < nb; ++i) {
        for (int j = k + 1; j < nb; ++j) {
          if (owner(i, j) != me) continue;
          const double* aik = owner(i, k) == me
                                  ? blk(i, k).data()
                                  : col_cache[static_cast<std::size_t>(i)]
                                        .data();
          const double* akj = owner(k, j) == me
                                  ? blk(k, j).data()
                                  : row_cache[static_cast<std::size_t>(j)]
                                        .data();
          node.advance(gemm_cost(cm, b));
          update_block(blk(i, j).data(), aik, akj, b);
        }
      }
      splitc::barrier();
    }

    double sum = 0;
    for (int i = 0; i < nb; ++i) {
      for (int j = 0; j < nb; ++j) {
        if (owner(i, j) != me) continue;
        for (double v : blk(i, j)) sum += v;
      }
    }
    // Every rank computes the same total; a single writer keeps the shared
    // host frame race-free when node fibers run on different threads.
    double total = world.all_reduce_sum(sum);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

// ---------------------------------------------------------------------------
// CC++ version (cc-lu): the one-way stores and prefetches become RMIs.
// ---------------------------------------------------------------------------

namespace {

struct LuProc {
  Matrix* m = nullptr;
  NodeId me = kInvalidNode;
  std::vector<double> pivot_land;

  long put_pivot(std::vector<double> data) {
    pivot_land = std::move(data);
    return static_cast<long>(pivot_land.size());
  }

  std::vector<double> get_block(long bi, long bj) {
    return m->blocks[static_cast<std::size_t>(bi)]
                    [static_cast<std::size_t>(bj)];
  }
};

}  // namespace

RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg) {
  sim::Engine& engine = rt.engine();
  Matrix m = build_matrix(cfg);
  int nb = m.layout.nb, b = cfg.block;
  double checksum = 0;

  auto put_pivot = rt.def_method("LuProc::put_pivot", &LuProc::put_pivot,
                                 ccxx::RmiMode::Threaded);
  auto get_block = rt.def_method("LuProc::get_block", &LuProc::get_block,
                                 ccxx::RmiMode::Threaded);
  std::vector<ccxx::gptr<LuProc>> procs;
  for (int p = 0; p < cfg.procs; ++p) {
    auto gp = rt.place<LuProc>(p);
    gp.ptr->m = &m;
    gp.ptr->me = p;
    procs.push_back(gp);
  }

  rt.run_spmd([&] {
    sim::Node& node = sim::this_node();
    NodeId me = node.id();
    auto ume = static_cast<std::size_t>(me);
    const CostModel& cm = engine.cost();
    auto owner = [&](int i, int j) { return m.layout.owner(i, j); };
    auto blk = [&](int i, int j) -> std::vector<double>& {
      return m.blocks[static_cast<std::size_t>(i)]
                     [static_cast<std::size_t>(j)];
    };

    std::vector<std::vector<double>> row_cache(static_cast<std::size_t>(nb)),
        col_cache(static_cast<std::size_t>(nb));

    for (int k = 0; k < nb; ++k) {
      if (owner(k, k) == me) {
        node.advance(factor_cost(cm, b));
        factor_block(blk(k, k).data(), b);
        // Pivot distribution by RMI instead of one-way stores.
        for (int q = 0; q < cfg.procs; ++q) {
          if (q == me) continue;
          rt.rmi(procs[static_cast<std::size_t>(q)], put_pivot, blk(k, k));
        }
        procs[ume].ptr->pivot_land = blk(k, k);
      }
      rt.barrier();
      const double* pivot = procs[ume].ptr->pivot_land.data();

      for (int j = k + 1; j < nb; ++j) {
        if (owner(k, j) == me) {
          node.advance(solve_cost(cm, b));
          row_solve(pivot, blk(k, j).data(), b);
        }
      }
      for (int i = k + 1; i < nb; ++i) {
        if (owner(i, k) == me) {
          node.advance(solve_cost(cm, b));
          col_solve(pivot, blk(i, k).data(), b);
        }
      }
      rt.barrier();

      // The Split-C version's aggregated prefetch is exactly what the RMI
      // style loses (Section 5: "the one-way stores and prefetches are
      // replaced by RMIs"): cc-lu fetches blocks on demand inside the
      // update loop — the column block once per row (the loop structure
      // caches it naturally), the row block per update.
      for (int i = k + 1; i < nb; ++i) {
        bool own_any = false;
        for (int j = k + 1; j < nb && !own_any; ++j) {
          own_any = owner(i, j) == me;
        }
        if (!own_any) continue;
        const double* aik;
        if (owner(i, k) == me) {
          aik = blk(i, k).data();
        } else {
          col_cache[static_cast<std::size_t>(i)] =
              rt.rmi(procs[static_cast<std::size_t>(owner(i, k))], get_block,
                     static_cast<long>(i), static_cast<long>(k));
          aik = col_cache[static_cast<std::size_t>(i)].data();
        }
        for (int j = k + 1; j < nb; ++j) {
          if (owner(i, j) != me) continue;
          const double* akj;
          if (owner(k, j) == me) {
            akj = blk(k, j).data();
          } else {
            row_cache[static_cast<std::size_t>(j)] =
                rt.rmi(procs[static_cast<std::size_t>(owner(k, j))],
                       get_block, static_cast<long>(k),
                       static_cast<long>(j));
            akj = row_cache[static_cast<std::size_t>(j)].data();
          }
          node.advance(gemm_cost(cm, b));
          update_block(blk(i, j).data(), aik, akj, b);
        }
      }
      rt.barrier();
    }

    double sum = 0;
    for (int i = 0; i < nb; ++i) {
      for (int j = 0; j < nb; ++j) {
        if (owner(i, j) != me) continue;
        for (double v : blk(i, j)) sum += v;
      }
    }
    double total = rt.all_reduce_sum(sum);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

RunResult run_splitc(const Config& cfg, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  return run_splitc(engine, net, am, cfg);
}

RunResult run_ccxx(const Config& cfg, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  return run_ccxx(rt, cfg);
}

}  // namespace tham::apps::lu
