#pragma once
// All-pairs link topology for the app runs. Split-C and CC++ programs are
// SPMD over a fully connected machine: any processor may message any
// other, and the cheapest class either runtime puts on the wire is the
// short active message. Declaring that floor on every ordered pair gives
// the parallel engine per-link lookahead horizons and arms the send-time
// floor check — it changes no timing (declared links only widen the
// conservative horizon, never the event order).
//
// O(P^2) declarations: callers with huge machines (bench_scaling's
// 100k-node run) build their engines directly and skip this.

#include "am/am.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace tham::apps {

inline void declare_full_topology(am::AmLayer& am) {
  sim::Engine& engine = am.channel().engine();
  for (NodeId p = 0; p < engine.size(); ++p) {
    for (NodeId q = 0; q < engine.size(); ++q) {
      if (p != q) am.channel().declare_link(p, q, net::Wire::AmShort);
    }
  }
}

}  // namespace tham::apps
