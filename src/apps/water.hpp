#pragma once
// Water: N-body molecular dynamics from the SPLASH suite [20] — the paper's
// second application. A system of water molecules in a cubical box; each
// step computes intra-molecular forces locally and inter-molecular (O-O)
// forces over the half-shell of molecule pairs, which requires reads of
// remote molecule positions and atomic updates of remote forces.
//
// Two versions per language, as in the paper:
//   atomic   — per interacting pair, the O position of the remote molecule
//              is read with small (atomic) messages and the remote force is
//              updated with an atomic RPC;
//   prefetch — selective prefetching: each processor bundles and fetches
//              the positions it needs from each other processor before the
//              local compute phase; force updates stay atomic.
//
// Default inputs: 64 and 512 molecules over 4 processors (Section 5).

#include <cstdint>
#include <vector>

#include "apps/results.hpp"
#include "ccxx/runtime.hpp"
#include "splitc/world.hpp"

namespace tham::apps::water {

struct Config {
  int procs = 4;
  int molecules = 64;
  int steps = 2;
  double dt = 1e-3;
  std::uint64_t seed = 4242;
};

enum class Version { Atomic, Prefetch };

inline const char* version_name(Version v) {
  return v == Version::Atomic ? "water-atomic" : "water-prefetch";
}

/// Per-processor molecule state (structure-of-arrays; O atom only carries
/// the inter-molecular interaction, the two H atoms are intra-molecular).
struct ProcState {
  std::vector<double> pos;  ///< 3 per molecule (O position)
  std::vector<double> vel;  ///< 3 per molecule
  std::vector<double> frc;  ///< 3 per molecule
  std::vector<double> hdisp;  ///< 6 per molecule: H1/H2 displacements
};

struct System {
  Config cfg;
  int per_proc = 0;
  std::vector<ProcState> proc;

  int owner(int m) const { return m / per_proc; }
  int local(int m) const { return m % per_proc; }
};

/// Deterministic initial state (lattice positions + seeded jitter).
System build_system(const Config& cfg);

/// Serial reference; returns the final total energy (checksum).
double run_serial(const Config& cfg);

RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg, Version version);
RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg, Version version);

RunResult run_splitc(const Config& cfg, Version v,
                     const CostModel& cm = default_cost_model());
RunResult run_ccxx(const Config& cfg, Version v,
                   const CostModel& cm = default_cost_model());

}  // namespace tham::apps::water
