#pragma once
// The serving fabric registered as a fourth scenario alongside EM3D/Water/
// LU: shared preset configurations so the golden records, the checker
// smoke suite, the property fuzzer, and tham_analyze all exercise the same
// workloads (ISSUE 8).

#include "apps/results.hpp"
#include "serve/serve.hpp"

namespace tham::apps::serving {

/// Small open-loop preset: 3 clients Poisson-offering 80% of a 2-server
/// pool, with batching, bounded queues, and the backend dictionary hop.
inline serve::Config small_open(
    serve::Policy p = serve::Policy::RoundRobin) {
  serve::Config cfg;
  cfg.clients = 3;
  cfg.servers = 2;
  cfg.requests_per_client = 16;
  cfg.open_loop = true;
  cfg.offered_load = 0.8;
  cfg.mean_service = 40'000;
  cfg.queue_cap = 8;
  cfg.batch_max = 4;
  cfg.policy = p;
  cfg.backend_fraction = 0.25;
  cfg.seed = 2027;
  return cfg;
}

/// Small closed-loop preset: think-time pacing, least-outstanding
/// balancing, tighter batches.
inline serve::Config small_closed() {
  serve::Config cfg;
  cfg.clients = 3;
  cfg.servers = 2;
  cfg.requests_per_client = 12;
  cfg.open_loop = false;
  cfg.think_time = 30'000;
  cfg.mean_service = 40'000;
  cfg.queue_cap = 8;
  cfg.batch_max = 2;
  cfg.policy = serve::Policy::LeastOutstanding;
  cfg.backend_fraction = 0.25;
  cfg.seed = 2027;
  return cfg;
}

inline RunResult run_ccxx(ccxx::Runtime& rt, const serve::Config& cfg) {
  return serve::run(rt, cfg).run;
}

}  // namespace tham::apps::serving
