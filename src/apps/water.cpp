#include "apps/water.hpp"

#include <cmath>

#include "apps/topology.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace tham::apps::water {

using am::Word;

namespace {

// Simulated CPU cost of the kernels (P2SC-era flops).
constexpr int kFlopsPerPair = 60;      ///< one O-O Lennard-Jones evaluation
constexpr int kFlopsPerMolStep = 40;   ///< predictor/corrector per molecule
constexpr int kFlopsIntra = 50;        ///< intra-molecular terms per molecule

constexpr double kEps = 0.25;     ///< LJ well depth
constexpr double kSpring = 8.0;   ///< intra H-O spring constant
constexpr double kRest = 0.9572;  ///< H-O rest length

double bits_to_double(Word w) {
  double d;
  std::memcpy(&d, &w, sizeof(d));
  return d;
}

Word double_to_bits(double d) {
  Word w;
  std::memcpy(&w, &d, sizeof(w));
  return w;
}

/// LJ force of j on i given the separation vector; also accumulates the
/// pair potential. Pure function shared by every version and the serial
/// reference so results agree.
void lj_pair(const double* pi, const double* pj, double f[3], double* pot) {
  double r[3] = {pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]};
  double r2 = r[0] * r[0] + r[1] * r[1] + r[2] * r[2];
  double inv2 = 1.0 / r2;
  double inv6 = inv2 * inv2 * inv2;
  double mag = 24.0 * kEps * (2.0 * inv6 * inv6 - inv6) * inv2;
  for (int c = 0; c < 3; ++c) f[c] = mag * r[c];
  *pot += 4.0 * kEps * (inv6 * inv6 - inv6);
}

/// Does molecule pair (i, i+dj mod N) belong to the half-shell?
bool in_half_shell(int i, int dj, int n) {
  if (dj == n / 2 && n % 2 == 0) return i < n / 2;
  return true;
}

double intra_energy(const ProcState& ps, int l) {
  double e = 0;
  for (int h = 0; h < 2; ++h) {
    const double* d = &ps.hdisp[static_cast<std::size_t>(6 * l + 3 * h)];
    double len = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
    e += kSpring * (len - kRest) * (len - kRest);
  }
  return e;
}

}  // namespace

System build_system(const Config& cfg) {
  THAM_CHECK(cfg.molecules % cfg.procs == 0);
  THAM_CHECK(cfg.molecules % 2 == 0);
  System sys;
  sys.cfg = cfg;
  sys.per_proc = cfg.molecules / cfg.procs;
  sys.proc.resize(static_cast<std::size_t>(cfg.procs));
  Rng rng(cfg.seed);
  int side = 1;
  while (side * side * side < cfg.molecules) ++side;
  const double spacing = 3.1;
  for (int m = 0; m < cfg.molecules; ++m) {
    auto& ps = sys.proc[static_cast<std::size_t>(sys.owner(m))];
    if (ps.pos.empty()) {
      auto n = static_cast<std::size_t>(sys.per_proc);
      ps.pos.assign(3 * n, 0.0);
      ps.vel.assign(3 * n, 0.0);
      ps.frc.assign(3 * n, 0.0);
      ps.hdisp.assign(6 * n, 0.0);
    }
    int l = sys.local(m);
    int x = m % side, y = (m / side) % side, z = m / (side * side);
    ps.pos[static_cast<std::size_t>(3 * l + 0)] =
        x * spacing + rng.next_double(-0.1, 0.1);
    ps.pos[static_cast<std::size_t>(3 * l + 1)] =
        y * spacing + rng.next_double(-0.1, 0.1);
    ps.pos[static_cast<std::size_t>(3 * l + 2)] =
        z * spacing + rng.next_double(-0.1, 0.1);
    for (int h = 0; h < 6; ++h) {
      ps.hdisp[static_cast<std::size_t>(6 * l + h)] =
          (h % 3 == 0 ? kRest : 0.2) + rng.next_double(-0.02, 0.02);
    }
  }
  return sys;
}

double run_serial(const Config& cfg) {
  System sys = build_system(cfg);
  int n = cfg.molecules;
  double pot = 0;
  for (int step = 0; step < cfg.steps; ++step) {
    for (auto& ps : sys.proc) std::fill(ps.frc.begin(), ps.frc.end(), 0.0);
    pot = 0;
    for (int i = 0; i < n; ++i) {
      for (int dj = 1; dj <= n / 2; ++dj) {
        if (!in_half_shell(i, dj, n)) continue;
        int j = (i + dj) % n;
        auto& pi = sys.proc[static_cast<std::size_t>(sys.owner(i))];
        auto& pj = sys.proc[static_cast<std::size_t>(sys.owner(j))];
        double f[3];
        lj_pair(&pi.pos[static_cast<std::size_t>(3 * sys.local(i))],
                &pj.pos[static_cast<std::size_t>(3 * sys.local(j))], f, &pot);
        for (int c = 0; c < 3; ++c) {
          pi.frc[static_cast<std::size_t>(3 * sys.local(i) + c)] += f[c];
          pj.frc[static_cast<std::size_t>(3 * sys.local(j) + c)] -= f[c];
        }
      }
    }
    for (int m = 0; m < n; ++m) {
      auto& ps = sys.proc[static_cast<std::size_t>(sys.owner(m))];
      int l = sys.local(m);
      for (int c = 0; c < 3; ++c) {
        auto k = static_cast<std::size_t>(3 * l + c);
        ps.vel[k] += ps.frc[k] * cfg.dt;
        ps.pos[k] += ps.vel[k] * cfg.dt;
      }
    }
  }
  double kin = 0, intra = 0;
  for (int m = 0; m < n; ++m) {
    auto& ps = sys.proc[static_cast<std::size_t>(sys.owner(m))];
    int l = sys.local(m);
    for (int c = 0; c < 3; ++c) {
      double v = ps.vel[static_cast<std::size_t>(3 * l + c)];
      kin += 0.5 * v * v;
    }
    intra += intra_energy(ps, l);
  }
  return pot + kin + intra;
}

// ---------------------------------------------------------------------------
// Split-C version
// ---------------------------------------------------------------------------

RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg, Version version) {
  System sys = build_system(cfg);
  splitc::World world(engine, net, am);
  int n = cfg.molecules;
  double checksum = 0;

  // Atomic remote force update: a0 = local molecule index at the owner,
  // a1..a3 = force components (subtracted, i.e. reaction on j).
  int fn_add = world.register_atomic(
      [&sys](sim::Node& self, Word a0, Word a1, Word a2, Word a3) -> Word {
        auto& ps = sys.proc[static_cast<std::size_t>(self.id())];
        auto l = static_cast<std::size_t>(a0);
        ps.frc[3 * l + 0] -= bits_to_double(a1);
        ps.frc[3 * l + 1] -= bits_to_double(a2);
        ps.frc[3 * l + 2] -= bits_to_double(a3);
        return 0;
      });

  world.run([&] {
    sim::Node& node = sim::this_node();
    NodeId me = splitc::MYPROC();
    auto& mine = sys.proc[static_cast<std::size_t>(me)];
    SimTime pair_cost = kFlopsPerPair * engine.cost().flop;
    SimTime mol_cost = kFlopsPerMolStep * engine.cost().flop;
    SimTime intra_cost = kFlopsIntra * engine.cost().flop;
    int lo = me * sys.per_proc, hi = lo + sys.per_proc;

    // Prefetch cache: positions of every processor, refreshed per step.
    std::vector<std::vector<double>> cache(
        static_cast<std::size_t>(cfg.procs));

    double pot = 0;
    for (int step = 0; step < cfg.steps; ++step) {
      std::fill(mine.frc.begin(), mine.frc.end(), 0.0);
      pot = 0;
      for (int l = 0; l < sys.per_proc; ++l) node.advance(intra_cost);
      splitc::barrier();

      if (version == Version::Prefetch) {
        // Selective prefetching: one bulk get per remote processor.
        for (int q = 0; q < cfg.procs; ++q) {
          if (q == me) continue;
          auto uq = static_cast<std::size_t>(q);
          cache[uq].resize(sys.proc[uq].pos.size());
          splitc::bulk_get(cache[uq].data(),
                           splitc::global_ptr<double>(
                               q, sys.proc[uq].pos.data()),
                           cache[uq].size() * sizeof(double));
        }
        splitc::sync();
      }

      for (int i = lo; i < hi; ++i) {
        int li = sys.local(i);
        for (int dj = 1; dj <= n / 2; ++dj) {
          if (!in_half_shell(i, dj, n)) continue;
          int j = (i + dj) % n;
          int qj = sys.owner(j);
          int lj = sys.local(j);
          double pj[3];
          if (qj == me) {
            for (int c = 0; c < 3; ++c) {
              pj[c] = mine.pos[static_cast<std::size_t>(3 * lj + c)];
            }
          } else if (version == Version::Prefetch) {
            for (int c = 0; c < 3; ++c) {
              pj[c] = cache[static_cast<std::size_t>(qj)]
                           [static_cast<std::size_t>(3 * lj + c)];
            }
          } else {
            // Atomic reads: three split-phase gets, completed at sync().
            auto* base = sys.proc[static_cast<std::size_t>(qj)].pos.data();
            for (int c = 0; c < 3; ++c) {
              splitc::get(&pj[c],
                          splitc::global_ptr<double>(qj, base + 3 * lj + c));
            }
            splitc::sync();
          }
          double f[3];
          lj_pair(&mine.pos[static_cast<std::size_t>(3 * li)], pj, f, &pot);
          node.advance(pair_cost);
          for (int c = 0; c < 3; ++c) {
            mine.frc[static_cast<std::size_t>(3 * li + c)] += f[c];
          }
          if (qj == me) {
            auto& pq = sys.proc[static_cast<std::size_t>(qj)];
            for (int c = 0; c < 3; ++c) {
              pq.frc[static_cast<std::size_t>(3 * lj + c)] -= f[c];
            }
          } else {
            // Atomic write of the reaction force.
            world.atomic(fn_add, qj, static_cast<Word>(lj),
                         double_to_bits(f[0]), double_to_bits(f[1]),
                         double_to_bits(f[2]));
          }
        }
      }
      splitc::barrier();

      for (int l = 0; l < sys.per_proc; ++l) {
        node.advance(mol_cost);
        for (int c = 0; c < 3; ++c) {
          auto k = static_cast<std::size_t>(3 * l + c);
          mine.vel[k] += mine.frc[k] * cfg.dt;
          mine.pos[k] += mine.vel[k] * cfg.dt;
        }
      }
      splitc::barrier();
    }

    double kin = 0, intra = 0;
    for (int l = 0; l < sys.per_proc; ++l) {
      for (int c = 0; c < 3; ++c) {
        double v = mine.vel[static_cast<std::size_t>(3 * l + c)];
        kin += 0.5 * v * v;
      }
      intra += intra_energy(mine, l);
    }
    // Every rank computes the same total; a single writer keeps the shared
    // host frame race-free when node fibers run on different threads.
    double total = world.all_reduce_sum(pot + kin + intra);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

// ---------------------------------------------------------------------------
// CC++ version
// ---------------------------------------------------------------------------

namespace {

/// The per-node processor object of the CC++ port: receives atomic force
/// updates and serves bundled position fetches.
struct WaterProc {
  System* sys = nullptr;
  NodeId me = kInvalidNode;

  long add_force(long l, double fx, double fy, double fz) {
    auto& ps = sys->proc[static_cast<std::size_t>(me)];
    auto k = static_cast<std::size_t>(3 * l);
    ps.frc[k + 0] -= fx;
    ps.frc[k + 1] -= fy;
    ps.frc[k + 2] -= fz;
    return 0;
  }

  std::vector<double> get_positions() {
    return sys->proc[static_cast<std::size_t>(me)].pos;
  }
};

}  // namespace

RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg, Version version) {
  sim::Engine& engine = rt.engine();
  System sys = build_system(cfg);
  int n = cfg.molecules;

  auto add_force = rt.def_method("WaterProc::add_force", &WaterProc::add_force,
                                 ccxx::RmiMode::Atomic);
  auto get_positions = rt.def_method("WaterProc::get_positions",
                                     &WaterProc::get_positions,
                                     ccxx::RmiMode::Threaded);
  std::vector<ccxx::gptr<WaterProc>> procs;
  for (int p = 0; p < cfg.procs; ++p) {
    auto gp = rt.place<WaterProc>(p);
    gp.ptr->sys = &sys;
    gp.ptr->me = p;
    procs.push_back(gp);
  }

  double checksum = 0;
  rt.run_spmd([&] {
    sim::Node& node = sim::this_node();
    NodeId me = node.id();
    auto& mine = sys.proc[static_cast<std::size_t>(me)];
    SimTime pair_cost = kFlopsPerPair * engine.cost().flop;
    SimTime mol_cost = kFlopsPerMolStep * engine.cost().flop;
    SimTime intra_cost = kFlopsIntra * engine.cost().flop;
    int lo = me * sys.per_proc, hi = lo + sys.per_proc;

    std::vector<std::vector<double>> cache(
        static_cast<std::size_t>(cfg.procs));

    double pot = 0;
    for (int step = 0; step < cfg.steps; ++step) {
      std::fill(mine.frc.begin(), mine.frc.end(), 0.0);
      pot = 0;
      for (int l = 0; l < sys.per_proc; ++l) node.advance(intra_cost);
      rt.barrier();

      if (version == Version::Prefetch) {
        // Bundled fetch: one bulk RMI per remote processor.
        for (int q = 0; q < cfg.procs; ++q) {
          if (q == me) continue;
          auto uq = static_cast<std::size_t>(q);
          cache[uq] = rt.rmi(procs[uq], get_positions);
        }
      }

      for (int i = lo; i < hi; ++i) {
        int li = sys.local(i);
        for (int dj = 1; dj <= n / 2; ++dj) {
          if (!in_half_shell(i, dj, n)) continue;
          int j = (i + dj) % n;
          int qj = sys.owner(j);
          int lj = sys.local(j);
          double pj[3];
          if (qj == me) {
            // CC++ reaches even local molecules through global pointers.
            for (int c = 0; c < 3; ++c) {
              ccxx::gvar<double> gv{
                  me, &mine.pos[static_cast<std::size_t>(3 * lj + c)]};
              pj[c] = rt.read(gv);
            }
          } else if (version == Version::Prefetch) {
            for (int c = 0; c < 3; ++c) {
              pj[c] = cache[static_cast<std::size_t>(qj)]
                           [static_cast<std::size_t>(3 * lj + c)];
            }
          } else {
            // Atomic reads through global pointers (sequential RMIs).
            auto* base = sys.proc[static_cast<std::size_t>(qj)].pos.data();
            for (int c = 0; c < 3; ++c) {
              ccxx::gvar<double> gv{qj, base + 3 * lj + c};
              pj[c] = rt.read(gv);
            }
          }
          double f[3];
          lj_pair(&mine.pos[static_cast<std::size_t>(3 * li)], pj, f, &pot);
          node.advance(pair_cost);
          for (int c = 0; c < 3; ++c) {
            mine.frc[static_cast<std::size_t>(3 * li + c)] += f[c];
          }
          if (qj == me) {
            auto& pq = sys.proc[static_cast<std::size_t>(qj)];
            for (int c = 0; c < 3; ++c) {
              pq.frc[static_cast<std::size_t>(3 * lj + c)] -= f[c];
            }
          } else {
            rt.rmi(procs[static_cast<std::size_t>(qj)], add_force,
                   static_cast<long>(lj), f[0], f[1], f[2]);
          }
        }
      }
      rt.barrier();

      for (int l = 0; l < sys.per_proc; ++l) {
        node.advance(mol_cost);
        for (int c = 0; c < 3; ++c) {
          auto k = static_cast<std::size_t>(3 * l + c);
          mine.vel[k] += mine.frc[k] * cfg.dt;
          mine.pos[k] += mine.vel[k] * cfg.dt;
        }
      }
      rt.barrier();
    }

    double kin = 0, intra = 0;
    for (int l = 0; l < sys.per_proc; ++l) {
      for (int c = 0; c < 3; ++c) {
        double v = mine.vel[static_cast<std::size_t>(3 * l + c)];
        kin += 0.5 * v * v;
      }
      intra += intra_energy(mine, l);
    }
    double total = rt.all_reduce_sum(pot + kin + intra);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

RunResult run_splitc(const Config& cfg, Version v, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  return run_splitc(engine, net, am, cfg, v);
}

RunResult run_ccxx(const Config& cfg, Version v, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  return run_ccxx(rt, cfg, v);
}

}  // namespace tham::apps::water
