#include "apps/em3d.hpp"

#include <algorithm>
#include <map>

#include "apps/topology.hpp"
#include "common/check.hpp"

namespace tham::apps::em3d {

using sim::Component;

namespace {

/// Virtual CPU cost of one edge accumulation (multiply-add plus loop and
/// index overhead on the simulated P2SC).
constexpr int kFlopsPerEdge = 4;

/// One consumer's traffic with one producer peer: the producer-local
/// indices the consumer reads (first-encounter order, the ghost slot
/// numbering) and the landing storage aligned with them.
struct NeighborNeed {
  int q = -1;                ///< producer processor
  std::vector<int> idx;      ///< producer-local indices consumer reads
  std::vector<double> land;  ///< ghost landing slots aligned with idx
};

/// A ghost-resolution plan shared by the ghost and bulk versions. Sparse:
/// storage and iteration are O(distinct communicating (p, q) pairs), not
/// O(P^2) — the dense per-pair matrices made 10k+-processor machines pay
/// gigabytes and quadratic fetch loops for mostly-empty peer lists.
/// Iteration order over peers is ascending q, identical to the old dense
/// 0..P-1 sweep with empties skipped, so results are bit-identical.
struct GhostPlan {
  // neigh[kind][p] = p's producer peers, ascending q. kind 0 = H values
  // needed by the E phase; kind 1 = E values needed by the H phase.
  std::vector<std::vector<NeighborNeed>> neigh[2];
  // consumers[kind][p] = (consumer c, index j into neigh[kind][c]) with
  // neigh[kind][c][j].q == p, ascending c — the transposed view the bulk
  // producers iterate.
  std::vector<std::vector<std::pair<int, int>>> consumers[2];
  // Edge rewrites: for each proc and kind, edges with src_proc == -1 read
  // locally; otherwise src_proc is the *position* of the producer peer in
  // neigh[kind][p] and src_index the slot in that peer's landing array.
  std::vector<std::vector<Edge>> e_edges, h_edges;

  /// The peer entry of producer `q` in consumer `p`'s list (binary search
  /// over the q-sorted list); nullptr when p reads nothing from q.
  NeighborNeed* find(int kind, int p, int q) {
    auto& lst = neigh[kind][static_cast<std::size_t>(p)];
    auto it = std::lower_bound(
        lst.begin(), lst.end(), q,
        [](const NeighborNeed& nb, int key) { return nb.q < key; });
    return it != lst.end() && it->q == q ? &*it : nullptr;
  }

  static GhostPlan build(const Graph& g) {
    GhostPlan plan;
    int P = g.cfg.procs;
    auto sz = static_cast<std::size_t>(P);
    for (int k = 0; k < 2; ++k) {
      plan.neigh[k].assign(sz, {});
      plan.consumers[k].assign(sz, {});
    }
    plan.e_edges.assign(sz, {});
    plan.h_edges.assign(sz, {});
    for (int p = 0; p < P; ++p) {
      auto up = static_cast<std::size_t>(p);
      // kind 0: E edges read H values; kind 1: H edges read E values.
      for (int k = 0; k < 2; ++k) {
        const auto& in = k == 0 ? g.e_edges[up] : g.h_edges[up];
        auto& out = k == 0 ? plan.e_edges[up] : plan.h_edges[up];
        std::map<std::pair<int, int>, int> slot;  // (q, idx) -> ghost slot
        std::map<int, std::vector<int>> by_q;     // q -> needed indices
        for (const Edge& e : in) {
          if (e.src_proc == p) {
            out.push_back(Edge{e.dst, -1, e.src_index, e.w});
            continue;
          }
          auto key = std::make_pair(e.src_proc, e.src_index);
          auto it = slot.find(key);
          int s;
          if (it == slot.end()) {
            auto& lst = by_q[e.src_proc];
            s = static_cast<int>(lst.size());
            lst.push_back(e.src_index);
            slot.emplace(key, s);
          } else {
            s = it->second;
          }
          // src_proc holds q for now; rewritten to the peer position below.
          out.push_back(Edge{e.dst, e.src_proc, s, e.w});
        }
        std::map<int, int> qpos;
        for (auto& [q, idx] : by_q) {
          qpos[q] = static_cast<int>(plan.neigh[k][up].size());
          NeighborNeed nb;
          nb.q = q;
          nb.land.assign(idx.size(), 0.0);
          nb.idx = std::move(idx);
          plan.neigh[k][up].push_back(std::move(nb));
        }
        for (Edge& e : out) {
          if (e.src_proc >= 0) e.src_proc = qpos.at(e.src_proc);
        }
      }
    }
    for (int k = 0; k < 2; ++k) {
      for (int c = 0; c < P; ++c) {
        auto uc = static_cast<std::size_t>(c);
        for (std::size_t j = 0; j < plan.neigh[k][uc].size(); ++j) {
          plan.consumers[k][static_cast<std::size_t>(
                                plan.neigh[k][uc][j].q)]
              .emplace_back(c, static_cast<int>(j));
        }
      }
    }
    return plan;
  }
};

}  // namespace

Graph build_graph(const Config& cfg) {
  THAM_CHECK(cfg.graph_nodes % (2 * cfg.procs) == 0);
  Graph g;
  g.cfg = cfg;
  g.per_proc_e = cfg.graph_nodes / 2 / cfg.procs;
  auto P = static_cast<std::size_t>(cfg.procs);
  auto n = static_cast<std::size_t>(g.per_proc_e);
  g.e_vals.assign(P, std::vector<double>(n, 1.0));
  g.h_vals.assign(P, std::vector<double>(n, 1.0));
  g.e_edges.assign(P, {});
  g.h_edges.assign(P, {});

  Rng rng(cfg.seed);
  int remote_deg = static_cast<int>(cfg.degree * cfg.remote_fraction + 0.5);
  for (int p = 0; p < cfg.procs; ++p) {
    for (int kind = 0; kind < 2; ++kind) {  // 0: E reads H, 1: H reads E
      auto& edges = kind == 0 ? g.e_edges[static_cast<std::size_t>(p)]
                              : g.h_edges[static_cast<std::size_t>(p)];
      for (int d = 0; d < g.per_proc_e; ++d) {
        for (int e = 0; e < cfg.degree; ++e) {
          int src_proc;
          if (e < remote_deg && cfg.procs > 1) {
            src_proc = static_cast<int>(
                rng.next_below(static_cast<std::uint64_t>(cfg.procs - 1)));
            if (src_proc >= p) ++src_proc;
          } else {
            src_proc = p;
          }
          int src_index = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(g.per_proc_e)));
          double w = rng.next_double(0.01, 0.02);
          edges.push_back(Edge{d, src_proc, src_index, w});
        }
      }
    }
  }
  return g;
}

double run_serial(const Config& cfg) {
  Graph g = build_graph(cfg);
  auto P = static_cast<std::size_t>(cfg.procs);
  for (int it = 0; it < cfg.iters; ++it) {
    // E phase: new E from current H.
    std::vector<std::vector<double>> new_e = g.e_vals;
    for (std::size_t p = 0; p < P; ++p) {
      std::vector<double> acc(g.e_vals[p].size(), 0.0);
      for (const Edge& e : g.e_edges[p]) {
        acc[static_cast<std::size_t>(e.dst)] +=
            e.w * g.h_vals[static_cast<std::size_t>(e.src_proc)]
                          [static_cast<std::size_t>(e.src_index)];
      }
      new_e[p] = acc;
    }
    g.e_vals = new_e;
    // H phase: new H from new E.
    for (std::size_t p = 0; p < P; ++p) {
      std::vector<double> acc(g.h_vals[p].size(), 0.0);
      for (const Edge& e : g.h_edges[p]) {
        acc[static_cast<std::size_t>(e.dst)] +=
            e.w * g.e_vals[static_cast<std::size_t>(e.src_proc)]
                          [static_cast<std::size_t>(e.src_index)];
      }
      g.h_vals[p] = acc;
    }
  }
  double sum = 0;
  for (std::size_t p = 0; p < P; ++p) {
    for (double v : g.e_vals[p]) sum += v;
    for (double v : g.h_vals[p]) sum += v;
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Split-C versions
// ---------------------------------------------------------------------------

RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg, Version version) {
  Graph g = build_graph(cfg);
  GhostPlan plan = GhostPlan::build(g);
  splitc::World world(engine, net, am);
  double checksum = 0;

  world.run([&] {
    sim::Node& n = sim::this_node();
    NodeId me = splitc::MYPROC();
    auto ume = static_cast<std::size_t>(me);
    SimTime edge_cost = kFlopsPerEdge * engine.cost().flop;

    // One E-or-H half step for the base version (direct gp derefs).
    auto base_phase = [&](const std::vector<Edge>& edges,
                          std::vector<std::vector<double>>& src,
                          std::vector<double>& dst) {
      std::vector<double> acc(dst.size(), 0.0);
      for (const Edge& e : edges) {
        splitc::global_ptr<double> gp(
            e.src_proc, &src[static_cast<std::size_t>(e.src_proc)]
                             [static_cast<std::size_t>(e.src_index)]);
        double v = splitc::read(gp);
        n.advance(edge_cost);
        acc[static_cast<std::size_t>(e.dst)] += e.w * v;
      }
      dst = acc;
    };

    // Ghost version: fetch distinct remote values with split-phase gets.
    auto ghost_fetch = [&](int kind, std::vector<std::vector<double>>& src) {
      for (NeighborNeed& nb : plan.neigh[kind][ume]) {
        auto uq = static_cast<std::size_t>(nb.q);
        for (std::size_t i = 0; i < nb.idx.size(); ++i) {
          splitc::get(&nb.land[i],
                      splitc::global_ptr<double>(
                          nb.q,
                          &src[uq][static_cast<std::size_t>(nb.idx[i])]));
        }
      }
      splitc::sync();
    };

    // Bulk version: the *producer* pushes aggregated values to consumers.
    auto bulk_push = [&](int kind, std::vector<double>& myvals) {
      for (auto [c, j] : plan.consumers[kind][ume]) {  // c reads from me
        NeighborNeed& nb =
            plan.neigh[kind][static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(j)];
        std::vector<double> packed(nb.idx.size());
        for (std::size_t i = 0; i < nb.idx.size(); ++i) {
          packed[i] = myvals[static_cast<std::size_t>(nb.idx[i])];
          n.advance(engine.cost().flop);  // packing
        }
        splitc::bulk_store(splitc::global_ptr<double>(c, nb.land.data()),
                           packed.data(), packed.size() * sizeof(double));
      }
      splitc::all_store_sync();
    };

    // Local compute over ghost-rewritten edges (ghost & bulk versions).
    auto ghost_phase = [&](int kind, const std::vector<Edge>& edges,
                           std::vector<double>& local_src,
                           std::vector<double>& dst) {
      std::vector<double> acc(dst.size(), 0.0);
      for (const Edge& e : edges) {
        double v =
            e.src_proc < 0
                ? local_src[static_cast<std::size_t>(e.src_index)]
                : plan.neigh[kind][ume][static_cast<std::size_t>(e.src_proc)]
                      .land[static_cast<std::size_t>(e.src_index)];
        n.advance(edge_cost);
        acc[static_cast<std::size_t>(e.dst)] += e.w * v;
      }
      dst = acc;
    };

    for (int it = 0; it < cfg.iters; ++it) {
      switch (version) {
        case Version::Base:
          base_phase(g.e_edges[ume], g.h_vals, g.e_vals[ume]);
          splitc::barrier();
          base_phase(g.h_edges[ume], g.e_vals, g.h_vals[ume]);
          splitc::barrier();
          break;
        case Version::Ghost:
          ghost_fetch(0, g.h_vals);
          ghost_phase(0, plan.e_edges[ume], g.h_vals[ume], g.e_vals[ume]);
          splitc::barrier();
          ghost_fetch(1, g.e_vals);
          ghost_phase(1, plan.h_edges[ume], g.e_vals[ume], g.h_vals[ume]);
          splitc::barrier();
          break;
        case Version::Bulk:
          bulk_push(0, g.h_vals[ume]);
          ghost_phase(0, plan.e_edges[ume], g.h_vals[ume], g.e_vals[ume]);
          splitc::barrier();
          bulk_push(1, g.e_vals[ume]);
          ghost_phase(1, plan.h_edges[ume], g.e_vals[ume], g.h_vals[ume]);
          splitc::barrier();
          break;
      }
    }
    double sum = 0;
    for (double v : g.e_vals[ume]) sum += v;
    for (double v : g.h_vals[ume]) sum += v;
    // Every rank computes the same total; a single writer keeps the shared
    // host frame race-free when node fibers run on different threads.
    double total = world.all_reduce_sum(sum);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

// ---------------------------------------------------------------------------
// CC++ versions
// ---------------------------------------------------------------------------

namespace {

/// The per-node processor object of the CC++ port: owns nothing (the graph
/// lives in host-shared memory, partitioned per node), but receives the
/// bulk ghost pushes as remote method invocations.
struct Em3dProc {
  GhostPlan* plan = nullptr;
  NodeId me = kInvalidNode;

  /// Bulk RMI: deposit ghost values of `kind` coming from processor `from`.
  long recv_ghost(int kind, int from, std::vector<double> vals) {
    NeighborNeed* nb = plan->find(kind, static_cast<int>(me), from);
    THAM_CHECK(nb != nullptr && vals.size() == nb->land.size());
    std::copy(vals.begin(), vals.end(), nb->land.begin());
    return static_cast<long>(vals.size());
  }
};

}  // namespace

RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg, Version version) {
  sim::Engine& engine = rt.engine();
  Graph g = build_graph(cfg);
  GhostPlan plan = GhostPlan::build(g);

  auto recv_ghost = rt.def_method("Em3dProc::recv_ghost",
                                  &Em3dProc::recv_ghost, ccxx::RmiMode::Threaded);
  std::vector<ccxx::gptr<Em3dProc>> procs;
  for (int p = 0; p < cfg.procs; ++p) {
    auto gp = rt.place<Em3dProc>(p);
    gp.ptr->plan = &plan;
    gp.ptr->me = p;
    procs.push_back(gp);
  }

  double checksum = 0;
  rt.run_spmd([&] {
    sim::Node& n = sim::this_node();
    NodeId me = n.id();
    auto ume = static_cast<std::size_t>(me);
    SimTime edge_cost = kFlopsPerEdge * engine.cost().flop;

    // Base: every access (local or remote) through a global pointer.
    auto base_phase = [&](const std::vector<Edge>& edges,
                          std::vector<std::vector<double>>& src,
                          std::vector<double>& dst) {
      std::vector<double> acc(dst.size(), 0.0);
      for (const Edge& e : edges) {
        ccxx::gvar<double> gv{e.src_proc,
                              &src[static_cast<std::size_t>(e.src_proc)]
                                  [static_cast<std::size_t>(e.src_index)]};
        double v = rt.read(gv);
        n.advance(edge_cost);
        acc[static_cast<std::size_t>(e.dst)] += e.w * v;
      }
      dst = acc;
    };

    // Ghost: parfor'd global-pointer reads of the deduplicated remote set
    // (threads hide part of the latency, as in the Prefetch bench).
    auto ghost_fetch = [&](int kind, std::vector<std::vector<double>>& src) {
      for (NeighborNeed& nb : plan.neigh[kind][ume]) {
        auto uq = static_cast<std::size_t>(nb.q);
        rt.parfor(0, static_cast<int>(nb.idx.size()), [&](int i) {
          auto ui = static_cast<std::size_t>(i);
          ccxx::gvar<double> gv{
              nb.q, &src[uq][static_cast<std::size_t>(nb.idx[ui])]};
          nb.land[ui] = rt.read(gv);
        });
      }
    };

    // Bulk: aggregated ghost values pushed as one RMI per consumer. The
    // pushes run in a par block so their round trips overlap (the standard
    // CC++ latency-hiding idiom).
    auto bulk_push = [&](int kind, std::vector<double>& myvals) {
      std::vector<std::function<void()>> pushes;
      for (auto [c, j] : plan.consumers[kind][ume]) {  // c reads from me
        const NeighborNeed& nb =
            plan.neigh[kind][static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(j)];
        auto packed = std::make_shared<std::vector<double>>(nb.idx.size());
        for (std::size_t i = 0; i < nb.idx.size(); ++i) {
          (*packed)[i] = myvals[static_cast<std::size_t>(nb.idx[i])];
          n.advance(engine.cost().flop);
        }
        auto uc = static_cast<std::size_t>(c);
        pushes.push_back([&rt, &procs, &recv_ghost, kind, me, uc, packed] {
          rt.rmi(procs[uc], recv_ghost, kind, static_cast<int>(me), *packed);
        });
      }
      rt.par(std::move(pushes));
      rt.barrier();
    };

    auto ghost_phase = [&](int kind, const std::vector<Edge>& edges,
                           std::vector<double>& local_src,
                           std::vector<double>& dst) {
      std::vector<double> acc(dst.size(), 0.0);
      for (const Edge& e : edges) {
        double v;
        if (e.src_proc < 0) {
          // CC++ still reaches local data through the global pointer.
          ccxx::gvar<double> gv{
              me, &local_src[static_cast<std::size_t>(e.src_index)]};
          v = rt.read(gv);
        } else {
          v = plan.neigh[kind][ume][static_cast<std::size_t>(e.src_proc)]
                  .land[static_cast<std::size_t>(e.src_index)];
        }
        n.advance(edge_cost);
        acc[static_cast<std::size_t>(e.dst)] += e.w * v;
      }
      dst = acc;
    };

    for (int it = 0; it < cfg.iters; ++it) {
      switch (version) {
        case Version::Base:
          base_phase(g.e_edges[ume], g.h_vals, g.e_vals[ume]);
          rt.barrier();
          base_phase(g.h_edges[ume], g.e_vals, g.h_vals[ume]);
          rt.barrier();
          break;
        case Version::Ghost:
          ghost_fetch(0, g.h_vals);
          ghost_phase(0, plan.e_edges[ume], g.h_vals[ume], g.e_vals[ume]);
          rt.barrier();
          ghost_fetch(1, g.e_vals);
          ghost_phase(1, plan.h_edges[ume], g.e_vals[ume], g.h_vals[ume]);
          rt.barrier();
          break;
        case Version::Bulk:
          bulk_push(0, g.h_vals[ume]);
          ghost_phase(0, plan.e_edges[ume], g.h_vals[ume], g.e_vals[ume]);
          rt.barrier();
          bulk_push(1, g.e_vals[ume]);
          ghost_phase(1, plan.h_edges[ume], g.e_vals[ume], g.h_vals[ume]);
          rt.barrier();
          break;
      }
    }
    double sum = 0;
    for (double v : g.e_vals[ume]) sum += v;
    for (double v : g.h_vals[ume]) sum += v;
    double total = rt.all_reduce_sum(sum);
    if (me == 0) checksum = total;
  });

  RunResult r = collect(engine);
  r.checksum = checksum;
  return r;
}

RunResult run_splitc(const Config& cfg, Version v, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  return run_splitc(engine, net, am, cfg, v);
}

RunResult run_ccxx(const Config& cfg, Version v, const CostModel& cm) {
  sim::Engine engine(cfg.procs, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  return run_ccxx(rt, cfg, v);
}

}  // namespace tham::apps::em3d
