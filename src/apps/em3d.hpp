#pragma once
// EM3D: electromagnetic wave propagation on a bipartite graph (Culler et
// al. [7]; Madsen [17]) — the paper's first application (Section 5).
//
// Three versions per language, as in the paper:
//   base  — every neighbor value is read through a global pointer each time
//           it is needed (remote *and* local accesses go through the
//           global-pointer path);
//   ghost — remote values are fetched once per iteration into local ghost
//           nodes (Split-C: split-phase gets; CC++: parfor'd gp reads),
//           deduplicated across co-located graph nodes;
//   bulk  — ghost values aggregated per source processor and pushed with
//           one bulk transfer (Split-C: bulk_store + all_store_sync;
//           CC++: one bulk RMI per neighbor processor).
//
// The default workload is the paper's: 800 graph nodes of degree 20 over
// 4 processors, remote-edge fraction swept from 10% to 100%.

#include <cstdint>
#include <vector>

#include "apps/results.hpp"
#include "ccxx/runtime.hpp"
#include "common/rng.hpp"
#include "splitc/world.hpp"

namespace tham::apps::em3d {

struct Config {
  int procs = 4;
  int graph_nodes = 800;  ///< total (half E, half H)
  int degree = 20;
  double remote_fraction = 1.0;  ///< fraction of edges crossing processors
  int iters = 10;
  std::uint64_t seed = 12345;
};

enum class Version { Base, Ghost, Bulk };

inline const char* version_name(Version v) {
  switch (v) {
    case Version::Base: return "em3d-base";
    case Version::Ghost: return "em3d-ghost";
    case Version::Bulk: return "em3d-bulk";
  }
  return "?";
}

/// One directed dependency: local node `dst` (E or H) reads neighbor
/// (`src_proc`, `src_index`) of the other kind with weight `w`.
struct Edge {
  int dst;
  int src_proc;
  int src_index;
  double w;
};

/// The partitioned bipartite graph. Host-built, deterministic in the seed;
/// shared read-only by all versions so results are comparable.
struct Graph {
  Config cfg;
  int per_proc_e = 0;  ///< E nodes per processor (same for H)
  // Per processor: values and in-edges for each kind.
  std::vector<std::vector<double>> e_vals, h_vals;
  std::vector<std::vector<Edge>> e_edges, h_edges;  ///< grouped by dst

  int total_edges() const {
    std::size_t n = 0;
    for (const auto& v : e_edges) n += v.size();
    for (const auto& v : h_edges) n += v.size();
    return static_cast<int>(n);
  }
};

/// Builds the synthetic graph of the paper's Section 5.
Graph build_graph(const Config& cfg);

/// Serial reference: same update order, single address space.
/// Returns the checksum (sum of all node values after cfg.iters steps).
double run_serial(const Config& cfg);

/// Split-C versions. The engine/world must be fresh (one run each).
RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg, Version version);

/// CC++ versions (used for both ThAM and Nexus cost models).
RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg, Version version);

/// Convenience: build a fresh machine with `cm`, run, and collect.
RunResult run_splitc(const Config& cfg, Version v,
                     const CostModel& cm = default_cost_model());
RunResult run_ccxx(const Config& cfg, Version v,
                   const CostModel& cm = default_cost_model());

}  // namespace tham::apps::em3d
