#pragma once
// Blocked LU decomposition of a dense matrix (SPLASH [20]) — the paper's
// third application. The matrix is divided into B x B blocks distributed
// block-cyclically over a 2D processor grid. Every step k has three
// sub-steps: (1) the owner factors the pivot block (k,k); (2) processors
// with blocks in row/column k obtain the pivot block and do triangular
// solves; (3) all interior blocks (i,j), i,j > k are updated with
// A[i][j] -= A[i][k] * A[k][j], fetching the needed row/column blocks first.
//
// sc-lu uses one-way bulk stores to push the pivot block and split-phase
// bulk gets to prefetch all blocks before sub-step 3; cc-lu replaces both
// with RMIs (Section 5). Default input: 512x512 doubles, 16x16 blocks,
// 4 processors.

#include <cstdint>
#include <vector>

#include "apps/results.hpp"
#include "ccxx/runtime.hpp"
#include "splitc/world.hpp"

namespace tham::apps::lu {

struct Config {
  int procs = 4;      ///< must be a perfect square (2D grid)
  int n = 512;        ///< matrix dimension
  int block = 16;     ///< block dimension
  std::uint64_t seed = 777;
};

/// Block-cyclic layout over a sqrt(P) x sqrt(P) grid.
struct Layout {
  int nb = 0;    ///< blocks per dimension
  int pr = 0;    ///< processor grid rows (= cols)
  int owner(int bi, int bj) const { return (bi % pr) * pr + (bj % pr); }
};

/// The distributed matrix: blocks[bi][bj] is a block-major row-major
/// B*B array, conceptually resident on its owner.
struct Matrix {
  Config cfg;
  Layout layout;
  std::vector<std::vector<std::vector<double>>> blocks;
};

Matrix build_matrix(const Config& cfg);

/// Serial reference: the same blocked algorithm in one address space.
/// Returns the checksum (sum of all elements of the factored matrix).
double run_serial(const Config& cfg);

RunResult run_splitc(sim::Engine& engine, net::Network& net, am::AmLayer& am,
                     const Config& cfg);
RunResult run_ccxx(ccxx::Runtime& rt, const Config& cfg);

RunResult run_splitc(const Config& cfg,
                     const CostModel& cm = default_cost_model());
RunResult run_ccxx(const Config& cfg,
                   const CostModel& cm = default_cost_model());

}  // namespace tham::apps::lu
