#pragma once
// Common result record for application runs: elapsed virtual time and the
// machine-wide component breakdown (averaged over nodes), which the Figure 5
// and Figure 6 benches turn into the paper's stacked bars.

#include <vector>

#include "common/types.hpp"
#include "sim/component.hpp"
#include "sim/engine.hpp"

namespace tham::apps {

struct RunResult {
  SimTime elapsed = 0;                ///< wall virtual time of the run
  sim::Breakdown breakdown;           ///< summed over nodes
  std::uint64_t messages = 0;         ///< total network messages
  std::uint64_t thread_creates = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t sync_ops = 0;
  double checksum = 0;                ///< application-defined validation value

  /// Per-node average of a component's time, in seconds.
  double comp_sec(sim::Component c, int nodes) const {
    return to_sec(breakdown[c]) / nodes;
  }
};

/// Collects machine-wide accounting after engine.run().
inline RunResult collect(sim::Engine& e) {
  RunResult r;
  r.elapsed = e.vtime();
  for (NodeId i = 0; i < e.size(); ++i) {
    const sim::Node& n = e.node(i);
    r.breakdown += n.breakdown();
    r.messages += n.counters().msgs_sent;
    r.thread_creates += n.counters().thread_creates;
    r.context_switches += n.counters().context_switches;
    r.sync_ops += n.counters().sync_ops;
  }
  return r;
}

}  // namespace tham::apps
