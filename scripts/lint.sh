#!/usr/bin/env sh
# clang-tidy over the whole tree, driven by a compile_commands.json from a
# dedicated build directory (build-tidy) so lint never disturbs the primary
# build cache.
#
# Usage: scripts/lint.sh [-strict]   (from the repo root)
#
# Without -strict the script exits 0 when clang-tidy is not installed (the
# CI container ships only gcc); with -strict a missing tool is an error.
# Findings always fail the script — the .clang-tidy profile is curated to
# be quiet on intentional idioms, so anything it prints is actionable.
set -eu

strict=0
if [ "${1:-}" = "-strict" ]; then
  strict=1
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$strict" = 1 ]; then
    echo "lint: clang-tidy not found (required by -strict)" >&2
    exit 1
  fi
  echo "lint: clang-tidy not found; skipping (use -strict to require it)"
  exit 0
fi

cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Everything with a compile command: library sources, tests, benches,
# examples. Headers are pulled in via HeaderFilterRegex in .clang-tidy.
files=$(find src tests bench examples -name '*.cpp' 2>/dev/null | sort)

# shellcheck disable=SC2086  # word-splitting the file list is the point
clang-tidy -p build-tidy --quiet $files

echo "lint: OK"
