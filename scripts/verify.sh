#!/usr/bin/env sh
# Full verification, seven legs:
#
#   1. tier-1:  default build + the whole ctest suite (includes the
#      perf-smoke harness and the checker unit tests, which compile in
#      every flavor), then the transport conformance suite again under
#      THAM_MACHINE=modern-cluster and the fault/reliable-transport suite
#      under THAM_MACHINE=lossy-cluster, and the static analyzer over
#      every app x machine profile (clean verdicts + bound validation).
#   2. werror:  -DTHAM_WERROR=ON build, so the warnings-as-errors gate
#      actually builds at least once per change.
#   3. check:   -DTHAM_CHECK=ON build + ctest. Turns on the tham-check
#      runtime hooks: the seeded-defect tests stop skipping, and the
#      CheckerSmoke suite proves the apps run diagnostic-clean and
#      bit-identical under instrumentation.
#   4. asan:    -DTHAM_SANITIZE=ON (ASan+UBSan) build + ctest. The fiber
#      switcher carries the sanitizer annotations; this leg keeps them
#      honest.
#   5. tsan:    -DTHAM_TSAN=ON build + the golden and schedule-fuzz
#      suites at 8 engine threads — the schedules most likely to surface
#      a real race in the epoch barrier or the outbox handoff.
#   6. lint:    scripts/lint.sh (clang-tidy; skips when not installed).
#   7. analyze: already folded into tier-1 (see above); listed here so
#      the CI matrix in .github/workflows/ci.yml maps one-to-one.
#
# Each flavor gets its own build tree so caches never cross-pollute.
#
# Usage: scripts/verify.sh        all legs
#        scripts/verify.sh quick  tier-1 only
set -eu

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure
# Transport conformance + app smoke under the non-default machine profile
# (the full suite stays on sp2: the paper benches assert its calibration).
THAM_MACHINE=modern-cluster ./build/tests/test_transport
# Reliable-transport + fault-injection suite on the profile built for it
# (lossy-cluster: modern-cluster with a misbehaving wire), plus the lossy
# schedule-fuzz leg, so the exactly-once and bit-identity guarantees are
# proved on the profile users will actually run faults on.
THAM_MACHINE=lossy-cluster ./build/tests/test_fault
THAM_MACHINE=lossy-cluster ./build/tests/test_property --gtest_filter='*FaultFuzz*'
# Serving fabric on its target profiles: the full suite (histograms,
# admission control, determinism at 1/2/4/8 threads, lossy legs) on
# modern-cluster, the serving fuzz leg on lossy-cluster, and the bench
# itself as a smoke run (it asserts rejection monotonicity and that no
# RPC is lost at any loss rate).
THAM_MACHINE=modern-cluster ./build/tests/test_serving
THAM_MACHINE=lossy-cluster ./build/tests/test_property --gtest_filter='*ServingFuzz*'
./build/bench/bench_serving --json=build/BENCH_serving.json
# Collectives layer: the full suite (topology, canonical-fold oracle,
# daemon-vs-polling identity, thread determinism, lossy legs) on
# modern-cluster, the mixed-schedule collective fuzz on lossy-cluster, and
# the bench smoke (asserts the tree beats the linear coordinator >= 256).
THAM_MACHINE=modern-cluster ./build/tests/test_coll
THAM_MACHINE=lossy-cluster ./build/tests/test_property --gtest_filter='*CollFuzz*'
./build/bench/bench_collectives --smoke
# The golden-trace and fuzz suites again at the CI's widest shard count:
# 8 workers exercise epoch schedules (smaller shards, more cross-shard
# traffic) that the 4-thread leg never sees.
THAM_SIM_THREADS=8 ./build/tests/test_golden
THAM_SIM_THREADS=8 ./build/tests/test_property --gtest_filter='*Fuzz*'
# Static communication-graph analysis: clean verdicts on every app x
# machine profile, then the CAMP-style lower bound validated against the
# measured virtual times (--validate runs the real apps).
./build/src/analyze/tham_analyze --app all --machine all
./build/src/analyze/tham_analyze --app all --machine all --validate

if [ "${1:-}" = "quick" ]; then
  echo "verify: OK (quick)"
  exit 0
fi

cmake -B build-werror -S . -DTHAM_WERROR=ON
cmake --build build-werror -j

cmake -B build-check -S . -DTHAM_CHECK=ON
cmake --build build-check -j
ctest --test-dir build-check --output-on-failure

cmake -B build-asan -S . -DTHAM_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure

cmake -B build-tsan -S . -DTHAM_TSAN=ON
cmake --build build-tsan -j
THAM_SIM_THREADS=8 ./build-tsan/tests/test_golden
THAM_SIM_THREADS=8 ./build-tsan/tests/test_property --gtest_filter='*ScheduleFuzz*'

scripts/lint.sh

echo "verify: OK"
