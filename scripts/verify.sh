#!/usr/bin/env sh
# Full verification: tier-1 build + tests, the perf-smoke harness pass
# (part of ctest), and a second configure with -DTHAM_WERROR=ON so the
# warnings-as-errors gate actually builds at least once per change.
#
# Usage: scripts/verify.sh   (from the repo root)
set -eu

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure

# Warnings-as-errors build in a separate tree so it never pollutes the
# primary build's cache.
cmake -B build-werror -S . -DTHAM_WERROR=ON
cmake --build build-werror -j

echo "verify: OK"
