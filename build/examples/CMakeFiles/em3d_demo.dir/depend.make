# Empty dependencies file for em3d_demo.
# This may be replaced when dependencies are built.
