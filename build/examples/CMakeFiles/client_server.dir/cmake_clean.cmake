file(REMOVE_RECURSE
  "CMakeFiles/client_server.dir/client_server.cpp.o"
  "CMakeFiles/client_server.dir/client_server.cpp.o.d"
  "client_server"
  "client_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
