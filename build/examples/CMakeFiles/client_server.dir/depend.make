# Empty dependencies file for client_server.
# This may be replaced when dependencies are built.
