file(REMOVE_RECURSE
  "CMakeFiles/heat_splitc.dir/heat_splitc.cpp.o"
  "CMakeFiles/heat_splitc.dir/heat_splitc.cpp.o.d"
  "heat_splitc"
  "heat_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
