# Empty dependencies file for heat_splitc.
# This may be replaced when dependencies are built.
