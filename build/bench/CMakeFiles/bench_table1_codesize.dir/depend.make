# Empty dependencies file for bench_table1_codesize.
# This may be replaced when dependencies are built.
