file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_codesize.dir/bench_table1_codesize.cpp.o"
  "CMakeFiles/bench_table1_codesize.dir/bench_table1_codesize.cpp.o.d"
  "bench_table1_codesize"
  "bench_table1_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
