file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_em3d.dir/bench_fig5_em3d.cpp.o"
  "CMakeFiles/bench_fig5_em3d.dir/bench_fig5_em3d.cpp.o.d"
  "bench_fig5_em3d"
  "bench_fig5_em3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_em3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
