# Empty compiler generated dependencies file for bench_fig5_em3d.
# This may be replaced when dependencies are built.
