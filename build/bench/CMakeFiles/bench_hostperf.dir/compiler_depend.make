# Empty compiler generated dependencies file for bench_hostperf.
# This may be replaced when dependencies are built.
