file(REMOVE_RECURSE
  "CMakeFiles/bench_hostperf.dir/bench_hostperf.cpp.o"
  "CMakeFiles/bench_hostperf.dir/bench_hostperf.cpp.o.d"
  "bench_hostperf"
  "bench_hostperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hostperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
