# Empty compiler generated dependencies file for bench_fig6_water_lu.
# This may be replaced when dependencies are built.
