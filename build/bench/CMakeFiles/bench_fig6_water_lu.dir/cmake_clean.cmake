file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_water_lu.dir/bench_fig6_water_lu.cpp.o"
  "CMakeFiles/bench_fig6_water_lu.dir/bench_fig6_water_lu.cpp.o.d"
  "bench_fig6_water_lu"
  "bench_fig6_water_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_water_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
