file(REMOVE_RECURSE
  "CMakeFiles/bench_nexus_comparison.dir/bench_nexus_comparison.cpp.o"
  "CMakeFiles/bench_nexus_comparison.dir/bench_nexus_comparison.cpp.o.d"
  "bench_nexus_comparison"
  "bench_nexus_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nexus_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
