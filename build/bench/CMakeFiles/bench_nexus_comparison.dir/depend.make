# Empty dependencies file for bench_nexus_comparison.
# This may be replaced when dependencies are built.
