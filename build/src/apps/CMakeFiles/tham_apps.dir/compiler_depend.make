# Empty compiler generated dependencies file for tham_apps.
# This may be replaced when dependencies are built.
