
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/em3d.cpp" "src/apps/CMakeFiles/tham_apps.dir/em3d.cpp.o" "gcc" "src/apps/CMakeFiles/tham_apps.dir/em3d.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/tham_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/tham_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/water.cpp" "src/apps/CMakeFiles/tham_apps.dir/water.cpp.o" "gcc" "src/apps/CMakeFiles/tham_apps.dir/water.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/splitc/CMakeFiles/tham_splitc.dir/DependInfo.cmake"
  "/root/repo/build/src/ccxx/CMakeFiles/tham_ccxx.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tham_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/tham_am.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/tham_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tham_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tham_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
