file(REMOVE_RECURSE
  "CMakeFiles/tham_apps.dir/em3d.cpp.o"
  "CMakeFiles/tham_apps.dir/em3d.cpp.o.d"
  "CMakeFiles/tham_apps.dir/lu.cpp.o"
  "CMakeFiles/tham_apps.dir/lu.cpp.o.d"
  "CMakeFiles/tham_apps.dir/water.cpp.o"
  "CMakeFiles/tham_apps.dir/water.cpp.o.d"
  "libtham_apps.a"
  "libtham_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
