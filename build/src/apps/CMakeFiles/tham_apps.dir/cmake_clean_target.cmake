file(REMOVE_RECURSE
  "libtham_apps.a"
)
