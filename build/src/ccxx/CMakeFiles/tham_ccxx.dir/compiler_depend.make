# Empty compiler generated dependencies file for tham_ccxx.
# This may be replaced when dependencies are built.
