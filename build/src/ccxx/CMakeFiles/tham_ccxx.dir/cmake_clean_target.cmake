file(REMOVE_RECURSE
  "libtham_ccxx.a"
)
