file(REMOVE_RECURSE
  "CMakeFiles/tham_ccxx.dir/runtime.cpp.o"
  "CMakeFiles/tham_ccxx.dir/runtime.cpp.o.d"
  "libtham_ccxx.a"
  "libtham_ccxx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_ccxx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
