file(REMOVE_RECURSE
  "CMakeFiles/tham_sim.dir/engine.cpp.o"
  "CMakeFiles/tham_sim.dir/engine.cpp.o.d"
  "CMakeFiles/tham_sim.dir/fiber.cpp.o"
  "CMakeFiles/tham_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/tham_sim.dir/node.cpp.o"
  "CMakeFiles/tham_sim.dir/node.cpp.o.d"
  "libtham_sim.a"
  "libtham_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
