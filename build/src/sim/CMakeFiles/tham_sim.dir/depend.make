# Empty dependencies file for tham_sim.
# This may be replaced when dependencies are built.
