file(REMOVE_RECURSE
  "libtham_sim.a"
)
