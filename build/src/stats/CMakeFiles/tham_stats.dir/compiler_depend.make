# Empty compiler generated dependencies file for tham_stats.
# This may be replaced when dependencies are built.
