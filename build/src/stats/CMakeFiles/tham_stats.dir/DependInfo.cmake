
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/stats.cpp" "src/stats/CMakeFiles/tham_stats.dir/stats.cpp.o" "gcc" "src/stats/CMakeFiles/tham_stats.dir/stats.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/tham_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/tham_stats.dir/table.cpp.o.d"
  "/root/repo/src/stats/trace.cpp" "src/stats/CMakeFiles/tham_stats.dir/trace.cpp.o" "gcc" "src/stats/CMakeFiles/tham_stats.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tham_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tham_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
