file(REMOVE_RECURSE
  "CMakeFiles/tham_stats.dir/stats.cpp.o"
  "CMakeFiles/tham_stats.dir/stats.cpp.o.d"
  "CMakeFiles/tham_stats.dir/table.cpp.o"
  "CMakeFiles/tham_stats.dir/table.cpp.o.d"
  "CMakeFiles/tham_stats.dir/trace.cpp.o"
  "CMakeFiles/tham_stats.dir/trace.cpp.o.d"
  "libtham_stats.a"
  "libtham_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
