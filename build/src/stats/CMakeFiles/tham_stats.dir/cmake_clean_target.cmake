file(REMOVE_RECURSE
  "libtham_stats.a"
)
