file(REMOVE_RECURSE
  "CMakeFiles/tham_am.dir/am.cpp.o"
  "CMakeFiles/tham_am.dir/am.cpp.o.d"
  "libtham_am.a"
  "libtham_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
