file(REMOVE_RECURSE
  "libtham_am.a"
)
