# Empty dependencies file for tham_am.
# This may be replaced when dependencies are built.
