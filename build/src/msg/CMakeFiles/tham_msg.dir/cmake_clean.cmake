file(REMOVE_RECURSE
  "CMakeFiles/tham_msg.dir/mpl.cpp.o"
  "CMakeFiles/tham_msg.dir/mpl.cpp.o.d"
  "libtham_msg.a"
  "libtham_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
