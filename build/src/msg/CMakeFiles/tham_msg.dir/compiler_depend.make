# Empty compiler generated dependencies file for tham_msg.
# This may be replaced when dependencies are built.
