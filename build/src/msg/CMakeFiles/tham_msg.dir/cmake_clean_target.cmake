file(REMOVE_RECURSE
  "libtham_msg.a"
)
