file(REMOVE_RECURSE
  "libtham_nexus.a"
)
