file(REMOVE_RECURSE
  "CMakeFiles/tham_nexus.dir/nexus.cpp.o"
  "CMakeFiles/tham_nexus.dir/nexus.cpp.o.d"
  "libtham_nexus.a"
  "libtham_nexus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
