# Empty dependencies file for tham_nexus.
# This may be replaced when dependencies are built.
