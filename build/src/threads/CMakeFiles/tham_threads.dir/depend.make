# Empty dependencies file for tham_threads.
# This may be replaced when dependencies are built.
