file(REMOVE_RECURSE
  "libtham_threads.a"
)
