file(REMOVE_RECURSE
  "CMakeFiles/tham_threads.dir/threads.cpp.o"
  "CMakeFiles/tham_threads.dir/threads.cpp.o.d"
  "libtham_threads.a"
  "libtham_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
