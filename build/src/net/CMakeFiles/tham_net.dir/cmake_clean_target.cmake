file(REMOVE_RECURSE
  "libtham_net.a"
)
