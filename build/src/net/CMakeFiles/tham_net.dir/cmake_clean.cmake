file(REMOVE_RECURSE
  "CMakeFiles/tham_net.dir/network.cpp.o"
  "CMakeFiles/tham_net.dir/network.cpp.o.d"
  "libtham_net.a"
  "libtham_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
