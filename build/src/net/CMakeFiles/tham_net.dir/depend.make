# Empty dependencies file for tham_net.
# This may be replaced when dependencies are built.
