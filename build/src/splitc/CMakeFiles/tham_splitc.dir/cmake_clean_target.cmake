file(REMOVE_RECURSE
  "libtham_splitc.a"
)
