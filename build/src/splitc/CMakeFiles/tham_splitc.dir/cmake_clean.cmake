file(REMOVE_RECURSE
  "CMakeFiles/tham_splitc.dir/world.cpp.o"
  "CMakeFiles/tham_splitc.dir/world.cpp.o.d"
  "libtham_splitc.a"
  "libtham_splitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tham_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
