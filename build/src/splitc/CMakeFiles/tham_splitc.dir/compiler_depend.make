# Empty compiler generated dependencies file for tham_splitc.
# This may be replaced when dependencies are built.
