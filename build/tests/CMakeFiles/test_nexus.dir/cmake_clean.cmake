file(REMOVE_RECURSE
  "CMakeFiles/test_nexus.dir/test_nexus.cpp.o"
  "CMakeFiles/test_nexus.dir/test_nexus.cpp.o.d"
  "test_nexus"
  "test_nexus.pdb"
  "test_nexus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nexus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
