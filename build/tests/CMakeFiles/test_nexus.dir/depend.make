# Empty dependencies file for test_nexus.
# This may be replaced when dependencies are built.
