file(REMOVE_RECURSE
  "CMakeFiles/test_am.dir/test_am.cpp.o"
  "CMakeFiles/test_am.dir/test_am.cpp.o.d"
  "test_am"
  "test_am.pdb"
  "test_am[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
