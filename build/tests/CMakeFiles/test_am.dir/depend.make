# Empty dependencies file for test_am.
# This may be replaced when dependencies are built.
