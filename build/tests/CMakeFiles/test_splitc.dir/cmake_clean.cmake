file(REMOVE_RECURSE
  "CMakeFiles/test_splitc.dir/test_splitc.cpp.o"
  "CMakeFiles/test_splitc.dir/test_splitc.cpp.o.d"
  "test_splitc"
  "test_splitc.pdb"
  "test_splitc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
