# Empty compiler generated dependencies file for test_splitc.
# This may be replaced when dependencies are built.
