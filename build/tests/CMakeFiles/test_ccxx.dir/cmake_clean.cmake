file(REMOVE_RECURSE
  "CMakeFiles/test_ccxx.dir/test_ccxx.cpp.o"
  "CMakeFiles/test_ccxx.dir/test_ccxx.cpp.o.d"
  "test_ccxx"
  "test_ccxx.pdb"
  "test_ccxx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ccxx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
