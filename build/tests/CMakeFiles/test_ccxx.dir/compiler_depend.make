# Empty compiler generated dependencies file for test_ccxx.
# This may be replaced when dependencies are built.
