file(REMOVE_RECURSE
  "CMakeFiles/test_net_stats.dir/test_net_stats.cpp.o"
  "CMakeFiles/test_net_stats.dir/test_net_stats.cpp.o.d"
  "test_net_stats"
  "test_net_stats.pdb"
  "test_net_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
