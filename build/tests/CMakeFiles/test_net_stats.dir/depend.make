# Empty dependencies file for test_net_stats.
# This may be replaced when dependencies are built.
