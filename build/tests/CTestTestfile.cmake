# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_threads[1]_include.cmake")
include("/root/repo/build/tests/test_am[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_splitc[1]_include.cmake")
include("/root/repo/build/tests/test_ccxx[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_nexus[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_net_stats[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
