// client_server: the MPMD pattern the paper's introduction motivates — a
// "client-server type of setting" with dynamic task creation and irregular
// communication that SPMD models express poorly.
//
// Node 0 runs a coordinator that creates worker processor objects on the
// other nodes *at runtime* (rt.create), hands out work-stealing-style tasks
// with fire-and-forget RMIs, and collects results through blocking RMIs.
// Each worker also queries a shared dictionary server on node 1 mid-task —
// the kind of nested, any-to-any RMI traffic MPMD allows at any time.

#include <cstdio>
#include <string>
#include <vector>

#include "ccxx/runtime.hpp"

using namespace tham;

/// A dictionary server: processor object on node 1.
struct Dictionary {
  std::vector<long> primes{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};
  long lookup(long i) {
    sim::this_node().advance(usec(2));  // table probe
    return primes[static_cast<std::size_t>(i) % primes.size()];
  }
};

/// A worker created dynamically by the coordinator.
struct Worker {
  long worked = 0;
  long sum = 0;

  /// Simulates a variable-size job that consults the dictionary mid-task.
  long run_job(long job) {
    sim::Node& n = sim::this_node();
    // Irregular compute: job sizes vary 10x.
    n.advance(usec(50.0 + 45.0 * static_cast<double>(job % 10)));
    ++worked;
    sum += job;
    return job * job;
  }

  long stats() { return worked; }
};

int main() {
  sim::Engine engine(4);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);

  auto lookup = rt.def_method("Dictionary::lookup", &Dictionary::lookup);
  auto run_job = rt.def_method("Worker::run_job", &Worker::run_job);
  auto stats = rt.def_method("Worker::stats", &Worker::stats);
  auto make_worker = rt.def_class<Worker>("Worker::Worker");

  auto dict = rt.place<Dictionary>(1);

  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    std::printf("coordinator up on node %d\n", n.id());

    // Dynamically create one worker per remaining node — the MPMD moment:
    // these processor objects did not exist when the program started.
    std::vector<ccxx::gptr<Worker>> workers;
    for (NodeId node = 1; node < rt.nodes(); ++node) {
      workers.push_back(rt.create(node, make_worker));
      std::printf("[t=%7.1f us] created worker on node %d\n",
                  to_usec(n.now()), node);
    }

    // Scatter 30 jobs round-robin; each dispatch is a par block of
    // blocking RMIs so the coordinator overlaps the workers' latencies.
    long total = 0;
    for (int wave = 0; wave < 10; ++wave) {
      std::vector<std::function<void()>> calls;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        long job = wave * 3 + static_cast<long>(w);
        calls.push_back([&, w, job] {
          // The worker consults the dictionary as part of the job —
          // nested any-to-any RMI.
          long p = rt.rmi(dict, lookup, job);
          total += rt.rmi(workers[w], run_job, job + p);
        });
      }
      rt.par(std::move(calls));
    }
    std::printf("[t=%7.1f us] all waves done, result checksum %ld\n",
                to_usec(n.now()), total);

    for (std::size_t w = 0; w < workers.size(); ++w) {
      std::printf("  worker %zu processed %ld jobs\n", w,
                  rt.rmi(workers[w], stats));
    }
  });

  std::printf("\nTotal virtual time %.2f ms; %llu messages;"
              " cold/warm RMIs from node 0: %llu/%llu\n",
              to_usec(engine.vtime()) / 1000.0,
              static_cast<unsigned long long>(net.total_messages()),
              static_cast<unsigned long long>(rt.cc_stats(0).rmi_cold),
              static_cast<unsigned long long>(rt.cc_stats(0).rmi_warm));
  return 0;
}
