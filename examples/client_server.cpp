// client_server: the MPMD pattern the paper's introduction motivates — a
// "client-server type of setting" with dynamic task creation and irregular
// communication that SPMD models express poorly.
//
// This is now a thin demo of src/serve, the full serving fabric: open-loop
// Poisson clients, a batching load balancer, bounded-admission servers,
// and the nested dictionary-lookup hop that used to live in this file
// (serve::Config::backend_fraction routes a deterministic share of
// requests through a blocking backend RMI mid-service). See
// EXPERIMENTS.md "Serving fabric" and bench/bench_serving.cpp for the
// load sweeps and tail-under-loss measurements.

#include <cstdio>

#include "serve/serve.hpp"

using namespace tham;

int main() {
  serve::Config cfg;
  cfg.clients = 6;
  cfg.servers = 3;
  cfg.requests_per_client = 50;
  cfg.open_loop = true;
  cfg.offered_load = 0.8;
  cfg.mean_service = usec(50);
  cfg.queue_cap = 12;
  cfg.batch_max = 4;
  cfg.policy = serve::Policy::LeastOutstanding;
  cfg.backend_fraction = 0.5;  // half the requests take the dictionary hop

  serve::Result r = serve::run(cfg);

  std::printf("serving fabric: %d clients -> balancer -> %d servers "
              "(+dictionary backend), %s, open-loop %.0f%% load\n",
              cfg.clients, cfg.servers, serve::policy_name(cfg.policy),
              cfg.offered_load * 100);
  std::printf("  issued %llu  completed %llu  rejected %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.issued),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.rejected),
              r.rejection_rate() * 100);
  std::printf("  latency us: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
              static_cast<double>(r.latency.p50()) / 1e3,
              static_cast<double>(r.latency.p90()) / 1e3,
              static_cast<double>(r.latency.p99()) / 1e3,
              static_cast<double>(r.latency.max()) / 1e3);
  std::printf("  throughput %.0f req/s  backend lookups %llu  "
              "wire messages %llu\n",
              r.throughput(),
              static_cast<unsigned long long>(r.backend_lookups),
              static_cast<unsigned long long>(r.net_messages));
  return 0;
}
