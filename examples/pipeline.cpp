// pipeline: an MPMD dataflow pipeline using split-phase RMI (futures).
// Node 1 parses records, node 2 enriches them, node 3 aggregates — a
// composition of separately-written program stages, the modularity argument
// of the paper's introduction. The driver keeps several records in flight
// with rmi_async, so stage latencies overlap; compare the measured
// throughput against the sequential lower bound.

#include <cstdio>
#include <deque>
#include <string>

#include "ccxx/runtime.hpp"

using namespace tham;

struct Parser {
  long parsed = 0;
  long parse(std::string raw) {
    sim::this_node().advance(usec(120));  // tokenize etc.
    ++parsed;
    return static_cast<long>(raw.size());
  }
};

struct Enricher {
  long enrich(long tokens) {
    sim::this_node().advance(usec(180));  // lookups
    return tokens * 10 + 1;
  }
};

struct Aggregator {
  long total = 0;
  long add(long enriched) {
    sim::this_node().advance(usec(60));
    total += enriched;
    return total;
  }
};

int main() {
  sim::Engine engine(4);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);

  auto parse = rt.def_method("Parser::parse", &Parser::parse);
  auto enrich = rt.def_method("Enricher::enrich", &Enricher::enrich);
  auto add = rt.def_method("Aggregator::add", &Aggregator::add);

  auto parser = rt.place<Parser>(1);
  auto enricher = rt.place<Enricher>(2);
  auto agg = rt.place<Aggregator>(3);

  constexpr int kRecords = 64;
  constexpr int kWindow = 8;  // records in flight

  rt.run_main([&] {
    sim::Node& n = sim::this_node();

    // Sequential baseline: one record fully through the pipeline at a time.
    SimTime t0 = n.now();
    long check_seq = 0;
    for (int i = 0; i < kRecords; ++i) {
      long t = rt.rmi(parser, parse, std::string("record-") +
                                         std::to_string(i));
      long e = rt.rmi(enricher, enrich, t);
      check_seq = rt.rmi(agg, add, e);
    }
    SimTime seq = n.now() - t0;

    // Pipelined: a window of records in flight, each stage hand-off a
    // future. (One thread per in-flight record, CC++-style.)
    t0 = n.now();
    std::vector<std::function<void()>> lanes;
    for (int lane = 0; lane < kWindow; ++lane) {
      lanes.push_back([&, lane] {
        for (int i = lane; i < kRecords; i += kWindow) {
          auto ft = rt.rmi_async(parser, parse,
                                 std::string("record-") + std::to_string(i));
          auto fe = rt.rmi_async(enricher, enrich, ft.get());
          (void)rt.rmi(agg, add, fe.get());
        }
      });
    }
    rt.par(std::move(lanes));
    SimTime pipe = n.now() - t0;

    std::printf("records: %d, pipeline window: %d\n", kRecords, kWindow);
    std::printf("sequential: %8.2f ms  (%.0f us/record)\n",
                to_usec(seq) / 1000, to_usec(seq) / kRecords);
    std::printf("pipelined:  %8.2f ms  (%.0f us/record, %.1fx speedup)\n",
                to_usec(pipe) / 1000, to_usec(pipe) / kRecords,
                static_cast<double>(seq) / static_cast<double>(pipe));
    std::printf("aggregate checksum: %ld (sequential pass: %ld)\n",
                rt.rmi(agg, add, 0L), check_seq);
  });
  return 0;
}
