// Quickstart: a 4-node simulated SP multicomputer, one processor object,
// and the basic CC++ operations — blocking RMI, global-pointer data access,
// par blocks, and sync variables. Prints what happened and the virtual-time
// cost of each step.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "ccxx/runtime.hpp"

using namespace tham;

/// A processor object: a plain class whose methods become remotely
/// invocable once registered with def_method.
struct Account {
  double balance = 0;
  double deposit(double amount) {
    balance += amount;
    return balance;
  }
  double get() { return balance; }
};

int main() {
  // The simulated multicomputer: 4 nodes with SP2-calibrated costs.
  sim::Engine engine(4);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);

  // Register the remote methods (what the CC++ front-end generated stubs
  // for) and place a processor object on node 2.
  auto deposit = rt.def_method("Account::deposit", &Account::deposit);
  auto get = rt.def_method("Account::get", &Account::get);
  ccxx::gptr<Account> account = rt.place<Account>(2);

  double shared_cell = 0;

  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    std::printf("[t=%7.1f us] main starts on node %d\n", to_usec(n.now()),
                n.id());

    // Blocking RMI: the first call is "cold" (ships the method name and
    // installs a stub-cache entry); later calls are warm.
    double b1 = rt.rmi(account, deposit, 100.0);
    std::printf("[t=%7.1f us] deposit(100) -> %.1f  (cold call)\n",
                to_usec(n.now()), b1);
    double b2 = rt.rmi(account, deposit, 25.0);
    std::printf("[t=%7.1f us] deposit(25)  -> %.1f  (warm call)\n",
                to_usec(n.now()), b2);

    // Global-pointer data access: a CC++ `double *global` dereference.
    ccxx::gvar<double> cell{3, &shared_cell};
    rt.write(cell, 3.14);
    std::printf("[t=%7.1f us] wrote 3.14 through a global pointer to node 3\n",
                to_usec(n.now()));
    std::printf("[t=%7.1f us] read it back: %.2f\n", to_usec(n.now()),
                rt.read(cell));

    // par: concurrent blocks with their own threads; a write-once sync
    // variable passes a value between them.
    ccxx::sync_var<double> ready;
    rt.par({[&] { ready.write(rt.rmi(account, get)); },
            [&] {
              double v = ready.read();  // blocks until the other block writes
              std::printf("[t=%7.1f us] par block observed balance %.1f\n",
                          to_usec(sim::this_node().now()), v);
            }});

    std::printf("[t=%7.1f us] done; stub cache: %llu cold, %llu warm calls\n",
                to_usec(n.now()),
                static_cast<unsigned long long>(rt.cc_stats(0).rmi_cold),
                static_cast<unsigned long long>(rt.cc_stats(0).rmi_warm));
  });

  std::printf("\nTotal virtual time: %.1f us; %llu messages on the wire.\n",
              to_usec(engine.vtime()),
              static_cast<unsigned long long>(net.total_messages()));
  return 0;
}
