// em3d_demo: runs the paper's EM3D application in both languages and all
// three optimization versions on one workload, validates every run against
// the serial reference, and prints the per-edge cost and the MPMD/SPMD gap
// — a miniature of Figure 5 for a single remote-edge fraction.
//
// Usage: em3d_demo [remote_fraction (default 0.4)]

#include <cstdio>
#include <cstdlib>

#include "apps/em3d.hpp"

using namespace tham;
using apps::em3d::Config;
using apps::em3d::Version;

int main(int argc, char** argv) {
  Config cfg;
  cfg.remote_fraction = argc > 1 ? std::atof(argv[1]) : 0.4;
  cfg.iters = 10;

  std::printf("EM3D: %d graph nodes, degree %d, %d processors, %.0f%%"
              " remote edges, %d iterations\n\n",
              cfg.graph_nodes, cfg.degree, cfg.procs,
              cfg.remote_fraction * 100, cfg.iters);

  double expect = apps::em3d::run_serial(cfg);
  std::printf("serial reference checksum: %.12g\n\n", expect);

  apps::em3d::Graph g = apps::em3d::build_graph(cfg);
  double edges = static_cast<double>(g.total_edges()) / cfg.procs * cfg.iters;

  for (Version v : {Version::Base, Version::Ghost, Version::Bulk}) {
    apps::RunResult sc = apps::em3d::run_splitc(cfg, v);
    apps::RunResult cc = apps::em3d::run_ccxx(cfg, v);
    bool ok = std::abs(sc.checksum - expect) < 1e-9 &&
              std::abs(cc.checksum - expect) < 1e-9;
    std::printf("%-11s split-c %8.3f ms (%5.2f us/edge)   cc++ %8.3f ms"
                " (%5.2f us/edge)   gap %.2fx   %s\n",
                apps::em3d::version_name(v), to_usec(sc.elapsed) / 1000,
                to_usec(sc.elapsed) / edges, to_usec(cc.elapsed) / 1000,
                to_usec(cc.elapsed) / edges,
                static_cast<double>(cc.elapsed) /
                    static_cast<double>(sc.elapsed),
                ok ? "results match serial" : "RESULT MISMATCH");
  }

  std::printf("\nThe paper's observation: the same optimizations (ghost"
              " caching, bulk aggregation)\nbenefit both languages, and the"
              " MPMD gap narrows as communication is amortized.\n");
  return 0;
}
