// heat_splitc: a classic SPMD program on the Split-C runtime — 1D heat
// diffusion with halo exchange via one-way stores, showing the Split-C
// side of the comparison: global pointers with visible structure,
// split-phase operations, all_store_sync, barriers, and a reduction.

#include <cstdio>
#include <vector>

#include "splitc/world.hpp"

using namespace tham;

int main() {
  constexpr int kProcs = 4;
  constexpr int kCellsPerProc = 256;
  constexpr int kSteps = 200;
  constexpr double kAlpha = 0.25;

  sim::Engine engine(kProcs);
  net::Network net(engine);
  am::AmLayer am(net);
  splitc::World world(engine, net, am);

  // Each processor owns a strip with one halo cell on each side.
  std::vector<std::vector<double>> strip(
      kProcs, std::vector<double>(kCellsPerProc + 2, 0.0));

  world.run([&] {
    sim::Node& n = sim::this_node();
    NodeId me = splitc::MYPROC();
    auto& u = strip[static_cast<std::size_t>(me)];

    // Initial condition: a hot spike in the middle of processor 0.
    if (me == 0) u[kCellsPerProc / 2] = 1000.0;
    splitc::barrier();

    std::vector<double> next(u.size());
    for (int step = 0; step < kSteps; ++step) {
      // Halo exchange with one-way stores: write my boundary cells into my
      // neighbors' halo slots, then all_store_sync to make them visible.
      if (me > 0) {
        splitc::store(splitc::global_ptr<double>(
                          me - 1, &strip[static_cast<std::size_t>(me - 1)]
                                        [kCellsPerProc + 1]),
                      u[1]);
      }
      if (me < kProcs - 1) {
        splitc::store(
            splitc::global_ptr<double>(
                me + 1, &strip[static_cast<std::size_t>(me + 1)][0]),
            u[kCellsPerProc]);
      }
      splitc::all_store_sync();

      // Local stencil update.
      for (int i = 1; i <= kCellsPerProc; ++i) {
        auto ui = static_cast<std::size_t>(i);
        next[ui] = u[ui] + kAlpha * (u[ui - 1] - 2 * u[ui] + u[ui + 1]);
        n.advance(5 * n.cost().flop);
      }
      std::swap(u, next);
      splitc::barrier();
    }

    // Heat is conserved (up to the open boundary at the global edges).
    double local = 0;
    for (int i = 1; i <= kCellsPerProc; ++i) {
      local += u[static_cast<std::size_t>(i)];
    }
    double total = world.all_reduce_sum(local);
    if (me == 0) {
      std::printf("after %d steps: total heat %.3f (started with 1000.000)\n",
                  kSteps, total);
      std::printf("peak moved outward; strip-0 center now %.3f\n",
                  u[kCellsPerProc / 2]);
    }
  });

  std::printf("virtual time: %.2f ms over %d processors; %llu messages\n",
              to_usec(engine.vtime()) / 1000.0, kProcs,
              static_cast<unsigned long long>(net.total_messages()));
  return 0;
}
