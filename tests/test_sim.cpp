// Tests for the simulation core: fibers, the node scheduler, virtual-time
// accounting, causality, determinism, and deadlock detection.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/node.hpp"

namespace tham::sim {
namespace {

// ---------------------------------------------------------------------------
// Fibers
// ---------------------------------------------------------------------------

TEST(Fiber, RunsToCompletion) {
  StackPool pool(64 * 1024);
  int x = 0;
  Fiber f([&] { x = 42; }, pool);
  EXPECT_EQ(f.state(), Fiber::State::Ready);
  f.resume();
  EXPECT_EQ(x, 42);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, SuspendAndResume) {
  StackPool pool(64 * 1024);
  std::vector<int> trace;
  Fiber f(
      [&] {
        trace.push_back(1);
        Fiber::suspend();
        trace.push_back(3);
        Fiber::suspend();
        trace.push_back(5);
      },
      pool);
  f.resume();
  trace.push_back(2);
  f.resume();
  trace.push_back(4);
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution) {
  StackPool pool(64 * 1024);
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); }, pool);
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, StacksAreRecycled) {
  StackPool pool(64 * 1024);
  for (int i = 0; i < 100; ++i) {
    Fiber f([] {}, pool);
    f.resume();
  }
  // All 100 fibers ran sequentially: one stack suffices.
  EXPECT_EQ(pool.allocated(), 1u);
}

TEST(Fiber, InterleavedFibersGetDistinctStacks) {
  StackPool pool(64 * 1024);
  Fiber a([] { Fiber::suspend(); }, pool);
  Fiber b([] { Fiber::suspend(); }, pool);
  a.resume();
  b.resume();  // a still live -> second stack
  EXPECT_EQ(pool.allocated(), 2u);
  a.resume();
  b.resume();
}

TEST(Fiber, DeepCallStackSurvivesSwitches) {
  StackPool pool(256 * 1024);
  // Recursive function that suspends at each level; checks the stack
  // contents survive round-trips through the main context.
  struct Rec {
    static int go(int depth) {
      int local = depth * 3 + 1;
      if (depth > 0) {
        Fiber::suspend();
        int below = go(depth - 1);
        return local + below;
      }
      return local;
    }
  };
  int result = -1;
  Fiber f([&] { result = Rec::go(50); }, pool);
  while (!f.done()) f.resume();
  int expect = 0;
  for (int d = 0; d <= 50; ++d) expect += d * 3 + 1;
  EXPECT_EQ(result, expect);
}

// ---------------------------------------------------------------------------
// Node scheduling & virtual time
// ---------------------------------------------------------------------------

TEST(Node, AdvanceAccumulatesClockAndBreakdown) {
  Engine e(1);
  Node& n = e.node(0);
  n.spawn(
      [&] {
        n.advance(usec(5));
        {
          ComponentScope s(n, Component::Net);
          n.advance(usec(7));
        }
        n.advance(Component::Runtime, usec(2));
      },
      "main");
  e.run();
  EXPECT_EQ(n.now(), usec(14));
  EXPECT_EQ(n.breakdown()[Component::Cpu], usec(5));
  EXPECT_EQ(n.breakdown()[Component::Net], usec(7));
  EXPECT_EQ(n.breakdown()[Component::Runtime], usec(2));
  EXPECT_EQ(n.breakdown().total(), n.now());
}

TEST(Node, TasksInterleaveOnYield) {
  Engine e(1);
  Node& n = e.node(0);
  std::vector<int> trace;
  n.spawn(
      [&] {
        trace.push_back(1);
        n.yield();
        trace.push_back(3);
      },
      "a");
  n.spawn(
      [&] {
        trace.push_back(2);
        n.yield();
        trace.push_back(4);
      },
      "b");
  e.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Node, ContextSwitchesAreChargedAndCounted) {
  Engine e(1);
  Node& n = e.node(0);
  n.spawn([&] { n.yield(); }, "a");
  n.spawn([&] { n.yield(); }, "b");
  e.run();
  // a -> b, b -> a: at least 2 switches, each costing 6 us.
  EXPECT_GE(n.counters().context_switches, 2u);
  EXPECT_EQ(n.breakdown()[Component::ThreadMgmt],
            static_cast<SimTime>(n.counters().context_switches) *
                e.cost().context_switch);
}

TEST(Node, BlockAndWake) {
  Engine e(1);
  Node& n = e.node(0);
  bool ran = false;
  Task* sleeper = n.spawn(
      [&] {
        n.block();
        ran = true;
      },
      "sleeper");
  n.spawn([&] { n.wake(sleeper); }, "waker");
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Node, JoinWaitsForCompletion) {
  Engine e(1);
  Node& n = e.node(0);
  int stage = 0;
  n.spawn(
      [&] {
        Task* child = n.spawn(
            [&] {
              n.advance(usec(10));
              stage = 1;
            },
            "child");
        n.join(child);
        EXPECT_EQ(stage, 1);
        stage = 2;
      },
      "parent");
  e.run();
  EXPECT_EQ(stage, 2);
}

TEST(Node, JoinAlreadyFinishedTask) {
  Engine e(1);
  Node& n = e.node(0);
  bool joined = false;
  n.spawn(
      [&] {
        Task* child = n.spawn([] {}, "child");
        // Let the child run to completion first.
        n.yield();
        n.yield();
        n.join(child);
        joined = true;
      },
      "parent");
  e.run();
  EXPECT_TRUE(joined);
}

TEST(Node, DetachedTasksAreReaped) {
  Engine e(1);
  Node& n = e.node(0);
  n.spawn(
      [&] {
        for (int i = 0; i < 10; ++i) {
          Task* t = n.spawn([&] { n.advance(usec(1)); }, "worker");
          n.detach(t);
        }
      },
      "spawner");
  e.run();
  // Only the (joinable, finished) spawner husk remains; all detached
  // workers were reaped as they finished.
  EXPECT_EQ(n.live_tasks(), 1u);
}

// ---------------------------------------------------------------------------
// Inter-node messages, causality, idle jumps
// ---------------------------------------------------------------------------

// Builds a raw message (bypassing the AM layer, which has its own tests).
Message raw_msg(Engine& e, NodeId src, SimTime arrival, InlineHandler fn) {
  Message m;
  m.arrival = arrival;
  m.src = src;
  m.seq = e.next_seq();
  m.deliver = std::move(fn);
  return m;
}

TEST(Node, MessageNotVisibleBeforeArrival) {
  Engine e(2);
  Node& a = e.node(0);
  Node& b = e.node(1);
  bool delivered = false;
  a.spawn(
      [&] {
        b.push_message(raw_msg(e, 0, usec(100), [&](Node&) {
          delivered = true;
        }));
      },
      "sender");
  b.spawn(
      [&] {
        EXPECT_FALSE(b.poll_one());  // t=0: nothing due yet
        b.wait_for_inbox();          // idles until t=100
        EXPECT_GE(b.now(), usec(100));
        EXPECT_TRUE(b.poll_one());
        EXPECT_TRUE(delivered);
      },
      "receiver");
  e.run();
}

TEST(Node, IdleJumpIsAttributedToWaiterComponent) {
  Engine e(2);
  Node& a = e.node(0);
  Node& b = e.node(1);
  a.spawn(
      [&] {
        b.push_message(raw_msg(e, 0, usec(50), [](Node&) {}));
      },
      "sender");
  b.spawn(
      [&] {
        ComponentScope s(b, Component::Net);
        b.wait_for_inbox();
        b.poll_one();
      },
      "receiver");
  e.run();
  EXPECT_EQ(b.breakdown()[Component::Net], usec(50));
  EXPECT_EQ(b.breakdown().total(), b.now());
}

TEST(Node, CausalityNodesRunInGlobalTimeOrder) {
  // Node 0 computes in large steps; node 1 sends it a message at t=30.
  // If node 0 ran ahead unchecked it would poll at t=1000 and see
  // "nothing due" — instead the conservative engine interleaves.
  Engine e(2);
  Node& a = e.node(0);
  Node& b = e.node(1);
  bool got = false;
  a.spawn(
      [&] {
        a.advance(usec(1000));
        // By the time we reach virtual t=1000, the t=30 message from node 1
        // must already be in our inbox and due.
        EXPECT_TRUE(a.poll_one());
        EXPECT_TRUE(got);
      },
      "compute");
  b.spawn(
      [&] {
        b.advance(usec(10));
        a.push_message(raw_msg(e, 1, usec(30), [&](Node&) { got = true; }));
      },
      "sender");
  e.run();
}

TEST(Node, FifoDeliveryAmongEqualArrivals) {
  Engine e(2);
  Node& a = e.node(0);
  Node& b = e.node(1);
  std::vector<int> order;
  a.spawn(
      [&] {
        for (int i = 0; i < 5; ++i) {
          b.push_message(
              raw_msg(e, 0, usec(10), [&order, i](Node&) {
                order.push_back(i);
              }));
        }
      },
      "sender");
  b.spawn(
      [&] {
        b.wait_for_inbox();
        while (b.poll_one()) {
        }
      },
      "receiver");
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e(4);
    for (NodeId i = 0; i < 4; ++i) {
      e.node(i).spawn(
          [&e, i] {
            Node& n = e.node(i);
            for (int k = 0; k < 20; ++k) {
              n.advance(usec(3 + i));
              NodeId dst = (i + 1) % 4;
              e.node(dst).push_message(Message{
                  n.now() + usec(20), i, e.next_seq(), 0, [](Node&) {}});
            }
            while (n.poll_one()) {
            }
          },
          "worker");
    }
    e.run();
    SimTime sum = 0;
    for (NodeId i = 0; i < 4; ++i) sum += e.node(i).now();
    return sum;
  };
  SimTime a = run_once();
  SimTime b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Engine, DeadlockIsDetected) {
  Engine e(1);
  e.allow_deadlock(true);
  Node& n = e.node(0);
  n.spawn([&] { n.block(); }, "stuck-forever");
  e.run();
  EXPECT_TRUE(e.deadlocked());
  ASSERT_EQ(e.stuck_tasks().size(), 1u);
  EXPECT_NE(e.stuck_tasks()[0].find("stuck-forever"), std::string::npos);
}

TEST(Engine, ParallelRunShardsAcrossRequestedThreads) {
  Engine e(4);
  e.set_threads(8);  // clamped to the node count
  for (NodeId i = 0; i < 4; ++i) {
    e.node(i).spawn([] { this_node().advance(usec(1)); }, "t");
  }
  e.run();
  // In THAM_CHECK builds an auto-attached checker forces the run onto the
  // sequential executor; otherwise all four shards are used.
  EXPECT_EQ(e.shards_used(), e.checker() != nullptr ? 1 : 4);
}

TEST(Engine, ZeroLookaheadForcesSequentialExecutor) {
  CostModel cm = sp2_cost_model();
  cm.am_wire_latency = 0;
  cm.nx_tcp_latency = 0;
  Engine e(4, cm);
  e.set_threads(4);
  for (NodeId i = 0; i < 4; ++i) {
    e.node(i).spawn([] { this_node().advance(usec(1)); }, "t");
  }
  e.run();
  EXPECT_EQ(e.shards_used(), 1);
}

TEST(Engine, RequireSequentialForcesSequentialExecutor) {
  Engine e(4);
  e.set_threads(4);
  e.require_sequential("test asked for it");
  for (NodeId i = 0; i < 4; ++i) {
    e.node(i).spawn([] { this_node().advance(usec(1)); }, "t");
  }
  e.run();
  EXPECT_EQ(e.shards_used(), 1);
}

TEST(Engine, DeadlockReportNamesEveryTaskAndBlockReason) {
  Engine e(2);
  e.allow_deadlock(true);
  // Tasks parked on a sync object stay Blocked through shutdown (an
  // InboxWait task is released with `false` at shutdown, so it is not a
  // deadlock unless it then blocks again).
  e.node(0).spawn([&] { e.node(0).block(); }, "waiter-a");
  e.node(1).spawn(
      [&] {
        (void)e.node(1).wait_for_inbox();
        e.node(1).block();
      },
      "waiter-b");
  e.run();
  EXPECT_TRUE(e.deadlocked());
  ASSERT_EQ(e.stuck_tasks().size(), 2u);
  EXPECT_NE(e.stuck_tasks()[0].find("node 0: waiter-a (Blocked)"),
            std::string::npos)
      << e.stuck_tasks()[0];
  EXPECT_NE(e.stuck_tasks()[1].find("node 1: waiter-b (Blocked)"),
            std::string::npos)
      << e.stuck_tasks()[1];
}

using EngineDeathTest = ::testing::Test;

TEST(EngineDeathTest, DeadlockAbortListsStuckTasksWithReasons) {
  // Without allow_deadlock(true) the run aborts, and the abort message must
  // be enough to debug from: the count, every task name, and its reason.
  auto deadlock = [] {
    Engine e(2);
    e.node(0).spawn([&] { e.node(0).block(); }, "waiter-a");
    e.node(1).spawn([&] { e.node(1).block(); }, "waiter-b");
    e.run();
  };
  EXPECT_DEATH(deadlock(), "deadlock: 2 task\\(s\\) never finished");
  EXPECT_DEATH(deadlock(), "stuck: node 0: waiter-a \\(Blocked\\)");
  EXPECT_DEATH(deadlock(), "stuck: node 1: waiter-b \\(Blocked\\)");
}

TEST(Engine, DaemonsAreNotDeadlocks) {
  Engine e(1);
  Node& n = e.node(0);
  n.spawn(
      [&] {
        while (!n.shutting_down()) {
          if (!n.wait_for_inbox()) break;
          n.poll_one();
        }
      },
      "poller", /*daemon=*/true);
  n.spawn([&] { n.advance(usec(1)); }, "main");
  e.run();
  EXPECT_FALSE(e.deadlocked());
}

TEST(Engine, VtimeTracksLatestEvent) {
  Engine e(2);
  e.node(0).spawn([&] { e.node(0).advance(usec(123)); }, "a");
  e.run();
  EXPECT_GE(e.vtime(), usec(123));
}

}  // namespace
}  // namespace tham::sim
