// Tests for the MPL-like two-sided messaging layer, including the 88 us
// round-trip calibration that Table 4 cites for IBM MPL.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "msg/mpl.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace tham::msg {
namespace {

using sim::Engine;

struct Machine {
  explicit Machine(int nodes) : engine(nodes), net(engine), mpl(net) {}
  Engine engine;
  net::Network net;
  MplLayer mpl;
};

TEST(Mpl, SendRecvDeliversBytes) {
  Machine m(2);
  const std::string payload = "hello, SP2";
  m.engine.node(0).spawn(
      [&] { m.mpl.send(1, 7, payload.data(), payload.size()); }, "sender");
  std::string got(32, '\0');
  std::size_t len = 0;
  m.engine.node(1).spawn(
      [&] { len = m.mpl.recv(0, 7, got.data(), got.size()); }, "receiver");
  m.engine.run();
  got.resize(len);
  EXPECT_EQ(got, payload);
}

TEST(Mpl, TagMatchingSkipsNonMatching) {
  Machine m(2);
  m.engine.node(0).spawn(
      [&] {
        int a = 1, b = 2;
        m.mpl.send(1, /*tag=*/10, &a, sizeof(a));
        m.mpl.send(1, /*tag=*/20, &b, sizeof(b));
      },
      "sender");
  int got20 = 0, got10 = 0;
  m.engine.node(1).spawn(
      [&] {
        // Receive tag 20 first even though tag 10 arrived first.
        m.mpl.recv(0, 20, &got20, sizeof(got20));
        m.mpl.recv(0, 10, &got10, sizeof(got10));
      },
      "receiver");
  m.engine.run();
  EXPECT_EQ(got20, 2);
  EXPECT_EQ(got10, 1);
}

TEST(Mpl, WildcardsMatchAnything) {
  Machine m(3);
  m.engine.node(0).spawn(
      [&] {
        int v = 100;
        m.mpl.send(2, 5, &v, sizeof(v));
      },
      "s0");
  m.engine.node(1).spawn(
      [&] {
        int v = 200;
        m.mpl.send(2, 6, &v, sizeof(v));
      },
      "s1");
  int sum = 0;
  m.engine.node(2).spawn(
      [&] {
        int v = 0;
        m.mpl.recv(kAnySource, kAnyTag, &v, sizeof(v));
        sum += v;
        m.mpl.recv(kAnySource, kAnyTag, &v, sizeof(v));
        sum += v;
      },
      "receiver");
  m.engine.run();
  EXPECT_EQ(sum, 300);
}

TEST(Mpl, ProbeSeesQueuedMessage) {
  Machine m(2);
  m.engine.node(0).spawn(
      [&] {
        int v = 1;
        m.mpl.send(1, 3, &v, sizeof(v));
      },
      "sender");
  bool probed_before = true, probed_after = false;
  m.engine.node(1).spawn(
      [&] {
        sim::Node& n = sim::this_node();
        probed_before = m.mpl.probe(0, 3);  // nothing polled yet
        n.wait_for_inbox();
        while (n.poll_one()) {
        }
        probed_after = m.mpl.probe(0, 3);
        int v = 0;
        m.mpl.recv(0, 3, &v, sizeof(v));
      },
      "receiver");
  m.engine.run();
  EXPECT_FALSE(probed_before);
  EXPECT_TRUE(probed_after);
}

TEST(Mpl, RoundTripMatchesMplCalibration) {
  // Table 4 footnote: "The round-trip latency of IBM's native MPL under
  // AIX 3.2.5 is 88 us".
  Machine m(2);
  SimTime elapsed = 0;
  constexpr int kIters = 500;
  m.engine.node(0).spawn(
      [&] {
        sim::Node& n = sim::this_node();
        char c = 'x';
        SimTime t0 = n.now();
        for (int i = 0; i < kIters; ++i) {
          m.mpl.send(1, 1, &c, 0);
          m.mpl.recv(1, 2, &c, 1);
        }
        elapsed = (n.now() - t0) / kIters;
      },
      "pinger");
  m.engine.node(1).spawn(
      [&] {
        char c = 'y';
        for (int i = 0; i < kIters; ++i) {
          m.mpl.recv(0, 1, &c, 1);
          m.mpl.send(0, 2, &c, 0);
        }
      },
      "ponger");
  m.engine.run();
  double us = to_usec(elapsed);
  EXPECT_GT(us, 80.0);
  EXPECT_LT(us, 96.0);
}

TEST(Mpl, LargeMessagePaysBandwidth) {
  Machine m(2);
  std::vector<char> big(64 * 1024, 'a');
  SimTime t_small = 0, t_big = 0;
  m.engine.node(0).spawn(
      [&] {
        sim::Node& n = sim::this_node();
        char c;
        SimTime t0 = n.now();
        m.mpl.send(1, 1, big.data(), 1);
        m.mpl.recv(1, 2, &c, 1);
        t_small = n.now() - t0;
        t0 = n.now();
        m.mpl.send(1, 3, big.data(), big.size());
        m.mpl.recv(1, 4, &c, 1);
        t_big = n.now() - t0;
      },
      "sender");
  m.engine.node(1).spawn(
      [&] {
        std::vector<char> buf(64 * 1024);
        char c = 'z';
        m.mpl.recv(0, 1, buf.data(), buf.size());
        m.mpl.send(0, 2, &c, 1);
        m.mpl.recv(0, 3, buf.data(), buf.size());
        m.mpl.send(0, 4, &c, 1);
      },
      "receiver");
  m.engine.run();
  // 64 KiB at ~35 MB/s is ~1.8 ms; far beyond the null round trip.
  EXPECT_GT(t_big, t_small * 10);
}

}  // namespace
}  // namespace tham::msg
