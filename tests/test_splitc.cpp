// Tests for the Split-C runtime: global-pointer access (sync, split-phase,
// one-way stores), bulk transfers, barriers, spread arrays, reductions, and
// the Table 4 calibration of GP read/write (~57 us round trip).

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "splitc/spread.hpp"
#include "splitc/world.hpp"

namespace tham::splitc {
namespace {

using sim::Engine;

struct Machine {
  explicit Machine(int nodes)
      : engine(nodes), net(engine), am(net), world(engine, net, am) {}
  Engine engine;
  net::Network net;
  am::AmLayer am;
  World world;
};

TEST(SplitC, SyncReadAndWrite) {
  Machine m(4);
  std::array<double, 4> cell{};  // cell[i] "lives" on node i
  m.world.run([&] {
    NodeId me = MYPROC();
    global_ptr<double> mine(me, &cell[static_cast<size_t>(me)]);
    write(mine, me * 10.0);
    barrier();
    // Everyone reads everyone's cell.
    double sum = 0;
    for (NodeId j = 0; j < PROCS(); ++j) {
      global_ptr<double> gp(j, &cell[static_cast<size_t>(j)]);
      sum += read(gp);
    }
    EXPECT_DOUBLE_EQ(sum, 0.0 + 10.0 + 20.0 + 30.0);
  });
}

TEST(SplitC, LocalAccessBypassesNetwork) {
  Machine m(2);
  double x = 3.5;
  m.world.run([&] {
    if (MYPROC() == 0) {
      global_ptr<double> gp(0, &x);
      EXPECT_DOUBLE_EQ(read(gp), 3.5);
      write(gp, 4.5);
      EXPECT_DOUBLE_EQ(x, 4.5);
    }
    barrier();
  });
  EXPECT_EQ(m.engine.node(1).counters().msgs_recv, 0u + 1u);  // barrier only
}

TEST(SplitC, SplitPhaseGetCompletesAtSync) {
  Machine m(2);
  std::vector<double> remote(20);
  std::iota(remote.begin(), remote.end(), 0.0);
  m.world.run([&] {
    if (MYPROC() == 0) {
      std::array<double, 20> local{};
      for (int i = 0; i < 20; ++i) {
        get(&local[static_cast<size_t>(i)],
            global_ptr<double>(1, &remote[static_cast<size_t>(i)]));
      }
      sync();
      for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(local[static_cast<size_t>(i)], i);
      }
    }
    barrier();
  });
}

TEST(SplitC, SplitPhasePut) {
  Machine m(2);
  std::vector<int> remote(8, 0);
  m.world.run([&] {
    if (MYPROC() == 0) {
      for (int i = 0; i < 8; ++i) {
        put(global_ptr<int>(1, &remote[static_cast<size_t>(i)]), i * i);
      }
      sync();
    }
    barrier();
    if (MYPROC() == 1) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(remote[static_cast<size_t>(i)], i * i);
      }
    }
  });
}

TEST(SplitC, StoresCompleteAtAllStoreSync) {
  Machine m(4);
  std::vector<double> slot(16, 0.0);  // slot[i*4+j]: from node i on node j
  m.world.run([&] {
    NodeId me = MYPROC();
    for (NodeId j = 0; j < PROCS(); ++j) {
      store(global_ptr<double>(j, &slot[static_cast<size_t>(me * 4 + j)]),
            me + j * 0.5);
    }
    all_store_sync();
    for (NodeId i = 0; i < PROCS(); ++i) {
      EXPECT_DOUBLE_EQ(slot[static_cast<size_t>(i * 4 + me)], i + me * 0.5);
    }
    barrier();
  });
}

TEST(SplitC, BulkReadAndWrite) {
  Machine m(2);
  std::vector<double> remote(20);
  std::iota(remote.begin(), remote.end(), 1.0);
  m.world.run([&] {
    if (MYPROC() == 0) {
      std::array<double, 20> local{};
      bulk_read(local.data(), global_ptr<double>(1, remote.data()),
                20 * sizeof(double));
      for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(local[static_cast<size_t>(i)], i + 1.0);
      }
      for (auto& v : local) v *= 2;
      bulk_write(global_ptr<double>(1, remote.data()), local.data(),
                 20 * sizeof(double));
    }
    barrier();
    if (MYPROC() == 1) {
      for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(remote[static_cast<size_t>(i)], 2.0 * (i + 1));
      }
    }
  });
}

TEST(SplitC, BulkStoreWithAllStoreSync) {
  Machine m(2);
  std::vector<double> ghost(10, 0.0);
  m.world.run([&] {
    if (MYPROC() == 0) {
      std::vector<double> mine(10, 7.0);
      bulk_store(global_ptr<double>(1, ghost.data()), mine.data(),
                 10 * sizeof(double));
    }
    all_store_sync();
    if (MYPROC() == 1) {
      for (double v : ghost) EXPECT_DOUBLE_EQ(v, 7.0);
    }
  });
}

TEST(SplitC, BarrierSeparatesPhases) {
  Machine m(4);
  std::array<int, 4> phase{};
  m.world.run([&] {
    NodeId me = MYPROC();
    phase[static_cast<size_t>(me)] = 1;
    barrier();
    // After the barrier, every node must see every phase flag set.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(phase[static_cast<size_t>(i)], 1);
    barrier();
    phase[static_cast<size_t>(me)] = 2;
    barrier();
    for (int i = 0; i < 4; ++i) EXPECT_EQ(phase[static_cast<size_t>(i)], 2);
  });
}

TEST(SplitC, ManyConsecutiveBarriers) {
  Machine m(4);
  m.world.run([&] {
    for (int i = 0; i < 50; ++i) barrier();
  });
  // All nodes participated in all 50 barriers without deadlock.
  EXPECT_FALSE(m.engine.deadlocked());
}

TEST(SplitC, AtomicRpc) {
  Machine m(2);
  int counter = 0;
  int fn = m.world.register_atomic(
      [&](sim::Node& self, am::Word d, am::Word, am::Word, am::Word) {
        EXPECT_EQ(self.id(), 1);
        counter += static_cast<int>(d);
        return static_cast<am::Word>(counter);
      });
  m.world.run([&] {
    if (MYPROC() == 0) {
      EXPECT_EQ(m.world.atomic(fn, 1, 5), 5u);
      EXPECT_EQ(m.world.atomic(fn, 1, 3), 8u);
    }
    barrier();
  });
  EXPECT_EQ(counter, 8);
}

TEST(SplitC, AllReduceSum) {
  Machine m(4);
  m.world.run([&] {
    double v = (MYPROC() + 1) * 1.5;
    double total = m.world.all_reduce_sum(v);
    EXPECT_DOUBLE_EQ(total, 1.5 + 3.0 + 4.5 + 6.0);
    // Twice in a row (epoch handling).
    double total2 = m.world.all_reduce_sum(1.0);
    EXPECT_DOUBLE_EQ(total2, 4.0);
  });
}

TEST(SplitC, GpReadMatchesTable4Calibration) {
  // Table 4: Split-C "GP 2-Word R/W" = 57 us total, 53 us AM.
  Machine m(2);
  double cell = 1.0;
  double per_op_us = 0;
  m.world.run([&] {
    if (MYPROC() == 0) {
      sim::Node& n = sim::this_node();
      constexpr int kIters = 1000;
      global_ptr<double> gp(1, &cell);
      double x = 0;
      SimTime t0 = n.now();
      for (int i = 0; i < kIters; ++i) x += read(gp);
      per_op_us = to_usec(n.now() - t0) / kIters;
      EXPECT_DOUBLE_EQ(x, 1000.0);
    }
    barrier();
  });
  EXPECT_GT(per_op_us, 52.0);
  EXPECT_LT(per_op_us, 62.0);
}

TEST(SplitC, SpreadArrayLayout) {
  Engine e(4);
  SpreadArray<int> a(e, 100, /*block=*/5);
  // Element i is on node (i/5) % 4.
  EXPECT_EQ(a.owner(0), 0);
  EXPECT_EQ(a.owner(4), 0);
  EXPECT_EQ(a.owner(5), 1);
  EXPECT_EQ(a.owner(19), 3);
  EXPECT_EQ(a.owner(20), 0);
  // Local offsets advance by one block per wrap.
  EXPECT_EQ(a.local_index(0), 0u);
  EXPECT_EQ(a.local_index(20), 5u);
  EXPECT_EQ(a.local_index(24), 9u);
  // Distinct elements map to distinct storage.
  a.at_host(3) = 33;
  a.at_host(23) = 44;
  EXPECT_EQ(a.at_host(3), 33);
  EXPECT_EQ(a.at_host(23), 44);
}

TEST(SplitC, SpreadArrayRemoteAccessThroughGlobalPtr) {
  Machine m(4);
  SpreadArray<double> a(m.engine, 64, /*block=*/4);
  m.world.run([&] {
    NodeId me = MYPROC();
    // Each node writes the elements it owns (locally, through the gp API).
    for (std::size_t i = 0; i < 64; ++i) {
      if (a.owner(i) == me) write(a.gp(i), static_cast<double>(i));
    }
    barrier();
    // Each node reads a strided slice (mostly remote).
    double sum = 0;
    for (std::size_t i = static_cast<std::size_t>(me); i < 64; i += 4) {
      sum += read(a.gp(i));
    }
    double expect = 0;
    for (std::size_t i = static_cast<std::size_t>(me); i < 64; i += 4) {
      expect += static_cast<double>(i);
    }
    EXPECT_DOUBLE_EQ(sum, expect);
    barrier();
  });
}

}  // namespace
}  // namespace tham::splitc
