// Tests for the collectives layer (src/coll): topology functions, the
// rank-ordered combining tree's bit-exact floating-point contract, both
// progress disciplines, and determinism across host-thread counts — with
// and without injected faults over transport::Reliable.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "coll/coll.hpp"
#include "common/machine.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "transport/reliable.hpp"

namespace tham::coll {
namespace {

std::uint64_t bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// A machine with one Collectives instance, plus the SPMD driver every
/// test uses: one main task per node running `body(rank)`.
struct Machine {
  Machine(int nodes, Config cfg, const CostModel& cm = sp2_cost_model())
      : engine(nodes, cm), net(engine), am(net), coll(engine, am, cfg) {}

  void run_spmd(const std::function<void(NodeId)>& body) {
    for (NodeId i = 0; i < engine.size(); ++i) {
      engine.node(i).spawn([&body, i] { body(i); }, "spmd-main");
    }
    if (coll.config().progress == Progress::Daemon) {
      coll.start_progress_daemons();
    }
    engine.run();
  }

  sim::Engine engine;
  net::Network net;
  am::AmLayer am;
  Collectives coll;
};

// --- Topology ---------------------------------------------------------------

TEST(Topology, TreeParentChildInverse) {
  for (int radix : {2, 3, 4, 8}) {
    for (int procs = 1; procs <= 40; ++procs) {
      int children = 0;
      for (int r = 0; r < procs; ++r) {
        children += tree_child_count(r, radix, procs);
        if (r == 0) continue;
        int p = tree_parent(r, radix);
        ASSERT_GE(p, 0);
        ASSERT_LT(p, r);  // parents precede children: no cycles
        int first = tree_first_child(p, radix);
        ASSERT_GE(r, first);
        ASSERT_LT(r, first + tree_child_count(p, radix, procs));
      }
      // Every rank but the root is somebody's child, exactly once.
      ASSERT_EQ(children, procs - 1) << "radix " << radix << " procs "
                                     << procs;
    }
  }
}

TEST(Topology, DisseminationRounds) {
  EXPECT_EQ(dissemination_rounds(1), 0);
  EXPECT_EQ(dissemination_rounds(2), 1);
  EXPECT_EQ(dissemination_rounds(3), 2);
  EXPECT_EQ(dissemination_rounds(4), 2);
  EXPECT_EQ(dissemination_rounds(5), 3);
  EXPECT_EQ(dissemination_rounds(8), 3);
  EXPECT_EQ(dissemination_rounds(9), 4);
  EXPECT_EQ(dissemination_rounds(100000), 17);
}

TEST(Topology, DefaultRadixIsSaneOnEveryProfile) {
  for (const MachineProfile& mp : machine_profiles()) {
    int k = default_radix(mp.make());
    EXPECT_GE(k, 2) << mp.name;
    EXPECT_LE(k, 16) << mp.name;
    // Deterministic: same profile, same answer.
    EXPECT_EQ(k, default_radix(mp.make())) << mp.name;
  }
}

TEST(Topology, CollectiveLinksCoverTreeAndDissemination) {
  int procs = 11, radix = 3;
  auto links = collective_links(procs, radix);
  std::set<std::pair<NodeId, NodeId>> have(links.begin(), links.end());
  for (int i = 0; i < procs; ++i) {
    for (int r = 0; r < dissemination_rounds(procs); ++r) {
      auto j = static_cast<NodeId>((i + (1 << r)) % procs);
      EXPECT_TRUE(have.count({static_cast<NodeId>(i), j}));
      EXPECT_TRUE(have.count({j, static_cast<NodeId>(i)}));
    }
    if (i > 0) {
      auto p = static_cast<NodeId>(tree_parent(i, radix));
      EXPECT_TRUE(have.count({static_cast<NodeId>(i), p}));
      EXPECT_TRUE(have.count({p, static_cast<NodeId>(i)}));
    }
  }
  for (auto [s, d] : links) EXPECT_NE(s, d);  // never a self link
}

// --- Canonical fold ---------------------------------------------------------

TEST(CanonicalFold, FlatFoldWhenRadixCoversAllRanks) {
  std::vector<double> vals{0.1, -7.25, 3.5, 1e-3, 42.0};
  double flat = vals[0];
  for (std::size_t i = 1; i < vals.size(); ++i) flat += vals[i];
  EXPECT_EQ(bits(canonical_fold(vals, 4, Op::SumF64)), bits(flat));
}

TEST(CanonicalFold, TreeShapeChangesTheSumButNotMinMax) {
  // Non-associativity is the whole point of pinning the fold order: the
  // radix-2 tree sum differs from the flat sum in the last bits, while
  // min/max are order-insensitive.
  std::vector<double> vals;
  Rng rng(7);
  for (int i = 0; i < 13; ++i) vals.push_back(rng.next_double(-1e12, 1e12));
  double flat = vals[0];
  double mn = vals[0], mx = vals[0];
  for (std::size_t i = 1; i < vals.size(); ++i) {
    flat += vals[i];
    mn = std::min(mn, vals[i]);
    mx = std::max(mx, vals[i]);
  }
  EXPECT_NE(bits(canonical_fold(vals, 2, Op::SumF64)), bits(flat));
  EXPECT_EQ(bits(canonical_fold(vals, 2, Op::MinF64)), bits(mn));
  EXPECT_EQ(bits(canonical_fold(vals, 2, Op::MaxF64)), bits(mx));
}

// --- Functional correctness (polling, fault-free) ---------------------------

TEST(Coll, BarrierSeparatesPhases) {
  Machine m(7, Config{});
  std::vector<int> phase(7, -1);
  m.run_spmd([&](NodeId me) {
    for (int k = 0; k < 5; ++k) {
      phase[static_cast<std::size_t>(me)] = k;
      m.coll.barrier();
      // After the barrier no rank can still be in phase k-1.
      for (int p = 0; p < 7; ++p) ASSERT_GE(phase[p], k) << "rank " << me;
      m.coll.barrier();
    }
  });
}

class ReduceShape
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // procs, radix

TEST_P(ReduceShape, MatchesCanonicalFoldBitExactly) {
  auto [procs, radix] = GetParam();
  Machine m(procs, Config{Algo::Tree, Progress::Polling, radix});
  std::vector<double> vals;
  Rng rng(static_cast<std::uint64_t>(procs) * 131 + radix);
  for (int i = 0; i < procs; ++i) vals.push_back(rng.next_double(-1e9, 1e9));
  std::vector<double> sum(procs), mn(procs), mx(procs);
  m.run_spmd([&](NodeId me) {
    auto u = static_cast<std::size_t>(me);
    sum[u] = m.coll.all_reduce_sum(vals[u]);
    mn[u] = m.coll.all_reduce_min(vals[u]);
    mx[u] = m.coll.all_reduce_max(vals[u]);
  });
  double want_sum = canonical_fold(vals, m.coll.radix(), Op::SumF64);
  double want_min = canonical_fold(vals, m.coll.radix(), Op::MinF64);
  double want_max = canonical_fold(vals, m.coll.radix(), Op::MaxF64);
  for (int i = 0; i < procs; ++i) {
    EXPECT_EQ(bits(sum[static_cast<std::size_t>(i)]), bits(want_sum));
    EXPECT_EQ(bits(mn[static_cast<std::size_t>(i)]), bits(want_min));
    EXPECT_EQ(bits(mx[static_cast<std::size_t>(i)]), bits(want_max));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReduceShape,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 2}, std::pair{3, 2},
                      std::pair{5, 2}, std::pair{8, 3}, std::pair{13, 4},
                      std::pair{13, 12}, std::pair{9, 0}));

TEST(Coll, LinearAlgoFoldsFlat) {
  int procs = 6;
  Machine m(procs, Config{Algo::Linear, Progress::Polling, 0});
  std::vector<double> vals;
  Rng rng(99);
  for (int i = 0; i < procs; ++i) vals.push_back(rng.next_double(-50, 50));
  std::vector<double> got(procs);
  m.run_spmd([&](NodeId me) {
    auto u = static_cast<std::size_t>(me);
    m.coll.barrier();  // the linear barrier is a count reduce
    got[u] = m.coll.all_reduce_sum(vals[u]);
  });
  double want = canonical_fold(vals, procs - 1, Op::SumF64);
  for (int i = 0; i < procs; ++i) {
    EXPECT_EQ(bits(got[static_cast<std::size_t>(i)]), bits(want));
  }
}

TEST(Coll, CountsReduceIsExact) {
  int procs = 9;
  Machine m(procs, Config{});
  std::uint64_t n = 9;
  m.run_spmd([&](NodeId me) {
    auto u = static_cast<std::uint64_t>(me);
    Pair64 t = m.coll.all_reduce_counts(u + 1, 1000 + u);
    ASSERT_EQ(t.a, n * (n + 1) / 2);
    ASSERT_EQ(t.b, 1000 * n + n * (n - 1) / 2);
  });
}

TEST(Coll, BroadcastFromEveryRoot) {
  int procs = 9;
  Machine m(procs, Config{});
  m.run_spmd([&](NodeId me) {
    for (NodeId root = 0; root < procs; ++root) {
      double v = me == root ? 42.5 + root : -1.0;
      ASSERT_EQ(m.coll.broadcast(root, v), 42.5 + root) << "rank " << me;
    }
  });
}

TEST(Coll, AllToAllPermutes) {
  int procs = 8;
  Machine m(procs, Config{});
  m.run_spmd([&](NodeId me) {
    for (int epoch = 0; epoch < 3; ++epoch) {  // exercise the parity ring
      std::vector<std::uint64_t> out(8), in;
      for (int j = 0; j < 8; ++j) {
        out[static_cast<std::size_t>(j)] = static_cast<std::uint64_t>(
            me * 100 + j + epoch * 10000);
      }
      m.coll.all_to_all(out, in);
      ASSERT_EQ(in.size(), 8u);
      for (int j = 0; j < 8; ++j) {
        ASSERT_EQ(in[static_cast<std::size_t>(j)],
                  static_cast<std::uint64_t>(j * 100 + me + epoch * 10000))
            << "rank " << me << " epoch " << epoch;
      }
    }
  });
}

// --- Determinism across progress, threads, and faults -----------------------

struct RunOut {
  std::string results;      ///< every collective result, bit-exact
  std::string fingerprint;  ///< results + per-node virtual-time transcript
};

/// The shared workload all determinism tests replay: a fixed mix of
/// reduces, barriers, broadcasts, all-to-alls, and count reduces.
RunOut run_mixed(int procs, int threads, Config cfg, bool lossy,
                 std::uint64_t seed) {
  sim::Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);

  std::unique_ptr<transport::Reliable> rel;
  std::unique_ptr<fault::Injector> inj;
  if (lossy) {
    rel = std::make_unique<transport::Reliable>(am.channel());
    fault::Plan plan;
    plan.seed = seed * 0x9E3779B97F4A7C15ull + 17;
    plan.loss = 0.05;
    plan.dup = 0.02;
    plan.delay = 0.05;
    plan.delay_spike = usec(40);
    inj = std::make_unique<fault::Injector>(plan, engine.size());
    net.set_injector(inj.get());
  }

  Collectives coll(engine, am, cfg);

  std::vector<double> vals;
  Rng rng(seed);
  for (int i = 0; i < procs; ++i) vals.push_back(rng.next_double(-1e6, 1e6));

  std::vector<std::ostringstream> log(static_cast<std::size_t>(procs));
  for (NodeId i = 0; i < procs; ++i) {
    engine.node(i).spawn(
        [&, i] {
          auto u = static_cast<std::size_t>(i);
          for (int k = 0; k < 4; ++k) {
            double s = coll.all_reduce_sum(vals[u] + k);
            coll.barrier();
            double mn = coll.all_reduce_min(vals[u] * (k + 1));
            double bc = coll.broadcast(k % procs, vals[u] + 0.5);
            Pair64 t = coll.all_reduce_counts(u + k, 2 * u + 1);
            std::vector<std::uint64_t> out(static_cast<std::size_t>(procs)),
                in;
            for (int j = 0; j < procs; ++j) {
              out[static_cast<std::size_t>(j)] =
                  static_cast<std::uint64_t>(i * 1000 + j * 10 + k);
            }
            coll.all_to_all(out, in);
            std::uint64_t a2a = 0;
            for (std::uint64_t w : in) a2a = a2a * 1099511628211ull + w;
            log[u] << std::hex << bits(s) << ' ' << bits(mn) << ' '
                   << bits(bc) << ' ' << t.a << ' ' << t.b << ' ' << a2a
                   << '\n';
          }
        },
        "mixed-main");
  }
  if (cfg.progress == Progress::Daemon) coll.start_progress_daemons();
  engine.run();

  RunOut o;
  std::ostringstream fp;
  for (NodeId i = 0; i < procs; ++i) {
    o.results += log[static_cast<std::size_t>(i)].str();
    const sim::Node& n = engine.node(i);
    fp << "node " << i << ": now=" << n.now() << " digest=" << std::hex
       << n.counters().dispatch_digest << std::dec << '\n';
  }
  o.fingerprint = o.results + fp.str();
  return o;
}

TEST(Coll, DaemonVsPollingIdenticalResults) {
  for (bool lossy : {false, true}) {
    RunOut poll = run_mixed(6, 1, Config{Algo::Tree, Progress::Polling, 0},
                            lossy, 321);
    RunOut daemon = run_mixed(6, 1, Config{Algo::Tree, Progress::Daemon, 0},
                              lossy, 321);
    // Timing differs (daemons charge their own polls); results must not.
    EXPECT_EQ(poll.results, daemon.results) << "lossy=" << lossy;
  }
}

class ThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ThreadDeterminism, FaultFreeBitIdenticalAcrossHostThreads) {
  int threads = GetParam();
  Config cfg{Algo::Tree, Progress::Polling, 0};
  RunOut seq = run_mixed(7, 1, cfg, false, 1234);
  RunOut par = run_mixed(7, threads, cfg, false, 1234);
  EXPECT_EQ(seq.fingerprint, par.fingerprint) << threads << " threads";
}

TEST_P(ThreadDeterminism, LossyBitIdenticalAcrossHostThreads) {
  int threads = GetParam();
  Config cfg{Algo::Tree, Progress::Polling, 0};
  RunOut seq = run_mixed(7, 1, cfg, true, 1234);
  RunOut par = run_mixed(7, threads, cfg, true, 1234);
  EXPECT_EQ(seq.fingerprint, par.fingerprint) << threads << " threads";
  // Loss reshuffles timing but not values: the collective results match
  // the fault-free run bit for bit.
  RunOut clean = run_mixed(7, 1, cfg, false, 1234);
  EXPECT_EQ(seq.results, clean.results);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadDeterminism,
                         ::testing::Values(2, 4, 8));

TEST(Coll, LossyReduceStillMatchesCanonicalFold) {
  int procs = 7;
  std::uint64_t seed = 88;
  sim::Engine engine(procs);
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());
  // A single 7-rank reduce is only ~a dozen wire messages; at 5% loss a
  // seed (or a machine profile's different schedule) can sail through
  // untouched. Six epochs at 25% loss push P(no drop) below 1e-9, so the
  // "plan actually bit" assertion holds on every profile.
  fault::Plan plan;
  plan.seed = seed;
  plan.loss = 0.25;
  plan.dup = 0.05;
  fault::Injector inj(plan, engine.size());
  net.set_injector(&inj);
  Collectives coll(engine, am, Config{});

  const int epochs = 6;
  std::vector<double> vals;
  Rng rng(seed);
  for (int i = 0; i < procs; ++i) vals.push_back(rng.next_double(-1e9, 1e9));
  std::vector<std::vector<double>> got(
      static_cast<std::size_t>(epochs),
      std::vector<double>(static_cast<std::size_t>(procs)));
  for (NodeId i = 0; i < procs; ++i) {
    engine.node(i).spawn(
        [&, i] {
          for (int e = 0; e < epochs; ++e) {
            got[static_cast<std::size_t>(e)][static_cast<std::size_t>(i)] =
                coll.all_reduce_sum(vals[static_cast<std::size_t>(i)] + e);
          }
        },
        "lossy-main");
  }
  engine.run();
  EXPECT_GT(inj.drops(), 0u);  // the plan actually bit
  for (int e = 0; e < epochs; ++e) {
    std::vector<double> shifted;
    for (double v : vals) shifted.push_back(v + e);
    double want = canonical_fold(shifted, coll.radix(), Op::SumF64);
    for (int i = 0; i < procs; ++i) {
      EXPECT_EQ(bits(got[static_cast<std::size_t>(e)][static_cast<std::size_t>(
                    i)]),
                bits(want))
          << "epoch " << e << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace tham::coll
