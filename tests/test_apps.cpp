// Application-level integration tests: every language version of EM3D,
// Water, and LU must reproduce the serial reference result, and the
// performance relations the paper reports must hold in direction
// (Split-C <= CC++; optimized versions faster than base versions).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"

namespace tham::apps {
namespace {

// Small-but-not-trivial configs keep the test suite fast; the benches run
// the paper-size workloads.

em3d::Config small_em3d(double remote_frac) {
  em3d::Config c;
  c.graph_nodes = 160;
  c.degree = 6;
  c.remote_fraction = remote_frac;
  c.iters = 3;
  return c;
}

water::Config small_water() {
  water::Config c;
  c.molecules = 32;
  c.steps = 2;
  return c;
}

lu::Config small_lu() {
  lu::Config c;
  c.n = 96;
  c.block = 8;
  return c;
}

// ---------------------------------------------------------------------------
// EM3D
// ---------------------------------------------------------------------------

class Em3dVersions
    : public ::testing::TestWithParam<std::tuple<em3d::Version, double>> {};

TEST_P(Em3dVersions, MatchesSerialReference) {
  auto [version, frac] = GetParam();
  em3d::Config cfg = small_em3d(frac);
  double expect = em3d::run_serial(cfg);
  RunResult sc = em3d::run_splitc(cfg, version);
  EXPECT_NEAR(sc.checksum, expect, 1e-9 + std::abs(expect) * 1e-9)
      << "split-c " << em3d::version_name(version);
  RunResult cc = em3d::run_ccxx(cfg, version);
  EXPECT_NEAR(cc.checksum, expect, 1e-9 + std::abs(expect) * 1e-9)
      << "cc++ " << em3d::version_name(version);
  // MPMD communication costs at least as much as SPMD.
  EXPECT_GE(cc.elapsed, sc.elapsed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Em3dVersions,
    ::testing::Combine(::testing::Values(em3d::Version::Base,
                                         em3d::Version::Ghost,
                                         em3d::Version::Bulk),
                       ::testing::Values(0.1, 0.5, 1.0)));

TEST(Em3d, OptimizationsReduceTime) {
  em3d::Config cfg = small_em3d(1.0);
  SimTime base = em3d::run_splitc(cfg, em3d::Version::Base).elapsed;
  SimTime ghost = em3d::run_splitc(cfg, em3d::Version::Ghost).elapsed;
  SimTime bulk = em3d::run_splitc(cfg, em3d::Version::Bulk).elapsed;
  EXPECT_LT(ghost, base);
  EXPECT_LT(bulk, ghost);
  SimTime cbase = em3d::run_ccxx(cfg, em3d::Version::Base).elapsed;
  SimTime cghost = em3d::run_ccxx(cfg, em3d::Version::Ghost).elapsed;
  SimTime cbulk = em3d::run_ccxx(cfg, em3d::Version::Bulk).elapsed;
  EXPECT_LT(cghost, cbase);
  EXPECT_LT(cbulk, cghost);
}

TEST(Em3d, RemoteFractionIncreasesCommunication) {
  em3d::Config lo = small_em3d(0.1);
  em3d::Config hi = small_em3d(1.0);
  RunResult a = em3d::run_splitc(lo, em3d::Version::Base);
  RunResult b = em3d::run_splitc(hi, em3d::Version::Base);
  EXPECT_GT(b.messages, a.messages);
  EXPECT_GT(b.elapsed, a.elapsed);
}

TEST(Em3d, GraphIsDeterministicInSeed) {
  em3d::Config cfg = small_em3d(0.5);
  double a = em3d::run_serial(cfg);
  double b = em3d::run_serial(cfg);
  EXPECT_EQ(a, b);
  cfg.seed += 1;
  double c = em3d::run_serial(cfg);
  EXPECT_NE(a, c);
}

TEST(Em3d, GraphRespectsRemoteFraction) {
  em3d::Config cfg = small_em3d(0.0);
  em3d::Graph g = em3d::build_graph(cfg);
  for (const auto& edges : g.e_edges) {
    for (std::size_t p = 0; p < g.e_edges.size(); ++p) {
      for (const auto& e : g.e_edges[p]) {
        EXPECT_EQ(e.src_proc, static_cast<int>(p));
      }
    }
    (void)edges;
  }
  cfg.remote_fraction = 1.0;
  g = em3d::build_graph(cfg);
  for (std::size_t p = 0; p < g.e_edges.size(); ++p) {
    for (const auto& e : g.e_edges[p]) {
      EXPECT_NE(e.src_proc, static_cast<int>(p));
    }
  }
}

// ---------------------------------------------------------------------------
// Water
// ---------------------------------------------------------------------------

class WaterVersions : public ::testing::TestWithParam<water::Version> {};

TEST_P(WaterVersions, MatchesSerialReference) {
  water::Config cfg = small_water();
  double expect = water::run_serial(cfg);
  RunResult sc = water::run_splitc(cfg, GetParam());
  EXPECT_NEAR(sc.checksum, expect, std::abs(expect) * 1e-9);
  RunResult cc = water::run_ccxx(cfg, GetParam());
  EXPECT_NEAR(cc.checksum, expect, std::abs(expect) * 1e-9);
  EXPECT_GE(cc.elapsed, sc.elapsed);
}

INSTANTIATE_TEST_SUITE_P(Versions, WaterVersions,
                         ::testing::Values(water::Version::Atomic,
                                           water::Version::Prefetch));

TEST(Water, PrefetchReducesRemoteAccessesAndTime) {
  water::Config cfg = small_water();
  RunResult atomic = water::run_splitc(cfg, water::Version::Atomic);
  RunResult prefetch = water::run_splitc(cfg, water::Version::Prefetch);
  EXPECT_LT(prefetch.messages, atomic.messages);
  EXPECT_LT(prefetch.elapsed, atomic.elapsed);
  RunResult catomic = water::run_ccxx(cfg, water::Version::Atomic);
  RunResult cprefetch = water::run_ccxx(cfg, water::Version::Prefetch);
  EXPECT_LT(cprefetch.messages, catomic.messages);
  EXPECT_LT(cprefetch.elapsed, catomic.elapsed);
}

TEST(Water, EnergyIsFiniteAndStable) {
  water::Config cfg = small_water();
  cfg.steps = 4;
  double e = water::run_serial(cfg);
  EXPECT_TRUE(std::isfinite(e));
  // The lattice is near equilibrium; energies stay moderate.
  EXPECT_LT(std::abs(e), 1e4);
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

TEST(Lu, SplitCMatchesSerial) {
  lu::Config cfg = small_lu();
  double expect = lu::run_serial(cfg);
  RunResult sc = lu::run_splitc(cfg);
  EXPECT_NEAR(sc.checksum, expect, std::abs(expect) * 1e-12);
}

TEST(Lu, CcxxMatchesSerial) {
  lu::Config cfg = small_lu();
  double expect = lu::run_serial(cfg);
  RunResult cc = lu::run_ccxx(cfg);
  EXPECT_NEAR(cc.checksum, expect, std::abs(expect) * 1e-12);
}

TEST(Lu, FactorizationIsCorrect) {
  // L*U must reconstruct the original matrix (small case, exact algebra).
  lu::Config cfg;
  cfg.n = 32;
  cfg.block = 8;
  lu::Matrix orig = lu::build_matrix(cfg);
  // Factor serially via the library path.
  double checksum = lu::run_serial(cfg);
  EXPECT_TRUE(std::isfinite(checksum));
  // Reconstruct: assemble full matrices from the serial factorization by
  // re-running the reference blocked algorithm here.
  int n = cfg.n, b = cfg.block, nb = n / b;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (int bi = 0; bi < nb; ++bi) {
    for (int bj = 0; bj < nb; ++bj) {
      for (int r = 0; r < b; ++r) {
        for (int c = 0; c < b; ++c) {
          a[static_cast<std::size_t>((bi * b + r) * n + bj * b + c)] =
              orig.blocks[static_cast<std::size_t>(bi)]
                         [static_cast<std::size_t>(bj)]
                         [static_cast<std::size_t>(r * b + c)];
        }
      }
    }
  }
  // Unblocked LU on the flat copy.
  std::vector<double> f = a;
  for (int c = 0; c < n; ++c) {
    for (int r = c + 1; r < n; ++r) {
      f[static_cast<std::size_t>(r * n + c)] /=
          f[static_cast<std::size_t>(c * n + c)];
      for (int cc = c + 1; cc < n; ++cc) {
        f[static_cast<std::size_t>(r * n + cc)] -=
            f[static_cast<std::size_t>(r * n + c)] *
            f[static_cast<std::size_t>(c * n + cc)];
      }
    }
  }
  // L * U == A?
  double max_err = 0;
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      double sum = 0;
      int m = std::min(r, c);
      for (int k = 0; k <= m; ++k) {
        double l = r == k ? 1.0 : f[static_cast<std::size_t>(r * n + k)];
        double u = f[static_cast<std::size_t>(k * n + c)];
        if (k <= c && k <= r) sum += (k < r ? l : 1.0) * u;
      }
      max_err = std::max(
          max_err, std::abs(sum - a[static_cast<std::size_t>(r * n + c)]));
    }
  }
  EXPECT_LT(max_err, 1e-8);
}

TEST(Lu, CcxxSlowerThanSplitC) {
  lu::Config cfg = small_lu();
  RunResult sc = lu::run_splitc(cfg);
  RunResult cc = lu::run_ccxx(cfg);
  EXPECT_GT(cc.elapsed, sc.elapsed);
  // The paper's gap is 3.6x at full size; at toy size just require a gap.
  EXPECT_LT(cc.elapsed, sc.elapsed * 10);
}

// ---------------------------------------------------------------------------
// Accounting invariants across all apps
// ---------------------------------------------------------------------------

TEST(Apps, BreakdownsSumToElapsedPerNode) {
  em3d::Config cfg = small_em3d(0.5);
  sim::Engine engine(cfg.procs);
  net::Network net(engine);
  am::AmLayer am(net);
  em3d::run_splitc(engine, net, am, cfg, em3d::Version::Ghost);
  for (NodeId i = 0; i < engine.size(); ++i) {
    EXPECT_EQ(engine.node(i).breakdown().total(), engine.node(i).now());
  }
}

}  // namespace
}  // namespace tham::apps
