// Transport-layer conformance: the properties every protocol backend (AM,
// MPL, Nexus) inherits from transport::Channel/Endpoint — per-(src,dst)
// FIFO, per-layer send accounting, the poll/drain reception disciplines,
// and checker-hook emission — plus the machine-profile registry and a
// modern-cluster smoke of the three paper applications.
//
// The point of testing all three backends against the SAME properties is
// the tentpole claim: AM, MPL, and Nexus are three cost structures over one
// substrate, so substrate behavior must be invariant across them.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "check/checker.hpp"
#include "common/machine.hpp"
#include "msg/mpl.hpp"
#include "net/network.hpp"
#include "nexus/nexus.hpp"
#include "sim/engine.hpp"
#include "transport/transport.hpp"

namespace tham {
namespace {

using sim::Engine;
using sim::Node;

// ---------------------------------------------------------------------------
// Machine-profile registry
// ---------------------------------------------------------------------------

TEST(MachineRegistry, KnownProfilesResolve) {
  ASSERT_GE(machine_profiles().size(), 4u);
  for (const char* name : {"sp2", "sp2-interrupt", "nexus", "modern-cluster"}) {
    const MachineProfile* p = find_machine(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_STREQ(make_machine(name).machine, name);
  }
  EXPECT_EQ(find_machine("vax-11/780"), nullptr);
}

TEST(MachineRegistry, UnknownNameIsRejected) {
  // A typo must not silently measure the SP2.
  EXPECT_THROW(make_machine("no-such-machine"), RuntimeError);
  try {
    make_machine("no-such-machine");
  } catch (const RuntimeError& err) {
    EXPECT_NE(std::string(err.what()).find("modern-cluster"),
              std::string::npos)
        << "error should list the known profiles";
  }
}

TEST(MachineRegistry, EnvVarSelectsDefaultProfile) {
  unsetenv("THAM_MACHINE");
  EXPECT_STREQ(default_cost_model().machine, "sp2");
  setenv("THAM_MACHINE", "modern-cluster", 1);
  EXPECT_STREQ(default_cost_model().machine, "modern-cluster");
  unsetenv("THAM_MACHINE");
  EXPECT_STREQ(default_cost_model().machine, "sp2");
}

TEST(MachineRegistry, EngineSetMachine) {
  Engine e(2);
  EXPECT_STREQ(e.machine(), "sp2");
  e.set_machine("modern-cluster");
  EXPECT_STREQ(e.machine(), "modern-cluster");
}

TEST(MachineRegistry, Sp2InterruptIsTheD3Ablation) {
  CostModel sp2 = make_machine("sp2");
  CostModel irq = make_machine("sp2-interrupt");
  EXPECT_EQ(irq.am_recv_overhead, sp2.am_recv_overhead + sp2.software_interrupt);
  EXPECT_FALSE(irq.cc_polling);
  EXPECT_TRUE(sp2.cc_polling);
}

TEST(MachineRegistry, ProfilesKeepParallelLookaheadOpen) {
  // The conservative engine needs lookahead() > 0 on every profile, or the
  // sharded run degenerates.
  for (const MachineProfile& p : machine_profiles()) {
    EXPECT_GT(p.make().lookahead(), 0) << p.name;
  }
}

TEST(MachineRegistry, ModernClusterIsFasterWhereItShouldBe) {
  CostModel sp2 = make_machine("sp2");
  CostModel mc = make_machine("modern-cluster");
  EXPECT_LT(mc.am_send_overhead, sp2.am_send_overhead);
  EXPECT_LT(mc.am_wire_latency, sp2.am_wire_latency);
  EXPECT_LT(mc.am_per_byte, sp2.am_per_byte);  // 10 GB/s vs ~35 MB/s
  EXPECT_LT(mc.flop, sp2.flop);
}

// ---------------------------------------------------------------------------
// Backend conformance: FIFO per (src, dst)
// ---------------------------------------------------------------------------

// Each backend sends 0..N-1 from node 0 to node 1; the receiver must see
// them in send order even though per-message costs differ.
constexpr int kFifoMsgs = 16;

TEST(TransportConformance, AmFifoPerChannel) {
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  std::vector<int> order;
  int done = 0;
  am::HandlerId h = am.register_short(
      "test.seq", [&](Node&, am::Token, const am::Words& w) {
        order.push_back(static_cast<int>(w[0]));
        ++done;
      });
  e.node(0).spawn(
      [&] {
        for (int i = 0; i < kFifoMsgs; ++i) {
          am.request(1, h, static_cast<am::Word>(i));
        }
      },
      "sender");
  e.node(1).spawn([&] { am.poll_until([&] { return done == kFifoMsgs; }); },
                  "receiver");
  e.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFifoMsgs));
  for (int i = 0; i < kFifoMsgs; ++i) EXPECT_EQ(order[i], i);
}

TEST(TransportConformance, MplFifoPerChannel) {
  Engine e(2);
  net::Network net(e);
  msg::MplLayer mpl(net);
  std::vector<int> order;
  e.node(0).spawn(
      [&] {
        for (int i = 0; i < kFifoMsgs; ++i) {
          mpl.send(1, /*tag=*/7, &i, sizeof(i));
        }
      },
      "sender");
  e.node(1).spawn(
      [&] {
        for (int i = 0; i < kFifoMsgs; ++i) {
          int v = -1;
          mpl.recv(0, 7, &v, sizeof(v));
          order.push_back(v);
        }
      },
      "receiver");
  e.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFifoMsgs));
  for (int i = 0; i < kFifoMsgs; ++i) EXPECT_EQ(order[i], i);
}

TEST(TransportConformance, NexusFifoPerChannel) {
  Engine e(2);
  net::Network net(e);
  nexus::NexusLayer nx(net);
  nexus::Startpoint sp = nx.create_endpoint(1);
  std::vector<int> order;
  nx.register_handler(sp, "seq",
                      [&](Node&, NodeId, const std::vector<std::byte>& buf) {
                        int v;
                        std::memcpy(&v, buf.data(), sizeof(v));
                        order.push_back(v);
                      });
  nx.start_service_threads();
  e.node(0).spawn(
      [&] {
        for (int i = 0; i < kFifoMsgs; ++i) nx.rsr(sp, "seq", i);
      },
      "client");
  e.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFifoMsgs));
  for (int i = 0; i < kFifoMsgs; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// Backend conformance: per-layer channel accounting
// ---------------------------------------------------------------------------

TEST(TransportConformance, EachBackendCountsOnItsOwnChannel) {
  // One machine, all three layers over one network: each layer's sends land
  // on its own channel and wire class, and nothing bleeds across layers.
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  msg::MplLayer mpl(net);
  nexus::NexusLayer nx(net);
  nexus::Startpoint sp = nx.create_endpoint(1);
  int am_got = 0;
  am::HandlerId h = am.register_short(
      "test.count", [&](Node&, am::Token, const am::Words&) { ++am_got; });
  nx.register_handler(sp, "noop",
                      [](Node&, NodeId, const std::vector<std::byte>&) {});
  nx.start_service_threads();
  e.node(0).spawn(
      [&] {
        am.request(1, h);
        char payload[32] = {};
        mpl.send(1, 3, payload, sizeof(payload));
        nx.rsr(sp, "noop", 1);
      },
      "sender");
  e.node(1).spawn(
      [&] {
        am.poll_until([&] { return am_got == 1; });
        char buf[32];
        mpl.recv(0, 3, buf, sizeof(buf));
      },
      "receiver");
  e.run();

  EXPECT_EQ(am.channel().sends(net::Wire::AmShort), 1u);
  EXPECT_EQ(am.channel().total_sends(), 1u);
  EXPECT_EQ(mpl.channel().sends(net::Wire::Mpl), 1u);
  EXPECT_EQ(mpl.channel().send_bytes(net::Wire::Mpl), 32u);
  EXPECT_EQ(mpl.channel().total_sends(), 1u);
  EXPECT_EQ(nx.channel().sends(net::Wire::Tcp), 1u);
  EXPECT_EQ(nx.channel().total_sends(), 1u);
  // Cross-layer isolation: no layer saw another layer's wire class.
  EXPECT_EQ(am.channel().sends(net::Wire::Tcp), 0u);
  EXPECT_EQ(mpl.channel().sends(net::Wire::AmShort), 0u);
  EXPECT_EQ(nx.channel().sends(net::Wire::Mpl), 0u);
}

// ---------------------------------------------------------------------------
// Backend conformance: reception disciplines
// ---------------------------------------------------------------------------

TEST(TransportConformance, AmPollOnSendDrainsPendingDeliveries) {
  // The AM discipline: "message reception is based on polling that occurs
  // on a node every time a message is sent." Node 1 never polls explicitly;
  // its own send must deliver the message already waiting in its inbox.
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  bool n1_got = false;
  bool n0_got = false;
  am::HandlerId h1 = am.register_short(
      "test.n1", [&](Node&, am::Token, const am::Words&) { n1_got = true; });
  am::HandlerId h0 = am.register_short(
      "test.n0", [&](Node&, am::Token, const am::Words&) { n0_got = true; });
  e.node(0).spawn(
      [&] {
        am.request(1, h1);
        am.poll_until([&] { return n0_got; });
      },
      "n0");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        // Wait until the request is due, then send WITHOUT polling
        // explicitly: the send itself must deliver it.
        while (!n.inbox_due()) {
          if (!n.wait_for_inbox()) return;
        }
        EXPECT_FALSE(n1_got);
        am.request(0, h0);
        EXPECT_TRUE(n1_got) << "send did not poll the inbox";
      },
      "n1");
  e.run();
  EXPECT_TRUE(n1_got);
  EXPECT_TRUE(n0_got);
}

TEST(TransportConformance, EndpointPollChargesAndCountsPolls) {
  // Endpoint::poll pays the poll cost even on an empty inbox and counts
  // one poll per call in the node counters.
  Engine e(2);
  net::Network net(e);
  SimTime t_before = -1, t_after = -1;
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        std::uint64_t polls_before = n.counters().polls;
        t_before = n.now();
        int delivered = transport::Endpoint::current().poll();
        t_after = n.now();
        EXPECT_EQ(delivered, 0);
        EXPECT_EQ(n.counters().polls, polls_before + 1);
      },
      "poller");
  e.run();
  EXPECT_EQ(t_after - t_before, e.cost().am_poll_empty);
}

TEST(TransportConformance, DrainDueDeliversWithoutPollCharges) {
  // Endpoint::drain_due (the MPL/Nexus discipline) delivers due messages
  // but pays no poll cost and bumps no poll counter.
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  int delivered_count = 0;
  e.node(0).spawn(
      [&] { ch.send(e.node(0), 1, net::Wire::Mpl, 8, [](Node&) {}); },
      "sender");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        transport::Endpoint ep(n);
        while (!ep.has_due()) {
          if (!ep.wait()) return;
        }
        std::uint64_t polls_before = n.counters().polls;
        SimTime t0 = n.now();
        delivered_count = ep.drain_due();
        EXPECT_EQ(n.counters().polls, polls_before);
        EXPECT_EQ(n.now(), t0);  // no charge from the drain itself
      },
      "receiver");
  e.run();
  EXPECT_EQ(delivered_count, 1);
}

// ---------------------------------------------------------------------------
// Backend conformance: checker-hook emission
// ---------------------------------------------------------------------------

TEST(TransportConformance, AllBackendsRunDiagnosticCleanUnderChecker) {
  // Sends routed through transport::Channel must keep emitting the checker
  // send/delivery hooks: a correct three-layer exchange with the checker
  // attached reports zero diagnostics (and would report races/protocol
  // violations if the hooks were dropped, which test_checker covers).
  std::uint64_t before = check::Checker::process_diagnostic_count();
  {
    check::ScopedAutoAttach on(true);
    Engine e(2);
    net::Network net(e);
    am::AmLayer am(net);
    msg::MplLayer mpl(net);
    nexus::NexusLayer nx(net);
    nexus::Startpoint sp = nx.create_endpoint(1);
    int am_got = 0;
    am::HandlerId h = am.register_short(
        "test.chk", [&](Node&, am::Token, const am::Words&) { ++am_got; });
    nx.register_handler(sp, "noop",
                        [](Node&, NodeId, const std::vector<std::byte>&) {});
    nx.start_service_threads();
    e.node(0).spawn(
        [&] {
          am.request(1, h);
          int v = 42;
          mpl.send(1, 1, &v, sizeof(v));
          nx.rsr(sp, "noop", 1);
        },
        "sender");
    e.node(1).spawn(
        [&] {
          am.poll_until([&] { return am_got == 1; });
          int v = 0;
          mpl.recv(0, 1, &v, sizeof(v));
          EXPECT_EQ(v, 42);
        },
        "receiver");
    e.run();
  }
  EXPECT_EQ(check::Checker::process_diagnostic_count(), before);
}

// ---------------------------------------------------------------------------
// Modern-cluster smoke: the three applications on the synthetic profile
// ---------------------------------------------------------------------------

// Small configs (the checker-smoke sizes) on THAM_MACHINE=modern-cluster:
// each app must run diagnostic-clean under tham-check and produce the same
// result sequentially and on a 4-thread sharded engine (digest stability).

apps::em3d::Config small_em3d() {
  apps::em3d::Config c;
  c.graph_nodes = 160;
  c.degree = 6;
  c.iters = 3;
  return c;
}

apps::water::Config small_water() {
  apps::water::Config c;
  c.molecules = 32;
  c.steps = 2;
  return c;
}

apps::lu::Config small_lu() {
  apps::lu::Config c;
  c.n = 96;
  c.block = 8;
  return c;
}

struct SmokeResult {
  apps::RunResult run;
  std::uint64_t digest = 0;  ///< fold of per-node dispatch digests
};

std::uint64_t fold_digests(Engine& e) {
  std::uint64_t d = 0;
  for (NodeId i = 0; i < e.size(); ++i) {
    d = d * 1000003 + e.node(i).counters().dispatch_digest;
  }
  return d;
}

template <class Body>
SmokeResult modern_cluster_run(int threads, int procs, Body body) {
  Engine engine(procs, make_machine("modern-cluster"));
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  SmokeResult r;
  r.run = body(engine, net, am);
  r.digest = fold_digests(engine);
  return r;
}

template <class Body>
void expect_modern_cluster_stable(int procs, Body body) {
  std::uint64_t diags = check::Checker::process_diagnostic_count();
  SmokeResult seq, par;
  {
    check::ScopedAutoAttach on(true);
    seq = modern_cluster_run(1, procs, body);
  }
  EXPECT_EQ(check::Checker::process_diagnostic_count(), diags)
      << "tham-check diagnostics on modern-cluster";
  par = modern_cluster_run(4, procs, body);
  EXPECT_EQ(seq.run.elapsed, par.run.elapsed);
  EXPECT_EQ(seq.run.checksum, par.run.checksum);
  EXPECT_EQ(seq.run.messages, par.run.messages);
  EXPECT_EQ(seq.digest, par.digest) << "dispatch order diverged across "
                                       "sequential and 4-thread engines";
  EXPECT_NE(seq.digest, 0u);
}

TEST(ModernClusterSmoke, Em3dSplitcGhost) {
  apps::em3d::Config cfg = small_em3d();
  expect_modern_cluster_stable(
      cfg.procs, [&](Engine& e, net::Network& net, am::AmLayer& am) {
        return apps::em3d::run_splitc(e, net, am, cfg,
                                      apps::em3d::Version::Ghost);
      });
}

TEST(ModernClusterSmoke, WaterSplitcAtomic) {
  apps::water::Config cfg = small_water();
  expect_modern_cluster_stable(
      cfg.procs, [&](Engine& e, net::Network& net, am::AmLayer& am) {
        return apps::water::run_splitc(e, net, am, cfg,
                                       apps::water::Version::Atomic);
      });
}

TEST(ModernClusterSmoke, LuSplitc) {
  apps::lu::Config cfg = small_lu();
  expect_modern_cluster_stable(
      cfg.procs, [&](Engine& e, net::Network& net, am::AmLayer& am) {
        return apps::lu::run_splitc(e, net, am, cfg);
      });
}

}  // namespace
}  // namespace tham
