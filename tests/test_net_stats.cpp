// Tests for the interconnect (FIFO ordering, wire-class costs, counters,
// observer hook) and the stats utilities (snapshots, per-iteration math,
// table formatting) plus simulation-core edge cases not covered elsewhere.

#include <gtest/gtest.h>

#include <sstream>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"
#include "stats/trace.hpp"
#include "transport/transport.hpp"

namespace tham {
namespace {

using sim::Engine;
using sim::Node;

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

void send_nop(transport::Channel& ch, Node& src, NodeId dst, net::Wire wire,
              std::size_t bytes, std::function<void()> on_deliver = {}) {
  ch.send(src, dst, wire, bytes,
          [fn = std::move(on_deliver)](Node&) {
            if (fn) fn();
          });
}

TEST(Network, WireClassesHaveDistinctCosts) {
  // One-way delivery times per wire class, measured via arrival stamps.
  auto one_way = [](net::Wire wire, std::size_t bytes) {
    Engine e(2);
    net::Network net(e);
    transport::Channel ch(net);
    SimTime arrival = -1;
    transport::Channel* cp = &ch;
    e.node(0).spawn(
        [cp, wire, bytes, &arrival, &e] {
          cp->network().set_observer(
              [&arrival](const net::Network::SendEvent& ev) {
                arrival = ev.arrival;
              });
          send_nop(*cp, e.node(0), 1, wire, bytes);
        },
        "sender");
    e.run();
    return arrival;
  };
  SimTime am_short = one_way(net::Wire::AmShort, 48);
  SimTime am_bulk = one_way(net::Wire::AmBulk, 48);
  SimTime mpl = one_way(net::Wire::Mpl, 48);
  SimTime tcp = one_way(net::Wire::Tcp, 48);
  EXPECT_LT(am_short, am_bulk);  // bulk adds startup
  EXPECT_LT(am_short, mpl);      // MPL adds matching overhead
  EXPECT_LT(mpl, tcp);           // TCP dwarfs everything
}

TEST(Network, PerByteCostScalesArrival) {
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  std::vector<SimTime> arrivals;
  e.node(0).spawn(
      [&] {
        net.set_observer([&](const net::Network::SendEvent& ev) {
          arrivals.push_back(ev.arrival - ev.send_time);
        });
        send_nop(ch, e.node(0), 1, net::Wire::AmBulk, 100);
        send_nop(ch, e.node(0), 1, net::Wire::AmBulk, 10000);
      },
      "sender");
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);  // more bytes, longer wire time
}

TEST(Network, FifoPerChannelEvenWhenCostsWouldReorder) {
  // A big message followed by a small one on the same channel: the small
  // one would "arrive" earlier by cost, but FIFO forbids overtaking.
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  std::vector<int> order;
  e.node(0).spawn(
      [&] {
        ch.send(e.node(0), 1, net::Wire::AmBulk, 100000,
                [&](Node&) { order.push_back(1); });
        ch.send(e.node(0), 1, net::Wire::AmShort, 0,
                [&](Node&) { order.push_back(2); });
      },
      "sender");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        while (order.size() < 2) {
          if (!n.wait_for_inbox()) break;
          while (n.poll_one()) {
          }
        }
      },
      "receiver");
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Network, SelfSendIsRejected) {
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  e.node(0).spawn(
      [&] {
        EXPECT_DEATH(send_nop(ch, e.node(0), 0, net::Wire::AmShort, 0),
                     "send to self");
      },
      "sender");
  e.allow_deadlock(true);
  e.run();
}

TEST(Network, CountersTrackMessagesAndBytes) {
  Engine e(3);
  net::Network net(e);
  transport::Channel ch(net);
  e.node(0).spawn(
      [&] {
        send_nop(ch, e.node(0), 1, net::Wire::AmShort, 48);
        send_nop(ch, e.node(0), 2, net::Wire::AmBulk, 100);
      },
      "sender");
  e.run();
  EXPECT_EQ(net.total_messages(), 2u);
  EXPECT_EQ(net.total_bytes(), 148u);
  EXPECT_EQ(e.node(0).counters().msgs_sent, 2u);
  EXPECT_EQ(e.node(0).counters().bytes_sent, 148u);
  // Per-wire channel accounting matches what was sent on each wire class.
  EXPECT_EQ(ch.sends(net::Wire::AmShort), 1u);
  EXPECT_EQ(ch.sends(net::Wire::AmBulk), 1u);
  EXPECT_EQ(ch.send_bytes(net::Wire::AmShort), 48u);
  EXPECT_EQ(ch.send_bytes(net::Wire::AmBulk), 100u);
  EXPECT_EQ(ch.total_sends(), 2u);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(Stats, SnapshotDeltaAndPerIter) {
  Engine e(1);
  stats::Snapshot before, after;
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        before = stats::snap(n);
        for (int i = 0; i < 10; ++i) {
          n.advance(sim::Component::Cpu, usec(3));
          n.advance(sim::Component::Runtime, usec(1));
        }
        after = stats::snap(n);
      },
      "main");
  e.run();
  auto d = stats::delta(before, after);
  EXPECT_EQ(d.now, usec(40));
  auto p = stats::per_iter(d, 10);
  EXPECT_DOUBLE_EQ(p.total_us, 4.0);
  EXPECT_DOUBLE_EQ(p.cpu(), 3.0);
  EXPECT_DOUBLE_EQ(p.runtime(), 1.0);
  EXPECT_DOUBLE_EQ(p.threads_time(), 0.0);
}

TEST(Stats, TableAlignsAndFormats) {
  stats::Table t({"name", "value"});
  t.add_row({"alpha", stats::Table::num(1.25, 2)});
  t.add_row({"a-much-longer-name", stats::Table::num(10.0, 1)});
  // Render via a temp file through print(FILE*).
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[4096] = {};
  auto got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::string out(buf, got);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("10.0"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Stats, WireNames) {
  EXPECT_STREQ(stats::wire_name(net::Wire::AmShort), "am.short");
  EXPECT_STREQ(stats::wire_name(net::Wire::AmBulk), "am.bulk");
  EXPECT_STREQ(stats::wire_name(net::Wire::Mpl), "mpl");
  EXPECT_STREQ(stats::wire_name(net::Wire::Tcp), "tcp");
}

// ---------------------------------------------------------------------------
// Simulation-core edge cases
// ---------------------------------------------------------------------------

TEST(SimEdge, ComponentScopesNest) {
  Engine e(1);
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        n.advance(usec(1));  // Cpu
        {
          sim::ComponentScope a(n, sim::Component::Net);
          n.advance(usec(2));
          {
            sim::ComponentScope b(n, sim::Component::Runtime);
            n.advance(usec(4));
          }
          n.advance(usec(8));  // back to Net
        }
        n.advance(usec(16));  // back to Cpu
      },
      "main");
  e.run();
  EXPECT_EQ(e.node(0).breakdown()[sim::Component::Cpu], usec(17));
  EXPECT_EQ(e.node(0).breakdown()[sim::Component::Net], usec(10));
  EXPECT_EQ(e.node(0).breakdown()[sim::Component::Runtime], usec(4));
}

TEST(SimEdge, ManyShortLivedTasksReuseFewStacks) {
  Engine e(1);
  Node& n = e.node(0);
  n.spawn(
      [&] {
        for (int i = 0; i < 1000; ++i) {
          sim::Task* t = n.spawn([&] { n.advance(usec(1)); }, "w");
          n.detach(t);
          n.yield();  // let it run and die
        }
      },
      "spawner");
  e.run();
  // Sequential lifecycles: the pool should stay tiny.
  EXPECT_LE(e.stack_pool().allocated(), 4u);
}

TEST(SimEdge, ZeroCostChargesAreLegal) {
  Engine e(1);
  e.node(0).spawn(
      [&] {
        sim::this_node().advance(0);
        sim::this_node().advance(sim::Component::Net, 0);
      },
      "main");
  e.run();
  EXPECT_EQ(e.node(0).now(), 0);
}

TEST(SimEdge, EngineRunTwiceAborts) {
  Engine e(1);
  e.node(0).spawn([] {}, "main");
  e.run();
  EXPECT_DEATH(e.run(), "run\\(\\) called twice");
}

TEST(SimEdge, ThisNodeOutsideSimulationAborts) {
  EXPECT_FALSE(sim::in_simulation());
  EXPECT_DEATH(sim::this_node(), "outside the simulation");
}

TEST(SimEdge, MessageToIdleNodeWithNoTasksSitsQuietly) {
  Engine e(2);
  e.node(0).spawn(
      [&] {
        e.node(1).push_message(sim::Message{
            usec(5), 0, e.next_seq(), 0, [](Node&) { FAIL(); }});
      },
      "sender");
  // Node 1 has no tasks: the message is never polled, never delivered;
  // the run still terminates (no deadlocked *tasks*).
  e.run();
  EXPECT_FALSE(e.deadlocked());
  EXPECT_EQ(e.node(1).counters().msgs_recv, 0u);
}

}  // namespace
}  // namespace tham
