// Tests for the extension features layered on the reproduction: RMI
// futures (split-phase invocation), remote exception propagation,
// semaphores and thread barriers, non-blocking MPL receives, extra Split-C
// collectives, and the message tracer.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ccxx/runtime.hpp"
#include "msg/mpl.hpp"
#include "splitc/world.hpp"
#include "stats/trace.hpp"
#include "threads/threads.hpp"

namespace tham {
namespace {

using sim::Engine;

struct CcMachine {
  explicit CcMachine(int nodes)
      : engine(nodes), net(engine), am(net), rt(engine, net, am) {}
  Engine engine;
  net::Network net;
  am::AmLayer am;
  ccxx::Runtime rt;
};

struct Sleeper {
  long slow_add(long a, long b) {
    sim::this_node().advance(usec(500));
    return a + b;
  }
  long boom(long v) {
    if (v < 0) throw RuntimeError("negative input to boom");
    return v * 2;
  }
  std::vector<double> big_boom() {
    throw RuntimeError("bulk failure");
  }
};

// ---------------------------------------------------------------------------
// Futures (split-phase RMI)
// ---------------------------------------------------------------------------

TEST(Future, OverlapsMultipleCalls) {
  CcMachine m(3);
  auto slow = m.rt.def_method("Sleeper::slow_add", &Sleeper::slow_add);
  auto o1 = m.rt.place<Sleeper>(1);
  auto o2 = m.rt.place<Sleeper>(2);
  m.rt.run_main([&] {
    sim::Node& n = sim::this_node();
    // Warm both caches.
    (void)m.rt.rmi(o1, slow, 0L, 0L);
    (void)m.rt.rmi(o2, slow, 0L, 0L);
    SimTime t0 = n.now();
    auto f1 = m.rt.rmi_async(o1, slow, 1L, 2L);
    auto f2 = m.rt.rmi_async(o2, slow, 10L, 20L);
    EXPECT_EQ(f1.get(), 3);
    EXPECT_EQ(f2.get(), 30);
    SimTime overlapped = n.now() - t0;
    t0 = n.now();
    long s = m.rt.rmi(o1, slow, 1L, 2L) + m.rt.rmi(o2, slow, 10L, 20L);
    EXPECT_EQ(s, 33);
    SimTime sequential = n.now() - t0;
    // Two overlapped 500us methods must beat two sequential ones clearly.
    EXPECT_LT(overlapped, sequential * 3 / 4);
  });
}

TEST(Future, LocalFutureIsEager) {
  CcMachine m(2);
  auto slow = m.rt.def_method("Sleeper::slow_add", &Sleeper::slow_add);
  auto local = m.rt.place<Sleeper>(0);
  m.rt.run_main([&] {
    auto f = m.rt.rmi_async(local, slow, 2L, 3L);
    EXPECT_TRUE(f.ready());
    EXPECT_EQ(f.get(), 5);
  });
}

TEST(Future, GetOnEmptyFutureThrows) {
  CcMachine m(2);
  auto slow = m.rt.def_method("Sleeper::slow_add", &Sleeper::slow_add);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] {
    auto f = m.rt.rmi_async(obj, slow, 1L, 1L);
    EXPECT_EQ(f.get(), 2);
    EXPECT_FALSE(f.valid());
    EXPECT_THROW(f.get(), RuntimeError);
  });
}

// ---------------------------------------------------------------------------
// Remote exceptions
// ---------------------------------------------------------------------------

TEST(RemoteException, PropagatesMessageToCaller) {
  CcMachine m(2);
  auto boom = m.rt.def_method("Sleeper::boom", &Sleeper::boom);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] {
    EXPECT_EQ(m.rt.rmi(obj, boom, 21L), 42);  // normal path still works
    try {
      (void)m.rt.rmi(obj, boom, -1L);
      FAIL() << "expected RemoteError";
    } catch (const ccxx::RemoteError& e) {
      EXPECT_NE(std::string(e.what()).find("negative input"),
                std::string::npos);
    }
    // The runtime survives the exception: further calls succeed.
    EXPECT_EQ(m.rt.rmi(obj, boom, 5L), 10);
  });
}

TEST(RemoteException, ThroughFutures) {
  CcMachine m(2);
  auto boom = m.rt.def_method("Sleeper::boom", &Sleeper::boom);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] {
    auto f = m.rt.rmi_async(obj, boom, -7L);
    EXPECT_THROW(f.get(), ccxx::RemoteError);
  });
}

TEST(RemoteException, FromBulkResultMethod) {
  CcMachine m(2);
  auto bb = m.rt.def_method("Sleeper::big_boom", &Sleeper::big_boom);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] {
    EXPECT_THROW((void)m.rt.rmi(obj, bb), ccxx::RemoteError);
  });
}

TEST(RemoteException, InsideAtomicMethodReleasesNodeLock) {
  struct T {
    long f(long v) {
      if (v == 0) throw RuntimeError("zero");
      return v;
    }
  };
  CcMachine m(2);
  auto f = m.rt.def_method("T::f", &T::f, ccxx::RmiMode::Atomic);
  auto obj = m.rt.place<T>(1);
  m.rt.run_main([&] {
    EXPECT_THROW((void)m.rt.rmi(obj, f, 0L), ccxx::RemoteError);
    // Node lock must have been released by the failing atomic call.
    EXPECT_EQ(m.rt.rmi(obj, f, 9L), 9);
  });
}

// ---------------------------------------------------------------------------
// Semaphore / ThreadBarrier
// ---------------------------------------------------------------------------

template <typename F>
std::unique_ptr<Engine> on_node0(F body) {
  auto e = std::make_unique<Engine>(1);
  e->node(0).spawn(body, "main");
  e->run();
  return e;
}

TEST(Semaphore, BoundsConcurrency) {
  int inside = 0, peak = 0;
  on_node0([&] {
    threads::Semaphore sem(2);
    std::vector<threads::Thread> ts;
    for (int i = 0; i < 6; ++i) {
      ts.push_back(threads::spawn([&] {
        sem.acquire();
        ++inside;
        peak = std::max(peak, inside);
        threads::yield();
        --inside;
        sem.release();
      }));
    }
    for (auto& t : ts) threads::join(t);
  });
  EXPECT_EQ(peak, 2);
}

TEST(Semaphore, TryAcquire) {
  on_node0([] {
    threads::Semaphore sem(1);
    EXPECT_TRUE(sem.try_acquire());
    EXPECT_FALSE(sem.try_acquire());
    sem.release();
    EXPECT_TRUE(sem.try_acquire());
  });
}

TEST(Semaphore, ProducerConsumer) {
  std::vector<int> consumed;
  on_node0([&] {
    threads::Semaphore items(0);
    std::deque<int> q;
    threads::Thread consumer = threads::spawn([&] {
      for (int i = 0; i < 5; ++i) {
        items.acquire();
        consumed.push_back(q.front());
        q.pop_front();
      }
    });
    for (int i = 0; i < 5; ++i) {
      q.push_back(i * 11);
      items.release();
      threads::yield();
    }
    threads::join(consumer);
  });
  EXPECT_EQ(consumed, (std::vector<int>{0, 11, 22, 33, 44}));
}

TEST(ThreadBarrier, SynchronizesGenerations) {
  std::vector<int> log;
  on_node0([&] {
    threads::ThreadBarrier bar(3);
    int serials = 0;
    std::vector<threads::Thread> ts;
    for (int i = 0; i < 3; ++i) {
      ts.push_back(threads::spawn([&, i] {
        log.push_back(i);
        if (bar.arrive_and_wait()) ++serials;
        log.push_back(10 + i);
        if (bar.arrive_and_wait()) ++serials;
      }));
    }
    for (auto& t : ts) threads::join(t);
    EXPECT_EQ(serials, 2);  // one serial thread per generation
  });
  // All first-phase entries precede all second-phase entries.
  for (int i = 0; i < 3; ++i) EXPECT_LT(log[static_cast<size_t>(i)], 10);
  for (int i = 3; i < 6; ++i) EXPECT_GE(log[static_cast<size_t>(i)], 10);
}

// ---------------------------------------------------------------------------
// MPL non-blocking receives
// ---------------------------------------------------------------------------

TEST(MplIrecv, CompletesOutOfOrderPosts) {
  Engine engine(2);
  net::Network net(engine);
  msg::MplLayer mpl(net);
  engine.node(0).spawn(
      [&] {
        int a = 1, b = 2;
        mpl.send(1, 10, &a, sizeof(a));
        mpl.send(1, 20, &b, sizeof(b));
      },
      "sender");
  engine.node(1).spawn(
      [&] {
        int x = 0, y = 0;
        auto rx = mpl.irecv(0, 20, &x, sizeof(x));
        auto ry = mpl.irecv(0, 10, &y, sizeof(y));
        mpl.wait_all({&rx, &ry});
        EXPECT_EQ(x, 2);
        EXPECT_EQ(y, 1);
      },
      "receiver");
  engine.run();
}

TEST(MplIrecv, EagerMatchWhenAlreadyQueued) {
  Engine engine(2);
  net::Network net(engine);
  msg::MplLayer mpl(net);
  engine.node(0).spawn(
      [&] {
        int v = 7;
        mpl.send(1, 1, &v, sizeof(v));
      },
      "sender");
  engine.node(1).spawn(
      [&] {
        sim::Node& n = sim::this_node();
        int v = 0;
        // Drain the delivery first so irecv can match eagerly.
        n.wait_for_inbox();
        while (n.poll_one()) {
        }
        auto r = mpl.irecv(0, 1, &v, sizeof(v));
        EXPECT_EQ(mpl.wait(r), sizeof(int));
        EXPECT_EQ(v, 7);
      },
      "receiver");
  engine.run();
}

// ---------------------------------------------------------------------------
// Split-C extra collectives
// ---------------------------------------------------------------------------

struct ScMachine {
  explicit ScMachine(int nodes)
      : engine(nodes), net(engine), am(net), world(engine, net, am) {}
  Engine engine;
  net::Network net;
  am::AmLayer am;
  splitc::World world;
};

TEST(Collectives, MinMax) {
  ScMachine m(4);
  m.world.run([&] {
    double mine = 3.0 - splitc::MYPROC();  // 3, 2, 1, 0
    EXPECT_DOUBLE_EQ(m.world.all_reduce_max(mine), 3.0);
    EXPECT_DOUBLE_EQ(m.world.all_reduce_min(mine), 0.0);
    // Negative values too.
    EXPECT_DOUBLE_EQ(m.world.all_reduce_min(-1.0 * splitc::MYPROC()), -3.0);
  });
}

TEST(Collectives, Broadcast) {
  ScMachine m(4);
  m.world.run([&] {
    double got = m.world.broadcast(2, splitc::MYPROC() == 2 ? 42.5 : -1.0);
    EXPECT_DOUBLE_EQ(got, 42.5);
    double got2 = m.world.broadcast(0, splitc::MYPROC() == 0 ? 7.0 : -1.0);
    EXPECT_DOUBLE_EQ(got2, 7.0);
  });
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RecordsMessagesWithCausalTimestamps) {
  CcMachine m(2);
  stats::Tracer tracer(m.net);
  auto boom = m.rt.def_method("Sleeper::boom", &Sleeper::boom);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] {
    for (int i = 0; i < 3; ++i) (void)m.rt.rmi(obj, boom, 1L);
  });
  EXPECT_GE(tracer.recorded(), 6u);  // >= request+reply per call
  for (const auto& e : tracer.events()) {
    EXPECT_LT(e.send_time, e.arrival);  // messages take time
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(Tracer, WritesParseableChromeJson) {
  CcMachine m(2);
  stats::Tracer tracer(m.net);
  auto boom = m.rt.def_method("Sleeper::boom", &Sleeper::boom);
  auto obj = m.rt.place<Sleeper>(1);
  m.rt.run_main([&] { (void)m.rt.rmi(obj, boom, 1L); });
  auto path = std::filesystem::temp_directory_path() / "tham_trace.json";
  ASSERT_TRUE(tracer.write_chrome_json(path.string()));
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(all.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(all.find("am.bulk"), std::string::npos);  // the cold call
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tham
