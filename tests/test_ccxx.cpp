// Tests for the CC++ runtime: marshalling, RMI in all four modes, the stub
// cache protocol (cold -> update -> warm), persistent buffers, global
// pointer access, sync variables, par/parfor, collectives, and the Table 4
// calibration of the null RMI.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "ccxx/runtime.hpp"

namespace tham::ccxx {
namespace {

using sim::Engine;

struct Machine {
  explicit Machine(int nodes, const CostModel& cm = sp2_cost_model())
      : engine(nodes, cm), net(engine), am(net), rt(engine, net, am) {}
  Engine engine;
  net::Network net;
  am::AmLayer am;
  Runtime rt;
};

// ---------------------------------------------------------------------------
// Marshalling
// ---------------------------------------------------------------------------

TEST(Serial, TrivialRoundTrip) {
  Serializer s;
  cc_marshal(s, 42);
  cc_marshal(s, 2.75);
  cc_marshal(s, 'x');
  Deserializer d(s.data(), s.size());
  EXPECT_EQ(unmarshal_one<int>(d), 42);
  EXPECT_DOUBLE_EQ(unmarshal_one<double>(d), 2.75);
  EXPECT_EQ(unmarshal_one<char>(d), 'x');
  EXPECT_EQ(d.remaining(), 0u);
}

TEST(Serial, StringAndVectorRoundTrip) {
  Serializer s;
  cc_marshal(s, std::string("remote method invocation"));
  std::vector<double> v(17);
  std::iota(v.begin(), v.end(), 0.5);
  cc_marshal(s, v);
  std::vector<std::string> names{"em3d", "water", "lu"};
  cc_marshal(s, names);
  Deserializer d(s.data(), s.size());
  EXPECT_EQ(unmarshal_one<std::string>(d), "remote method invocation");
  EXPECT_EQ(unmarshal_one<std::vector<double>>(d), v);
  EXPECT_EQ(unmarshal_one<std::vector<std::string>>(d), names);
}

TEST(Serial, TruncatedInputThrows) {
  Serializer s;
  cc_marshal(s, 123456789ll);
  Deserializer d(s.data(), s.size() - 1);
  EXPECT_THROW(unmarshal_one<long long>(d), RuntimeError);
}

// Property: random payload vectors survive a marshal/unmarshal round trip.
class SerialSweep : public ::testing::TestWithParam<int> {};

TEST_P(SerialSweep, RandomVectorsRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  auto n = static_cast<std::size_t>(rng.next_below(200));
  std::vector<double> v(n);
  for (auto& x : v) x = rng.next_double(-1e6, 1e6);
  std::string tag(static_cast<std::size_t>(rng.next_below(64)), '\0');
  for (auto& c : tag) c = static_cast<char>('a' + rng.next_below(26));
  Serializer s;
  cc_marshal(s, v);
  cc_marshal(s, tag);
  Deserializer d(s.data(), s.size());
  EXPECT_EQ(unmarshal_one<std::vector<double>>(d), v);
  EXPECT_EQ(unmarshal_one<std::string>(d), tag);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialSweep, ::testing::Range(0, 16));

// ---------------------------------------------------------------------------
// Processor objects and RMI
// ---------------------------------------------------------------------------

/// A toy processor object used throughout these tests.
struct Counter {
  long value = 0;
  long add(long d) {
    value += d;
    return value;
  }
  long get() { return value; }
  void set(long v) { value = v; }
  std::vector<double> scale(std::vector<double> xs, double k) {
    for (auto& x : xs) x *= k;
    return xs;
  }
};

TEST(Rmi, BlockingRoundTripReturnsResult) {
  Machine m(2);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    EXPECT_EQ(m.rt.rmi(c, add, 5L), 5);
    EXPECT_EQ(m.rt.rmi(c, add, 7L), 12);
  });
  EXPECT_EQ(c.ptr->value, 12);
}

TEST(Rmi, AllModesProduceSameResult) {
  Machine m(2);
  auto a1 = m.rt.def_method("C::a1", &Counter::add, RmiMode::Simple);
  auto a2 = m.rt.def_method("C::a2", &Counter::add, RmiMode::Blocking);
  auto a3 = m.rt.def_method("C::a3", &Counter::add, RmiMode::Threaded);
  auto a4 = m.rt.def_method("C::a4", &Counter::add, RmiMode::Atomic);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    EXPECT_EQ(m.rt.rmi(c, a1, 1L), 1);
    EXPECT_EQ(m.rt.rmi(c, a2, 10L), 11);
    EXPECT_EQ(m.rt.rmi(c, a3, 100L), 111);
    EXPECT_EQ(m.rt.rmi(c, a4, 1000L), 1111);
  });
}

TEST(Rmi, VoidMethodAndLocalInvocation) {
  Machine m(2);
  auto set = m.rt.def_method("Counter::set", &Counter::set);
  auto get = m.rt.def_method("Counter::get", &Counter::get);
  auto remote = m.rt.place<Counter>(1);
  auto local = m.rt.place<Counter>(0);
  m.rt.run_main([&] {
    m.rt.rmi(remote, set, 77L);
    m.rt.rmi(local, set, 88L);
    EXPECT_EQ(m.rt.rmi(remote, get), 77);
    EXPECT_EQ(m.rt.rmi(local, get), 88);
  });
  EXPECT_GE(m.rt.cc_stats(0).rmi_local, 2u);
}

TEST(Rmi, BulkArgumentsAndResults) {
  Machine m(2);
  auto scale = m.rt.def_method("Counter::scale", &Counter::scale);
  auto c = m.rt.place<Counter>(1);
  std::vector<double> in(50);
  std::iota(in.begin(), in.end(), 1.0);
  m.rt.run_main([&] {
    auto out = m.rt.rmi(c, scale, in, 3.0);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], in[i] * 3.0);
    }
  });
}

TEST(Rmi, ColdThenWarmStubCacheProtocol) {
  Machine m(2);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    for (int i = 0; i < 10; ++i) m.rt.rmi(c, add, 1L);
  });
  const auto& st = m.rt.cc_stats(0);
  // Exactly one cold call (the name resolution round trip), then cache hits.
  EXPECT_EQ(st.rmi_cold, 1u);
  EXPECT_EQ(st.rmi_warm, 9u);
}

TEST(Rmi, StubCachingDisabledShipsNameEveryTime) {
  CostModel cm = sp2_cost_model();
  cm.cc_stub_caching = false;
  Machine m(2, cm);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    for (int i = 0; i < 10; ++i) m.rt.rmi(c, add, 1L);
  });
  EXPECT_EQ(m.rt.cc_stats(0).rmi_cold, 10u);
  EXPECT_EQ(m.rt.cc_stats(0).rmi_warm, 0u);
}

TEST(Rmi, WarmCallsAreCheaperThanCold) {
  auto measure = [](bool caching) {
    CostModel cm = sp2_cost_model();
    cm.cc_stub_caching = caching;
    Machine m(2, cm);
    auto add = m.rt.def_method("Counter::add", &Counter::add);
    auto c = m.rt.place<Counter>(1);
    SimTime elapsed = 0;
    m.rt.run_main([&] {
      sim::Node& n = sim::this_node();
      m.rt.rmi(c, add, 1L);  // warm the cache (or not)
      SimTime t0 = n.now();
      for (int i = 0; i < 100; ++i) m.rt.rmi(c, add, 1L);
      elapsed = n.now() - t0;
    });
    return elapsed;
  };
  SimTime warm = measure(true);
  SimTime cold = measure(false);
  EXPECT_LT(warm, cold);
}

TEST(Rmi, FireAndForgetSpawn) {
  Machine m(2);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto get = m.rt.def_method("Counter::get", &Counter::get);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    for (int i = 0; i < 5; ++i) m.rt.rmi_spawn(c, add, 2L);
    // A blocking RMI behind the spawns observes their effects (same
    // channel, FIFO delivery; threaded methods run in spawn order here).
    long v = m.rt.rmi(c, get);
    EXPECT_EQ(v, 10);
  });
}

TEST(Rmi, RemoteObjectCreation) {
  Machine m(3);
  auto mk = m.rt.def_class<Counter>("Counter::Counter");
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  m.rt.run_main([&] {
    auto c2 = m.rt.create(2, mk);
    EXPECT_EQ(c2.node, 2);
    EXPECT_EQ(m.rt.rmi(c2, add, 3L), 3);
    EXPECT_EQ(m.rt.rmi(c2, add, 4L), 7);
  });
}

TEST(Rmi, NullRmiMatchesTable4Calibration) {
  // Table 4: CC++ "0-Word Simple" = 67 us total (only ~1.25x the raw AM
  // round trip and well under MPL's 88 us).
  Machine m(2);
  auto get = m.rt.def_method("Counter::get", &Counter::get, RmiMode::Simple);
  auto c = m.rt.place<Counter>(1);
  double per_op = 0;
  m.rt.run_main([&] {
    sim::Node& n = sim::this_node();
    m.rt.rmi(c, get);  // warm the cache
    constexpr int kIters = 1000;
    SimTime t0 = n.now();
    for (int i = 0; i < kIters; ++i) m.rt.rmi(c, get);
    per_op = to_usec(n.now() - t0) / kIters;
  });
  EXPECT_GT(per_op, 58.0);
  EXPECT_LT(per_op, 76.0);
}

TEST(Rmi, AtomicMethodsSerializeOnNodeLock) {
  // Two atomic methods invoked concurrently (par) on the same node must not
  // interleave (the node lock), even though each yields mid-method.
  struct Critical {
    int inside = 0;
    int max_inside = 0;
    int enter_leave() {
      ++inside;
      max_inside = std::max(max_inside, inside);
      threads::yield();  // tempt the scheduler
      --inside;
      return max_inside;
    }
  };
  Machine m(2);
  auto mth =
      m.rt.def_method("Critical::enter_leave", &Critical::enter_leave,
                      RmiMode::Atomic);
  auto obj = m.rt.place<Critical>(1);
  m.rt.run_main([&] {
    m.rt.par({[&] { m.rt.rmi(obj, mth); }, [&] { m.rt.rmi(obj, mth); },
              [&] { m.rt.rmi(obj, mth); }});
  });
  EXPECT_EQ(obj.ptr->max_inside, 1);
}

// ---------------------------------------------------------------------------
// Global-pointer data access
// ---------------------------------------------------------------------------

TEST(Gvar, RemoteReadWrite) {
  Machine m(2);
  double cell = 1.5;
  m.rt.run_main([&] {
    gvar<double> gv{1, &cell};
    EXPECT_DOUBLE_EQ(m.rt.read(gv), 1.5);
    m.rt.write(gv, 2.5);
    EXPECT_DOUBLE_EQ(m.rt.read(gv), 2.5);
  });
  EXPECT_DOUBLE_EQ(cell, 2.5);
  EXPECT_EQ(m.rt.cc_stats(0).gp_remote, 3u);
}

TEST(Gvar, LocalAccessPaysGlobalPointerOverhead) {
  Machine m(2);
  double cell = 9.0;
  SimTime local_cost = 0;
  m.rt.run_main([&] {
    sim::Node& n = sim::this_node();
    gvar<double> gv{0, &cell};
    SimTime t0 = n.now();
    for (int i = 0; i < 100; ++i) (void)m.rt.read(gv);
    local_cost = (n.now() - t0) / 100;
  });
  // Local but non-free: the em3d-base effect (cc_local_gp per access).
  EXPECT_EQ(local_cost, m.engine.cost().cc_local_gp);
  EXPECT_EQ(m.rt.cc_stats(0).gp_local, 100u);
}

TEST(Gvar, GpReadMatchesTable4Calibration) {
  // Table 4: CC++ "GP 2-Word R/W" = 92 us.
  Machine m(2);
  double cell = 1.0;
  double per_op = 0;
  m.rt.run_main([&] {
    sim::Node& n = sim::this_node();
    gvar<double> gv{1, &cell};
    (void)m.rt.read(gv);
    constexpr int kIters = 1000;
    SimTime t0 = n.now();
    for (int i = 0; i < kIters; ++i) (void)m.rt.read(gv);
    per_op = to_usec(n.now() - t0) / kIters;
  });
  EXPECT_GT(per_op, 82.0);
  EXPECT_LT(per_op, 102.0);
}

// ---------------------------------------------------------------------------
// Concurrency constructs
// ---------------------------------------------------------------------------

TEST(Par, BlocksRunConcurrentlyAndJoin) {
  Machine m(1);
  std::vector<int> order;
  m.rt.run_main([&] {
    m.rt.par({[&] {
                order.push_back(1);
                threads::yield();
                order.push_back(3);
              },
              [&] {
                order.push_back(2);
                threads::yield();
                order.push_back(4);
              }});
    order.push_back(5);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Par, ParforCoversRange) {
  Machine m(1);
  std::vector<int> hits(20, 0);
  m.rt.run_main([&] {
    m.rt.parfor(0, 20, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Par, ParforHidesRmiLatency) {
  // 20 sequential remote reads cost ~20 round trips; 20 parfor'd reads
  // overlap (the Prefetch micro-benchmark effect).
  Machine m(2);
  double cell = 2.0;
  SimTime seq = 0, par = 0;
  m.rt.run_main([&] {
    sim::Node& n = sim::this_node();
    gvar<double> gv{1, &cell};
    (void)m.rt.read(gv);  // warm
    SimTime t0 = n.now();
    for (int i = 0; i < 20; ++i) (void)m.rt.read(gv);
    seq = n.now() - t0;
    t0 = n.now();
    m.rt.parfor(0, 20, [&](int) { (void)m.rt.read(gv); });
    par = n.now() - t0;
  });
  EXPECT_LT(par, seq * 2 / 3);
}

TEST(SyncVar, ReaderBlocksUntilWritten) {
  Machine m(1);
  std::vector<int> order;
  m.rt.run_main([&] {
    sync_var<int> sv;
    m.rt.par({[&] {
                order.push_back(1);
                int v = sv.read();  // blocks
                EXPECT_EQ(v, 42);
                order.push_back(3);
              },
              [&] {
                order.push_back(2);
                sv.write(42);
              }});
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SyncVar, DoubleWriteThrows) {
  Machine m(1);
  m.rt.run_main([&] {
    sync_var<int> sv;
    sv.write(1);
    EXPECT_THROW(sv.write(2), RuntimeError);
    EXPECT_EQ(sv.read(), 1);
  });
}

// ---------------------------------------------------------------------------
// Collectives (SPMD-style usage)
// ---------------------------------------------------------------------------

TEST(Collectives, BarrierSeparatesPhases) {
  Machine m(4);
  std::array<int, 4> phase{};
  m.rt.run_spmd([&] {
    NodeId me = sim::this_node().id();
    phase[static_cast<std::size_t>(me)] = 1;
    m.rt.barrier();
    for (int v : phase) EXPECT_EQ(v, 1);
    m.rt.barrier();
    phase[static_cast<std::size_t>(me)] = 2;
    m.rt.barrier();
    for (int v : phase) EXPECT_EQ(v, 2);
  });
}

TEST(Collectives, RepeatedBarriers) {
  Machine m(4);
  m.rt.run_spmd([&] {
    for (int i = 0; i < 25; ++i) m.rt.barrier();
  });
  EXPECT_FALSE(m.engine.deadlocked());
}

TEST(Collectives, AllReduceSum) {
  Machine m(4);
  m.rt.run_spmd([&] {
    double me = 1.0 + sim::this_node().id();
    EXPECT_DOUBLE_EQ(m.rt.all_reduce_sum(me), 10.0);
    EXPECT_DOUBLE_EQ(m.rt.all_reduce_sum(1.0), 4.0);
  });
}

// ---------------------------------------------------------------------------
// Accounting invariants
// ---------------------------------------------------------------------------

TEST(Accounting, BreakdownSumsToClockUnderRmiLoad) {
  Machine m(3);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto c1 = m.rt.place<Counter>(1);
  auto c2 = m.rt.place<Counter>(2);
  m.rt.run_main([&] {
    for (int i = 0; i < 20; ++i) {
      m.rt.rmi(c1, add, 1L);
      m.rt.rmi(c2, add, 2L);
    }
  });
  for (NodeId i = 0; i < 3; ++i) {
    const sim::Node& n = m.engine.node(i);
    EXPECT_EQ(n.breakdown().total(), n.now()) << "node " << i;
  }
}

TEST(Accounting, MostLockAcquiresAreContentionless) {
  // The paper: "about 95% of lock acquisitions are contention-less".
  Machine m(2);
  auto add = m.rt.def_method("Counter::add", &Counter::add);
  auto c = m.rt.place<Counter>(1);
  m.rt.run_main([&] {
    for (int i = 0; i < 50; ++i) m.rt.rmi(c, add, 1L);
  });
  std::uint64_t acq = 0, cont = 0;
  for (NodeId i = 0; i < 2; ++i) {
    acq += m.engine.node(i).counters().lock_acquires;
    cont += m.engine.node(i).counters().lock_contended;
  }
  ASSERT_GT(acq, 0u);
  EXPECT_LT(static_cast<double>(cont) / static_cast<double>(acq), 0.05);
}

}  // namespace
}  // namespace tham::ccxx
