// Static-analyzer suite: declare_link validation, the planted-defect
// negative paths (each defect must be caught *statically*, before any
// event runs, with a finding that names the node/link/handler concerned),
// the clean-app assertions, the golden analysis reports, and the cost
// lower bound held to account against the real runs: for every app and
// every machine profile, the model's per-node bound must not exceed the
// measured per-node virtual time, and the model's message count must equal
// the run's exactly.
//
// Regenerating the golden reports after an intentional model change:
//
//   ./tests/test_analyze --regen

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "analyze/analyze.hpp"
#include "analyze/app_models.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/serving.hpp"
#include "apps/topology.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "common/check.hpp"
#include "common/machine.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace {

using namespace tham;
using namespace tham::analyze;
using apps::RunResult;
using transport::Charge;

// --- Shared fixtures --------------------------------------------------------
// Regression-test-sized configurations (same shapes as tests/test_golden).

apps::em3d::Config em3d_cfg() {
  apps::em3d::Config c;
  c.graph_nodes = 400;
  c.degree = 10;
  c.remote_fraction = 0.5;
  c.iters = 3;
  return c;
}

apps::water::Config water_cfg() {
  apps::water::Config c;
  c.molecules = 32;
  c.steps = 2;
  return c;
}

apps::lu::Config lu_cfg() {
  apps::lu::Config c;
  c.n = 96;
  c.block = 8;
  return c;
}

struct Spec {
  const char* file;  ///< golden stem: tests/golden/<file>.json
  int procs;
  std::function<CommGraph(const CostModel&)> model;
  std::function<RunResult(sim::Engine&, net::Network&, am::AmLayer&)> run;
};

std::vector<Spec> specs() {
  using apps::em3d::Version;
  auto ec = em3d_cfg();
  auto wc = water_cfg();
  auto lc = lu_cfg();
  std::vector<Spec> out;
  auto em = [&](const char* file, Version v) {
    out.push_back(Spec{
        file, ec.procs,
        [=](const CostModel& cm) { return model_em3d(ec, v, cm); },
        [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
          return apps::em3d::run_splitc(e, n, a, ec, v);
        }});
  };
  em("analyze_em3d_base", Version::Base);
  em("analyze_em3d_ghost", Version::Ghost);
  em("analyze_em3d_bulk", Version::Bulk);
  auto water = [&](const char* file, apps::water::Version v) {
    out.push_back(Spec{
        file, wc.procs,
        [=](const CostModel& cm) { return model_water(wc, v, cm); },
        [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
          return apps::water::run_splitc(e, n, a, wc, v);
        }});
  };
  water("analyze_water_atomic", apps::water::Version::Atomic);
  water("analyze_water_prefetch", apps::water::Version::Prefetch);
  out.push_back(Spec{
      "analyze_lu", lc.procs,
      [=](const CostModel& cm) { return model_lu(lc, cm); },
      [=](sim::Engine& e, net::Network& n, am::AmLayer& a) {
        return apps::lu::run_splitc(e, n, a, lc);
      }});
  return out;
}

const Finding* find_code(const Report& r, const std::string& code) {
  for (const Finding& f : r.findings) {
    if (f.code == code) return &f;
  }
  return nullptr;
}

std::string error_codes(const Report& r) {
  std::string out;
  for (const Finding& f : r.findings) {
    if (f.severity == Finding::Severity::Error) out += f.code + " ";
  }
  return out;
}

/// A minimal well-formed graph the planted-defect tests perturb: two nodes,
/// a declared pair each way, one priced round trip.
CommGraph tiny_graph() {
  CommGraph g;
  g.program = "tiny";
  g.nodes = 2;
  g.cost = sp2_cost_model();
  SimTime floor = transport::wire_cost(g.cost, net::Wire::AmShort, 0)
                      .wire_time;
  g.links.push_back(Link{0, 1, floor});
  g.links.push_back(Link{1, 0, floor});
  g.handlers.push_back(HandlerDecl{"ping", true, false});
  g.handlers.push_back(HandlerDecl{"pong", true, false});
  Flow req;
  req.src = 0;
  req.dst = 1;
  req.handler = "ping";
  req.reply_handler = "pong";
  req.waits = Flow::Waits::Polling;
  req.charges = {Charge::AmShortRecv};
  g.flows.push_back(req);
  Flow rep;
  rep.src = 1;
  rep.dst = 0;
  rep.handler = "pong";
  rep.charges = {Charge::AmShortRecv};
  g.flows.push_back(rep);
  return g;
}

// --- declare_link validation (satellite 1) ----------------------------------

TEST(DeclareLink, RejectsExactDuplicate) {
  sim::Engine engine(4);
  engine.declare_link(0, 1, 100);
  EXPECT_THROW(engine.declare_link(0, 1, 100), RuntimeError);
}

TEST(DeclareLink, DistinctFloorsOnOnePairAreLegal) {
  sim::Engine engine(4);
  engine.declare_link(0, 1, 100);
  engine.declare_link(0, 1, 50);  // keeps the minimum
  EXPECT_EQ(engine.links().size(), 2u);
  EXPECT_THROW(engine.declare_link(0, 1, 50), RuntimeError);  // now a dup
}

TEST(DeclareLink, RejectsNonpositiveFloor) {
  sim::Engine engine(4);
  EXPECT_THROW(engine.declare_link(0, 1, 0), RuntimeError);
  EXPECT_THROW(engine.declare_link(0, 1, -5), RuntimeError);
}

TEST(DeclareLink, RejectsSelfLinkAndOutOfRangeIds) {
  sim::Engine engine(4);
  EXPECT_THROW(engine.declare_link(2, 2, 100), RuntimeError);
  EXPECT_THROW(engine.declare_link(0, 4, 100), RuntimeError);
  EXPECT_THROW(engine.declare_link(-1, 0, 100), RuntimeError);
}

TEST(DeclareLink, ChannelRejectsDuplicateWireClassFloor) {
  // AmShort, AmBulk, and Mpl all price a zero-byte message at the same
  // wire-time floor, so declaring two of them on one pair is an exact
  // duplicate declaration (transport.hpp documents this).
  sim::Engine engine(4);
  net::Network net(engine);
  am::AmLayer am(net);
  am.channel().declare_link(0, 1, net::Wire::AmShort);
  EXPECT_THROW(am.channel().declare_link(0, 1, net::Wire::AmShort),
               RuntimeError);
  EXPECT_THROW(am.channel().declare_link(0, 1, net::Wire::AmBulk),
               RuntimeError);
  am.channel().declare_link(0, 1, net::Wire::Tcp);  // distinct floor: legal
}

// --- Planted defects (satellite 2) ------------------------------------------

TEST(Audit, CleanTinyGraphIsClean) {
  Report r = tham::analyze::analyze(tiny_graph());
  EXPECT_TRUE(r.clean()) << error_codes(r);
}

TEST(Audit, FlagsWaitForCycle) {
  CommGraph g = tiny_graph();
  g.flows[0].waits = Flow::Waits::TaskServiced;
  g.flows[1].waits = Flow::Waits::TaskServiced;
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "wait-for-cycle");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  // The finding names the cycle's nodes and handlers.
  EXPECT_NE(f->message.find("0 -> 1"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("1 -> 0"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("ping"), std::string::npos) << f->message;
}

TEST(Audit, PollingWaitersFormNoCycle) {
  // Two polling round trips in opposite directions are the AM discipline
  // working as designed, not a deadlock.
  CommGraph g = tiny_graph();
  Flow back = g.flows[0];
  back.src = 1;
  back.dst = 0;
  Flow back_rep = g.flows[1];
  back_rep.src = 0;
  back_rep.dst = 1;
  g.flows.push_back(back);
  g.flows.push_back(back_rep);
  Report r = tham::analyze::analyze(std::move(g));
  EXPECT_EQ(find_code(r, "wait-for-cycle"), nullptr) << error_codes(r);
}

TEST(Audit, FlagsUnderdeclaredLookaheadFloor) {
  CommGraph g = tiny_graph();
  // Declare a floor above the cheapest wire cost of the link's traffic.
  SimTime zc = transport::wire_cost(g.cost, net::Wire::AmShort, 0).wire_time;
  g.links[0].min_wire = zc + 1;
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "lookahead-floor");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  EXPECT_NE(f->message.find("0 -> 1"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("ping"), std::string::npos) << f->message;
}

TEST(Audit, FlagsUnpricedMessagePath) {
  CommGraph g = tiny_graph();
  g.flows[1].charges.clear();
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "unpriced-path");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  EXPECT_NE(f->message.find("pong"), std::string::npos) << f->message;
}

TEST(Audit, FlagsReduceWithMissingRank) {
  CommGraph g = tiny_graph();
  g.nodes = 4;
  Collective red;
  red.kind = Collective::Kind::Reduce;
  red.ranks = {0, 1, 2};  // rank 3 never participates
  g.collectives.push_back(red);
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "collective-rank-gap");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  EXPECT_NE(f->message.find("reduce"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("rank 3"), std::string::npos) << f->message;
}

TEST(Audit, FlagsTreeReduceWithOrphanedSubtree) {
  CommGraph g = tiny_graph();
  g.nodes = 6;
  Collective red;
  red.kind = Collective::Kind::Reduce;
  red.shape = Collective::Shape::Tree;
  red.radix = 2;
  red.ranks = {0, 1, 3, 4, 5};  // rank 2 (parent of 5) missing
  g.collectives.push_back(red);
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "collective-tree-orphan");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  // The finding names the stalled edge, not just "someone is missing".
  EXPECT_NE(f->message.find("rank 5"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("parent 2"), std::string::npos) << f->message;
}

TEST(Audit, FlagsDisseminationBarrierWithMissingPartner) {
  CommGraph g = tiny_graph();
  g.nodes = 4;
  Collective bar;
  bar.kind = Collective::Kind::Barrier;
  bar.shape = Collective::Shape::Dissemination;
  bar.rounds = 2;            // correct for 4 nodes
  bar.ranks = {0, 2, 3};     // rank 1 missing: 2 never clears round 0
  g.collectives.push_back(bar);
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "collective-partner-gap");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  EXPECT_NE(f->message.find("rank 2"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("partner 1"), std::string::npos) << f->message;
}

TEST(Audit, FlagsDisseminationRoundCountMismatch) {
  CommGraph g = tiny_graph();
  g.nodes = 8;
  Collective bar;
  bar.kind = Collective::Kind::Barrier;
  bar.shape = Collective::Shape::Dissemination;
  bar.rounds = 2;  // 8 nodes need ceil(log2 8) = 3
  for (NodeId p = 0; p < 8; ++p) bar.ranks.push_back(p);
  g.collectives.push_back(bar);
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "collective-shape");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_EQ(f->severity, Finding::Severity::Error);
  EXPECT_NE(f->message.find("2 rounds"), std::string::npos) << f->message;
}

TEST(Audit, FlagsFlowOnUndeclaredPair) {
  CommGraph g = tiny_graph();
  g.links.pop_back();  // drop 1 -> 0; the reply flow now rides no link
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "undeclared-pair");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_NE(f->message.find("1 -> 0"), std::string::npos) << f->message;
}

TEST(Audit, FlagsUnpairedReply) {
  CommGraph g = tiny_graph();
  g.flows.pop_back();  // drop the pong reply flow
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "unpaired-reply");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_NE(f->message.find("pong"), std::string::npos) << f->message;
}

TEST(Audit, FlagsUnknownHandler) {
  CommGraph g = tiny_graph();
  g.flows[0].handler = "no.such.handler";
  Report r = tham::analyze::analyze(std::move(g));
  const Finding* f = find_code(r, "unknown-handler");
  ASSERT_NE(f, nullptr) << error_codes(r);
  EXPECT_NE(f->message.find("no.such.handler"), std::string::npos)
      << f->message;
}

// --- Engine-level harvest ----------------------------------------------------

TEST(EngineAnalyze, HarvestsDeclaredTopology) {
  sim::Engine engine(3);
  net::Network net(engine);
  am::AmLayer am(net);
  apps::declare_full_topology(am);
  Report r = engine.analyze();
  EXPECT_EQ(r.graph.nodes, 3);
  EXPECT_EQ(r.graph.links.size(), 6u);  // 3 * 2 ordered pairs
  EXPECT_TRUE(r.clean()) << error_codes(r);
}

TEST(EngineAnalyze, WarnsOnFloorAboveCheapestWire) {
  sim::Engine engine(2);
  engine.declare_link(0, 1, usec(1000));  // above any wire class's floor
  Report r = engine.analyze();
  EXPECT_NE(find_code(r, "floor-above-cheapest-wire"), nullptr);
}

// --- Clean apps + cost bound vs. measured (the tentpole acceptance) ---------

class Apps : public ::testing::TestWithParam<Spec> {};

TEST_P(Apps, ModelIsCleanOnSp2) {
  const Spec& s = GetParam();
  Report r = tham::analyze::analyze(s.model(sp2_cost_model()));
  EXPECT_TRUE(r.clean()) << r.graph.program << ": " << error_codes(r);
  EXPECT_EQ(find_code(r, "wait-for-cycle"), nullptr);
}

TEST_P(Apps, BoundHoldsOnEveryMachineProfile) {
  const Spec& s = GetParam();
  for (const MachineProfile& mp : machine_profiles()) {
    CostModel cm = mp.make();
    Report report = tham::analyze::analyze(s.model(cm));
    EXPECT_TRUE(report.clean())
        << report.graph.program << " on " << mp.name << ": "
        << error_codes(report);

    sim::Engine engine(s.procs, cm);
    net::Network net(engine);
    am::AmLayer am(net);
    apps::declare_full_topology(am);
    RunResult r = s.run(engine, net, am);

    // The model counts the run's messages exactly — except when the app
    // uses all_store_sync, whose termination detection reduces the global
    // (sent, received) store totals until they agree: how many rounds the
    // loop takes depends on message timing, so the model prices the one
    // round every execution must run and the contract is a floor.
    bool dynamic_rounds = false;
    for (const Collective& c : report.graph.collectives) {
      if (c.kind == Collective::Kind::AllStoreSync) dynamic_rounds = true;
    }
    if (dynamic_rounds) {
      EXPECT_LE(report.graph.total_messages(), r.messages)
          << report.graph.program << " on " << mp.name;
    } else {
      EXPECT_EQ(report.graph.total_messages(), r.messages)
          << report.graph.program << " on " << mp.name;
    }
    // ...and its per-node bound never exceeds the measured virtual time.
    ASSERT_EQ(report.node_lower_bound.size(),
              static_cast<std::size_t>(engine.size()));
    for (NodeId p = 0; p < engine.size(); ++p) {
      SimTime bound = report.node_lower_bound[static_cast<std::size_t>(p)];
      SimTime measured = engine.node(p).now();
      EXPECT_LE(bound, measured)
          << report.graph.program << " on " << mp.name << ", node " << p;
      EXPECT_GT(bound, 0) << report.graph.program << " on " << mp.name;
    }
  }
}

// --- Serving fabric: certified floor, not exact transcript ------------------
// Admission and batch boundaries depend on dynamic queue state, so
// model_serving counts only the messages every execution must send. The
// contract is therefore one-sided: modeled messages <= measured messages,
// and (as for the exact models) per-node bound <= measured virtual time.

class ServingModel
    : public ::testing::TestWithParam<std::pair<const char*, serve::Config>> {
};

TEST_P(ServingModel, FloorHoldsOnEveryMachineProfile) {
  const serve::Config& cfg = GetParam().second;
  for (const MachineProfile& mp : machine_profiles()) {
    CostModel cm = mp.make();
    Report report = tham::analyze::analyze(model_serving(cfg, cm));
    EXPECT_TRUE(report.clean())
        << report.graph.program << " on " << mp.name << ": "
        << error_codes(report);

    sim::Engine engine(cfg.procs(), cm);
    net::Network net(engine);
    am::AmLayer am(net);
    apps::declare_full_topology(am);
    ccxx::Runtime rt(engine, net, am);
    serve::Result res = serve::run(rt, cfg);

    EXPECT_LE(report.graph.total_messages(), res.run.messages)
        << report.graph.program << " on " << mp.name;
    ASSERT_EQ(report.node_lower_bound.size(),
              static_cast<std::size_t>(engine.size()));
    for (NodeId p = 0; p < engine.size(); ++p) {
      SimTime bound = report.node_lower_bound[static_cast<std::size_t>(p)];
      SimTime measured = engine.node(p).now();
      EXPECT_LE(bound, measured)
          << report.graph.program << " on " << mp.name << ", node " << p;
      EXPECT_GT(bound, 0) << report.graph.program << " on " << mp.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Analyze, ServingModel,
    ::testing::Values(
        std::make_pair("serving_rr", apps::serving::small_open()),
        std::make_pair("serving_lo", apps::serving::small_closed())),
    [](const auto& pinfo) { return std::string(pinfo.param.first); });

// --- Golden analysis reports (satellite 3) -----------------------------------

std::string golden_path(const std::string& stem) {
  return std::string(THAM_GOLDEN_DIR) + "/" + stem + ".json";
}

std::string report_json(const Spec& s) {
  return dump_json(tham::analyze::analyze(s.model(sp2_cost_model())));
}

TEST_P(Apps, GoldenReportMatches) {
  const Spec& s = GetParam();
  std::ifstream in(golden_path(s.file));
  ASSERT_TRUE(in.good())
      << "no golden report " << golden_path(s.file)
      << " — run ./tests/test_analyze --regen and commit the result";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(report_json(s), want.str())
      << s.file << " drifted from golden\nIf the change is intentional, run "
      << "./tests/test_analyze --regen";
}

INSTANTIATE_TEST_SUITE_P(Analyze, Apps, ::testing::ValuesIn(specs()),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param.file;
                           return n.substr(std::string("analyze_").size());
                         });

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      for (const Spec& s : specs()) {
        std::ofstream out(golden_path(s.file));
        if (!out.good()) {
          std::fprintf(stderr, "cannot write %s\n",
                       golden_path(s.file).c_str());
          return 1;
        }
        out << report_json(s);
        std::printf("regen %s\n", golden_path(s.file).c_str());
      }
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
