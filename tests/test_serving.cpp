// Serving-fabric suite (ISSUE 8): stats::Histogram units (bucket
// boundaries, merge associativity, exact quantiles, zero/overflow),
// admission control (the bounded queue rejects exactly when full and
// rejection replies are priced and delivered), and the determinism
// guarantee: bit-identical runs across 1/2/4/8 host threads, fault-free
// and at 5% loss over transport::Reliable. The ServingSmoke suite doubles
// as the `serving_smoke` ctest gate (monotone rejection rate vs offered
// load, p99 >= p50).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "am/am.hpp"
#include "apps/serving.hpp"
#include "apps/topology.hpp"
#include "ccxx/runtime.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "serve/serve.hpp"
#include "sim/engine.hpp"
#include "stats/histogram.hpp"
#include "transport/reliable.hpp"

namespace tham {
namespace {

using stats::Histogram;

// ---------------------------------------------------------------------------
// stats::Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, ExactBucketsBelowTwoOctaves) {
  for (std::uint64_t v = 0; v < 2 * Histogram::kSub; ++v) {
    int idx = Histogram::bucket_index(v);
    EXPECT_EQ(idx, static_cast<int>(v));
    EXPECT_EQ(Histogram::bucket_lo(idx), v);
    EXPECT_EQ(Histogram::bucket_hi(idx), v);
  }
}

TEST(Histogram, BucketBoundariesTileTheFullRange) {
  int n = Histogram::num_buckets();
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(n - 1), ~0ull);
  for (int i = 0; i < n; ++i) {
    std::uint64_t lo = Histogram::bucket_lo(i);
    std::uint64_t hi = Histogram::bucket_hi(i);
    EXPECT_LE(lo, hi);
    EXPECT_EQ(Histogram::bucket_index(lo), i);
    EXPECT_EQ(Histogram::bucket_index(hi), i);
    if (i > 0) EXPECT_EQ(lo, Histogram::bucket_hi(i - 1) + 1);
  }
}

TEST(Histogram, ExactQuantilesOnKnownDistribution) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.count(), 50u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 50u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.5);
  // Values 1..50 land in exact width-1 buckets, so quantiles are exact:
  // quantile(q) = ceil(q * 50)-th smallest value.
  EXPECT_EQ(h.quantile(0.02), 1u);
  EXPECT_EQ(h.p50(), 25u);
  EXPECT_EQ(h.p90(), 45u);
  EXPECT_EQ(h.p99(), 50u);
  EXPECT_EQ(h.quantile(1.0), 50u);
}

TEST(Histogram, ZeroAndOverflowBuckets) {
  Histogram h;
  h.record(0, 3);
  h.record(~0ull);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_EQ(h.quantile(0.5), 0u);   // rank 2 of {0,0,0,max}
  EXPECT_EQ(h.quantile(1.0), ~0ull);
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.bucket_count(Histogram::num_buckets() - 1), 1u);
}

TEST(Histogram, QuantileRelativeErrorIsBounded) {
  for (std::uint64_t v : {100ull, 12'345ull, 1'000'000ull, 987'654'321ull,
                          (1ull << 40) + 17, (1ull << 62) + 999}) {
    Histogram h;
    h.record(v);
    std::uint64_t q = h.quantile(1.0);
    EXPECT_GE(q, v);
    EXPECT_LE(q - v, v / Histogram::kSub + 1);
  }
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  Rng rng(42);
  Histogram parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 200; ++i) parts[p].record(rng.next_below(1u << 20));
  }
  Histogram ab_c;  // (a + b) + c
  ab_c.merge(parts[0]);
  ab_c.merge(parts[1]);
  ab_c.merge(parts[2]);
  Histogram bc_a;  // a + (b + c), built right-to-left
  Histogram bc;
  bc.merge(parts[1]);
  bc.merge(parts[2]);
  bc_a.merge(bc);
  bc_a.merge(parts[0]);
  Histogram cba;  // reversed order
  cba.merge(parts[2]);
  cba.merge(parts[1]);
  cba.merge(parts[0]);
  EXPECT_EQ(ab_c.digest(), bc_a.digest());
  EXPECT_EQ(ab_c.digest(), cba.digest());
  EXPECT_EQ(ab_c.count(), 600u);
  EXPECT_EQ(ab_c.total(), bc_a.total());
}

TEST(Histogram, MergeEqualsRecordingEverythingInOnePlace) {
  Rng rng(7);
  Histogram whole;
  Histogram parts[4];
  for (int i = 0; i < 400; ++i) {
    std::uint64_t v = rng.next_below(1ull << 33);
    whole.record(v);
    parts[i % 4].record(v);
  }
  Histogram merged;
  for (const Histogram& p : parts) merged.merge(p);
  EXPECT_EQ(merged.digest(), whole.digest());
}

// ---------------------------------------------------------------------------
// The fabric: invariants, admission control, policies
// ---------------------------------------------------------------------------

/// Every request is answered exactly once; counters agree across layers.
void expect_conservation(const serve::Config& cfg, const serve::Result& r) {
  EXPECT_EQ(r.issued, cfg.total_requests());
  EXPECT_EQ(r.submits, r.issued);
  EXPECT_EQ(r.forwarded, r.issued);
  EXPECT_EQ(r.completed + r.rejected, r.issued);
  EXPECT_EQ(r.latency.count(), r.completed);
  EXPECT_GE(r.net_messages,
            r.submits + r.forward_batches + r.completion_batches +
                r.deliveries);
}

TEST(Serving, ClosedLoopCompletesEverythingWithRoomyQueues) {
  serve::Config cfg = apps::serving::small_closed();
  cfg.queue_cap = 64;  // closed loop can't overrun this
  serve::Result r = serve::run(cfg);
  expect_conservation(cfg, r);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.completed, r.issued);
  EXPECT_GT(r.latency.p50(), 0u);
}

TEST(Serving, AdmissionRejectsExactlyWhenFull) {
  serve::Config cfg;
  cfg.clients = 2;
  cfg.servers = 1;
  cfg.requests_per_client = 40;
  cfg.open_loop = true;
  cfg.offered_load = 12.0;  // far past saturation
  cfg.mean_service = 80'000;
  cfg.queue_cap = 3;
  cfg.batch_max = 4;
  cfg.backend_fraction = 0;
  serve::Result r = serve::run(cfg);
  expect_conservation(cfg, r);
  ASSERT_GT(r.rejected, 0u);
  // The admission bound holds: sampled depth never exceeds the cap...
  EXPECT_EQ(r.queue_depth.count(), r.issued);
  EXPECT_EQ(r.queue_depth.max(), static_cast<std::uint64_t>(cfg.queue_cap));
  // ...and "rejects exactly when full": every rejection sampled the queue
  // at exactly queue_cap, every acceptance strictly below it, so the
  // depth histogram's top bucket count IS the rejection count.
  int full = stats::Histogram::bucket_index(
      static_cast<std::uint64_t>(cfg.queue_cap));
  EXPECT_EQ(r.queue_depth.bucket_count(full), r.rejected);
  // Rejection replies were delivered (client-side tally equals the
  // server-side events above) and priced like any other message.
  EXPECT_GT(r.completion_batches, 0u);
  EXPECT_GT(r.run.elapsed, 0);
}

TEST(Serving, BackendHopFractionIsHonored) {
  serve::Config cfg = apps::serving::small_open();
  cfg.backend_fraction = 1.0;
  serve::Result all = serve::run(cfg);
  EXPECT_EQ(all.backend_lookups, all.completed);
  cfg.backend_fraction = 0.0;
  serve::Result none = serve::run(cfg);
  EXPECT_EQ(none.backend_lookups, 0u);
}

TEST(Serving, LeastOutstandingPolicyServes) {
  serve::Config cfg = apps::serving::small_open(
      serve::Policy::LeastOutstanding);
  serve::Result r = serve::run(cfg);
  expect_conservation(cfg, r);
  EXPECT_GT(r.completed, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: 1/2/4/8 host threads, fault-free and at 5% loss
// ---------------------------------------------------------------------------

struct ServingTrace {
  std::uint64_t fingerprint = 0;
  std::uint64_t latency_digest = 0;
  std::uint64_t depth_digest = 0;
  std::uint64_t digest = 0;
  SimTime elapsed = 0;
  std::uint64_t messages = 0;

  bool operator==(const ServingTrace&) const = default;
};

ServingTrace run_serving(const serve::Config& cfg, int threads, bool lossy) {
  sim::Engine engine(cfg.procs());
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  std::optional<transport::Reliable> rel;
  fault::Plan plan;
  plan.seed = 20250809;
  plan.loss = 0.05;
  plan.dup = 0.01;
  fault::Injector inj(plan, engine.size());
  if (lossy) {
    rel.emplace(am.channel());
    net.set_injector(&inj);
  }
  apps::declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  serve::Result r = serve::run(rt, cfg);
  expect_conservation(cfg, r);
  return ServingTrace{r.fingerprint(), r.latency.digest(),
                      r.queue_depth.digest(), r.digest,
                      r.run.elapsed,   r.run.messages};
}

class ServingDeterminism : public ::testing::TestWithParam<bool> {};

TEST_P(ServingDeterminism, OpenLoopBitIdenticalAcrossHostThreads) {
  bool lossy = GetParam();
  serve::Config cfg = apps::serving::small_open();
  ServingTrace seq = run_serving(cfg, 1, lossy);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run_serving(cfg, threads, lossy), seq)
        << "threads=" << threads << " lossy=" << lossy;
  }
}

TEST_P(ServingDeterminism, ClosedLoopBitIdenticalAcrossHostThreads) {
  bool lossy = GetParam();
  serve::Config cfg = apps::serving::small_closed();
  ServingTrace seq = run_serving(cfg, 1, lossy);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run_serving(cfg, threads, lossy), seq)
        << "threads=" << threads << " lossy=" << lossy;
  }
}

INSTANTIATE_TEST_SUITE_P(FaultFreeAndLossy, ServingDeterminism,
                         ::testing::Values(false, true));

// ---------------------------------------------------------------------------
// ServingSmoke: the `serving_smoke` ctest gate
// ---------------------------------------------------------------------------

TEST(ServingSmoke, RejectionRateMonotoneInOfferedLoadAndTailOrdered) {
  serve::Config cfg;
  cfg.clients = 3;
  cfg.servers = 2;
  cfg.requests_per_client = 20;
  cfg.open_loop = true;
  cfg.mean_service = 60'000;
  cfg.queue_cap = 4;
  cfg.batch_max = 3;
  cfg.backend_fraction = 0.25;
  double prev = -1.0;
  for (double load : {0.4, 1.5, 6.0}) {
    cfg.offered_load = load;
    serve::Result r = serve::run(cfg);
    expect_conservation(cfg, r);
    EXPECT_GE(r.rejection_rate(), prev) << "offered load " << load;
    prev = r.rejection_rate();
    if (r.completed > 0) {
      EXPECT_GE(r.latency.p99(), r.latency.p50()) << "offered load " << load;
      EXPECT_GE(r.latency.p999(), r.latency.p99());
      EXPECT_GT(r.throughput(), 0.0);
    }
  }
  EXPECT_GT(prev, 0.0);  // the 6x sweep point must actually shed load
}

}  // namespace
}  // namespace tham
