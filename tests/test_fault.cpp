// Fault injection + reliable transport: the determinism contract of
// fault::Injector (decisions are pure functions of the plan and the message
// key, never of host scheduling), the protocol mechanics of
// transport::Reliable (exactly-once in-order delivery, geometric backoff,
// the give-up failure path), and the end-to-end guarantee the two give the
// applications — EM3D, Water, and LU produce bit-identical results on a
// lossy wire, at any host thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "check/checker.hpp"
#include "common/machine.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "transport/reliable.hpp"
#include "transport/transport.hpp"

namespace tham {
namespace {

using sim::Engine;
using sim::Node;

// ---------------------------------------------------------------------------
// The decision hash: deterministic, keyed on every input, uniform
// ---------------------------------------------------------------------------

TEST(FaultHash, DeterministicAndKeyedOnEveryInput) {
  std::uint64_t h = fault::fault_hash(42, 1, 2, 3, 4);
  EXPECT_EQ(h, fault::fault_hash(42, 1, 2, 3, 4));  // pure
  EXPECT_NE(h, fault::fault_hash(43, 1, 2, 3, 4));  // seed
  EXPECT_NE(h, fault::fault_hash(42, 2, 2, 3, 4));  // src
  EXPECT_NE(h, fault::fault_hash(42, 1, 3, 3, 4));  // dst
  EXPECT_NE(h, fault::fault_hash(42, 1, 2, 4, 4));  // seq
  EXPECT_NE(h, fault::fault_hash(42, 1, 2, 3, 5));  // salt
}

TEST(FaultHash, UniformCoversTheUnitInterval) {
  double sum = 0, lo = 1, hi = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double u = fault::hash_uniform(
        fault::fault_hash(7, 0, 1, static_cast<std::uint64_t>(i), 0));
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

// ---------------------------------------------------------------------------
// Injector decisions: pure, frequency-correct, window-aware
// ---------------------------------------------------------------------------

TEST(FaultInjector, DecisionsArePureAndMatchThePlanRates) {
  fault::Plan plan;
  plan.seed = 99;
  plan.loss = 0.10;
  plan.dup = 0.05;
  plan.delay = 0.20;
  plan.corrupt = 0.02;
  plan.delay_spike = usec(40);
  fault::Injector inj(plan, 4);

  const int n = 20000;
  int drops = 0, dups = 0, delays = 0, corrupts = 0;
  for (int i = 0; i < n; ++i) {
    auto seq = static_cast<std::uint64_t>(i);
    fault::Decision a = inj.decide(0, 1, seq, usec(10) * i);
    fault::Decision b = inj.decide(0, 1, seq, usec(10) * i);
    // Purity: the same key derives the same outcome, every time.
    ASSERT_EQ(a.drop, b.drop);
    ASSERT_EQ(a.duplicate, b.duplicate);
    ASSERT_EQ(a.corrupt, b.corrupt);
    ASSERT_EQ(a.extra_delay, b.extra_delay);
    drops += a.drop;
    dups += a.duplicate;
    delays += a.extra_delay > 0;
    corrupts += a.corrupt;
  }
  // Frequencies track the plan probabilities (3-sigma-ish tolerances).
  // Drop wins over every other fate, so the dup/delay/corrupt rates are
  // conditioned on the message surviving the loss coin.
  double survive = 1.0 - plan.loss;
  EXPECT_NEAR(static_cast<double>(drops) / n, plan.loss, 0.01);
  EXPECT_NEAR(static_cast<double>(dups) / n, plan.dup * survive, 0.008);
  EXPECT_NEAR(static_cast<double>(delays) / n, plan.delay * survive, 0.012);
  EXPECT_NEAR(static_cast<double>(corrupts) / n, plan.corrupt * survive,
              0.005);
}

TEST(FaultInjector, WindowsRaiseLossOnOneLinkForPartOfTheRun) {
  fault::Plan plan;
  plan.seed = 5;
  fault::Window w;
  w.src = 0;
  w.dst = 1;
  w.begin = usec(100);
  w.end = usec(200);
  w.extra_loss = 1.0;  // certain loss inside the window
  plan.windows.push_back(w);
  fault::Injector inj(plan, 4);

  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_TRUE(inj.decide(0, 1, seq, usec(150)).drop) << seq;    // inside
    EXPECT_FALSE(inj.decide(0, 1, seq, usec(50)).drop) << seq;    // before
    EXPECT_FALSE(inj.decide(0, 1, seq, usec(200)).drop) << seq;   // end excl.
    EXPECT_FALSE(inj.decide(1, 0, seq, usec(150)).drop) << seq;   // other link
  }
}

TEST(FaultInjector, LedgerCountsWhatItWasTold) {
  fault::Plan plan;
  fault::Injector inj(plan, 3);
  fault::Decision d;
  d.drop = true;
  inj.record(d, 0, 1);
  inj.record(d, 0, 1);
  d.drop = false;
  d.duplicate = true;
  d.extra_delay = usec(10);
  d.corrupt = true;
  inj.record(d, 1, 2);
  EXPECT_EQ(inj.decisions(), 3u);
  EXPECT_EQ(inj.drops(), 2u);
  EXPECT_EQ(inj.dups(), 1u);
  EXPECT_EQ(inj.delays(), 1u);
  EXPECT_EQ(inj.corruptions(), 1u);
  EXPECT_EQ(inj.drops_on(0, 1), 2u);
  EXPECT_EQ(inj.drops_on(1, 2), 0u);
}

TEST(FaultPlan, FromMachinePicksUpTheLossyClusterDefaults) {
  CostModel cm = make_machine("lossy-cluster");
  fault::Plan p = fault::Plan::from_machine(cm, 77);
  EXPECT_EQ(p.seed, 77u);
  EXPECT_EQ(p.loss, cm.fault_loss);
  EXPECT_EQ(p.dup, cm.fault_dup);
  EXPECT_EQ(p.delay, cm.fault_delay);
  EXPECT_EQ(p.corrupt, cm.fault_corrupt);
  EXPECT_EQ(p.delay_spike, cm.fault_delay_spike);
  EXPECT_GT(p.loss, 0.0);  // the profile really is lossy
}

// ---------------------------------------------------------------------------
// Reliable protocol mechanics
// ---------------------------------------------------------------------------

// A loss window covering [0, 1ms) on the 0->1 link swallows the original
// transmission and every retransmit whose deadline lands inside it. With
// rto_initial = 100us and backoff 2 the timer fires at ~100, ~300, ~700,
// ~1500us after the send: exactly the first three retransmits are lost and
// the fourth (the first one past the window) delivers. This pins down the
// geometric schedule in virtual-time units, not just "it retried".
TEST(Reliable, BackoffScheduleIsGeometricInVirtualTime) {
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  transport::Reliable::Config cfg;
  cfg.rto_initial = usec(100);
  cfg.rto_min = usec(50);
  cfg.rto_max = usec(10000);
  cfg.backoff = 2;
  cfg.max_retries = 20;
  transport::Reliable rel(am.channel(), cfg);

  fault::Plan plan;
  fault::Window w;
  w.src = 0;
  w.dst = 1;
  w.begin = 0;
  w.end = msec(1);
  w.extra_loss = 1.0;
  plan.windows.push_back(w);
  fault::Injector inj(plan, e.size());
  net.set_injector(&inj);

  bool delivered = false;
  e.node(0).spawn(
      [&] {
        am.channel().send(sim::this_node(), 1, net::Wire::AmShort, 0,
                          [&delivered](Node&) { delivered = true; });
      },
      "sender");
  e.node(1).spawn(
      [&] {
        transport::Endpoint ep(sim::this_node());
        ep.poll_until([&] { return delivered; });
      },
      "receiver");
  e.run();

  EXPECT_TRUE(delivered);
  transport::Reliable::Stats t = rel.total();
  EXPECT_EQ(t.data_frames, 1u);
  EXPECT_EQ(t.retransmits, 4u);  // lost at ~100/~300/~700us, heard at ~1.5ms
  EXPECT_EQ(t.gave_up, 0u);
  EXPECT_EQ(inj.drops(), 4u);  // the original + three in-window retransmits
  // Delivery happened at the fourth timeout: past the window, within the
  // (un-backed-off would be 500us) geometric horizon.
  EXPECT_GE(e.node(1).now(), msec(1));
  EXPECT_LT(e.node(1).now(), msec(2));
}

TEST(Reliable, ExactlyOnceInOrderUnderLossDupAndCorruption) {
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());

  fault::Plan plan;
  plan.seed = 31337;
  plan.loss = 0.20;
  plan.dup = 0.20;
  plan.delay = 0.10;
  plan.corrupt = 0.15;
  plan.delay_spike = usec(30);
  fault::Injector inj(plan, e.size());
  net.set_injector(&inj);

  constexpr int kN = 150;
  std::vector<int> got;
  e.node(0).spawn(
      [&] {
        for (int i = 0; i < kN; ++i) {
          am.channel().send(sim::this_node(), 1, net::Wire::AmShort, 0,
                            [v = &got, i](Node&) { v->push_back(i); });
        }
      },
      "sender");
  e.node(1).spawn(
      [&] {
        transport::Endpoint ep(sim::this_node());
        ep.poll_until(
            [&] { return got.size() == static_cast<std::size_t>(kN); });
      },
      "receiver");
  e.run();

  // Despite drops, dups, corruption, and delay spikes on the wire, the
  // application saw every message exactly once, in send order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);

  transport::Reliable::Stats t = rel.total();
  EXPECT_EQ(t.data_frames, static_cast<std::uint64_t>(kN));
  EXPECT_GT(t.retransmits, 0u);    // losses really were repaired
  EXPECT_GT(t.dup_drops, 0u);      // duplicates really were discarded
  EXPECT_GT(t.corrupt_drops, 0u);  // corrupted frames really were rejected
  EXPECT_GT(inj.drops(), 0u);
  EXPECT_EQ(t.gave_up, 0u);
}

TEST(Reliable, GiveUpAfterMaxRetriesIsCountedAndDiagnosed) {
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  transport::Reliable::Config cfg;
  cfg.rto_initial = usec(100);
  cfg.rto_min = usec(50);
  cfg.rto_max = usec(10000);
  cfg.max_retries = 2;
  transport::Reliable rel(am.channel(), cfg);

  fault::Plan plan;
  plan.loss = 1.0;  // the wire is gone
  fault::Injector inj(plan, e.size());
  net.set_injector(&inj);

  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        am.channel().send(n, 1, net::Wire::AmShort, 0, [](Node&) {});
        // Stay alive past the give-up horizon so the timer daemon gets to
        // exhaust the budget (fire-and-forget senders otherwise end the
        // run with the frame still pending).
        while (rel.total().gave_up == 0 && n.now() < msec(5)) {
          n.wait_for_inbox_until(n.now() + usec(100), /*poll_only=*/true);
        }
      },
      "sender");
  e.run();

  transport::Reliable::Stats t = rel.total();
  EXPECT_EQ(t.gave_up, 1u);
  EXPECT_EQ(t.retransmits, static_cast<std::uint64_t>(cfg.max_retries));
  if (check::kHooksCompiledIn && e.checker() != nullptr) {
    // Giving up is a genuine loss: always a LostMessage diagnostic, never
    // downgraded to info just because an injector was attached.
    EXPECT_GE(e.checker()->count(check::Kind::LostMessage), 1u);
  }
}

// ---------------------------------------------------------------------------
// End to end: the applications on a lossy wire
// ---------------------------------------------------------------------------

constexpr std::uint64_t kAppPlanSeed = 4242;
constexpr double kAppLoss = 0.05;

template <typename RunFn>
apps::RunResult run_lossy(int procs, int threads, RunFn&& run) {
  Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());
  fault::Plan plan;
  plan.seed = kAppPlanSeed;
  plan.loss = kAppLoss;
  fault::Injector inj(plan, engine.size());
  net.set_injector(&inj);
  return run(engine, net, am);
}

TEST(ReliableApps, Em3dChecksumIdenticalToFaultFreeRun) {
  apps::em3d::Config cfg;
  cfg.procs = 4;
  cfg.graph_nodes = 128;
  cfg.degree = 5;
  cfg.iters = 3;
  cfg.remote_fraction = 0.6;
  double baseline =
      apps::em3d::run_splitc(cfg, apps::em3d::Version::Ghost).checksum;
  apps::RunResult lossy = run_lossy(
      cfg.procs, 1, [&](Engine& e, net::Network& n, am::AmLayer& a) {
        return apps::em3d::run_splitc(e, n, a, cfg,
                                      apps::em3d::Version::Ghost);
      });
  // Bit-identical, not merely close: reductions land in per-rank slots, so
  // fault-induced timing cannot reorder a floating-point sum.
  EXPECT_EQ(lossy.checksum, baseline);
}

TEST(ReliableApps, WaterChecksumIdenticalToFaultFreeRun) {
  apps::water::Config cfg;
  cfg.molecules = 16;
  cfg.procs = 2;
  cfg.steps = 2;
  double baseline =
      apps::water::run_splitc(cfg, apps::water::Version::Atomic).checksum;
  apps::RunResult lossy = run_lossy(
      cfg.procs, 1, [&](Engine& e, net::Network& n, am::AmLayer& a) {
        return apps::water::run_splitc(e, n, a, cfg,
                                       apps::water::Version::Atomic);
      });
  EXPECT_EQ(lossy.checksum, baseline);
}

TEST(ReliableApps, LuChecksumIdenticalToFaultFreeRun) {
  apps::lu::Config cfg;
  cfg.n = 32;
  cfg.block = 8;
  cfg.procs = 4;
  double baseline = apps::lu::run_splitc(cfg).checksum;
  apps::RunResult lossy = run_lossy(
      cfg.procs, 1, [&](Engine& e, net::Network& n, am::AmLayer& a) {
        return apps::lu::run_splitc(e, n, a, cfg);
      });
  EXPECT_EQ(lossy.checksum, baseline);
}

// The PR 3 bit-identity guarantee extends to lossy runs: per-node dispatch
// digests (delivery-order hashes) of a 5%-loss EM3D run over Reliable are
// equal on the sequential engine and on 2/4/8 host threads.
TEST(ReliableApps, LossyDispatchDigestsBitIdenticalAcrossHostThreads) {
  apps::em3d::Config cfg;
  cfg.procs = 8;
  cfg.graph_nodes = 256;
  cfg.degree = 5;
  cfg.iters = 3;
  cfg.remote_fraction = 0.6;

  auto fingerprint = [&](int threads) {
    std::ostringstream os;
    apps::RunResult r = run_lossy(
        cfg.procs, threads, [&](Engine& e, net::Network& n, am::AmLayer& a) {
          apps::RunResult out = apps::em3d::run_splitc(
              e, n, a, cfg, apps::em3d::Version::Ghost);
          for (NodeId i = 0; i < e.size(); ++i) {
            os << "node " << i << ": now=" << e.node(i).now() << " digest="
               << std::hex << e.node(i).counters().dispatch_digest
               << std::dec << '\n';
          }
          return out;
        });
    os << "vtime=" << r.elapsed << " msgs=" << r.messages
       << " checksum=" << std::hexfloat << r.checksum << std::defaultfloat;
    return os.str();
  };

  std::string seq = fingerprint(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(seq, fingerprint(threads)) << threads << " threads";
  }
}

}  // namespace
}  // namespace tham
