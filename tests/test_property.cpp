// Property-style parameterized sweeps across the whole stack:
//  * correctness of every application versus its serial reference over a
//    grid of sizes and processor counts,
//  * determinism of complete simulations,
//  * accounting invariants (breakdown sums, message conservation) under
//    randomized communication workloads,
//  * schedule fuzz: 100+ seeded random workloads (spawn/join, mutex/
//    condvar, AM request/reply, bulk transfers, random node counts) replayed
//    on the sequential and the parallel engine and compared bit-for-bit,
//  * cost-model monotonicity (more work never takes less virtual time).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/topology.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "check/checked.hpp"
#include "check/checker.hpp"
#include "coll/coll.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "serve/serve.hpp"
#include "splitc/world.hpp"
#include "threads/threads.hpp"
#include "transport/reliable.hpp"

namespace tham {
namespace {

using sim::Engine;

// ---------------------------------------------------------------------------
// Application sweeps
// ---------------------------------------------------------------------------

class LuSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LuSweep, BothLanguagesMatchSerial) {
  auto [n, block, procs] = GetParam();
  apps::lu::Config cfg;
  cfg.n = n;
  cfg.block = block;
  cfg.procs = procs;
  double expect = apps::lu::run_serial(cfg);
  EXPECT_NEAR(apps::lu::run_splitc(cfg).checksum, expect,
              std::abs(expect) * 1e-12);
  EXPECT_NEAR(apps::lu::run_ccxx(cfg).checksum, expect,
              std::abs(expect) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LuSweep,
    ::testing::Values(std::tuple{32, 8, 4}, std::tuple{64, 8, 4},
                      std::tuple{64, 16, 4}, std::tuple{96, 8, 9},
                      std::tuple{128, 16, 4}));

class WaterSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WaterSweep, BothLanguagesBothVersionsMatchSerial) {
  auto [mols, procs] = GetParam();
  apps::water::Config cfg;
  cfg.molecules = mols;
  cfg.procs = procs;
  cfg.steps = 2;
  double expect = apps::water::run_serial(cfg);
  for (auto v : {apps::water::Version::Atomic,
                 apps::water::Version::Prefetch}) {
    EXPECT_NEAR(apps::water::run_splitc(cfg, v).checksum, expect,
                std::abs(expect) * 1e-8);
    EXPECT_NEAR(apps::water::run_ccxx(cfg, v).checksum, expect,
                std::abs(expect) * 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WaterSweep,
                         ::testing::Values(std::tuple{16, 2},
                                           std::tuple{32, 4},
                                           std::tuple{48, 8}));

class Em3dProcSweep : public ::testing::TestWithParam<int> {};

TEST_P(Em3dProcSweep, ScalesAcrossProcessorCounts) {
  apps::em3d::Config cfg;
  cfg.procs = GetParam();
  cfg.graph_nodes = 32 * cfg.procs;
  cfg.degree = 5;
  cfg.iters = 2;
  cfg.remote_fraction = 0.6;
  double expect = apps::em3d::run_serial(cfg);
  for (auto v : {apps::em3d::Version::Base, apps::em3d::Version::Ghost,
                 apps::em3d::Version::Bulk}) {
    EXPECT_NEAR(apps::em3d::run_splitc(cfg, v).checksum, expect, 1e-9);
    EXPECT_NEAR(apps::em3d::run_ccxx(cfg, v).checksum, expect, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, Em3dProcSweep, ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------------
// Determinism of whole simulations
// ---------------------------------------------------------------------------

TEST(Determinism, Em3dIdenticalAcrossRuns) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 3;
  cfg.remote_fraction = 0.7;
  auto a = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost);
  auto b = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Determinism, WaterIdenticalAcrossRuns) {
  apps::water::Config cfg;
  cfg.molecules = 32;
  auto a = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
  auto b = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.sync_ops, b.sync_ops);
}

// ---------------------------------------------------------------------------
// Randomized communication fuzz: invariants under arbitrary traffic
// ---------------------------------------------------------------------------

class CommFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CommFuzz, AccountingAndConservationHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
  int procs = 2 + static_cast<int>(rng.next_below(5));
  Engine engine(procs);
  net::Network net(engine);
  am::AmLayer am(net);
  splitc::World world(engine, net, am);

  // Per-node mailboxes of random sizes.
  std::vector<std::vector<double>> mail(
      static_cast<std::size_t>(procs),
      std::vector<double>(64, 0.0));
  std::uint64_t base_seed = rng.next_u64();

  // Control flow (op count, barrier placement) comes from a stream shared
  // by all nodes so collectives stay collective; values and destinations
  // come from a per-node stream.
  Rng shared_src(base_seed);
  int ops = 20 + static_cast<int>(shared_src.next_below(30));
  std::vector<bool> barrier_here(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    barrier_here[static_cast<std::size_t>(i)] = shared_src.next_below(8) == 0;
  }

  world.run([&] {
    NodeId me = splitc::MYPROC();
    Rng local(base_seed + static_cast<std::uint64_t>(me) * 7919);
    for (int i = 0; i < ops; ++i) {
      auto dst = static_cast<NodeId>(local.next_below(
          static_cast<std::uint64_t>(splitc::PROCS())));
      auto slot = static_cast<int>(local.next_below(64));
      double val = local.next_double(-10, 10);
      splitc::global_ptr<double> gp(
          dst, &mail[static_cast<std::size_t>(dst)]
                   [static_cast<std::size_t>(slot)]);
      switch (local.next_below(4)) {
        case 0: splitc::write(gp, val); break;
        case 1: (void)splitc::read(gp); break;
        case 2: splitc::store(gp, val); break;
        default: {
          double tmp;
          splitc::get(&tmp, gp);
          splitc::sync();
          break;
        }
      }
      if (barrier_here[static_cast<std::size_t>(i)]) splitc::barrier();
    }
    splitc::all_store_sync();
  });

  // Invariants: every node's component breakdown sums to its clock, and
  // every sent message was received.
  std::uint64_t sent = 0, received = 0;
  for (NodeId i = 0; i < procs; ++i) {
    const sim::Node& n = engine.node(i);
    EXPECT_EQ(n.breakdown().total(), n.now()) << "node " << i;
    sent += n.counters().msgs_sent;
    received += n.counters().msgs_recv;
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(sent, net.total_messages());
  EXPECT_FALSE(engine.deadlocked());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Schedule fuzz: the parallel engine is bit-identical to the sequential one
// ---------------------------------------------------------------------------
// Each seed builds a fresh random machine (2..8 nodes) and drives it with a
// random mix of every concurrency primitive in the stack: split-c global
// reads/writes, bulk store/get, raw AM request/reply ping-pongs, local
// thread spawn/join, mutex and condvar handshakes, compute bursts, yields,
// and collectively-placed barriers. The workload runs once on the
// sequential engine and once with a parallel thread count, and every
// per-node observable — clock, full component breakdown, every counter,
// and the order-sensitive dispatch digest — must match exactly.

struct FuzzResult {
  std::string fingerprint;  ///< per-node clocks, breakdowns, counters, digests
  int shards = 1;           ///< shards the run actually used
  int procs = 0;            ///< node count the seed chose
};

FuzzResult run_schedule_fuzz(
    std::uint64_t seed, int threads,
    Engine::ShardPolicy policy = Engine::ShardPolicy::Block) {
  Rng cfg(seed * 0x9E3779B97F4A7C15ull + 17);
  int procs = 2 + static_cast<int>(cfg.next_below(7));  // 2..8 nodes
  Engine engine(procs);
  engine.set_threads(threads);
  engine.set_shard_policy(policy);
  net::Network net(engine);
  am::AmLayer am(net);
  splitc::World world(engine, net, am);

  std::vector<std::vector<double>> mail(
      static_cast<std::size_t>(procs), std::vector<double>(32, 0.0));
  // AM ping-pong state. Indexed by node id: under the parallel engine each
  // element is only ever touched by the worker that owns that node.
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(procs), 0);
  std::vector<std::uint64_t> acks(static_cast<std::size_t>(procs), 0);

  am::HandlerId pong = am.register_short(
      "fuzz.pong", [&](sim::Node& self, am::Token, const am::Words& w) {
        acks[static_cast<std::size_t>(self.id())] += w[0];
      });
  am::HandlerId ping = am.register_short(
      "fuzz.ping", [&](sim::Node& self, am::Token tok, const am::Words& w) {
        hits[static_cast<std::size_t>(self.id())] += 1;
        am.reply(tok, pong, w[0]);
      });

  // As in CommFuzz: op count and barrier placement come from a stream every
  // node shares (collectives must stay collective); op choices, targets,
  // and values come from a per-node stream.
  std::uint64_t base = cfg.next_u64();
  Rng shared_src(base);
  int ops = 16 + static_cast<int>(shared_src.next_below(24));
  std::vector<bool> barrier_here(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    barrier_here[static_cast<std::size_t>(i)] = shared_src.next_below(6) == 0;
  }

  world.run([&] {
    NodeId me = splitc::MYPROC();
    Rng local(base + static_cast<std::uint64_t>(me) * 7919 + 1);
    std::uint64_t my_pings = 0;
    for (int i = 0; i < ops; ++i) {
      auto dst = static_cast<NodeId>(local.next_below(
          static_cast<std::uint64_t>(splitc::PROCS())));
      auto slot = static_cast<std::size_t>(local.next_below(32));
      double val = local.next_double(-8, 8);
      splitc::global_ptr<double> gp(
          dst, &mail[static_cast<std::size_t>(dst)][slot]);
      switch (local.next_below(8)) {
        case 0:
          splitc::write(gp, val);
          break;
        case 1:
          (void)splitc::read(gp);
          break;
        case 2:
          splitc::store(gp, val);
          break;
        case 3: {
          double tmp;
          splitc::get(&tmp, gp);
          splitc::sync();
          break;
        }
        case 4: {  // raw AM round trip: request out, poll until the reply
          // The network refuses sends to self; pick a strictly remote peer.
          auto peer = static_cast<NodeId>(
              (static_cast<std::uint64_t>(me) + 1 +
               local.next_below(
                   static_cast<std::uint64_t>(splitc::PROCS() - 1))) %
              static_cast<std::uint64_t>(splitc::PROCS()));
          my_pings += 1;
          am.request(peer, ping, 1);
          am.poll_until([&] {
            return acks[static_cast<std::size_t>(me)] >= my_pings;
          });
          break;
        }
        case 5: {  // local thread fan-out under a mutex
          threads::Mutex mu;
          int count = 0;
          int k = 1 + static_cast<int>(local.next_below(3));
          std::vector<threads::Thread> ts;
          for (int j = 0; j < k; ++j) {
            ts.push_back(threads::spawn(
                [&] {
                  mu.lock();
                  ++count;
                  mu.unlock();
                },
                "fuzz-worker"));
          }
          for (auto& t : ts) threads::join(t);
          break;
        }
        case 6: {  // condvar handshake: consumer waits, producer signals
          threads::Mutex mu;
          threads::CondVar cv;
          bool ready = false;
          threads::Thread prod = threads::spawn(
              [&] {
                mu.lock();
                ready = true;
                cv.signal();
                mu.unlock();
              },
              "fuzz-producer");
          mu.lock();
          while (!ready) cv.wait(mu);
          mu.unlock();
          threads::join(prod);
          break;
        }
        default:  // compute burst + cooperative yield
          sim::this_node().advance(
              sim::Component::Cpu,
              static_cast<SimTime>(1 + local.next_below(200)));
          threads::yield();
          break;
      }
      if (barrier_here[static_cast<std::size_t>(i)]) splitc::barrier();
    }
    splitc::all_store_sync();
  });

  FuzzResult r;
  r.shards = engine.shards_used();
  r.procs = procs;
  std::ostringstream os;
  for (NodeId i = 0; i < procs; ++i) {
    const sim::Node& n = engine.node(i);
    const auto& c = n.counters();
    os << "node " << i << ": now=" << n.now();
    for (int k = 0; k < sim::kNumComponents; ++k) {
      os << ' ' << sim::component_name(static_cast<sim::Component>(k)) << '='
         << n.breakdown().t[static_cast<std::size_t>(k)];
    }
    os << " creates=" << c.thread_creates << " cs=" << c.context_switches
       << " sync=" << c.sync_ops << " acq=" << c.lock_acquires
       << " cont=" << c.lock_contended << " sent=" << c.msgs_sent
       << " bytes=" << c.bytes_sent << " recv=" << c.msgs_recv
       << " polls=" << c.polls << " digest=" << std::hex << c.dispatch_digest
       << std::dec << '\n';
  }
  os << "vtime=" << engine.vtime() << " net_msgs=" << net.total_messages()
     << " net_bytes=" << net.total_bytes() << '\n';
  r.fingerprint = os.str();
  return r;
}

class ScheduleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleFuzz, ParallelEngineBitIdenticalToSequential) {
  // Four seeds per parameter: 26 * 4 = 104 seeds total, with the requested
  // thread count cycling over 2..8.
  for (int k = 0; k < 4; ++k) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 4 +
                         static_cast<std::uint64_t>(k);
    int threads = 2 + static_cast<int>(seed % 7);
    FuzzResult seq = run_schedule_fuzz(seed, 1);
    FuzzResult par = run_schedule_fuzz(seed, threads);
    ASSERT_EQ(seq.shards, 1) << "seed " << seed;
    if (!check::kHooksCompiledIn) {
      // Nothing forces these runs sequential, so the comparison must not be
      // vacuously seq-vs-seq: the second run really sharded.
      EXPECT_EQ(par.shards, std::min(threads, par.procs)) << "seed " << seed;
    }
    EXPECT_EQ(seq.fingerprint, par.fingerprint)
        << "seed " << seed << " diverged under " << threads << " threads ("
        << par.shards << " shards used)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range(0, 26));

// ---------------------------------------------------------------------------
// Fault fuzz: bit identity survives a misbehaving wire
// ---------------------------------------------------------------------------
// The ScheduleFuzz bar on a lossy machine: every seed picks a node count, a
// loss/dup/delay mix, and a workload of AM ping-pongs, local spawn/join
// churn, global writes, and barriers, all riding transport::Reliable over
// an injector-equipped network. Fault decisions are keyed on (plan seed,
// src, dst, per-source seq) and retransmission timers run on virtual time
// only, so the sequential and parallel engines must drop, retransmit, and
// deduplicate the same frames at the same virtual times: the fingerprint —
// clocks, counters, dispatch digests, and the protocol's own per-node
// ledger — must match bit-for-bit.

FuzzResult run_fault_fuzz(std::uint64_t seed, int threads) {
  Rng cfg(seed * 0x9E3779B97F4A7C15ull + 71);
  int procs = 2 + static_cast<int>(cfg.next_below(7));  // 2..8 nodes
  Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());

  fault::Plan plan;
  plan.seed = cfg.next_u64();
  plan.loss = 0.01 * static_cast<double>(1 + cfg.next_below(5));  // 1..5%
  plan.dup = 0.02;
  plan.delay = 0.05;
  plan.delay_spike = usec(40);
  fault::Injector inj(plan, engine.size());
  net.set_injector(&inj);

  splitc::World world(engine, net, am);

  std::vector<std::vector<double>> mail(
      static_cast<std::size_t>(procs), std::vector<double>(16, 0.0));
  std::vector<std::uint64_t> hits(static_cast<std::size_t>(procs), 0);
  std::vector<std::uint64_t> acks(static_cast<std::size_t>(procs), 0);
  am::HandlerId pong = am.register_short(
      "fault.pong", [&](sim::Node& self, am::Token, const am::Words& w) {
        acks[static_cast<std::size_t>(self.id())] += w[0];
      });
  am::HandlerId ping = am.register_short(
      "fault.ping", [&](sim::Node& self, am::Token tok, const am::Words& w) {
        hits[static_cast<std::size_t>(self.id())] += 1;
        am.reply(tok, pong, w[0]);
      });

  std::uint64_t base = cfg.next_u64();
  Rng shared_src(base);
  int ops = 8 + static_cast<int>(shared_src.next_below(12));
  std::vector<bool> barrier_here(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    barrier_here[static_cast<std::size_t>(i)] = shared_src.next_below(5) == 0;
  }

  world.run([&] {
    NodeId me = splitc::MYPROC();
    Rng local(base + static_cast<std::uint64_t>(me) * 6007 + 3);
    std::uint64_t my_pings = 0;
    for (int i = 0; i < ops; ++i) {
      switch (local.next_below(4)) {
        case 0: {  // AM round trip over the lossy wire
          auto peer = static_cast<NodeId>(
              (static_cast<std::uint64_t>(me) + 1 +
               local.next_below(
                   static_cast<std::uint64_t>(splitc::PROCS() - 1))) %
              static_cast<std::uint64_t>(splitc::PROCS()));
          my_pings += 1;
          am.request(peer, ping, 1);
          am.poll_until([&] {
            return acks[static_cast<std::size_t>(me)] >= my_pings;
          });
          break;
        }
        case 1: {  // local thread fan-out under a mutex
          threads::Mutex mu;
          int count = 0;
          int k = 1 + static_cast<int>(local.next_below(3));
          std::vector<threads::Thread> ts;
          for (int j = 0; j < k; ++j) {
            ts.push_back(threads::spawn(
                [&] {
                  mu.lock();
                  ++count;
                  mu.unlock();
                },
                "fault-worker"));
          }
          for (auto& t : ts) threads::join(t);
          break;
        }
        case 2: {  // synchronous global write (request + ack, both lossy)
          auto dst = static_cast<NodeId>(local.next_below(
              static_cast<std::uint64_t>(splitc::PROCS())));
          auto slot = static_cast<std::size_t>(local.next_below(16));
          splitc::global_ptr<double> gp(
              dst, &mail[static_cast<std::size_t>(dst)][slot]);
          splitc::write(gp, local.next_double(-4, 4));
          break;
        }
        default:  // compute burst + cooperative yield
          sim::this_node().advance(
              sim::Component::Cpu,
              static_cast<SimTime>(1 + local.next_below(200)));
          threads::yield();
          break;
      }
      if (barrier_here[static_cast<std::size_t>(i)]) splitc::barrier();
    }
    splitc::barrier();
  });

  FuzzResult r;
  r.shards = engine.shards_used();
  r.procs = procs;
  std::ostringstream os;
  for (NodeId i = 0; i < procs; ++i) {
    const sim::Node& n = engine.node(i);
    const auto& c = n.counters();
    const auto& st = rel.stats(i);
    os << "node " << i << ": now=" << n.now() << " sent=" << c.msgs_sent
       << " recv=" << c.msgs_recv << " polls=" << c.polls
       << " digest=" << std::hex << c.dispatch_digest << std::dec
       << " rel(df=" << st.data_frames << " rtx=" << st.retransmits
       << " dup=" << st.dup_drops << " corrupt=" << st.corrupt_drops
       << " acks=" << st.acks_sent << '/' << st.acks_recv
       << " gaveup=" << st.gave_up << ")\n";
  }
  os << "vtime=" << engine.vtime() << " net_msgs=" << net.total_messages()
     << " faults(drop=" << inj.drops() << " dup=" << inj.dups()
     << " delay=" << inj.delays() << " corrupt=" << inj.corruptions()
     << ")\n";
  r.fingerprint = os.str();
  return r;
}

class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, LossyRunsBitIdenticalToSequential) {
  // Two seeds per parameter, thread counts cycling over 2..8.
  for (int k = 0; k < 2; ++k) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 2 +
                         static_cast<std::uint64_t>(k);
    int threads = 2 + static_cast<int>(seed % 7);
    FuzzResult seq = run_fault_fuzz(seed, 1);
    FuzzResult par = run_fault_fuzz(seed, threads);
    ASSERT_EQ(seq.shards, 1) << "seed " << seed;
    if (!check::kHooksCompiledIn) {
      EXPECT_EQ(par.shards, std::min(threads, par.procs)) << "seed " << seed;
    }
    EXPECT_EQ(seq.fingerprint, par.fingerprint)
        << "seed " << seed << " diverged under " << threads
        << " threads with faults injected (" << par.shards
        << " shards used)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Serving fuzz: the serving fabric is bit-identical seq-vs-parallel
// ---------------------------------------------------------------------------
// Each seed draws a full serving-fabric configuration — client/server/
// balancer shape, open- or closed-loop arrivals, batching, admission
// bounds, policy, backend-hop fraction — and half the seeds run it at
// 2..6% loss over transport::Reliable. The scenario exercises the stack
// differently from ScheduleFuzz: RMI fan-in to one node, condvar-paced
// dispatcher/worker threads, virtual-time timers (open-loop sleeps), and
// cross-node latency measurement, all of which must stay bit-identical
// between the sequential and the sharded engine.

FuzzResult run_serving_fuzz(std::uint64_t seed, int threads) {
  Rng cfg(seed * 0x9E3779B97F4A7C15ull + 2027);
  serve::Config sc;
  sc.clients = 1 + static_cast<int>(cfg.next_below(4));
  sc.servers = 1 + static_cast<int>(cfg.next_below(3));
  sc.requests_per_client = 4 + static_cast<int>(cfg.next_below(17));
  sc.open_loop = cfg.next_below(2) == 0;
  sc.offered_load = 0.3 + cfg.next_double() * 3.0;
  sc.mean_service = usec(20) + static_cast<SimTime>(cfg.next_below(60'000));
  sc.think_time = static_cast<SimTime>(cfg.next_below(40'000));
  sc.queue_cap = 2 + static_cast<int>(cfg.next_below(9));
  sc.batch_max = 1 + static_cast<int>(cfg.next_below(5));
  sc.policy = cfg.next_below(2) == 0 ? serve::Policy::RoundRobin
                                     : serve::Policy::LeastOutstanding;
  sc.backend_fraction = 0.5 * static_cast<double>(cfg.next_below(3));
  sc.seed = cfg.next_u64();
  bool lossy = cfg.next_below(2) == 0;

  FuzzResult r;
  r.procs = sc.procs();
  Engine engine(sc.procs());
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  std::optional<transport::Reliable> rel;
  fault::Plan plan;
  plan.seed = cfg.next_u64();
  plan.loss = 0.02 + 0.01 * static_cast<double>(cfg.next_below(5));
  plan.dup = 0.01;
  fault::Injector inj(plan, engine.size());
  if (lossy) {
    rel.emplace(am.channel());
    net.set_injector(&inj);
  }
  apps::declare_full_topology(am);
  ccxx::Runtime rt(engine, net, am);
  serve::Result res = serve::run(rt, sc);
  r.shards = engine.shards_used();

  EXPECT_EQ(res.completed + res.rejected, res.issued) << "seed " << seed;
  EXPECT_EQ(res.issued, sc.total_requests()) << "seed " << seed;

  std::ostringstream os;
  os << "serving fp=" << std::hex << res.fingerprint()
     << " lat=" << res.latency.digest() << " depth="
     << res.queue_depth.digest() << std::dec << " issued=" << res.issued
     << " ok=" << res.completed << " rej=" << res.rejected << '\n';
  for (NodeId i = 0; i < engine.size(); ++i) {
    const sim::Node& n = engine.node(i);
    const auto& c = n.counters();
    os << "node " << i << ": now=" << n.now() << " sent=" << c.msgs_sent
       << " recv=" << c.msgs_recv << " digest=" << std::hex
       << c.dispatch_digest << std::dec << '\n';
  }
  os << "vtime=" << engine.vtime() << " net_msgs=" << net.total_messages()
     << '\n';
  r.fingerprint = os.str();
  return r;
}

class ServingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ServingFuzz, ServingRunsBitIdenticalToSequential) {
  // Two seeds per parameter, thread counts cycling over 2..8.
  for (int k = 0; k < 2; ++k) {
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 2 +
                         static_cast<std::uint64_t>(k);
    int threads = 2 + static_cast<int>(seed % 7);
    FuzzResult seq = run_serving_fuzz(seed, 1);
    FuzzResult par = run_serving_fuzz(seed, threads);
    ASSERT_EQ(seq.shards, 1) << "seed " << seed;
    if (!check::kHooksCompiledIn) {
      EXPECT_EQ(par.shards, std::min(threads, par.procs)) << "seed " << seed;
    }
    EXPECT_EQ(seq.fingerprint, par.fingerprint)
        << "seed " << seed << " diverged under " << threads << " threads ("
        << par.shards << " shards used)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Shard policy: block and round-robin assignment are interchangeable
// ---------------------------------------------------------------------------
// The dispatch order is a pure function of (time, node) keys, so how node
// ids map onto shards must not be observable. Replay ScheduleFuzz seeds
// under both policies and demand the sequential fingerprint from each.

TEST(ShardPolicy, BlockIsTheDefault) {
  Engine e(4);
  EXPECT_EQ(e.shard_policy(), Engine::ShardPolicy::Block);
}

TEST(ShardPolicyFuzz, BlockAndRoundRobinBitIdenticalToSequential) {
  for (std::uint64_t seed : {3u, 11u, 19u, 27u}) {
    int threads = 2 + static_cast<int>(seed % 7);
    FuzzResult seq = run_schedule_fuzz(seed, 1);
    FuzzResult blk =
        run_schedule_fuzz(seed, threads, Engine::ShardPolicy::Block);
    FuzzResult rr =
        run_schedule_fuzz(seed, threads, Engine::ShardPolicy::RoundRobin);
    EXPECT_EQ(seq.fingerprint, blk.fingerprint)
        << "seed " << seed << " diverged under block sharding";
    EXPECT_EQ(seq.fingerprint, rr.fingerprint)
        << "seed " << seed << " diverged under round-robin sharding";
  }
}

// ---------------------------------------------------------------------------
// Lookahead policy: per-link horizons match the global floor bit-for-bit
// ---------------------------------------------------------------------------
// A declared ring-plus-star topology gives the per-link planner genuinely
// heterogeneous reaction distances (ring neighbours one hop apart, far
// pairs routed through the collective root), so its epoch schedule differs
// from the global-floor one — but every per-node observable must not.

FuzzResult run_topology_fuzz(std::uint64_t seed, int threads,
                             Engine::LookaheadPolicy policy) {
  Rng cfg(seed * 0x9E3779B97F4A7C15ull + 131);
  int procs = 4 + static_cast<int>(cfg.next_below(5));  // 4..8 nodes
  Engine engine(procs);
  engine.set_threads(threads);
  engine.set_lookahead_policy(policy);
  net::Network net(engine);
  am::AmLayer am(net);
  // Ring links both ways, plus a star on node 0, plus the links the
  // collectives layer needs (dissemination-barrier partners and the
  // combining tree). Every message the workload sends — neighbour
  // traffic, collective rounds, and the replies riding the reverse
  // direction — stays on a declared link. The sets overlap and the
  // engine rejects duplicate declarations, so declare through a set.
  std::set<std::pair<NodeId, NodeId>> declared;
  auto declare = [&](NodeId s, NodeId d) {
    if (declared.emplace(s, d).second) {
      am.channel().declare_link(s, d, net::Wire::AmShort);
    }
  };
  for (NodeId i = 0; i < procs; ++i) {
    NodeId nxt = (i + 1) % procs;
    declare(i, nxt);
    declare(nxt, i);
    if (i != 0) {
      declare(0, i);
      declare(i, 0);
    }
  }
  for (auto [s, d] :
       coll::collective_links(procs, coll::default_radix(engine.cost()))) {
    declare(s, d);
  }
  splitc::World world(engine, net, am);

  std::vector<std::vector<double>> mail(
      static_cast<std::size_t>(procs), std::vector<double>(16, 0.0));
  std::uint64_t base = cfg.next_u64();
  Rng shared_src(base);
  int ops = 12 + static_cast<int>(shared_src.next_below(20));
  std::vector<bool> barrier_here(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    barrier_here[static_cast<std::size_t>(i)] = shared_src.next_below(5) == 0;
  }

  world.run([&] {
    NodeId me = splitc::MYPROC();
    int P = splitc::PROCS();
    Rng local(base + static_cast<std::uint64_t>(me) * 7919 + 5);
    for (int i = 0; i < ops; ++i) {
      // Traffic only along declared links: ring neighbours or the root.
      NodeId dst;
      switch (local.next_below(3)) {
        case 0: dst = (me + 1) % P; break;
        case 1: dst = (me + P - 1) % P; break;
        default: dst = 0; break;
      }
      auto slot = static_cast<std::size_t>(local.next_below(16));
      double val = local.next_double(-4, 4);
      splitc::global_ptr<double> gp(
          dst, &mail[static_cast<std::size_t>(dst)][slot]);
      switch (local.next_below(5)) {
        case 0:
          splitc::write(gp, val);
          break;
        case 1:
          (void)splitc::read(gp);
          break;
        case 2:
          splitc::put(gp, val);
          break;
        case 3: {
          double tmp = 0;
          splitc::get(&tmp, gp);
          splitc::sync();
          break;
        }
        default:
          sim::this_node().advance(
              sim::Component::Cpu,
              static_cast<SimTime>(1 + local.next_below(150)));
          break;
      }
      if (barrier_here[static_cast<std::size_t>(i)]) splitc::barrier();
    }
    splitc::sync();
    splitc::barrier();
  });

  FuzzResult r;
  r.shards = engine.shards_used();
  r.procs = procs;
  std::ostringstream os;
  for (NodeId i = 0; i < procs; ++i) {
    const sim::Node& n = engine.node(i);
    const auto& c = n.counters();
    os << "node " << i << ": now=" << n.now() << " sent=" << c.msgs_sent
       << " recv=" << c.msgs_recv << " polls=" << c.polls << " digest="
       << std::hex << c.dispatch_digest << std::dec << '\n';
  }
  os << "vtime=" << engine.vtime() << " net_msgs=" << net.total_messages()
     << " net_bytes=" << net.total_bytes() << '\n';
  r.fingerprint = os.str();
  return r;
}

class LookaheadPolicyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LookaheadPolicyFuzz, PerLinkMatchesGlobalAndSequential) {
  auto seed = static_cast<std::uint64_t>(GetParam());
  int threads = 2 + static_cast<int>(seed % 7);
  FuzzResult seq =
      run_topology_fuzz(seed, 1, Engine::LookaheadPolicy::PerLink);
  FuzzResult link =
      run_topology_fuzz(seed, threads, Engine::LookaheadPolicy::PerLink);
  FuzzResult global =
      run_topology_fuzz(seed, threads, Engine::LookaheadPolicy::Global);
  ASSERT_EQ(seq.shards, 1) << "seed " << seed;
  if (!check::kHooksCompiledIn) {
    EXPECT_EQ(link.shards, std::min(threads, link.procs)) << "seed " << seed;
  }
  EXPECT_EQ(seq.fingerprint, link.fingerprint)
      << "seed " << seed << " diverged under per-link lookahead ("
      << link.shards << " shards)";
  EXPECT_EQ(seq.fingerprint, global.fingerprint)
      << "seed " << seed << " diverged under global lookahead ("
      << global.shards << " shards)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, LookaheadPolicyFuzz, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Idle-shard fast path: parked shards cost nothing and change nothing
// ---------------------------------------------------------------------------
// One shard chats while everyone else sits in a barrier: the planner must
// actually park the idle shards (parked_epochs > 0 — they skip the epoch
// barriers entirely), and parking must not perturb a single observable.

TEST(IdleShardFastPath, ParksIdleShardsAndStaysBitIdentical) {
  struct Out {
    std::string fingerprint;
    int shards = 1;
    std::uint64_t parked = 0;
  };
  auto run = [](int threads) {
    Engine engine(8);
    engine.set_threads(threads);
    net::Network net(engine);
    am::AmLayer am(net);
    splitc::World world(engine, net, am);
    std::vector<double> mail(64, 0.0);
    world.run([&] {
      if (splitc::MYPROC() == 0) {
        // A long exchange with node 1 while nodes 2..7 wait in the
        // barrier: under block sharding at 4 threads those six nodes
        // span three shards with nothing in their horizon.
        for (int i = 0; i < 40; ++i) {
          splitc::global_ptr<double> gp(1, &mail[static_cast<std::size_t>(i)]);
          splitc::write(gp, static_cast<double>(i));
        }
      }
      splitc::barrier();
    });
    Out o;
    o.shards = engine.shards_used();
    o.parked = engine.epoch_profile().parked_epochs;
    std::ostringstream os;
    for (NodeId i = 0; i < 8; ++i) {
      const sim::Node& n = engine.node(i);
      os << i << ":" << n.now() << "/" << std::hex
         << n.counters().dispatch_digest << std::dec << ' ';
    }
    o.fingerprint = os.str();
    return o;
  };
  Out seq = run(1);
  Out par = run(4);
  EXPECT_EQ(seq.fingerprint, par.fingerprint);
  if (par.shards > 1) {
    EXPECT_GT(par.parked, 0u) << "no shard was ever parked";
  }
}

// A planted data race must produce the same tham-check diagnostics whether
// the run asked for the sequential or the parallel engine. (An attached
// checker forces the run onto the sequential executor, so "parallel" here
// exercises exactly the fallback path a user hits with THAM_SIM_THREADS set
// in a THAM_CHECK build — the diagnostics must not change.)
std::vector<std::string> planted_race_diagnostics(int threads) {
  sim::Engine e(2);
  e.set_threads(threads);
  if (e.checker() == nullptr) return {};
  net::Network net(e);
  am::AmLayer am(net);
  checked<int> shared;
  e.node(0).spawn(
      [&] {
        shared.set(1, "fuzz-shared");
        sim::this_node().yield();
        shared.set(2, "fuzz-shared");
      },
      "racy-writer");
  e.node(0).spawn([&] { (void)shared.get("fuzz-shared"); }, "racy-reader");
  e.node(1).spawn([&] { sim::this_node().yield(); }, "bystander");
  e.run();
  std::vector<std::string> out;
  for (const auto& d : e.checker()->diagnostics()) {
    std::ostringstream os;
    os << static_cast<int>(d.kind) << " node=" << d.node << " task='"
       << d.task_name << "' vtime=" << d.vtime << " " << d.message;
    out.push_back(os.str());
  }
  return out;
}

TEST(ScheduleFuzzCheck, PlantedRaceDiagnosticsIdenticalOnBothEngines) {
  if (!check::kHooksCompiledIn) {
    GTEST_SKIP() << "runtime built with THAM_CHECK=OFF";
  }
  std::vector<std::string> seq = planted_race_diagnostics(1);
  std::vector<std::string> par = planted_race_diagnostics(4);
  ASSERT_FALSE(seq.empty()) << "checker reported nothing for a planted race";
  EXPECT_EQ(seq, par);
}

// ---------------------------------------------------------------------------
// Cost-model monotonicity
// ---------------------------------------------------------------------------

TEST(CostModel, MoreRemoteWorkNeverTakesLessTime) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 3;
  SimTime prev = 0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    cfg.remote_fraction = f;
    SimTime t = apps::em3d::run_splitc(cfg, apps::em3d::Version::Base)
                    .elapsed;
    EXPECT_GE(t, prev) << "remote fraction " << f;
    prev = t;
  }
}

TEST(CostModel, SlowerWireSlowsEverything) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 2;
  cfg.remote_fraction = 0.8;
  CostModel slow = sp2_cost_model();
  slow.am_wire_latency *= 4;
  SimTime fast_t =
      apps::em3d::run_splitc(cfg, apps::em3d::Version::Base).elapsed;
  SimTime slow_t =
      apps::em3d::run_splitc(cfg, apps::em3d::Version::Base, slow).elapsed;
  EXPECT_GT(slow_t, fast_t);
}

TEST(CostModel, NexusModelDominatesSp2Model) {
  // Every AM-path cost in the Nexus configuration is >= the SP2 one.
  CostModel a = sp2_cost_model();
  CostModel b = nexus_cost_model();
  EXPECT_GT(b.am_send_overhead, a.am_send_overhead);
  EXPECT_GT(b.am_recv_overhead, a.am_recv_overhead);
  EXPECT_GT(b.thread_create, a.thread_create);
  EXPECT_GT(b.context_switch, a.context_switch);
  EXPECT_GT(b.sync_op, a.sync_op);
  EXPECT_GT(b.cc_buffer_alloc, a.cc_buffer_alloc);
  EXPECT_FALSE(b.cc_stub_caching);
  EXPECT_FALSE(b.cc_persistent_buffers);
}

// ---------------------------------------------------------------------------
// Table 4 accounting identity as a test
// ---------------------------------------------------------------------------

TEST(Accounting, Table4IdentityHoldsForNullRmi) {
  struct T {
    long nop() { return 0; }
  };
  Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto nop = rt.def_method("T::nop", &T::nop);
  auto obj = rt.place<T>(1);
  SimTime total = 0;
  sim::Breakdown sum;
  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    (void)rt.rmi(obj, nop);
    SimTime t0 = n.now();
    sim::Breakdown b0 = engine.node(0).breakdown();
    sim::Breakdown c0 = engine.node(1).breakdown();
    for (int i = 0; i < 100; ++i) (void)rt.rmi(obj, nop);
    total = n.now() - t0;
    sum = (engine.node(0).breakdown() - b0);
    sum += (engine.node(1).breakdown() - c0);
  });
  // Active charges on both ends + caller idle (attributed Net) == total:
  // the "Total = AM + Threads + Runtime" identity of Table 4, given that
  // the caller's breakdown covers its whole elapsed window and the
  // receiver's active work happens strictly inside the caller's waits.
  SimTime caller_active = total;  // node 0 breakdown over the window
  EXPECT_EQ(engine.node(0).breakdown().total(), engine.node(0).now());
  EXPECT_GE(sum.total(), caller_active);
}

// ---------------------------------------------------------------------------
// Collectives fuzz: random op tapes, lossy or clean, polling or daemon
// ---------------------------------------------------------------------------
// Each seed draws a world size, a shared collective op tape, a radix, and
// a progress discipline; odd seeds run at 1..5% loss over
// transport::Reliable. Beyond seq-vs-parallel bit identity, every result
// is checked against a host-side replay (canonical_fold for reductions):
// neither loss, nor thread count, nor the daemon discipline may change a
// single result bit.

std::uint64_t f64_bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

FuzzResult run_coll_fuzz(std::uint64_t seed, int threads,
                         std::string* results_out,
                         std::string* expected_out) {
  Rng cfg(seed * 0x9E3779B97F4A7C15ull + 977);
  int procs = 2 + static_cast<int>(cfg.next_below(7));  // 2..8 nodes
  Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);

  std::unique_ptr<transport::Reliable> rel;
  std::unique_ptr<fault::Injector> inj;
  if (seed % 2 == 1) {
    rel = std::make_unique<transport::Reliable>(am.channel());
    fault::Plan plan;
    plan.seed = cfg.next_u64();
    plan.loss = 0.01 * static_cast<double>(1 + cfg.next_below(5));  // 1..5%
    plan.dup = 0.02;
    plan.delay = 0.05;
    plan.delay_spike = usec(40);
    inj = std::make_unique<fault::Injector>(plan, engine.size());
    net.set_injector(inj.get());
  }

  coll::Config ccfg;
  ccfg.progress = (seed / 2) % 2 == 0 ? coll::Progress::Polling
                                      : coll::Progress::Daemon;
  ccfg.radix =
      cfg.next_below(2) == 0 ? 0 : 2 + static_cast<int>(cfg.next_below(3));
  coll::Collectives coll(engine, am, ccfg);

  // One shared tape: SPMD ranks must agree on the collective sequence.
  std::uint64_t base = cfg.next_u64();
  Rng tape(base);
  int ops = 6 + static_cast<int>(tape.next_below(10));
  std::vector<int> opcode(static_cast<std::size_t>(ops));
  std::vector<NodeId> root(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    opcode[static_cast<std::size_t>(i)] =
        static_cast<int>(tape.next_below(6));
    root[static_cast<std::size_t>(i)] = static_cast<NodeId>(
        tape.next_below(static_cast<std::uint64_t>(procs)));
  }
  std::vector<double> vals;
  Rng vrng(base ^ 0x5bf03635);
  for (int i = 0; i < procs; ++i) vals.push_back(vrng.next_double(-1e6, 1e6));

  // Host-side replay of the tape: what every rank must log, bit for bit.
  std::ostringstream want;
  for (int i = 0; i < ops; ++i) {
    auto ui = static_cast<std::size_t>(i);
    switch (opcode[ui]) {
      case 0:
        want << "bar\n";
        break;
      case 1: {
        std::vector<double> shifted;
        for (double v : vals) shifted.push_back(v + i);
        want << std::hex
             << f64_bits(coll::canonical_fold(shifted, coll.radix(),
                                              coll::Op::SumF64))
             << std::dec << '\n';
        break;
      }
      case 2: {
        std::vector<double> scaled;
        for (double v : vals) scaled.push_back(v * (i + 1));
        want << std::hex
             << f64_bits(coll::canonical_fold(scaled, coll.radix(),
                                              coll::Op::MinF64))
             << std::dec << '\n';
        break;
      }
      case 3:
        want << std::hex
             << f64_bits(vals[static_cast<std::size_t>(root[ui])] + i)
             << std::dec << '\n';
        break;
      case 4: {
        std::uint64_t a = 0, b = 0;
        for (int r = 0; r < procs; ++r) {
          a += static_cast<std::uint64_t>(r + i);
          b += static_cast<std::uint64_t>(2 * r + 1);
        }
        want << a << ' ' << b << '\n';
        break;
      }
      default:
        want << "a2a-ok\n";
        break;
    }
  }

  std::vector<std::ostringstream> log(static_cast<std::size_t>(procs));
  for (NodeId p = 0; p < procs; ++p) {
    engine.node(p).spawn(
        [&, p] {
          auto up = static_cast<std::size_t>(p);
          for (int i = 0; i < ops; ++i) {
            auto ui = static_cast<std::size_t>(i);
            switch (opcode[ui]) {
              case 0:
                coll.barrier();
                log[up] << "bar\n";
                break;
              case 1:
                log[up] << std::hex
                        << f64_bits(coll.all_reduce_sum(vals[up] + i))
                        << std::dec << '\n';
                break;
              case 2:
                log[up] << std::hex
                        << f64_bits(
                               coll.all_reduce_min(vals[up] * (i + 1)))
                        << std::dec << '\n';
                break;
              case 3:
                log[up] << std::hex
                        << f64_bits(coll.broadcast(
                               root[ui], p == root[ui] ? vals[up] + i : 0))
                        << std::dec << '\n';
                break;
              case 4: {
                coll::Pair64 t = coll.all_reduce_counts(
                    static_cast<std::uint64_t>(p + i),
                    static_cast<std::uint64_t>(2 * p + 1));
                log[up] << t.a << ' ' << t.b << '\n';
                break;
              }
              default: {
                std::vector<std::uint64_t> out(
                    static_cast<std::size_t>(procs)),
                    in;
                for (int j = 0; j < procs; ++j) {
                  out[static_cast<std::size_t>(j)] =
                      static_cast<std::uint64_t>(p * 1000 + j * 10 + i);
                }
                coll.all_to_all(out, in);
                bool ok = in.size() == out.size();
                for (int j = 0; ok && j < procs; ++j) {
                  ok = in[static_cast<std::size_t>(j)] ==
                       static_cast<std::uint64_t>(j * 1000 + p * 10 + i);
                }
                log[up] << (ok ? "a2a-ok\n" : "a2a-BAD\n");
                break;
              }
            }
          }
        },
        "coll-fuzz-main");
  }
  if (ccfg.progress == coll::Progress::Daemon) coll.start_progress_daemons();
  engine.run();

  FuzzResult r;
  r.shards = engine.shards_used();
  r.procs = procs;
  results_out->clear();
  expected_out->clear();
  std::ostringstream os;
  for (NodeId p = 0; p < procs; ++p) {
    *results_out += log[static_cast<std::size_t>(p)].str();
    *expected_out += want.str();
    const sim::Node& n = engine.node(p);
    const auto& c = n.counters();
    os << "node " << p << ": now=" << n.now() << " sent=" << c.msgs_sent
       << " recv=" << c.msgs_recv << " digest=" << std::hex
       << c.dispatch_digest << std::dec << '\n';
  }
  os << *results_out;
  os << "vtime=" << engine.vtime() << " net_msgs=" << net.total_messages()
     << '\n';
  r.fingerprint = os.str();
  return r;
}

class CollFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CollFuzz, BitIdenticalAcrossThreadsAndCanonical) {
  auto seed = static_cast<std::uint64_t>(GetParam());
  int threads = 2 + static_cast<int>(seed % 7);
  std::string seq_res, seq_want, par_res, par_want;
  FuzzResult seq = run_coll_fuzz(seed, 1, &seq_res, &seq_want);
  FuzzResult par = run_coll_fuzz(seed, threads, &par_res, &par_want);
  ASSERT_EQ(seq.shards, 1) << "seed " << seed;
  EXPECT_EQ(seq.fingerprint, par.fingerprint)
      << "seed " << seed << " diverged under " << threads << " threads";
  // Every rank's every result matches the host-side replay bit for bit,
  // sequential and parallel, lossy (odd seeds) or clean.
  EXPECT_EQ(seq_res, seq_want) << "seed " << seed;
  EXPECT_EQ(par_res, par_want) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollFuzz, ::testing::Range(0, 10));

}  // namespace
}  // namespace tham
