// Property-style parameterized sweeps across the whole stack:
//  * correctness of every application versus its serial reference over a
//    grid of sizes and processor counts,
//  * determinism of complete simulations,
//  * accounting invariants (breakdown sums, message conservation) under
//    randomized communication workloads,
//  * cost-model monotonicity (more work never takes less virtual time).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "common/rng.hpp"
#include "splitc/world.hpp"

namespace tham {
namespace {

using sim::Engine;

// ---------------------------------------------------------------------------
// Application sweeps
// ---------------------------------------------------------------------------

class LuSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LuSweep, BothLanguagesMatchSerial) {
  auto [n, block, procs] = GetParam();
  apps::lu::Config cfg;
  cfg.n = n;
  cfg.block = block;
  cfg.procs = procs;
  double expect = apps::lu::run_serial(cfg);
  EXPECT_NEAR(apps::lu::run_splitc(cfg).checksum, expect,
              std::abs(expect) * 1e-12);
  EXPECT_NEAR(apps::lu::run_ccxx(cfg).checksum, expect,
              std::abs(expect) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LuSweep,
    ::testing::Values(std::tuple{32, 8, 4}, std::tuple{64, 8, 4},
                      std::tuple{64, 16, 4}, std::tuple{96, 8, 9},
                      std::tuple{128, 16, 4}));

class WaterSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WaterSweep, BothLanguagesBothVersionsMatchSerial) {
  auto [mols, procs] = GetParam();
  apps::water::Config cfg;
  cfg.molecules = mols;
  cfg.procs = procs;
  cfg.steps = 2;
  double expect = apps::water::run_serial(cfg);
  for (auto v : {apps::water::Version::Atomic,
                 apps::water::Version::Prefetch}) {
    EXPECT_NEAR(apps::water::run_splitc(cfg, v).checksum, expect,
                std::abs(expect) * 1e-8);
    EXPECT_NEAR(apps::water::run_ccxx(cfg, v).checksum, expect,
                std::abs(expect) * 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WaterSweep,
                         ::testing::Values(std::tuple{16, 2},
                                           std::tuple{32, 4},
                                           std::tuple{48, 8}));

class Em3dProcSweep : public ::testing::TestWithParam<int> {};

TEST_P(Em3dProcSweep, ScalesAcrossProcessorCounts) {
  apps::em3d::Config cfg;
  cfg.procs = GetParam();
  cfg.graph_nodes = 32 * cfg.procs;
  cfg.degree = 5;
  cfg.iters = 2;
  cfg.remote_fraction = 0.6;
  double expect = apps::em3d::run_serial(cfg);
  for (auto v : {apps::em3d::Version::Base, apps::em3d::Version::Ghost,
                 apps::em3d::Version::Bulk}) {
    EXPECT_NEAR(apps::em3d::run_splitc(cfg, v).checksum, expect, 1e-9);
    EXPECT_NEAR(apps::em3d::run_ccxx(cfg, v).checksum, expect, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, Em3dProcSweep, ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------------
// Determinism of whole simulations
// ---------------------------------------------------------------------------

TEST(Determinism, Em3dIdenticalAcrossRuns) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 3;
  cfg.remote_fraction = 0.7;
  auto a = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost);
  auto b = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.checksum, b.checksum);
}

TEST(Determinism, WaterIdenticalAcrossRuns) {
  apps::water::Config cfg;
  cfg.molecules = 32;
  auto a = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
  auto b = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.sync_ops, b.sync_ops);
}

// ---------------------------------------------------------------------------
// Randomized communication fuzz: invariants under arbitrary traffic
// ---------------------------------------------------------------------------

class CommFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CommFuzz, AccountingAndConservationHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 99);
  int procs = 2 + static_cast<int>(rng.next_below(5));
  Engine engine(procs);
  net::Network net(engine);
  am::AmLayer am(net);
  splitc::World world(engine, net, am);

  // Per-node mailboxes of random sizes.
  std::vector<std::vector<double>> mail(
      static_cast<std::size_t>(procs),
      std::vector<double>(64, 0.0));
  std::uint64_t base_seed = rng.next_u64();

  // Control flow (op count, barrier placement) comes from a stream shared
  // by all nodes so collectives stay collective; values and destinations
  // come from a per-node stream.
  Rng shared_src(base_seed);
  int ops = 20 + static_cast<int>(shared_src.next_below(30));
  std::vector<bool> barrier_here(static_cast<std::size_t>(ops));
  for (int i = 0; i < ops; ++i) {
    barrier_here[static_cast<std::size_t>(i)] = shared_src.next_below(8) == 0;
  }

  world.run([&] {
    NodeId me = splitc::MYPROC();
    Rng local(base_seed + static_cast<std::uint64_t>(me) * 7919);
    for (int i = 0; i < ops; ++i) {
      auto dst = static_cast<NodeId>(local.next_below(
          static_cast<std::uint64_t>(splitc::PROCS())));
      auto slot = static_cast<int>(local.next_below(64));
      double val = local.next_double(-10, 10);
      splitc::global_ptr<double> gp(
          dst, &mail[static_cast<std::size_t>(dst)]
                   [static_cast<std::size_t>(slot)]);
      switch (local.next_below(4)) {
        case 0: splitc::write(gp, val); break;
        case 1: (void)splitc::read(gp); break;
        case 2: splitc::store(gp, val); break;
        default: {
          double tmp;
          splitc::get(&tmp, gp);
          splitc::sync();
          break;
        }
      }
      if (barrier_here[static_cast<std::size_t>(i)]) splitc::barrier();
    }
    splitc::all_store_sync();
  });

  // Invariants: every node's component breakdown sums to its clock, and
  // every sent message was received.
  std::uint64_t sent = 0, received = 0;
  for (NodeId i = 0; i < procs; ++i) {
    const sim::Node& n = engine.node(i);
    EXPECT_EQ(n.breakdown().total(), n.now()) << "node " << i;
    sent += n.counters().msgs_sent;
    received += n.counters().msgs_recv;
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(sent, net.total_messages());
  EXPECT_FALSE(engine.deadlocked());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommFuzz, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Cost-model monotonicity
// ---------------------------------------------------------------------------

TEST(CostModel, MoreRemoteWorkNeverTakesLessTime) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 3;
  SimTime prev = 0;
  for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    cfg.remote_fraction = f;
    SimTime t = apps::em3d::run_splitc(cfg, apps::em3d::Version::Base)
                    .elapsed;
    EXPECT_GE(t, prev) << "remote fraction " << f;
    prev = t;
  }
}

TEST(CostModel, SlowerWireSlowsEverything) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 160;
  cfg.degree = 6;
  cfg.iters = 2;
  cfg.remote_fraction = 0.8;
  CostModel slow = sp2_cost_model();
  slow.am_wire_latency *= 4;
  SimTime fast_t =
      apps::em3d::run_splitc(cfg, apps::em3d::Version::Base).elapsed;
  SimTime slow_t =
      apps::em3d::run_splitc(cfg, apps::em3d::Version::Base, slow).elapsed;
  EXPECT_GT(slow_t, fast_t);
}

TEST(CostModel, NexusModelDominatesSp2Model) {
  // Every AM-path cost in the Nexus configuration is >= the SP2 one.
  CostModel a = sp2_cost_model();
  CostModel b = nexus_cost_model();
  EXPECT_GT(b.am_send_overhead, a.am_send_overhead);
  EXPECT_GT(b.am_recv_overhead, a.am_recv_overhead);
  EXPECT_GT(b.thread_create, a.thread_create);
  EXPECT_GT(b.context_switch, a.context_switch);
  EXPECT_GT(b.sync_op, a.sync_op);
  EXPECT_GT(b.cc_buffer_alloc, a.cc_buffer_alloc);
  EXPECT_FALSE(b.cc_stub_caching);
  EXPECT_FALSE(b.cc_persistent_buffers);
}

// ---------------------------------------------------------------------------
// Table 4 accounting identity as a test
// ---------------------------------------------------------------------------

TEST(Accounting, Table4IdentityHoldsForNullRmi) {
  struct T {
    long nop() { return 0; }
  };
  Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto nop = rt.def_method("T::nop", &T::nop);
  auto obj = rt.place<T>(1);
  SimTime total = 0;
  sim::Breakdown sum;
  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    (void)rt.rmi(obj, nop);
    SimTime t0 = n.now();
    sim::Breakdown b0 = engine.node(0).breakdown();
    sim::Breakdown c0 = engine.node(1).breakdown();
    for (int i = 0; i < 100; ++i) (void)rt.rmi(obj, nop);
    total = n.now() - t0;
    sum = (engine.node(0).breakdown() - b0);
    sum += (engine.node(1).breakdown() - c0);
  });
  // Active charges on both ends + caller idle (attributed Net) == total:
  // the "Total = AM + Threads + Runtime" identity of Table 4, given that
  // the caller's breakdown covers its whole elapsed window and the
  // receiver's active work happens strictly inside the caller's waits.
  SimTime caller_active = total;  // node 0 breakdown over the window
  EXPECT_EQ(engine.node(0).breakdown().total(), engine.node(0).now());
  EXPECT_GE(sum.total(), caller_active);
}

}  // namespace
}  // namespace tham
