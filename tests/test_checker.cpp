// Tests for tham-check (src/check): the vector-clock race detector, the
// terminal-state auditor, and the AM protocol lint.
//
// Two layers of coverage:
//
//  * CheckerUnit.* drives a Checker instance directly through its hook API.
//    These run in every build flavor — the checker library is always
//    compiled — and pin down the happens-before model itself.
//
//  * CheckerSeeded.* plants real defects in simulated programs (a data race
//    across a yield, an orphaned AM reply, a lost-wakeup deadlock) and
//    asserts the auto-attached checker reports each one with the right
//    node, task, and virtual time. These need the THAM_HOOK call sites and
//    skip in THAM_CHECK=OFF builds.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "am/am.hpp"
#include "check/checked.hpp"
#include "check/checker.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "threads/threads.hpp"

namespace tham {
namespace {

using check::Checker;
using check::Kind;

/// First diagnostic of a kind, or nullptr.
const check::Diagnostic* find_diag(const Checker& chk, Kind k) {
  for (const auto& d : chk.diagnostics()) {
    if (d.kind == k) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Unit tests: the happens-before model, driven through the raw hook API.
// ---------------------------------------------------------------------------

TEST(CheckerUnit, UnorderedAccessesAreAReportedRace) {
  Checker chk;
  int x = 0;
  chk.on_task_start(0, 1, "writer");
  chk.on_task_start(0, 2, "reader");

  chk.on_task_resume(0, 1, 0);
  chk.on_write(&x, "x");
  chk.on_task_out(0, 1, 0);

  chk.on_task_resume(0, 2, 7);
  chk.on_read(&x, "x");
  chk.on_task_out(0, 2, 7);

  ASSERT_EQ(chk.count(Kind::Race), 1u);
  const auto& d = chk.diagnostics().front();
  EXPECT_EQ(d.kind, Kind::Race);
  EXPECT_EQ(d.node, 0);
  EXPECT_EQ(d.task, 2u);
  EXPECT_EQ(d.task_name, "reader");
  EXPECT_EQ(d.vtime, 7u);
  EXPECT_NE(d.message.find("'x'"), std::string::npos);
  EXPECT_NE(d.message.find("writer"), std::string::npos);
}

TEST(CheckerUnit, MutexReleaseAcquireOrdersAccesses) {
  Checker chk;
  int x = 0;
  int mu = 0;  // any stable address works as a sync object
  chk.on_task_start(0, 1, "writer");
  chk.on_task_start(0, 2, "reader");

  chk.on_task_resume(0, 1, 0);
  chk.on_acquire(&mu);
  chk.on_write(&x, "x");
  chk.on_release(&mu);
  chk.on_task_out(0, 1, 0);

  chk.on_task_resume(0, 2, 1);
  chk.on_acquire(&mu);
  chk.on_read(&x, "x");
  chk.on_release(&mu);
  chk.on_task_out(0, 2, 1);

  EXPECT_EQ(chk.count(Kind::Race), 0u);
}

TEST(CheckerUnit, MessageDeliveryOrdersSenderWriteBeforeReceiverRead) {
  Checker chk;
  int x = 0;
  chk.on_task_start(0, 1, "sender");
  chk.on_task_start(1, 1, "receiver");

  chk.on_task_resume(0, 1, 0);
  chk.on_write(&x, "x");
  std::uint32_t id = chk.on_send(0);
  EXPECT_NE(id, 0u);
  chk.on_task_out(0, 1, 0);

  // Delivery that carries the clock id joins the sender's history into the
  // delivering task: the read is ordered after the write.
  chk.on_task_resume(1, 1, 5);
  chk.on_deliver_begin(1, 0, id, 5);
  chk.on_read(&x, "x");
  chk.on_deliver_end(1);
  chk.on_task_out(1, 1, 5);
  EXPECT_EQ(chk.count(Kind::Race), 0u);
}

TEST(CheckerUnit, UnclockedDeliveryDoesNotOrderAccesses) {
  Checker chk;
  int x = 0;
  chk.on_task_start(0, 1, "sender");
  chk.on_task_start(1, 1, "receiver");

  chk.on_task_resume(0, 1, 0);
  chk.on_write(&x, "x");
  chk.on_task_out(0, 1, 0);

  // Clock id 0 means "no snapshot": delivery creates no edge, so the
  // receiver's read races with the sender's write.
  chk.on_task_resume(1, 1, 5);
  chk.on_deliver_begin(1, 0, 0, 5);
  chk.on_read(&x, "x");
  chk.on_deliver_end(1);
  chk.on_task_out(1, 1, 5);
  EXPECT_EQ(chk.count(Kind::Race), 1u);
}

TEST(CheckerUnit, SpawnAndJoinEdgesOrderParentAndChild) {
  Checker chk;
  int before = 0;
  int after = 0;

  // Host writes, then spawns: the child inherits the write.
  chk.on_write(&before, "before");
  chk.on_task_start(0, 1, "child");
  chk.on_task_resume(0, 1, 0);
  chk.on_read(&before, "before");
  chk.on_write(&after, "after");
  chk.on_task_out(0, 1, 0);
  chk.on_task_finish(0, 1);
  EXPECT_EQ(chk.count(Kind::Race), 0u);

  // Host reads the child's write only after the join edge.
  chk.on_task_join(0, 1);
  chk.on_task_reaped(0, 1);
  chk.on_read(&after, "after");
  EXPECT_EQ(chk.count(Kind::Race), 0u);
}

TEST(CheckerUnit, JoinlessReadOfChildWriteRaces) {
  Checker chk;
  int after = 0;
  chk.on_task_start(0, 1, "child");
  chk.on_task_resume(0, 1, 0);
  chk.on_write(&after, "after");
  chk.on_task_out(0, 1, 0);
  chk.on_task_finish(0, 1);
  chk.on_read(&after, "after");  // host never joined
  EXPECT_EQ(chk.count(Kind::Race), 1u);
}

TEST(CheckerUnit, VarDestroyForgetsHistory) {
  Checker chk;
  int x = 0;
  chk.on_task_start(0, 1, "writer");
  chk.on_task_resume(0, 1, 0);
  chk.on_write(&x, "x");
  chk.on_task_out(0, 1, 0);
  chk.on_var_destroy(&x);
  // A "new variable" at the same address must not pair with the dead one.
  chk.on_task_start(0, 2, "reader");
  chk.on_task_resume(0, 2, 1);
  chk.on_read(&x, "x");
  chk.on_task_out(0, 2, 1);
  EXPECT_EQ(chk.count(Kind::Race), 0u);
}

TEST(CheckerUnit, AmProtocolLintCatchesPairingViolations) {
  Checker chk;

  // Reply with no handler frame open: orphaned.
  chk.on_am_reply(0, 3);
  EXPECT_EQ(chk.count(Kind::AmProtocol), 1u);
  EXPECT_NE(chk.diagnostics().back().message.find("outside"),
            std::string::npos);

  // Reply twice inside one frame: the second is a violation.
  chk.on_deliver_begin(0, 2, 0, 0);
  chk.on_am_reply(0, 2);
  chk.on_am_reply(0, 2);
  chk.on_deliver_end(0);
  EXPECT_EQ(chk.count(Kind::AmProtocol), 2u);

  // Reply addressed to a node other than the requester.
  chk.on_deliver_begin(0, 2, 0, 0);
  chk.on_am_reply(0, 1);
  chk.on_deliver_end(0);
  EXPECT_EQ(chk.count(Kind::AmProtocol), 3u);

  // Non-empty bulk transfer into a null destination.
  chk.on_am_bulk_send(0, nullptr, 16);
  EXPECT_EQ(chk.count(Kind::AmProtocol), 4u);
  // Zero-length transfer to null is fine (nothing moves).
  chk.on_am_bulk_send(0, nullptr, 0);
  EXPECT_EQ(chk.count(Kind::AmProtocol), 4u);
}

TEST(CheckerUnit, TerminalAuditReportsStuckTasksInboxesAndLeaks) {
  Checker chk;
  chk.audit_stuck_task(1, 7, "waiter", "Blocked", 42);
  chk.audit_inbox(2, 3, /*artifacts=*/0, 100, 0, 400);
  chk.audit_pool(2, 64, 60, 1, 400);  // 64 != 60 free + 1 pending
  chk.finish_run();

  const auto* dl = find_diag(chk, Kind::Deadlock);
  ASSERT_NE(dl, nullptr);
  EXPECT_EQ(dl->node, 1);
  EXPECT_EQ(dl->task, 7u);
  EXPECT_EQ(dl->vtime, 42u);
  EXPECT_NE(dl->message.find("Blocked"), std::string::npos);

  const auto* lost = find_diag(chk, Kind::LostMessage);
  ASSERT_NE(lost, nullptr);
  EXPECT_EQ(lost->node, 2);

  const auto* leak = find_diag(chk, Kind::LeakedRecord);
  ASSERT_NE(leak, nullptr);
  EXPECT_EQ(leak->node, 2);
}

TEST(CheckerUnit, InstallStacksAndRestores) {
  Checker outer;
  outer.install();
  EXPECT_EQ(Checker::active(), &outer);
  {
    Checker inner;
    inner.install();
    EXPECT_EQ(Checker::active(), &inner);
    inner.uninstall();
  }
  EXPECT_EQ(Checker::active(), &outer);
  outer.uninstall();
  EXPECT_EQ(Checker::active(), nullptr);
}

// ---------------------------------------------------------------------------
// Engine attachment.
// ---------------------------------------------------------------------------

TEST(CheckerAttach, ScopedAutoAttachControlsEngineChecker) {
  {
    check::ScopedAutoAttach off(false);
    sim::Engine e(1);
    EXPECT_EQ(e.checker(), nullptr);
  }
  if (check::kHooksCompiledIn) {
    check::ScopedAutoAttach on(true);
    sim::Engine e(1);
    EXPECT_NE(e.checker(), nullptr);
    EXPECT_EQ(Checker::active(), e.checker());
  }
}

// ---------------------------------------------------------------------------
// Seeded defects: real simulated programs with planted bugs.
// ---------------------------------------------------------------------------

#define REQUIRE_HOOKS()                                              \
  do {                                                               \
    if (!check::kHooksCompiledIn)                                    \
      GTEST_SKIP() << "runtime built with THAM_CHECK=OFF";           \
  } while (0)

TEST(CheckerSeeded, RaceAcrossYieldIsReported) {
  REQUIRE_HOOKS();
  sim::Engine e(1);
  ASSERT_NE(e.checker(), nullptr);

  checked<int> shared;
  // The writer yields between two writes; the reader reads with no lock.
  // The cooperative schedule happens to serialize them, but nothing orders
  // the accesses — a preemptive machine could interleave them anywhere.
  e.node(0).spawn(
      [&] {
        shared.set(1, "shared-counter");
        sim::this_node().yield();
        shared.set(2, "shared-counter");
      },
      "racy-writer");
  e.node(0).spawn([&] { (void)shared.get("shared-counter"); },
                  "racy-reader");
  e.run();

  const Checker& chk = *e.checker();
  ASSERT_GE(chk.count(Kind::Race), 1u);
  const auto* d = find_diag(chk, Kind::Race);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, 0);
  EXPECT_EQ(d->task_name, "racy-reader");
  // The reader was switched in exactly once before the read.
  EXPECT_EQ(d->vtime, e.cost().context_switch);
  EXPECT_NE(d->message.find("'shared-counter'"), std::string::npos);
  EXPECT_NE(d->message.find("racy-writer"), std::string::npos);
}

TEST(CheckerSeeded, MutexProtectedSharingIsClean) {
  REQUIRE_HOOKS();
  sim::Engine e(1);
  ASSERT_NE(e.checker(), nullptr);

  checked<int> shared;
  threads::Mutex mu;
  e.node(0).spawn(
      [&] {
        mu.lock();
        shared.set(1, "shared-counter");
        mu.unlock();
      },
      "writer");
  e.node(0).spawn(
      [&] {
        mu.lock();
        (void)shared.get("shared-counter");
        mu.unlock();
      },
      "reader");
  e.run();
  EXPECT_EQ(e.checker()->count(Kind::Race), 0u);
}

TEST(CheckerSeeded, OrphanedAmReplyIsReported) {
  REQUIRE_HOOKS();
  sim::Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  am::HandlerId noop =
      am.register_short("noop", [](sim::Node&, am::Token, const am::Words&) {});

  // A task forges a reply token and replies from outside any handler.
  e.node(0).spawn([&] { am.reply(am::Token{1}, noop, 0); }, "forger");
  e.run();

  const Checker& chk = *e.checker();
  const auto* d = find_diag(chk, Kind::AmProtocol);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, 0);
  EXPECT_EQ(d->task_name, "forger");
  EXPECT_NE(d->message.find("outside"), std::string::npos);
  // The forged reply lands on node 1, which never polls: the terminal
  // audit also reports it as a lost message.
  EXPECT_GE(chk.count(Kind::LostMessage), 1u);
}

TEST(CheckerSeeded, DuplicateReplyIsReported) {
  REQUIRE_HOOKS();
  sim::Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);
  am::HandlerId noop =
      am.register_short("noop", [](sim::Node&, am::Token, const am::Words&) {});
  am::HandlerId dup = am.register_short(
      "dup", [&](sim::Node&, am::Token tok, const am::Words&) {
        am.reply(tok, noop);
        am.reply(tok, noop);  // planted bug: AM allows at most one reply
      });

  e.node(0).spawn([&] { am.request(1, dup); }, "requester");
  for (int n = 0; n < 2; ++n) {
    e.node(n).spawn(
        [&, n] {
          while (e.node(n).wait_for_inbox(true)) am.poll();
        },
        "poller", /*daemon=*/true);
  }
  e.run();

  const Checker& chk = *e.checker();
  const auto* d = find_diag(chk, Kind::AmProtocol);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, 1);  // the handler runs at the receiver
  EXPECT_NE(d->message.find("more than once"), std::string::npos);
}

TEST(CheckerSeeded, LostWakeupDeadlockIsReported) {
  REQUIRE_HOOKS();
  sim::Engine e(2);
  e.allow_deadlock(true);

  threads::Mutex mu;
  threads::CondVar cv;
  bool flag = false;
  // Classic lost wakeup: the waiter checks the flag, but no one ever
  // signals. The engine drains with the task parked in cv.wait().
  e.node(1).spawn(
      [&] {
        mu.lock();
        while (!flag) cv.wait(mu);
        mu.unlock();
      },
      "waiter");
  e.run();

  EXPECT_TRUE(e.deadlocked());
  const Checker& chk = *e.checker();
  const auto* d = find_diag(chk, Kind::Deadlock);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->node, 1);
  EXPECT_EQ(d->task_name, "waiter");
  EXPECT_NE(d->message.find("Blocked"), std::string::npos);
  EXPECT_EQ(d->vtime, e.node(1).now());
}

}  // namespace
}  // namespace tham
