// Regression tests for the allocation-free message hot path: the inline
// delivery closure, the pooled inbox records, the per-channel FIFO
// guarantee, task-shell recycling, and the end-to-end properties the
// refactor must preserve — zero steady-state heap traffic (asserted via
// the counting allocator hook linked into this binary) and bit-identical
// virtual-time results across repeated runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "check/checker.hpp"
#include "common/alloc_count.hpp"
#include "common/types.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/inline_handler.hpp"
#include "sim/message_pool.hpp"
#include "sim/node.hpp"
#include "sim/quad_heap.hpp"
#include "sim/ring_queue.hpp"
#include "transport/transport.hpp"

namespace tham {
namespace {

using sim::Engine;
using sim::InlineHandler;
using sim::Message;
using sim::MessagePool;
using sim::Node;

// ---------------------------------------------------------------------------
// InlineHandler
// ---------------------------------------------------------------------------

TEST(InlineHandler, InvokesStoredClosure) {
  Engine e(1);
  int hits = 0;
  InlineHandler h = [&hits](Node&) { ++hits; };
  ASSERT_TRUE(static_cast<bool>(h));
  h(e.node(0));
  h(e.node(0));
  EXPECT_EQ(hits, 2);
}

TEST(InlineHandler, DefaultIsEmpty) {
  InlineHandler h;
  EXPECT_FALSE(static_cast<bool>(h));
  h.reset();
  EXPECT_FALSE(static_cast<bool>(h));
}

TEST(InlineHandler, MoveTransfersOwnership) {
  Engine e(1);
  int hits = 0;
  InlineHandler a = [&hits](Node&) { ++hits; };
  InlineHandler b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b(e.node(0));
  EXPECT_EQ(hits, 1);
  // Move-assignment destroys the previous target.
  InlineHandler c = [&hits](Node&) { hits += 100; };
  c = std::move(b);
  c(e.node(0));
  EXPECT_EQ(hits, 2);
}

TEST(InlineHandler, DestroysCaptures) {
  struct Probe {
    int* live;
    explicit Probe(int* l) : live(l) { ++*live; }
    Probe(const Probe& o) : live(o.live) { ++*live; }
    Probe(Probe&& o) noexcept : live(o.live) { o.live = nullptr; }
    ~Probe() {
      if (live != nullptr) --*live;
    }
  };
  int live = 0;
  {
    Probe p(&live);
    InlineHandler h = [q = std::move(p)](Node&) {};
    EXPECT_EQ(live, 1);
    InlineHandler moved = std::move(h);
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

// ---------------------------------------------------------------------------
// QuadHeap / RingQueue
// ---------------------------------------------------------------------------

TEST(QuadHeap, PopsInOrder) {
  struct Less {
    bool operator()(int a, int b) const { return a < b; }
  };
  sim::QuadHeap<int, Less> h{Less{}};
  // Deterministic pseudo-random insertion order (no RNG in tests).
  std::uint32_t x = 12345;
  std::vector<int> inserted;
  for (int i = 0; i < 500; ++i) {
    x = x * 1664525u + 1013904223u;
    int v = static_cast<int>(x % 1000);
    h.push(v);
    inserted.push_back(v);
  }
  std::sort(inserted.begin(), inserted.end());
  for (int v : inserted) {
    ASSERT_FALSE(h.empty());
    EXPECT_EQ(h.top(), v);
    h.pop();
  }
  EXPECT_TRUE(h.empty());
}

TEST(QuadHeap, BulkPushMatchesIndividualPushes) {
  // The parallel engine's merge phase bulk-inserts batched activations
  // keyed on (arrival, node) tuples with heavy key collisions. Both repair
  // strategies — per-element sift-up for small batches and the Floyd
  // rebuild for large ones — must pop in exactly the order individual
  // pushes produce, since that order IS the deterministic schedule.
  struct Ev {
    int t;
    int node;
  };
  struct Before {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t < b.t : a.node < b.node;
    }
  };
  auto drain = [](sim::QuadHeap<Ev, Before>& h) {
    std::vector<std::pair<int, int>> out;
    while (!h.empty()) {
      out.emplace_back(h.top().t, h.top().node);
      h.pop();
    }
    return out;
  };
  std::uint32_t x = 98765;
  auto next = [&x](int mod) {
    x = x * 1664525u + 1013904223u;
    return static_cast<int>(x % static_cast<std::uint32_t>(mod));
  };
  // Seed heap contents, then two batches: one small enough to take the
  // sift-up path (added * 4 < size) and one large enough to force the
  // Floyd rebuild. Few distinct timestamps, so ties are everywhere and
  // only the unique (t, node) key keeps the order total.
  std::vector<Ev> seed, small_batch, big_batch;
  int node = 0;
  for (int i = 0; i < 200; ++i) seed.push_back(Ev{next(13), node++});
  for (int i = 0; i < 20; ++i) small_batch.push_back(Ev{next(13), node++});
  for (int i = 0; i < 400; ++i) big_batch.push_back(Ev{next(13), node++});

  sim::QuadHeap<Ev, Before> bulk{Before{}};
  sim::QuadHeap<Ev, Before> serial{Before{}};
  for (const Ev& e : seed) {
    bulk.push(e);
    serial.push(e);
  }
  bulk.bulk_push(small_batch.begin(), small_batch.end());
  for (const Ev& e : small_batch) serial.push(e);
  bulk.bulk_push(big_batch.begin(), big_batch.end());
  for (const Ev& e : big_batch) serial.push(e);
  EXPECT_EQ(drain(bulk), drain(serial));

  // Degenerate shapes the merge phase produces: a batch into an empty
  // heap (whole-queue rebuild) and an empty batch (no-op).
  sim::QuadHeap<Ev, Before> fresh{Before{}};
  fresh.bulk_push(big_batch.begin(), big_batch.end());
  std::vector<Ev> none;
  fresh.bulk_push(none.begin(), none.end());
  sim::QuadHeap<Ev, Before> ref{Before{}};
  for (const Ev& e : big_batch) ref.push(e);
  EXPECT_EQ(drain(fresh), drain(ref));
}

TEST(RingQueue, FifoAcrossGrowth) {
  sim::RingQueue<int> q;
  // Interleave pushes and pops so the ring wraps, then force growth.
  for (int i = 0; i < 5; ++i) q.push_back(i);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

// ---------------------------------------------------------------------------
// MessagePool
// ---------------------------------------------------------------------------

Message pool_msg(SimTime arrival, std::uint64_t seq, InlineHandler fn) {
  Message m;
  m.arrival = arrival;
  m.src = 0;
  m.seq = seq;
  m.deliver = std::move(fn);
  return m;
}

TEST(MessagePool, OrdersByArrivalThenSeq) {
  Engine e(1);
  MessagePool p;
  std::vector<int> order;
  auto tag = [&order](int i) {
    return InlineHandler([&order, i](Node&) { order.push_back(i); });
  };
  // Two arrival times, interleaved seq numbers; equal arrivals must pop in
  // send (seq) order — this is what keeps delivery deterministic.
  p.push(pool_msg(usec(20), 5, tag(5)));
  p.push(pool_msg(usec(10), 2, tag(2)));
  p.push(pool_msg(usec(10), 0, tag(0)));
  p.push(pool_msg(usec(20), 3, tag(3)));
  p.push(pool_msg(usec(10), 1, tag(1)));
  while (!p.empty()) {
    Message m = p.pop();
    m.deliver(e.node(0));
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 5}));
}

TEST(MessagePool, RecyclesRecordsAfterRelease) {
  MessagePool p;
  EXPECT_EQ(p.capacity(), 0u);
  // Fill one slab exactly; capacity grows once and then holds steady no
  // matter how many push/pop cycles run through it.
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      p.push(pool_msg(usec(1), i, InlineHandler([](Node&) {})));
    }
    EXPECT_EQ(p.pending(), 64u);
    while (!p.empty()) (void)p.pop();
  }
  EXPECT_EQ(p.capacity(), 64u);
  EXPECT_EQ(p.free_records(), 64u);
}

TEST(MessagePool, GrowsBeyondOneSlab) {
  MessagePool p;
  for (std::uint64_t i = 0; i < 200; ++i) {
    p.push(pool_msg(usec(1), i, InlineHandler([](Node&) {})));
  }
  EXPECT_EQ(p.pending(), 200u);
  EXPECT_GE(p.capacity(), 200u);
  std::uint64_t expect = 0;
  while (!p.empty()) {
    EXPECT_EQ(p.top().seq, expect);
    (void)p.pop();
    ++expect;
  }
  EXPECT_EQ(expect, 200u);
}

// ---------------------------------------------------------------------------
// Per-channel FIFO regression
// ---------------------------------------------------------------------------

// A small message sent right after a large bulk transfer on the same
// (src, dst) channel must not overtake it, even though its wire time is
// shorter. This pins the channel-clock behavior the pooled inbox must
// preserve.
TEST(Network, SameChannelNeverReorders) {
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  std::vector<int> order;
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        for (int i = 0; i < 16; ++i) {
          bool bulk = (i % 2 == 0);
          ch.send(n, 1, bulk ? net::Wire::AmBulk : net::Wire::AmShort,
                  bulk ? 8192 : 0,
                  [&order, i](Node&) { order.push_back(i); });
        }
      },
      "sender");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        while (n.wait_for_inbox(/*poll_only=*/true)) {
          while (n.poll_one()) {
          }
        }
      },
      "poller", /*daemon=*/true);
  e.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state (counting allocator hook)
// ---------------------------------------------------------------------------

// The acceptance criterion of the hot-path refactor: once pools have
// reached their high-water mark, a send/deliver cycle touches the heap
// zero times. The warmup blast grows the inbox slabs, the engine heap,
// and the run queue; the measured blast must then be allocation-free.
TEST(HotPath, SteadyStateSendDeliverIsAllocationFree) {
  ASSERT_TRUE(alloc_counting_linked());
  // With the checker detached, the zero-allocation guarantee must hold in
  // THAM_CHECK=ON builds too: the hooks themselves cost nothing when no
  // checker is installed (and vanish entirely in OFF builds).
  check::ScopedAutoAttach no_checker(false);
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  std::uint64_t delivered = 0;
  Engine e(2);
  net::Network net(e);
  transport::Channel ch(net);
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        auto blast = [&](int count) {
          for (int i = 0; i < count; ++i) {
            ch.send(n, 1, net::Wire::AmShort, 0,
                    [&delivered](Node&) { ++delivered; });
            n.advance(usec(1));
          }
          // Wait out the wire latency so every send has been delivered
          // (and its pool record released) before we snapshot.
          n.advance(usec(200));
        };
        blast(2000);
        before = alloc_counts().news;
        blast(2000);
        after = alloc_counts().news;
      },
      "sender");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        while (n.wait_for_inbox(/*poll_only=*/true)) {
          while (n.poll_one()) {
          }
        }
      },
      "poller", /*daemon=*/true);
  e.run();
  EXPECT_EQ(delivered, 4000u);
  EXPECT_EQ(after - before, 0u)
      << "steady-state message path performed heap allocations";
}

// The AM handler tables are sim::InlineFn entries in a pre-reserved vector:
// registering a handler and dispatching short messages through it must not
// touch the heap — registration from the very first handler (the table is
// reserved at construction), dispatch once the message pools are warm.
TEST(HotPath, AmHandlerRegistrationAndDispatchAreAllocationFree) {
  ASSERT_TRUE(alloc_counting_linked());
  check::ScopedAutoAttach no_checker(false);
  Engine e(2);
  net::Network net(e);
  am::AmLayer am(net);  // reserves the handler table once, here
  std::uint64_t reg_before = alloc_counts().news;
  std::uint64_t counter = 0;
  am::HandlerId h = 0;
  for (int i = 0; i < 32; ++i) {
    h = am.register_short("hotpath.count",
                          [&counter](Node&, am::Token, const am::Words&) {
                            ++counter;
                          });
  }
  EXPECT_EQ(alloc_counts().news - reg_before, 0u)
      << "AM handler registration performed heap allocations";

  std::uint64_t before = 0;
  std::uint64_t after = 0;
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        auto blast = [&](int count) {
          for (int i = 0; i < count; ++i) {
            am.request(1, h, static_cast<am::Word>(i));
            n.advance(usec(1));
          }
          n.advance(usec(200));  // wait out delivery of the tail
        };
        blast(2000);
        before = alloc_counts().news;
        blast(2000);
        after = alloc_counts().news;
      },
      "sender");
  e.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        while (n.wait_for_inbox(/*poll_only=*/true)) {
          while (n.poll_one()) {
          }
        }
      },
      "poller", /*daemon=*/true);
  e.run();
  EXPECT_EQ(counter, 4000u);
  EXPECT_EQ(after - before, 0u)
      << "steady-state AM short dispatch performed heap allocations";
}

// Task shells, fiber stacks, and the inline closure body must all recycle:
// a warm spawn/join churn loop performs no heap allocations either.
TEST(HotPath, SteadyStateTaskChurnIsAllocationFree) {
  ASSERT_TRUE(alloc_counting_linked());
  check::ScopedAutoAttach no_checker(false);  // see SendDeliver test above
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  Engine e(1);
  e.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        auto churn = [&](int count) {
          for (int i = 0; i < count; ++i) {
            sim::Task* t = n.spawn([&n] { n.advance(usec(1)); }, "worker");
            n.join(t);
          }
        };
        churn(64);  // warm the task free list and stack pool
        before = alloc_counts().news;
        churn(64);
        after = alloc_counts().news;
      },
      "driver");
  e.run();
  EXPECT_EQ(after - before, 0u)
      << "warm spawn/join churn performed heap allocations";
}

// ---------------------------------------------------------------------------
// Determinism guard
// ---------------------------------------------------------------------------

// Running the same workload twice must give bit-identical virtual time and
// per-component breakdowns. The inline-closure/pool refactor changed every
// container on the hot path; this guards the (arrival, seq) total order.
TEST(Determinism, Em3dRepeatRunsAreBitIdentical) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 120;
  cfg.degree = 5;
  cfg.remote_fraction = 0.6;
  cfg.iters = 3;
  for (auto version : {apps::em3d::Version::Base, apps::em3d::Version::Bulk}) {
    apps::RunResult a = apps::em3d::run_splitc(cfg, version);
    apps::RunResult b = apps::em3d::run_splitc(cfg, version);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.context_switches, b.context_switches);
    EXPECT_EQ(a.checksum, b.checksum);
    for (int c = 0; c < sim::kNumComponents; ++c) {
      EXPECT_EQ(a.breakdown.t[c], b.breakdown.t[c])
          << "component " << c << " diverged between identical runs";
    }
  }
}

TEST(Determinism, Em3dCcxxRepeatRunsAreBitIdentical) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 120;
  cfg.degree = 5;
  cfg.remote_fraction = 0.6;
  cfg.iters = 3;
  apps::RunResult a = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Base);
  apps::RunResult b = apps::em3d::run_ccxx(cfg, apps::em3d::Version::Base);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.thread_creates, b.thread_creates);
  for (int c = 0; c < sim::kNumComponents; ++c) {
    EXPECT_EQ(a.breakdown.t[c], b.breakdown.t[c]);
  }
}

}  // namespace
}  // namespace tham
