// Regression tests pinning the paper's headline *shapes* (EXPERIMENTS.md):
// if a future change to the runtimes or the cost model breaks a ranking or
// pushes a ratio out of the paper's band, these tests fail. They are the
// executable form of the reproduction claims.

#include <gtest/gtest.h>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "msg/mpl.hpp"
#include "splitc/world.hpp"

namespace tham {
namespace {

using sim::Engine;

// ---------------------------------------------------------------------------
// Table 4 bands (warm per-op microseconds, paper value +/- ~15%)
// ---------------------------------------------------------------------------

struct Probe {
  long nop() { return 0; }
  long put(std::vector<double> v) { return static_cast<long>(v.size()); }
  std::vector<double> get() { return std::vector<double>(20, 1.0); }
};

double cc_per_op(ccxx::RmiMode mode, int payload_words) {
  Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto nop = rt.def_method("Probe::nop", &Probe::nop, mode);
  auto put = rt.def_method("Probe::put", &Probe::put, mode);
  auto obj = rt.place<Probe>(1);
  std::vector<double> data(static_cast<std::size_t>(payload_words) / 2, 1.0);
  double out = 0;
  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    auto call = [&] {
      if (payload_words == 0) {
        (void)rt.rmi(obj, nop);
      } else {
        (void)rt.rmi(obj, put, data);
      }
    };
    call();  // warm
    SimTime t0 = n.now();
    for (int i = 0; i < 500; ++i) call();
    out = to_usec(n.now() - t0) / 500;
  });
  return out;
}

TEST(Table4Shape, NullRmiVariantsOrderedByThreadWork) {
  double simple = cc_per_op(ccxx::RmiMode::Simple, 0);
  double blocking = cc_per_op(ccxx::RmiMode::Blocking, 0);
  double threaded = cc_per_op(ccxx::RmiMode::Threaded, 0);
  double atomic = cc_per_op(ccxx::RmiMode::Atomic, 0);
  // Paper: 67 < 77 < 87 <= 88.
  EXPECT_LT(simple, blocking);
  EXPECT_LT(blocking, threaded);
  EXPECT_LE(threaded, atomic);
  // Bands (+/- ~15% of the paper's values).
  EXPECT_NEAR(simple, 67, 12);
  EXPECT_NEAR(blocking, 77, 12);
  EXPECT_NEAR(threaded, 87, 14);
  EXPECT_NEAR(atomic, 88, 14);
}

TEST(Table4Shape, NullRmiBeatsNativeMessagingLayer) {
  // Paper: the 0-Word Simple RMI (67us) is 21us *faster* than IBM MPL (88).
  double simple = cc_per_op(ccxx::RmiMode::Simple, 0);
  Engine engine(2);
  net::Network net(engine);
  msg::MplLayer mpl(net);
  SimTime rt_time = 0;
  engine.node(0).spawn(
      [&] {
        char c = 'x';
        SimTime t0 = sim::this_node().now();
        for (int i = 0; i < 200; ++i) {
          mpl.send(1, 1, &c, 0);
          mpl.recv(1, 2, &c, 1);
        }
        rt_time = (sim::this_node().now() - t0) / 200;
      },
      "pinger");
  engine.node(1).spawn(
      [&] {
        char c = 'y';
        for (int i = 0; i < 200; ++i) {
          mpl.recv(0, 1, &c, 1);
          mpl.send(0, 2, &c, 0);
        }
      },
      "ponger");
  engine.run();
  EXPECT_LT(simple, to_usec(rt_time));
}

TEST(Table4Shape, BulkReadCostsMoreThanBulkWrite) {
  // Paper: 177 vs 154 — the extra copy on the reply path.
  Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto put = rt.def_method("Probe::put", &Probe::put);
  auto get = rt.def_method("Probe::get", &Probe::get);
  auto obj = rt.place<Probe>(1);
  std::vector<double> data(20, 1.0);
  double w = 0, r = 0;
  rt.run_main([&] {
    sim::Node& n = sim::this_node();
    (void)rt.rmi(obj, put, data);
    (void)rt.rmi(obj, get);
    SimTime t0 = n.now();
    for (int i = 0; i < 300; ++i) (void)rt.rmi(obj, put, data);
    SimTime t1 = n.now();
    for (int i = 0; i < 300; ++i) (void)rt.rmi(obj, get);
    w = to_usec(t1 - t0) / 300;
    r = to_usec(n.now() - t1) / 300;
  });
  EXPECT_GT(r, w);
  EXPECT_LT(r, w * 1.4);  // by a copy, not by a round trip
}

TEST(Table4Shape, PrefetchHidesLatencyLessEffectivelyInCcxx) {
  // Paper: Split-C pipelines split-phase gets at ~12us/elem; CC++'s
  // parfor threads cost ~35us/elem — latency hiding attenuated by thread
  // management. Check the ratio band (2-4x).
  double sc = 0, cc = 0;
  {
    Engine engine(2);
    net::Network net(engine);
    am::AmLayer am(net);
    splitc::World world(engine, net, am);
    static std::vector<double> remote(20, 1.0), local(20, 0.0);
    world.run([&] {
      if (splitc::MYPROC() == 0) {
        sim::Node& n = sim::this_node();
        SimTime t0 = n.now();
        for (int it = 0; it < 200; ++it) {
          for (int i = 0; i < 20; ++i) {
            splitc::get(&local[static_cast<std::size_t>(i)],
                        splitc::global_ptr<double>(
                            1, &remote[static_cast<std::size_t>(i)]));
          }
          splitc::sync();
        }
        sc = to_usec(n.now() - t0) / 200 / 20;
      }
      splitc::barrier();
    });
  }
  {
    Engine engine(2);
    net::Network net(engine);
    am::AmLayer am(net);
    ccxx::Runtime rt(engine, net, am);
    static std::vector<double> cells(20, 1.0);
    rt.run_main([&] {
      sim::Node& n = sim::this_node();
      SimTime t0 = n.now();
      for (int it = 0; it < 200; ++it) {
        rt.parfor(0, 20, [&rt](int i) {
          (void)rt.read(ccxx::gvar<double>{
              1, &cells[static_cast<std::size_t>(i)]});
        });
      }
      cc = to_usec(n.now() - t0) / 200 / 20;
    });
  }
  EXPECT_GT(cc / sc, 1.8);
  EXPECT_LT(cc / sc, 4.5);
}

// ---------------------------------------------------------------------------
// Application shapes (reduced sizes for test speed)
// ---------------------------------------------------------------------------

TEST(AppShape, Em3dBaseGapShrinksWithRemoteFraction) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 240;
  cfg.degree = 10;
  cfg.iters = 4;
  auto ratio = [&](double f) {
    cfg.remote_fraction = f;
    double sc = to_sec(
        apps::em3d::run_splitc(cfg, apps::em3d::Version::Base).elapsed);
    double cc = to_sec(
        apps::em3d::run_ccxx(cfg, apps::em3d::Version::Base).elapsed);
    return cc / sc;
  };
  double at10 = ratio(0.1);
  double at100 = ratio(1.0);
  EXPECT_GT(at10, at100);       // the local-gp-overhead effect
  EXPECT_NEAR(at100, 1.8, 0.5);  // converges to ~2 (paper)
}

TEST(AppShape, Em3dOptimizationsHelpBothLanguagesHeavily) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 240;
  cfg.degree = 10;
  cfg.iters = 4;
  cfg.remote_fraction = 1.0;
  for (bool use_cc : {false, true}) {
    auto run = [&](apps::em3d::Version v) {
      return use_cc ? apps::em3d::run_ccxx(cfg, v).elapsed
                    : apps::em3d::run_splitc(cfg, v).elapsed;
    };
    SimTime base = run(apps::em3d::Version::Base);
    SimTime ghost = run(apps::em3d::Version::Ghost);
    SimTime bulk = run(apps::em3d::Version::Bulk);
    // Paper: ghost cuts base by 87-89%; bulk cuts ghost by >90%.
    EXPECT_LT(ghost, base / 4) << (use_cc ? "cc" : "sc");
    EXPECT_LT(bulk, ghost) << (use_cc ? "cc" : "sc");
  }
}

TEST(AppShape, WaterGapInPaperBand) {
  apps::water::Config cfg;
  cfg.molecules = 64;
  double sc = to_sec(
      apps::water::run_splitc(cfg, apps::water::Version::Atomic).elapsed);
  double cc = to_sec(
      apps::water::run_ccxx(cfg, apps::water::Version::Atomic).elapsed);
  double ratio = cc / sc;
  EXPECT_GT(ratio, 2.0);  // paper band: 2-6x
  EXPECT_LT(ratio, 6.0);
}

TEST(AppShape, LuGapNearPaperValue) {
  apps::lu::Config cfg;
  cfg.n = 256;  // quarter-size for test speed; same block structure
  cfg.block = 16;
  double sc = to_sec(apps::lu::run_splitc(cfg).elapsed);
  double cc = to_sec(apps::lu::run_ccxx(cfg).elapsed);
  double ratio = cc / sc;
  EXPECT_GT(ratio, 2.0);  // paper: 3.6 at full size
  EXPECT_LT(ratio, 6.0);
}

TEST(AppShape, NexusOrderOfMagnitudeSlowerOnCommBoundApp) {
  apps::em3d::Config cfg;
  cfg.graph_nodes = 240;
  cfg.degree = 10;
  cfg.iters = 3;
  cfg.remote_fraction = 1.0;
  double tham = to_sec(apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost,
                                            sp2_cost_model())
                           .elapsed);
  double nexus = to_sec(apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost,
                                             nexus_cost_model())
                            .elapsed);
  EXPECT_GT(nexus / tham, 8.0);  // paper: 29x for em3d-ghost
  EXPECT_LT(nexus / tham, 60.0);
}

TEST(AppShape, ContentionlessLockFractionMatchesPaper) {
  // Paper: "about 95% of lock acquisitions are contention-less".
  apps::water::Config cfg;
  cfg.molecules = 32;
  sim::Engine engine(cfg.procs);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  apps::water::run_ccxx(rt, cfg, apps::water::Version::Atomic);
  std::uint64_t acq = 0, cont = 0;
  for (NodeId i = 0; i < cfg.procs; ++i) {
    acq += engine.node(i).counters().lock_acquires;
    cont += engine.node(i).counters().lock_contended;
  }
  ASSERT_GT(acq, 1000u);
  EXPECT_LT(static_cast<double>(cont) / static_cast<double>(acq), 0.05);
}

}  // namespace
}  // namespace tham
