// Golden-result regression suite: canonical end-to-end results for the
// paper's three applications (EM3D, Water, LU) at fixed configurations,
// recorded in tests/golden/*.json. Every workload is replayed under BOTH
// the sequential engine and the 4-thread parallel engine and compared
// field-for-field against the golden record — elapsed virtual time,
// checksum, message/thread/switch/sync counts, and the per-node dispatch
// digest fold — so any drift in simulation semantics (or any divergence
// between the two executors) fails loudly.
//
// Regenerating after an intentional semantic change:
//
//   ./tests/test_golden --regen
//
// re-runs every workload, asserts sequential == parallel, and rewrites
// the JSON files in the source tree (THAM_GOLDEN_DIR). Commit the diff
// together with the change that justified it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/serving.hpp"
#include "apps/topology.hpp"
#include "apps/water.hpp"
#include "ccxx/runtime.hpp"
#include "common/hash.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "transport/reliable.hpp"

namespace {

using namespace tham;
using apps::RunResult;
namespace em3d = apps::em3d;
namespace water = apps::water;
namespace lu = apps::lu;

struct GoldenRecord {
  SimTime elapsed = 0;
  double checksum = 0;
  std::uint64_t messages = 0;
  std::uint64_t thread_creates = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t sync_ops = 0;
  std::uint64_t digest = 0;  ///< fold of per-node (now, dispatch_digest)

  bool operator==(const GoldenRecord& o) const = default;
};

GoldenRecord make_record(const RunResult& r, sim::Engine& e) {
  GoldenRecord g;
  g.elapsed = r.elapsed;
  g.checksum = r.checksum;
  g.messages = r.messages;
  g.thread_creates = r.thread_creates;
  g.context_switches = r.context_switches;
  g.sync_ops = r.sync_ops;
  for (NodeId i = 0; i < e.size(); ++i) {
    const sim::Node& n = e.node(i);
    g.digest = hash_mix(g.digest, static_cast<std::uint64_t>(n.now()));
    g.digest = hash_mix(g.digest, n.counters().dispatch_digest);
  }
  return g;
}

// --- Workload registry ------------------------------------------------------
// Paper configurations scaled to regression-test size (same shape: 4
// processors, same degree/block structure, fewer iterations/elements).

em3d::Config em3d_cfg() {
  em3d::Config c;
  c.graph_nodes = 400;
  c.degree = 10;
  c.remote_fraction = 0.5;
  c.iters = 3;
  return c;
}

water::Config water_cfg() {
  water::Config c;
  c.molecules = 32;
  c.steps = 2;
  return c;
}

lu::Config lu_cfg() {
  lu::Config c;
  c.n = 96;
  c.block = 8;
  return c;
}

struct Workload {
  const char* file;  ///< golden file stem ("em3d", "water", "lu")
  const char* key;   ///< record key within the file
  GoldenRecord (*run)(int threads);
};

template <class Fn>
GoldenRecord with_machine(int threads, int procs, Fn&& body) {
  sim::Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  RunResult r = body(engine, net, am);
  return make_record(r, engine);
}

template <em3d::Version V, bool Ccxx>
GoldenRecord run_em3d(int threads) {
  em3d::Config cfg = em3d_cfg();
  return with_machine(threads, cfg.procs,
                      [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
                        if constexpr (Ccxx) {
                          ccxx::Runtime rt(e, n, a);
                          return em3d::run_ccxx(rt, cfg, V);
                        } else {
                          return em3d::run_splitc(e, n, a, cfg, V);
                        }
                      });
}

template <water::Version V, bool Ccxx>
GoldenRecord run_water(int threads) {
  water::Config cfg = water_cfg();
  return with_machine(threads, cfg.procs,
                      [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
                        if constexpr (Ccxx) {
                          ccxx::Runtime rt(e, n, a);
                          return water::run_ccxx(rt, cfg, V);
                        } else {
                          return water::run_splitc(e, n, a, cfg, V);
                        }
                      });
}

// A lossy variant of the machine: the same workload over transport::Reliable
// with 5% injected loss (plus dups and delay spikes). The fault pattern is a
// pure function of the plan seed and per-source sequence numbers, so these
// records pin down the full lossy protocol behavior — retransmission times,
// dedup, dispatch order — and both engines must reproduce them exactly.
template <class Fn>
GoldenRecord with_lossy_machine(int threads, int procs, Fn&& body) {
  sim::Engine engine(procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());
  fault::Plan plan;
  plan.seed = 20250807;
  plan.loss = 0.05;
  plan.dup = 0.01;
  plan.delay = 0.02;
  plan.delay_spike = usec(40);
  fault::Injector inj(plan, engine.size());
  net.set_injector(&inj);
  RunResult r = body(engine, net, am);
  return make_record(r, engine);
}

GoldenRecord run_em3d_lossy(int threads) {
  em3d::Config cfg = em3d_cfg();
  return with_lossy_machine(
      threads, cfg.procs, [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
        return em3d::run_splitc(e, n, a, cfg, em3d::Version::Ghost);
      });
}

GoldenRecord run_water_lossy(int threads) {
  water::Config cfg = water_cfg();
  return with_lossy_machine(
      threads, cfg.procs, [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
        return water::run_splitc(e, n, a, cfg, water::Version::Atomic);
      });
}

GoldenRecord run_lu_lossy(int threads) {
  lu::Config cfg = lu_cfg();
  return with_lossy_machine(
      threads, cfg.procs, [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
        return lu::run_splitc(e, n, a, cfg);
      });
}

// Serving-fabric records: the RunResult checksum is the fabric fingerprint
// (issue/completion/rejection counts folded with both histogram digests),
// so a drifting latency or queue-depth distribution fails the comparison
// even when the message counts still line up.
GoldenRecord run_serving_cfg(int threads, const serve::Config& cfg) {
  return with_machine(threads, cfg.procs(),
                      [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
                        apps::declare_full_topology(a);
                        ccxx::Runtime rt(e, n, a);
                        return apps::serving::run_ccxx(rt, cfg);
                      });
}

GoldenRecord run_serving_open(int threads) {
  return run_serving_cfg(threads, apps::serving::small_open());
}

GoldenRecord run_serving_closed(int threads) {
  return run_serving_cfg(threads, apps::serving::small_closed());
}

GoldenRecord run_serving_lossy(int threads) {
  serve::Config cfg = apps::serving::small_open();
  return with_lossy_machine(threads, cfg.procs(),
                            [&](sim::Engine& e, net::Network& n,
                                am::AmLayer& a) {
                              apps::declare_full_topology(a);
                              ccxx::Runtime rt(e, n, a);
                              return apps::serving::run_ccxx(rt, cfg);
                            });
}

template <bool Ccxx>
GoldenRecord run_lu(int threads) {
  lu::Config cfg = lu_cfg();
  return with_machine(threads, cfg.procs,
                      [&](sim::Engine& e, net::Network& n, am::AmLayer& a) {
                        if constexpr (Ccxx) {
                          ccxx::Runtime rt(e, n, a);
                          return lu::run_ccxx(rt, cfg);
                        } else {
                          return lu::run_splitc(e, n, a, cfg);
                        }
                      });
}

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> w = {
      {"em3d", "em3d-base-splitc", run_em3d<em3d::Version::Base, false>},
      {"em3d", "em3d-base-ccxx", run_em3d<em3d::Version::Base, true>},
      {"em3d", "em3d-ghost-splitc", run_em3d<em3d::Version::Ghost, false>},
      {"em3d", "em3d-ghost-ccxx", run_em3d<em3d::Version::Ghost, true>},
      {"em3d", "em3d-bulk-splitc", run_em3d<em3d::Version::Bulk, false>},
      {"em3d", "em3d-bulk-ccxx", run_em3d<em3d::Version::Bulk, true>},
      {"water", "water-atomic-splitc",
       run_water<water::Version::Atomic, false>},
      {"water", "water-atomic-ccxx", run_water<water::Version::Atomic, true>},
      {"water", "water-prefetch-splitc",
       run_water<water::Version::Prefetch, false>},
      {"water", "water-prefetch-ccxx",
       run_water<water::Version::Prefetch, true>},
      {"lu", "lu-splitc", run_lu<false>},
      {"lu", "lu-ccxx", run_lu<true>},
      {"fault", "em3d-ghost-splitc-lossy", run_em3d_lossy},
      {"fault", "water-atomic-splitc-lossy", run_water_lossy},
      {"fault", "lu-splitc-lossy", run_lu_lossy},
      {"serving", "serving-open-rr", run_serving_open},
      {"serving", "serving-closed-lo", run_serving_closed},
      {"serving", "serving-open-rr-lossy", run_serving_lossy},
  };
  return w;
}

// --- Golden JSON I/O --------------------------------------------------------
// The files are machine-written (see --regen); the reader only accepts the
// exact shape the writer produces: one object of key -> flat field object.

std::string golden_path(const std::string& stem) {
  return std::string(THAM_GOLDEN_DIR) + "/" + stem + ".json";
}

void write_golden(const std::string& stem,
                  const std::map<std::string, GoldenRecord>& recs) {
  std::ofstream out(golden_path(stem));
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", golden_path(stem).c_str());
    std::exit(1);
  }
  out << "{\n";
  bool first = true;
  for (const auto& [key, g] : recs) {
    if (!first) out << ",\n";
    first = false;
    char checksum[64];
    std::snprintf(checksum, sizeof checksum, "%.17g", g.checksum);
    out << "  \"" << key << "\": {\n"
        << "    \"elapsed\": " << g.elapsed << ",\n"
        << "    \"checksum\": " << checksum << ",\n"
        << "    \"messages\": " << g.messages << ",\n"
        << "    \"thread_creates\": " << g.thread_creates << ",\n"
        << "    \"context_switches\": " << g.context_switches << ",\n"
        << "    \"sync_ops\": " << g.sync_ops << ",\n"
        << "    \"digest\": \"" << std::hex << g.digest << std::dec
        << "\"\n  }";
  }
  out << "\n}\n";
}

std::map<std::string, GoldenRecord> read_golden(const std::string& stem) {
  std::map<std::string, GoldenRecord> recs;
  std::ifstream in(golden_path(stem));
  if (!in.good()) return recs;
  std::string key;
  std::string line;
  while (std::getline(in, line)) {
    auto q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    auto q2 = line.find('"', q1 + 1);
    std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    auto colon = line.find(':', q2);
    if (colon == std::string::npos) continue;
    std::string val = line.substr(colon + 1);
    if (val.find('{') != std::string::npos) {
      key = name;
      continue;
    }
    GoldenRecord& g = recs[key];
    std::istringstream vs(val);
    if (name == "elapsed") {
      vs >> g.elapsed;
    } else if (name == "checksum") {
      vs >> g.checksum;
    } else if (name == "messages") {
      vs >> g.messages;
    } else if (name == "thread_creates") {
      vs >> g.thread_creates;
    } else if (name == "context_switches") {
      vs >> g.context_switches;
    } else if (name == "sync_ops") {
      vs >> g.sync_ops;
    } else if (name == "digest") {
      auto h1 = val.find('"');
      auto h2 = val.find('"', h1 + 1);
      g.digest = std::stoull(val.substr(h1 + 1, h2 - h1 - 1), nullptr, 16);
    }
  }
  return recs;
}

std::string describe(const GoldenRecord& g) {
  std::ostringstream os;
  os << "elapsed=" << g.elapsed << " checksum=" << g.checksum
     << " messages=" << g.messages << " creates=" << g.thread_creates
     << " switches=" << g.context_switches << " sync=" << g.sync_ops
     << " digest=" << std::hex << g.digest;
  return os.str();
}

// --- Tests ------------------------------------------------------------------

class Golden : public ::testing::TestWithParam<Workload> {};

TEST_P(Golden, SequentialMatchesGolden) {
  const Workload& w = GetParam();
  auto golden = read_golden(w.file);
  auto it = golden.find(w.key);
  ASSERT_NE(it, golden.end())
      << "no golden record for " << w.key << " in " << golden_path(w.file)
      << " — run ./tests/test_golden --regen and commit the result";
  GoldenRecord got = w.run(1);
  EXPECT_TRUE(got == it->second)
      << w.key << " drifted from golden\n  golden: " << describe(it->second)
      << "\n  got:    " << describe(got)
      << "\nIf the change is intentional, run ./tests/test_golden --regen";
}

TEST_P(Golden, Parallel4MatchesGolden) {
  const Workload& w = GetParam();
  auto golden = read_golden(w.file);
  auto it = golden.find(w.key);
  ASSERT_NE(it, golden.end())
      << "no golden record for " << w.key << " in " << golden_path(w.file)
      << " — run ./tests/test_golden --regen and commit the result";
  GoldenRecord got = w.run(4);
  EXPECT_TRUE(got == it->second)
      << w.key << " under the 4-thread engine diverged from golden\n"
      << "  golden: " << describe(it->second)
      << "\n  got:    " << describe(got);
}

INSTANTIATE_TEST_SUITE_P(Apps, Golden, ::testing::ValuesIn(workloads()),
                         [](const auto& pinfo) {
                           std::string n = pinfo.param.key;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--regen") {
      std::map<std::string, std::map<std::string, GoldenRecord>> files;
      for (const auto& w : workloads()) {
        GoldenRecord seq = w.run(1);
        GoldenRecord par = w.run(4);
        if (!(seq == par)) {
          std::fprintf(stderr,
                       "refusing to regen: %s differs between sequential and "
                       "4-thread engines\n  seq: %s\n  par: %s\n",
                       w.key, describe(seq).c_str(), describe(par).c_str());
          return 1;
        }
        files[w.file][w.key] = seq;
        std::printf("regen %-24s %s\n", w.key, describe(seq).c_str());
      }
      for (const auto& [stem, recs] : files) write_golden(stem, recs);
      std::printf("golden files written to %s\n", THAM_GOLDEN_DIR);
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
