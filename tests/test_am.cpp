// Tests for the Active Messages layer: request/reply, bulk transfers, gets,
// polling semantics, and the calibrated round-trip costs that anchor
// Table 4 (Split-C null round-trip ~53 us on the simulated SP2).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "am/am.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace tham::am {
namespace {

using sim::Component;
using sim::Engine;
using sim::Node;

struct Machine {
  explicit Machine(int nodes) : engine(nodes), net(engine), am(net) {}
  Engine engine;
  net::Network net;
  AmLayer am;

  /// Reception is polling-based: a node that runs no program of its own
  /// needs an explicit polling loop to service requests (exactly why the
  /// CC++ runtime forks a polling thread, Section 4).
  void spawn_poller(NodeId id) {
    engine.node(id).spawn(
        [this] {
          Node& n = sim::this_node();
          while (!n.shutting_down()) {
            if (!n.wait_for_inbox(/*poll_only=*/true)) break;
            am.poll();
          }
        },
        "poller", /*daemon=*/true);
  }
};

TEST(Am, RequestRunsHandlerAtReceiver) {
  Machine m(2);
  NodeId handler_node = kInvalidNode;
  Words got{};
  HandlerId h = m.am.register_short(
      "t", [&](Node& self, Token, const Words& w) {
        handler_node = self.id();
        got = w;
      });
  m.engine.node(0).spawn([&] { m.am.request(1, h, 11, 22, 33, 44, 55, 66); },
                         "sender");
  m.engine.node(1).spawn(
      [&] { m.am.poll_until([&] { return handler_node != kInvalidNode; }); },
      "receiver");
  m.engine.run();
  EXPECT_EQ(handler_node, 1);
  EXPECT_EQ(got, (Words{11, 22, 33, 44, 55, 66}));
}

TEST(Am, ReplyReturnsToRequester) {
  Machine m(2);
  bool done = false;
  HandlerId h_done = m.am.register_short(
      "done", [&](Node&, Token, const Words& w) {
        EXPECT_EQ(w[0], 99u);
        done = true;
      });
  HandlerId h_ping = m.am.register_short(
      "ping", [&](Node&, Token tok, const Words&) {
        m.am.reply(tok, h_done, 99);
      });
  m.spawn_poller(1);
  m.engine.node(0).spawn(
      [&] {
        m.am.request(1, h_ping);
        m.am.poll_until([&] { return done; });
      },
      "pinger");
  m.engine.run();
  EXPECT_TRUE(done);
}

TEST(Am, NullRoundTripMatchesSp2Calibration) {
  // One request+reply round trip should cost ~53 us of virtual time
  // (the paper's Split-C AM column).
  Machine m(2);
  bool done = false;
  HandlerId h_done =
      m.am.register_short("done", [&](Node&, Token, const Words&) {
        done = true;
      });
  HandlerId h_ping = m.am.register_short(
      "ping", [&](Node&, Token tok, const Words&) { m.am.reply(tok, h_done); });
  SimTime elapsed = 0;
  m.engine.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        constexpr int kIters = 1000;
        SimTime t0 = n.now();
        for (int i = 0; i < kIters; ++i) {
          done = false;
          m.am.request(1, h_ping);
          m.am.poll_until([&] { return done; });
        }
        elapsed = (n.now() - t0) / kIters;
      },
      "pinger");
  m.spawn_poller(1);
  m.engine.run();
  double us = to_usec(elapsed);
  EXPECT_GT(us, 48.0);
  EXPECT_LT(us, 58.0);
}

TEST(Am, XferDepositsPayloadAndRunsBulkHandler) {
  Machine m(2);
  std::vector<double> dst(20, 0.0);
  std::vector<double> src(20);
  for (int i = 0; i < 20; ++i) src[static_cast<size_t>(i)] = i * 1.5;
  std::size_t got_len = 0;
  HandlerId h = m.am.register_bulk(
      "bulk", [&](Node&, Token, void* addr, std::size_t len, const Words& w) {
        EXPECT_EQ(addr, dst.data());
        EXPECT_EQ(w[0], 7u);
        got_len = len;
      });
  m.engine.node(0).spawn(
      [&] {
        m.am.xfer(1, dst.data(), src.data(), 20 * sizeof(double), h, 7);
      },
      "sender");
  m.engine.node(1).spawn([&] { m.am.poll_until([&] { return got_len > 0; }); },
                         "receiver");
  m.engine.run();
  EXPECT_EQ(got_len, 20 * sizeof(double));
  EXPECT_EQ(dst, src);
}

TEST(Am, GetFetchesRemoteMemory) {
  Machine m(2);
  std::vector<double> remote(8);
  for (int i = 0; i < 8; ++i) remote[static_cast<size_t>(i)] = i + 0.25;
  std::vector<double> local(8, 0.0);
  bool done = false;
  Word seen_cookie = 0;
  HandlerId h_done = m.am.register_short(
      "done", [&](Node&, Token, const Words& w) {
        EXPECT_EQ(to_ptr<void>(w[0]), local.data());
        EXPECT_EQ(w[1], 8 * sizeof(double));
        seen_cookie = w[2];
        done = true;
      });
  m.engine.node(0).spawn(
      [&] {
        m.am.get(1, remote.data(), local.data(), 8 * sizeof(double), h_done,
                 /*cookie=*/0xabcd);
        m.am.poll_until([&] { return done; });
      },
      "getter");
  m.spawn_poller(1);
  m.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(seen_cookie, 0xabcdu);
  EXPECT_EQ(local, remote);
}

TEST(Am, BulkRoundTripNearSeventyMicroseconds) {
  // A get of 40 words (320 bytes): request short + bulk reply; the paper's
  // AM column reports ~70 us.
  Machine m(2);
  std::vector<double> remote(40, 1.0);
  std::vector<double> local(40, 0.0);
  int got = 0;
  HandlerId h_done = m.am.register_short(
      "done", [&](Node&, Token, const Words&) { ++got; });
  SimTime elapsed = 0;
  m.engine.node(0).spawn(
      [&] {
        Node& n = sim::this_node();
        constexpr int kIters = 500;
        SimTime t0 = n.now();
        for (int i = 0; i < kIters; ++i) {
          int before = got;
          m.am.get(1, remote.data(), local.data(), 40 * 8, h_done);
          m.am.poll_until([&] { return got > before; });
        }
        elapsed = (n.now() - t0) / kIters;
      },
      "getter");
  m.spawn_poller(1);
  m.engine.run();
  double us = to_usec(elapsed);
  EXPECT_GT(us, 62.0);
  EXPECT_LT(us, 80.0);
}

TEST(Am, PollDrainsAllDueMessages) {
  Machine m(2);
  int count = 0;
  HandlerId h = m.am.register_short(
      "inc", [&](Node&, Token, const Words&) { ++count; });
  m.engine.node(0).spawn(
      [&] {
        for (int i = 0; i < 10; ++i) m.am.request(1, h);
      },
      "sender");
  m.engine.node(1).spawn(
      [&] {
        m.am.poll_until([&] { return count == 10; });
        EXPECT_EQ(count, 10);
      },
      "receiver");
  m.engine.run();
}

TEST(Am, HandlersMayNotBlock) {
  // The AM discipline: handlers run to completion; blocking in a handler
  // aborts. This is the restriction that forces MPMD runtimes to fork a
  // thread for general RMI (Section 3, "Multithreading").
  Machine m(2);
  HandlerId h = m.am.register_short(
      "bad", [&](Node& self, Token, const Words&) { self.block(); });
  m.engine.node(0).spawn([&] { m.am.request(1, h); }, "sender");
  m.engine.node(1).spawn(
      [&] {
        sim::this_node().wait_for_inbox();
        EXPECT_DEATH(sim::this_node().poll_one(), "handler");
      },
      "receiver");
  m.engine.allow_deadlock(true);
  m.engine.run();
}

TEST(Am, SendCountsMessagesAndBytes) {
  Machine m(2);
  HandlerId h = m.am.register_short("nop", [](Node&, Token, const Words&) {});
  m.engine.node(0).spawn(
      [&] {
        m.am.request(1, h);
        m.am.request(1, h);
      },
      "sender");
  m.engine.node(1).spawn(
      [&] {
        Node& n = sim::this_node();
        n.wait_for_inbox();
        while (n.poll_one()) {
        }
      },
      "receiver");
  m.engine.run();
  EXPECT_EQ(m.engine.node(0).counters().msgs_sent, 2u);
  EXPECT_EQ(m.engine.node(1).counters().msgs_recv, 2u);
  EXPECT_EQ(m.net.total_messages(), 2u);
}

}  // namespace
}  // namespace tham::am
