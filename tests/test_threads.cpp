// Tests for the cooperative threads package: spawn/join/yield semantics,
// mutex and condition-variable behaviour, and the cost/count instrumentation
// that Table 4's "Threads" column is built from.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "threads/threads.hpp"

namespace tham::threads {
namespace {

using sim::Component;
using sim::Engine;
using sim::Node;

// Runs `body` as the main thread of node 0 of a fresh 1-node machine and
// returns the engine for inspection.
template <typename F>
std::unique_ptr<Engine> run_on_node0(F body) {
  auto e = std::make_unique<Engine>(1);
  e->node(0).spawn(body, "main");
  e->run();
  return e;
}

TEST(Threads, SpawnChargesCreateCost) {
  auto e = run_on_node0([] {
    Thread t = spawn([] {});
    join(t);
  });
  Node& n = e->node(0);
  EXPECT_EQ(n.counters().thread_creates, 1u);
  EXPECT_GE(n.breakdown()[Component::ThreadMgmt], e->cost().thread_create);
}

TEST(Threads, JoinObservesChildEffects) {
  int result = 0;
  run_on_node0([&] {
    Thread t = spawn([&] { result = 7; });
    join(t);
    EXPECT_EQ(result, 7);
    result = 8;
  });
  EXPECT_EQ(result, 8);
}

TEST(Threads, DetachedThreadStillRuns) {
  bool ran = false;
  run_on_node0([&] {
    Thread t = spawn([&] { ran = true; });
    detach(t);
  });
  EXPECT_TRUE(ran);
}

TEST(Threads, ManyThreadsJoinInOrder) {
  std::vector<int> done;
  run_on_node0([&] {
    std::vector<Thread> ts;
    for (int i = 0; i < 16; ++i) {
      ts.push_back(spawn([&done, i] { done.push_back(i); }));
    }
    for (auto& t : ts) join(t);
    EXPECT_EQ(done.size(), 16u);
  });
  // Cooperative FIFO scheduling: spawn order == completion order.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(done[static_cast<size_t>(i)], i);
}

TEST(Threads, MutexProvidesMutualExclusion) {
  int inside = 0;
  int max_inside = 0;
  run_on_node0([&] {
    Mutex m;
    std::vector<Thread> ts;
    for (int i = 0; i < 4; ++i) {
      ts.push_back(spawn([&] {
        m.lock();
        ++inside;
        max_inside = std::max(max_inside, inside);
        yield();  // try to let others sneak in while we hold the lock
        --inside;
        m.unlock();
      }));
    }
    for (auto& t : ts) join(t);
  });
  EXPECT_EQ(max_inside, 1);
}

TEST(Threads, MutexContentionIsCounted) {
  auto e = run_on_node0([&] {
    Mutex m;
    m.lock();
    Thread t = spawn([&] {
      m.lock();  // must block: contended
      m.unlock();
    });
    yield();  // let the child hit the held lock
    m.unlock();
    join(t);
  });
  EXPECT_EQ(e->node(0).counters().lock_contended, 1u);
  EXPECT_GE(e->node(0).counters().lock_acquires, 2u);
}

TEST(Threads, UncontendedLocksAreCheap) {
  auto e = run_on_node0([] {
    Mutex m;
    for (int i = 0; i < 100; ++i) {
      m.lock();
      m.unlock();
    }
  });
  auto& c = e->node(0).counters();
  EXPECT_EQ(c.lock_acquires, 100u);
  EXPECT_EQ(c.lock_contended, 0u);
  EXPECT_EQ(c.sync_ops, 200u);  // 100 locks + 100 unlocks
  EXPECT_EQ(e->node(0).breakdown()[Component::ThreadSync],
            200 * e->cost().sync_op);
}

TEST(Threads, TryLock) {
  run_on_node0([] {
    Mutex m;
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
}

TEST(Threads, CondVarSignalWakesOneWaiter) {
  int woken = 0;
  run_on_node0([&] {
    Mutex m;
    CondVar cv;
    bool go = false;
    std::vector<Thread> ts;
    for (int i = 0; i < 3; ++i) {
      ts.push_back(spawn([&] {
        m.lock();
        while (!go) cv.wait(m);
        ++woken;
        go = false;  // consume the signal
        m.unlock();
      }));
    }
    for (int i = 0; i < 3; ++i) {
      yield();  // let waiters park
      m.lock();
      go = true;
      cv.signal();
      m.unlock();
      // Drain until someone consumed it.
      while (go) yield();
    }
    for (auto& t : ts) join(t);
  });
  EXPECT_EQ(woken, 3);
}

TEST(Threads, CondVarBroadcastWakesAll) {
  int woken = 0;
  run_on_node0([&] {
    Mutex m;
    CondVar cv;
    bool go = false;
    std::vector<Thread> ts;
    for (int i = 0; i < 5; ++i) {
      ts.push_back(spawn([&] {
        m.lock();
        while (!go) cv.wait(m);
        ++woken;
        m.unlock();
      }));
    }
    yield();
    m.lock();
    go = true;
    cv.broadcast();
    m.unlock();
    for (auto& t : ts) join(t);
  });
  EXPECT_EQ(woken, 5);
}

TEST(Threads, ContextSwitchCountMatchesCost) {
  auto e = run_on_node0([] {
    Thread t = spawn([] {
      for (int i = 0; i < 5; ++i) yield();
    });
    for (int i = 0; i < 5; ++i) yield();
    join(t);
  });
  Node& n = e->node(0);
  EXPECT_GT(n.counters().context_switches, 0u);
  SimTime mgmt = n.breakdown()[Component::ThreadMgmt];
  SimTime expect =
      static_cast<SimTime>(n.counters().context_switches) *
          e->cost().context_switch +
      static_cast<SimTime>(n.counters().thread_creates) *
          e->cost().thread_create;
  EXPECT_EQ(mgmt, expect);
}

TEST(Threads, BreakdownTotalEqualsClock) {
  auto e = run_on_node0([] {
    Mutex m;
    Thread t = spawn([&] {
      LockGuard g(m);
      sim::this_node().advance(usec(10));
    });
    {
      LockGuard g(m);
      sim::this_node().advance(usec(5));
    }
    join(t);
  });
  Node& n = e->node(0);
  EXPECT_EQ(n.breakdown().total(), n.now());
}

}  // namespace
}  // namespace tham::threads
