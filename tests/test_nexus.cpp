// Tests for the Nexus-style portable runtime: startpoints/endpoints, RSR
// dispatch by handler name, cost structure (RSR >> AM), and the
// CC++-on-Nexus cost model that reproduces the paper's Section 6 comparison.

#include <gtest/gtest.h>

#include "ccxx/runtime.hpp"
#include "nexus/nexus.hpp"

namespace tham::nexus {
namespace {

struct Machine {
  explicit Machine(int nodes) : engine(nodes), net(engine), nx(net) {}
  sim::Engine engine;
  net::Network net;
  NexusLayer nx;
};

TEST(Nexus, RsrDispatchesByName) {
  Machine m(2);
  Startpoint sp = m.nx.create_endpoint(1);
  int got = 0;
  NodeId from = kInvalidNode;
  m.nx.register_handler(sp, "incr",
                        [&](sim::Node&, NodeId f,
                            const std::vector<std::byte>& buf) {
                          int v;
                          std::memcpy(&v, buf.data(), sizeof(v));
                          got += v;
                          from = f;
                        });
  m.nx.start_service_threads();
  m.engine.node(0).spawn([&] { m.nx.rsr(sp, "incr", 5); }, "client");
  m.engine.run();
  EXPECT_EQ(got, 5);
  EXPECT_EQ(from, 0);
}

TEST(Nexus, MultipleHandlersPerEndpoint) {
  Machine m(2);
  Startpoint sp = m.nx.create_endpoint(1);
  std::vector<std::string> calls;
  for (const char* name : {"a", "b", "c"}) {
    m.nx.register_handler(sp, name,
                          [&calls, name](sim::Node&, NodeId,
                                         const std::vector<std::byte>&) {
                            calls.push_back(name);
                          });
  }
  m.nx.start_service_threads();
  m.engine.node(0).spawn(
      [&] {
        m.nx.rsr(sp, "b", 0);
        m.nx.rsr(sp, "a", 0);
        m.nx.rsr(sp, "c", 0);
      },
      "client");
  m.engine.run();
  EXPECT_EQ(calls, (std::vector<std::string>{"b", "a", "c"}));
}

TEST(Nexus, LocalRsrStillPaysRuntimeCosts) {
  Machine m(1);
  bool ran = false;
  Startpoint sp = m.nx.create_endpoint(0);
  m.nx.register_handler(sp, "f",
                        [&](sim::Node&, NodeId,
                            const std::vector<std::byte>&) { ran = true; });
  m.engine.node(0).spawn([&] { m.nx.rsr(sp, "f", 1); }, "client");
  m.engine.run();
  EXPECT_TRUE(ran);
  EXPECT_GT(m.engine.node(0).now(), 0);
}

TEST(Nexus, RsrIsFarSlowerThanAm) {
  // The Nexus TCP/interrupt path costs an order of magnitude more per
  // message than the SP2 AM path — the core of the Section 6 comparison.
  Machine m(2);
  Startpoint sp = m.nx.create_endpoint(1);
  int got = 0;
  m.nx.register_handler(sp, "nop",
                        [&](sim::Node&, NodeId,
                            const std::vector<std::byte>&) { ++got; });
  m.nx.start_service_threads();
  constexpr int kIters = 100;
  m.engine.node(0).spawn(
      [&] {
        for (int i = 0; i < kIters; ++i) m.nx.rsr(sp, "nop", i);
      },
      "client");
  m.engine.run();
  EXPECT_EQ(got, kIters);
  // One-way RSR service time at the receiver alone exceeds a full AM
  // round trip (~53 us).
  double per_msg_us = to_usec(m.engine.node(1).now()) / kIters;
  EXPECT_GT(per_msg_us, 150.0);
}

TEST(NexusCostModel, NullRmiOrderOfMagnitudeSlower) {
  // Run the same CC++ runtime under the ThAM and Nexus cost models; the
  // paper reports 5x-35x application gaps and a far slower null RMI.
  struct Counter {
    long v = 0;
    long get() { return v; }
  };
  auto measure = [](const CostModel& cm) {
    sim::Engine engine(2, cm);
    net::Network net(engine);
    am::AmLayer am(net);
    ccxx::Runtime rt(engine, net, am);
    auto get = rt.def_method("Counter::get", &Counter::get);
    auto c = rt.place<Counter>(1);
    SimTime elapsed = 0;
    rt.run_main([&] {
      sim::Node& n = sim::this_node();
      (void)rt.rmi(c, get);  // warm (a no-op warm under Nexus: no caching)
      SimTime t0 = n.now();
      for (int i = 0; i < 50; ++i) (void)rt.rmi(c, get);
      elapsed = (n.now() - t0) / 50;
    });
    return elapsed;
  };
  SimTime tham = measure(sp2_cost_model());
  SimTime nexus = measure(nexus_cost_model());
  double ratio = static_cast<double>(nexus) / static_cast<double>(tham);
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 60.0);
}

TEST(NexusCostModel, EveryCallShipsTheName) {
  CostModel cm = nexus_cost_model();
  EXPECT_FALSE(cm.cc_stub_caching);
  EXPECT_FALSE(cm.cc_persistent_buffers);
  struct Counter {
    long v = 0;
    long get() { return v; }
  };
  sim::Engine engine(2, cm);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  auto get = rt.def_method("Counter::get", &Counter::get);
  auto c = rt.place<Counter>(1);
  rt.run_main([&] {
    for (int i = 0; i < 10; ++i) (void)rt.rmi(c, get);
  });
  EXPECT_EQ(rt.cc_stats(0).rmi_cold, 10u);
  EXPECT_EQ(rt.cc_stats(0).rmi_warm, 0u);
}

}  // namespace
}  // namespace tham::nexus
