// CheckerSmoke: the three paper applications run end-to-end with the
// tham-check checker attached, produce zero diagnostics, and are
// bit-identical — same virtual time, same checksum, same operation counts —
// to an unchecked run. This is the "checking must not perturb the
// simulation" contract: the checker observes scheduling, it never alters it.
//
// In THAM_CHECK=OFF builds the A/B comparison still runs (it is then a
// determinism regression test) and the diagnostic count is trivially zero.

#include <gtest/gtest.h>

#include <cstdint>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/serving.hpp"
#include "apps/water.hpp"
#include "check/checker.hpp"

namespace tham::apps {
namespace {

em3d::Config small_em3d() {
  em3d::Config c;
  c.graph_nodes = 160;
  c.degree = 6;
  c.iters = 3;
  return c;
}

water::Config small_water() {
  water::Config c;
  c.molecules = 32;
  c.steps = 2;
  return c;
}

lu::Config small_lu() {
  lu::Config c;
  c.n = 96;
  c.block = 8;
  return c;
}

/// Runs `run` twice — checker attached, then detached — asserting the
/// checked run emitted no diagnostics, and returns both results.
template <class F>
std::pair<RunResult, RunResult> ab_run(F run) {
  std::uint64_t before = check::Checker::process_diagnostic_count();
  RunResult with_checker;
  {
    check::ScopedAutoAttach on(true);
    with_checker = run();
  }
  EXPECT_EQ(check::Checker::process_diagnostic_count(), before)
      << "checker reported diagnostics on a correct application";
  RunResult plain;
  {
    check::ScopedAutoAttach off(false);
    plain = run();
  }
  return {with_checker, plain};
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.thread_creates, b.thread_creates);
  EXPECT_EQ(a.context_switches, b.context_switches);
  EXPECT_EQ(a.sync_ops, b.sync_ops);
  EXPECT_EQ(a.checksum, b.checksum);  // exact: same arithmetic, same order
}

TEST(CheckerSmoke, Em3dSplitcGhost) {
  auto [chk, plain] = ab_run(
      [] { return em3d::run_splitc(small_em3d(), em3d::Version::Ghost); });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, Em3dCcxxBulk) {
  auto [chk, plain] = ab_run(
      [] { return em3d::run_ccxx(small_em3d(), em3d::Version::Bulk); });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, WaterSplitcAtomic) {
  auto [chk, plain] = ab_run(
      [] { return water::run_splitc(small_water(), water::Version::Atomic); });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, WaterCcxxPrefetch) {
  auto [chk, plain] = ab_run([] {
    return water::run_ccxx(small_water(), water::Version::Prefetch);
  });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, LuSplitc) {
  auto [chk, plain] = ab_run([] { return lu::run_splitc(small_lu()); });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, LuCcxx) {
  auto [chk, plain] = ab_run([] { return lu::run_ccxx(small_lu()); });
  expect_bit_identical(chk, plain);
}

// The serving fabric leans on checked<> state far more than the paper apps
// (admission counters, dispatcher stop flags, completion tallies), so it is
// the sharpest probe that attaching the checker does not perturb scheduling.
TEST(CheckerSmoke, ServingOpenRoundRobin) {
  auto [chk, plain] = ab_run(
      [] { return serve::run(serving::small_open()).run; });
  expect_bit_identical(chk, plain);
}

TEST(CheckerSmoke, ServingClosedLeastOutstanding) {
  auto [chk, plain] = ab_run(
      [] { return serve::run(serving::small_closed()).run; });
  expect_bit_identical(chk, plain);
}

}  // namespace
}  // namespace tham::apps
