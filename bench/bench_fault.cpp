// Fault-tolerance bench: what reliability costs on a lossy wire.
//
//   bench_fault [--json[=PATH]]
//
// Sweeps injected loss from 0% to 10% over a fixed EM3D ghost workload
// running on AM + transport::Reliable, and reports, per loss rate: elapsed
// virtual time, goodput (application frames per simulated second),
// retransmission overhead (retransmits per data frame), duplicate/corrupt
// drops at the receivers, and the protocol's smoothed RTT estimate. The
// application checksum must be identical at every loss rate — the whole
// point of the reliable transport — and the bench fails if it is not.
// --json writes BENCH_fault.json (schema tham-fault-v1); the retransmit
// overhead column should be monotone in the loss rate.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "common/env.hpp"
#include "fault/fault.hpp"
#include "json_out.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"
#include "transport/reliable.hpp"

namespace tham {
namespace {

constexpr std::uint64_t kPlanSeed = 1729;

struct FaultRun {
  double loss = 0;
  apps::RunResult result;
  transport::Reliable::Stats rel;
  double srtt_us = 0;  ///< mean smoothed RTT over links with samples
  std::uint64_t injected_drops = 0;
};

FaultRun run_at_loss(double loss) {
  apps::em3d::Config cfg;
  cfg.procs = 8;
  cfg.graph_nodes = 100 * cfg.procs;
  cfg.degree = 10;
  cfg.iters = 5;
  cfg.remote_fraction = 0.5;

  sim::Engine engine(cfg.procs);
  net::Network net(engine);
  am::AmLayer am(net);
  transport::Reliable rel(am.channel());

  fault::Plan plan;
  plan.seed = kPlanSeed;
  plan.loss = loss;
  fault::Injector inj(plan, engine.size());
  if (loss > 0) net.set_injector(&inj);

  FaultRun r;
  r.loss = loss;
  r.result =
      apps::em3d::run_splitc(engine, net, am, cfg, apps::em3d::Version::Ghost);
  r.rel = rel.total();
  r.injected_drops = inj.drops();
  double srtt_sum = 0;
  int srtt_links = 0;
  for (NodeId s = 0; s < engine.size(); ++s) {
    for (NodeId d = 0; d < engine.size(); ++d) {
      SimTime v = rel.srtt(s, d);
      if (v > 0) {
        srtt_sum += to_usec(v);
        ++srtt_links;
      }
    }
  }
  r.srtt_us = srtt_links > 0 ? srtt_sum / srtt_links : 0;
  return r;
}

int run_sweep(bool json, const std::string& json_path) {
  std::printf("Fault sweep: em3d-ghost, 8 nodes, AM over transport::Reliable"
              " (plan seed %llu)\n\n",
              static_cast<unsigned long long>(kPlanSeed));

  const std::vector<double> rates = {0, 0.005, 0.01, 0.02, 0.05, 0.10};
  std::vector<FaultRun> runs;
  runs.reserve(rates.size());
  for (double rate : rates) runs.push_back(run_at_loss(rate));

  stats::Table t({"loss", "vtime (s)", "goodput (f/s)", "retx", "retx/frame",
                  "dup drops", "srtt (us)"});
  bool checksums_ok = true;
  for (const FaultRun& r : runs) {
    double vt = to_sec(r.result.elapsed);
    double goodput = vt > 0 ? static_cast<double>(r.rel.data_frames) / vt : 0;
    double overhead = r.rel.data_frames > 0
                          ? static_cast<double>(r.rel.retransmits) /
                                static_cast<double>(r.rel.data_frames)
                          : 0;
    t.add_row({stats::Table::num(r.loss * 100, 1) + "%",
               stats::Table::num(vt, 4), stats::Table::num(goodput, 0),
               std::to_string(r.rel.retransmits),
               stats::Table::num(overhead, 4),
               std::to_string(r.rel.dup_drops),
               stats::Table::num(r.srtt_us, 1)});
    if (r.result.checksum != runs.front().result.checksum) {
      checksums_ok = false;
    }
  }
  t.print();
  std::printf("\napplication checksum %s across loss rates\n",
              checksums_ok ? "identical" : "DIVERGED");
  if (!checksums_ok) return 1;

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    {
      bench::JsonWriter w(f);
      w.begin_object();
      w.header("tham-fault-v1", default_cost_model(), kPlanSeed,
               env_sim_threads());
      w.field("workload", "em3d-ghost 8 nodes over transport::Reliable");
      w.field("checksums_identical", checksums_ok);
      w.begin_array("sweep");
      for (const FaultRun& r : runs) {
        double vt = to_sec(r.result.elapsed);
        double goodput =
            vt > 0 ? static_cast<double>(r.rel.data_frames) / vt : 0;
        double overhead = r.rel.data_frames > 0
                              ? static_cast<double>(r.rel.retransmits) /
                                    static_cast<double>(r.rel.data_frames)
                              : 0;
        w.begin_object(nullptr, /*inline_scope=*/true);
        w.field("loss", r.loss, 3);
        w.field("vtime_s", vt, 6);
        w.field("goodput_frames_per_s", goodput, 1);
        w.field("data_frames", r.rel.data_frames);
        w.field("retransmits", r.rel.retransmits);
        w.field("retransmit_overhead", overhead, 5);
        w.field("dup_drops", r.rel.dup_drops);
        w.field("corrupt_drops", r.rel.corrupt_drops);
        w.field("acks_sent", r.rel.acks_sent);
        w.field("injected_drops", r.injected_drops);
        w.field("srtt_us", r.srtt_us, 2);
        w.field("checksum", r.result.checksum, 6);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) {
  bool json = false;
  std::string path = "BENCH_fault.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=PATH]]\n", argv[0]);
      return 2;
    }
  }
  return tham::run_sweep(json, path);
}
