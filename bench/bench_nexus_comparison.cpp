// Reproduces the Section 6 "Comparison with CC++/Nexus" measurements: the
// same CC++ applications run once over the lean ThAM runtime (SP2 AM +
// lightweight threads) and once over the Nexus v3.0 configuration (TCP/IP
// over the SP switch, interrupt-driven reception, heavyweight threads,
// dynamic buffers, no stub caching). The paper reports 5x-35x improvements
// of CC++/ThAM over CC++/Nexus depending on the communication-to-
// computation ratio.

#include <cstdio>

#include "apps/em3d.hpp"
#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

struct Entry {
  const char* name;
  double paper_ratio;  ///< CC++/Nexus time over CC++/ThAM time
  double tham_s = 0, nexus_s = 0;
};

}  // namespace

int bench_main() {
  std::printf("Section 6: CC++/ThAM vs CC++/Nexus (same applications, same"
              " runtime, Nexus cost structure)\n\n");

  std::vector<Entry> rows;

  auto em3d_case = [&](apps::em3d::Version v, const char* name,
                       double paper) {
    apps::em3d::Config cfg;
    cfg.remote_fraction = 1.0;
    cfg.iters = v == apps::em3d::Version::Base ? 4 : 10;
    Entry e{name, paper};
    e.tham_s = to_sec(apps::em3d::run_ccxx(cfg, v, sp2_cost_model()).elapsed);
    e.nexus_s =
        to_sec(apps::em3d::run_ccxx(cfg, v, nexus_cost_model()).elapsed);
    rows.push_back(e);
  };
  em3d_case(apps::em3d::Version::Base, "em3d-base (100% remote)", 35);
  em3d_case(apps::em3d::Version::Ghost, "em3d-ghost (100% remote)", 29);
  em3d_case(apps::em3d::Version::Bulk, "em3d-bulk (100% remote)", 10);

  auto water_case = [&](int mols, apps::water::Version v, const char* name,
                        double paper) {
    apps::water::Config cfg;
    cfg.molecules = mols;
    Entry e{name, paper};
    e.tham_s = to_sec(apps::water::run_ccxx(cfg, v, sp2_cost_model()).elapsed);
    e.nexus_s =
        to_sec(apps::water::run_ccxx(cfg, v, nexus_cost_model()).elapsed);
    rows.push_back(e);
  };
  water_case(64, apps::water::Version::Atomic, "water-atomic 64", 19);
  water_case(64, apps::water::Version::Prefetch, "water-prefetch 64", 16);
  water_case(512, apps::water::Version::Atomic, "water-atomic 512", 6);
  water_case(512, apps::water::Version::Prefetch, "water-prefetch 512", 5);

  {
    apps::lu::Config cfg;
    Entry e{"lu 512", 5.5};
    e.tham_s = to_sec(apps::lu::run_ccxx(cfg, sp2_cost_model()).elapsed);
    e.nexus_s = to_sec(apps::lu::run_ccxx(cfg, nexus_cost_model()).elapsed);
    rows.push_back(e);
  }

  stats::Table t({"application", "ThAM(s)", "Nexus(s)", "speedup",
                  "paper speedup"});
  for (const Entry& e : rows) {
    t.add_row({e.name, stats::Table::num(e.tham_s, 3),
               stats::Table::num(e.nexus_s, 3),
               stats::Table::num(e.nexus_s / e.tham_s, 1),
               stats::Table::num(e.paper_ratio, 0)});
  }
  t.print();
  std::printf("\n(The paper quotes 5-6x for compute-bound runs — water 512,"
              " lu — and 10x-35x where communication dominates.)\n");
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
