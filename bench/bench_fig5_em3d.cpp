// Reproduces Figure 5 of the paper: per-edge EM3D execution times for 10%,
// 40%, 70% and 100% remote edges, for the base / ghost / bulk versions in
// Split-C and CC++, broken into cpu / net / thread mgmt / thread sync /
// runtime components and normalized against Split-C.
//
// Workload (Section 5): a synthetic bipartite graph of 800 nodes of degree
// 20 spread over 4 processors.

#include <cstdio>
#include <vector>

#include "apps/em3d.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

using apps::RunResult;
using apps::em3d::Config;
using apps::em3d::Version;

struct Cell {
  RunResult sc, cc;
  double edges_per_proc = 0;
  int iters = 0;
};

void per_edge(const RunResult& r, const Cell& c, int procs, double out[7]) {
  double denom = c.edges_per_proc * c.iters;
  for (int i = 0; i < sim::kNumComponents; ++i) {
    out[i] = to_usec(r.breakdown.t[static_cast<std::size_t>(i)]) /
             procs / denom;
  }
  out[5] = to_usec(r.elapsed) / denom;            // per-edge wall time
  out[6] = to_sec(r.elapsed);                     // absolute seconds
}

}  // namespace

int bench_main() {
  const double fractions[] = {0.1, 0.4, 0.7, 1.0};
  const Version versions[] = {Version::Base, Version::Ghost, Version::Bulk};

  std::printf("Figure 5: EM3D per-edge execution time breakdown\n");
  std::printf("Graph: 800 nodes, degree 20, 4 processors, 10 iterations.\n");
  std::printf("Columns are per-edge microseconds; 'norm' is the CC++/Split-C"
              " total ratio (the paper's bar height).\n\n");

  stats::Table t({"version", "remote%", "lang", "cpu", "net", "tmgmt",
                  "tsync", "runtime", "total", "norm", "abs(s)"});

  double abs_100[6];  // absolute seconds at 100% for the caption line
  int abs_i = 0;

  for (Version v : versions) {
    for (double f : fractions) {
      Config cfg;
      cfg.remote_fraction = f;
      cfg.iters = 10;
      Cell cell;
      cell.iters = cfg.iters;
      apps::em3d::Graph g = apps::em3d::build_graph(cfg);
      cell.edges_per_proc =
          static_cast<double>(g.total_edges()) / cfg.procs;
      cell.sc = apps::em3d::run_splitc(cfg, v);
      cell.cc = apps::em3d::run_ccxx(cfg, v);

      double s[7], c[7];
      per_edge(cell.sc, cell, cfg.procs, s);
      per_edge(cell.cc, cell, cfg.procs, c);
      int pct = static_cast<int>(f * 100 + 0.5);
      auto n2 = [](double x) { return stats::Table::num(x, 2); };
      t.add_row({apps::em3d::version_name(v), std::to_string(pct), "split-c",
                 n2(s[0]), n2(s[1]), n2(s[2]), n2(s[3]), n2(s[4]), n2(s[5]),
                 "1.00", stats::Table::num(s[6], 2)});
      t.add_row({apps::em3d::version_name(v), std::to_string(pct), "cc++",
                 n2(c[0]), n2(c[1]), n2(c[2]), n2(c[3]), n2(c[4]), n2(c[5]),
                 n2(c[5] / s[5]), stats::Table::num(c[6], 2)});
      if (pct == 100 && abs_i < 6) {
        abs_100[abs_i++] = s[6];
        abs_100[abs_i++] = c[6];
      }
    }
  }
  t.print();

  std::printf("\nAbsolute seconds at 100%% remote edges "
              "(paper: sc/cc base 68.0/136.0, ghost 7.6/18.3, "
              "bulk 0.26/0.29, at the paper's unknown iteration count):\n");
  std::printf("  base  sc %.2f  cc %.2f   (ratio %.2f, paper ~2.0)\n",
              abs_100[0], abs_100[1], abs_100[1] / abs_100[0]);
  std::printf("  ghost sc %.2f  cc %.2f   (ratio %.2f, paper ~2.4)\n",
              abs_100[2], abs_100[3], abs_100[3] / abs_100[2]);
  std::printf("  bulk  sc %.2f  cc %.2f   (ratio %.2f, paper ~1.1)\n",
              abs_100[4], abs_100[5], abs_100[5] / abs_100[4]);
  std::printf("\nPaper shape checks:\n");
  std::printf("  ghost reduces base by %.0f%% (sc) / %.0f%% (cc); paper 87-89%%\n",
              100 * (1 - abs_100[2] / abs_100[0]),
              100 * (1 - abs_100[3] / abs_100[1]));
  std::printf("  bulk reduces ghost by %.0f%% (sc) / %.0f%% (cc); paper >95%%\n",
              100 * (1 - abs_100[4] / abs_100[2]),
              100 * (1 - abs_100[5] / abs_100[3]));
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
