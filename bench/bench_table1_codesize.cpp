// Reproduces Table 1 of the paper: source code size of the runtime
// implementations. The paper contrasts CC++ v4.0 on Nexus v3.0 (39k + 7k
// lines) with CC++ v4.0 on ThAM (2.7k + 1.3k lines plus the small ThAM
// support library). Here we count the analogous modules of this repository:
// the lean runtime stack (ccxx + threads + am) versus the portable-runtime
// baseline (nexus), plus the shared substrate for context.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "stats/table.hpp"

namespace tham {
namespace {

struct Count {
  long code = 0;     ///< non-blank, non-pure-comment lines in .cpp
  long header = 0;   ///< same in .hpp
};

bool is_blank_or_comment(const std::string& line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == ' ' || c == '\t') continue;
    if (c == '/' && i + 1 < line.size() &&
        (line[i + 1] == '/' || line[i + 1] == '*')) {
      return true;
    }
    return false;
  }
  return true;
}

Count count_dir(const std::filesystem::path& dir) {
  Count c;
  if (!std::filesystem::exists(dir)) return c;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    auto ext = entry.path().extension().string();
    bool hdr = ext == ".hpp" || ext == ".h";
    bool src = ext == ".cpp" || ext == ".cc";
    if (!hdr && !src) continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (is_blank_or_comment(line)) continue;
      (hdr ? c.header : c.code) += 1;
    }
  }
  return c;
}

}  // namespace

int bench_main() {
  std::filesystem::path src = THAM_SOURCE_DIR;
  src /= "src";

  std::printf("Table 1: runtime source code size (non-blank, non-comment"
              " lines)\n");
  std::printf("Paper: Nexus 39226 .C + 6552 .H; CC++/Nexus glue 1936 + 1366;"
              " ThAM 1155 + 726; CC++/ThAM glue 2682 + 1346.\n");
  std::printf("The point is the order-of-magnitude reduction from the"
              " portable runtime to the lean one.\n\n");

  stats::Table t({"module", "role", ".cpp lines", ".hpp lines"});
  struct Mod {
    const char* dir;
    const char* role;
  };
  const Mod mods[] = {
      {"ccxx", "CC++ runtime over ThAM (lean MPMD runtime)"},
      {"threads", "lightweight threads package"},
      {"am", "Active Messages layer"},
      {"nexus", "portable-runtime baseline (Nexus-style)"},
      {"splitc", "Split-C runtime (SPMD baseline)"},
      {"sim", "simulated multicomputer substrate"},
      {"net", "simulated interconnect"},
      {"msg", "MPL-like two-sided messaging"},
      {"apps", "EM3D / Water / LU applications"},
  };
  long lean_total = 0;
  for (const Mod& m : mods) {
    Count c = count_dir(src / m.dir);
    if (std::string(m.dir) == "ccxx" || std::string(m.dir) == "threads" ||
        std::string(m.dir) == "am") {
      lean_total += c.code + c.header;
    }
    t.add_row({m.dir, m.role, std::to_string(c.code),
               std::to_string(c.header)});
  }
  t.print();
  std::printf("\nLean MPMD runtime stack (ccxx + threads + am): %ld lines —"
              " the same order as the paper's ThAM stack (~6k),\n"
              "an order of magnitude below a Nexus-class portable runtime"
              " (~46k).\n", lean_total);
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
