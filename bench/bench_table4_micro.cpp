// Reproduces Table 4 of the paper: the micro-benchmark family comparing
// CC++ RMI variants against Split-C global-pointer operations (Figures 2
// and 3 give the pseudo-code these implement), plus the IBM MPL round-trip
// reference.
//
// Accounting follows the paper: for each operation, Total is the caller's
// round-trip virtual time; ThreadsTime and Runtime are the *active* charges
// summed over both endpoints; AM is the remainder (messaging-layer
// overheads plus wire time on the critical path), so that
// Total = AM + Threads + Runtime, as in the paper's table.

#include <cstdio>
#include <functional>
#include <vector>

#include "ccxx/runtime.hpp"
#include "msg/mpl.hpp"
#include "splitc/world.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

struct Row {
  const char* name;
  double paper_cc_total;  ///< Table 4 CC++ Total (us); <0 means N/A
  double paper_sc_total;  ///< Table 4 Split-C Time (us); <0 means N/A
  double cc_total = -1, cc_am = -1, cc_threads = -1, cc_runtime = -1;
  double cc_yield = 0, cc_create = 0, cc_sync = 0;
  double sc_total = -1, sc_am = -1, sc_runtime = -1;
};

struct Measured {
  double total, am, threads, runtime, yield, create, sync;
};

/// Measures `iters` repetitions of `op` on a fresh 2-node machine; `setup`
/// runs once inside the program for warm-up (stub cache, buffers).
struct Micro {
  std::function<void()> warm;
  std::function<void()> op;
};

Measured run_cc(const std::function<Micro(ccxx::Runtime&)>& make, int iters) {
  std::fprintf(stderr, ".");
  sim::Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  ccxx::Runtime rt(engine, net, am);
  Micro micro = make(rt);
  stats::Snapshot a0, a1, b0, b1;
  rt.run_main([&] {
    micro.warm();
    a0 = stats::snap(engine.node(0));
    b0 = stats::snap(engine.node(1));
    for (int i = 0; i < iters; ++i) micro.op();
    a1 = stats::snap(engine.node(0));
    b1 = stats::snap(engine.node(1));
  });
  auto da = stats::delta(a0, a1);
  auto db = stats::delta(b0, b1);
  stats::PerIter pa = stats::per_iter(da, iters);
  stats::PerIter pb = stats::per_iter(db, iters);
  Measured m{};
  m.total = pa.total_us;
  m.threads = pa.threads_time() + pb.threads_time();
  m.runtime = pa.runtime() + pb.runtime();
  m.am = m.total - m.threads - m.runtime - pa.cpu() - pb.cpu();
  m.yield = pa.switches + pb.switches;
  m.create = pa.creates + pb.creates;
  m.sync = pa.sync_ops + pb.sync_ops;
  return m;
}

Measured run_sc(const std::function<Micro(splitc::World&)>& make, int iters) {
  std::fprintf(stderr, "s");
  sim::Engine engine(2);
  net::Network net(engine);
  am::AmLayer am(net);
  splitc::World world(engine, net, am);
  Micro micro = make(world);
  stats::Snapshot a0, a1, b0, b1;
  world.run([&] {
    if (splitc::MYPROC() == 0) {
      micro.warm();
      a0 = stats::snap(engine.node(0));
      b0 = stats::snap(engine.node(1));
      for (int i = 0; i < iters; ++i) micro.op();
      a1 = stats::snap(engine.node(0));
      b1 = stats::snap(engine.node(1));
    }
    splitc::barrier();
  });
  auto da = stats::delta(a0, a1);
  auto db = stats::delta(b0, b1);
  stats::PerIter pa = stats::per_iter(da, iters);
  stats::PerIter pb = stats::per_iter(db, iters);
  Measured m{};
  m.total = pa.total_us;
  m.runtime = pa.runtime() + pb.runtime();
  m.am = m.total - m.runtime - pa.cpu() - pb.cpu() - pa.threads_time() -
         pb.threads_time();
  return m;
}

struct Target {
  long dummy = 0;
  std::vector<double> arr = std::vector<double>(20, 1.0);

  long nop() { return 0; }
  long one(long) { return 0; }
  long two(long, long) { return 0; }
  long put(std::vector<double> v) {
    arr = std::move(v);
    return 0;
  }
  std::vector<double> get() { return arr; }
};

}  // namespace

int bench_main() {
  constexpr int kIters = 10000;  // as in the paper (Table 4 caption)

  std::vector<Row> rows = {
      {"0-Word Simple", 67, -1},
      {"0-Word", 77, -1},
      {"1-Word", 94, -1},
      {"2-Word", 95, -1},
      {"0-Word Threaded", 87, -1},
      {"0-Word Atomic", 88, 56},
      {"GP 2-Word Read", 92, 57},
      {"BulkWrite 40-Word", 154, 74},
      {"BulkRead 40-Word", 177, 75},
      {"Prefetch 20-Word (per elem)", 35.4, 12.1},
  };

  // --- CC++ side -----------------------------------------------------------
  auto cc_null = [&](ccxx::RmiMode mode) {
    return [mode](ccxx::Runtime& rt) {
      auto m = rt.def_method("Target::nop", &Target::nop, mode);
      auto obj = rt.place<Target>(1);
      return Micro{[&rt, obj, m] { (void)rt.rmi(obj, m); },
                   [&rt, obj, m] { (void)rt.rmi(obj, m); }};
    };
  };
  auto cc = [&](int i, Measured m) {
    rows[static_cast<std::size_t>(i)].cc_total = m.total;
    rows[static_cast<std::size_t>(i)].cc_am = m.am;
    rows[static_cast<std::size_t>(i)].cc_threads = m.threads;
    rows[static_cast<std::size_t>(i)].cc_runtime = m.runtime;
    rows[static_cast<std::size_t>(i)].cc_yield = m.yield;
    rows[static_cast<std::size_t>(i)].cc_create = m.create;
    rows[static_cast<std::size_t>(i)].cc_sync = m.sync;
  };

  cc(0, run_cc(cc_null(ccxx::RmiMode::Simple), kIters));
  cc(1, run_cc(cc_null(ccxx::RmiMode::Blocking), kIters));
  cc(2, run_cc(
            [](ccxx::Runtime& rt) {
              auto m = rt.def_method("Target::one", &Target::one,
                                     ccxx::RmiMode::Blocking);
              auto obj = rt.place<Target>(1);
              return Micro{[&rt, obj, m] { (void)rt.rmi(obj, m, 1L); },
                           [&rt, obj, m] { (void)rt.rmi(obj, m, 1L); }};
            },
            kIters));
  cc(3, run_cc(
            [](ccxx::Runtime& rt) {
              auto m = rt.def_method("Target::two", &Target::two,
                                     ccxx::RmiMode::Blocking);
              auto obj = rt.place<Target>(1);
              return Micro{[&rt, obj, m] { (void)rt.rmi(obj, m, 1L, 2L); },
                           [&rt, obj, m] { (void)rt.rmi(obj, m, 1L, 2L); }};
            },
            kIters));
  cc(4, run_cc(cc_null(ccxx::RmiMode::Threaded), kIters));
  cc(5, run_cc(cc_null(ccxx::RmiMode::Atomic), kIters));
  cc(6, run_cc(
            [](ccxx::Runtime& rt) {
              static double cell = 1.0;
              return Micro{[&rt] { (void)rt.read(ccxx::gvar<double>{1, &cell}); },
                           [&rt] { (void)rt.read(ccxx::gvar<double>{1, &cell}); }};
            },
            kIters));
  cc(7, run_cc(
            [](ccxx::Runtime& rt) {
              auto m = rt.def_method("Target::put", &Target::put,
                                     ccxx::RmiMode::Threaded);
              auto obj = rt.place<Target>(1);
              auto data = std::make_shared<std::vector<double>>(20, 2.0);
              return Micro{[&rt, obj, m, data] { (void)rt.rmi(obj, m, *data); },
                           [&rt, obj, m, data] { (void)rt.rmi(obj, m, *data); }};
            },
            kIters));
  cc(8, run_cc(
            [](ccxx::Runtime& rt) {
              auto m = rt.def_method("Target::get", &Target::get,
                                     ccxx::RmiMode::Threaded);
              auto obj = rt.place<Target>(1);
              return Micro{[&rt, obj, m] { (void)rt.rmi(obj, m); },
                           [&rt, obj, m] { (void)rt.rmi(obj, m); }};
            },
            kIters));
  {
    // Prefetch: 20 concurrent gp reads via parfor; report per element.
    Measured m = run_cc(
        [](ccxx::Runtime& rt) {
          static std::vector<double> cells(20, 1.0);
          auto op = [&rt] {
            rt.parfor(0, 20, [&rt](int i) {
              (void)rt.read(ccxx::gvar<double>{
                  1, &cells[static_cast<std::size_t>(i)]});
            });
          };
          return Micro{op, op};
        },
        kIters / 10);
    m.total /= 20;
    m.am /= 20;
    m.threads /= 20;
    m.runtime /= 20;
    m.yield /= 20;
    m.create /= 20;
    m.sync /= 20;
    cc(9, m);
  }

  // --- Split-C side ----------------------------------------------------------
  auto sc = [&](int i, Measured m) {
    rows[static_cast<std::size_t>(i)].sc_total = m.total;
    rows[static_cast<std::size_t>(i)].sc_am = m.am;
    rows[static_cast<std::size_t>(i)].sc_runtime = m.runtime;
  };

  sc(5, run_sc(
            [](splitc::World& w) {
              int fn = w.register_atomic([](sim::Node&, am::Word, am::Word,
                                            am::Word, am::Word) -> am::Word {
                return 0;
              });
              return Micro{[&w, fn] { (void)w.atomic(fn, 1); },
                           [&w, fn] { (void)w.atomic(fn, 1); }};
            },
            kIters));
  sc(6, run_sc(
            [](splitc::World&) {
              static double cell = 1.0;
              auto op = [] {
                (void)splitc::read(splitc::global_ptr<double>(1, &cell));
              };
              return Micro{op, op};
            },
            kIters));
  sc(7, run_sc(
            [](splitc::World&) {
              static std::vector<double> remote(20, 0.0);
              static std::vector<double> local(20, 3.0);
              auto op = [] {
                splitc::bulk_write(
                    splitc::global_ptr<double>(1, remote.data()),
                    local.data(), 20 * sizeof(double));
              };
              return Micro{op, op};
            },
            kIters));
  sc(8, run_sc(
            [](splitc::World&) {
              static std::vector<double> remote(20, 4.0);
              static std::vector<double> local(20, 0.0);
              auto op = [] {
                splitc::bulk_read(local.data(),
                                  splitc::global_ptr<double>(1, remote.data()),
                                  20 * sizeof(double));
              };
              return Micro{op, op};
            },
            kIters));
  {
    Measured m = run_sc(
        [](splitc::World&) {
          static std::vector<double> remote(20, 1.0);
          static std::vector<double> local(20, 0.0);
          auto op = [] {
            for (int i = 0; i < 20; ++i) {
              splitc::get(&local[static_cast<std::size_t>(i)],
                          splitc::global_ptr<double>(
                              1, &remote[static_cast<std::size_t>(i)]));
            }
            splitc::sync();
          };
          return Micro{op, op};
        },
        kIters / 10);
    m.total /= 20;
    m.am /= 20;
    m.runtime /= 20;
    sc(9, m);
  }

  // --- MPL reference ------------------------------------------------------
  double mpl_rt = 0;
  {
    sim::Engine engine(2);
    net::Network net(engine);
    msg::MplLayer mpl(net);
    SimTime elapsed = 0;
    constexpr int kMpl = 2000;
    engine.node(0).spawn(
        [&] {
          char c = 'x';
          SimTime t0 = sim::this_node().now();
          for (int i = 0; i < kMpl; ++i) {
            mpl.send(1, 1, &c, 0);
            mpl.recv(1, 2, &c, 1);
          }
          elapsed = (sim::this_node().now() - t0) / kMpl;
        },
        "pinger");
    engine.node(1).spawn(
        [&] {
          char c = 'y';
          for (int i = 0; i < kMpl; ++i) {
            mpl.recv(0, 1, &c, 1);
            mpl.send(0, 2, &c, 0);
          }
        },
        "ponger");
    engine.run();
    mpl_rt = to_usec(elapsed);
  }

  // --- Print ------------------------------------------------------------------
  std::printf("Table 4: micro-benchmarks (us, averaged over %d iterations)\n",
              kIters);
  std::printf("CC++ columns: Total = AM + ThreadsTime + Runtime;"
              " Yield/Create/Sync are per-iteration thread-op counts.\n\n");
  auto n1 = [](double v) { return v < 0 ? std::string("-")
                                        : stats::Table::num(v, 1); };
  stats::Table t({"Benchmark", "cc.Total", "cc.AM", "cc.Thr", "cc.Yld",
                  "cc.Crt", "cc.Syn", "cc.RT", "sc.Total", "sc.AM", "sc.RT",
                  "paper.cc", "paper.sc"});
  for (const Row& r : rows) {
    t.add_row({r.name, n1(r.cc_total), n1(r.cc_am), n1(r.cc_threads),
               n1(r.cc_yield), n1(r.cc_create), n1(r.cc_sync),
               n1(r.cc_runtime), n1(r.sc_total), n1(r.sc_am),
               n1(r.sc_runtime), n1(r.paper_cc_total), n1(r.paper_sc_total)});
  }
  t.print();
  std::printf("\nIBM MPL round-trip reference: %.1f us (paper: 88 us)\n",
              mpl_rt);
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
