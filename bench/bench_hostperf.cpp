// Host-machine (real-time) performance of the simulator's own primitives:
// fiber context switches, event dispatch, multi-node fan-in/fan-out,
// threaded-RMI churn, marshalling throughput. These bound how large a
// workload the simulated multicomputer can drive; the paper-facing numbers
// come from the virtual-time benches.
//
// Two front ends share the workloads:
//   default        — google-benchmark (wall-time statistics, filters, etc.)
//   --json[=PATH]  — fixed-size runs written to BENCH_hostperf.json
//                    (events/sec, switches/sec, allocs per message via the
//                    counting allocator hook), the cross-PR perf baseline.
//                    Add --smoke for a seconds-long sanity run in CI, and
//                    --threads N to run the workloads on the N-thread
//                    sharded engine (recorded as "sim_threads").

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "am/am.hpp"
#include "json_out.hpp"
#include "ccxx/serial.hpp"
#include "common/alloc_count.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "threads/threads.hpp"
#include "transport/transport.hpp"

namespace tham {
namespace {

std::uint64_t total_switches(sim::Engine& e) {
  std::uint64_t s = 0;
  for (NodeId i = 0; i < e.size(); ++i) {
    s += e.node(i).counters().context_switches;
  }
  return s;
}

// ---------------------------------------------------------------------------
// google-benchmark front end
// ---------------------------------------------------------------------------

void BM_FiberSwitch(benchmark::State& state) {
  sim::StackPool pool(64 * 1024);
  bool stop = false;
  sim::Fiber f(
      [&] {
        while (!stop) sim::Fiber::suspend();
      },
      pool);
  for (auto _ : state) {
    f.resume();  // one switch in + one switch out
  }
  stop = true;
  f.resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_EngineEventDispatch(benchmark::State& state) {
  // Measures end-to-end simulation throughput: a 2-node stream of raw
  // messages, events per second. Engine construction/teardown happens
  // outside the timed region so the metric is dispatch, not setup.
  auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto e = std::make_unique<sim::Engine>(2);
    sim::Engine& eng = *e;
    eng.node(0).spawn(
        [&eng, iters] {
          sim::Node& n = sim::this_node();
          for (int i = 0; i < iters; ++i) {
            eng.node(1).push_message(sim::Message{
                n.now() + usec(10), 0, eng.next_seq(), 0, [](sim::Node&) {}});
            n.advance(usec(1));
          }
        },
        "sender");
    eng.node(1).spawn(
        [&eng] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "receiver", /*daemon=*/true);
    state.ResumeTiming();
    eng.run();
    state.PauseTiming();
    e.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000);

void BM_MultiNodeFanIn(benchmark::State& state) {
  // N sender nodes stream short messages into one receiver through the
  // network layer (per-channel FIFO bookkeeping included).
  auto senders = static_cast<int>(state.range(0));
  auto per_sender = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto e = std::make_unique<sim::Engine>(senders + 1);
    auto net = std::make_unique<net::Network>(*e);
    auto ch = std::make_unique<transport::Channel>(*net);
    for (NodeId i = 1; i <= senders; ++i) {
      e->node(i).spawn(
          [&ch, per_sender] {
            sim::Node& n = sim::this_node();
            for (int k = 0; k < per_sender; ++k) {
              ch->send(n, 0, net::Wire::AmShort, 0, [](sim::Node&) {});
              n.advance(usec(1));
            }
          },
          "fan-in-sender");
    }
    e->node(0).spawn(
        [] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "fan-in-sink", /*daemon=*/true);
    state.ResumeTiming();
    e->run();
    state.PauseTiming();
    ch.reset();
    net.reset();
    e.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * senders * per_sender);
}
BENCHMARK(BM_MultiNodeFanIn)->Args({8, 500});

void BM_MultiNodeFanOut(benchmark::State& state) {
  // One sender sprays short messages round-robin over N receiver nodes.
  auto receivers = static_cast<int>(state.range(0));
  auto total = static_cast<int>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto e = std::make_unique<sim::Engine>(receivers + 1);
    auto net = std::make_unique<net::Network>(*e);
    auto ch = std::make_unique<transport::Channel>(*net);
    e->node(0).spawn(
        [&ch, receivers, total] {
          sim::Node& n = sim::this_node();
          for (int k = 0; k < total; ++k) {
            NodeId dst = 1 + static_cast<NodeId>(k % receivers);
            ch->send(n, dst, net::Wire::AmShort, 0, [](sim::Node&) {});
            n.advance(usec(1));
          }
        },
        "fan-out-source");
    for (NodeId i = 1; i <= receivers; ++i) {
      e->node(i).spawn(
          [] {
            sim::Node& n = sim::this_node();
            while (n.wait_for_inbox(true)) {
              while (n.poll_one()) {
              }
            }
          },
          "fan-out-sink", /*daemon=*/true);
    }
    state.ResumeTiming();
    e->run();
    state.PauseTiming();
    ch.reset();
    net.reset();
    e.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * total);
}
BENCHMARK(BM_MultiNodeFanOut)->Args({8, 4000});

void BM_ThreadedRmiChurn(benchmark::State& state) {
  // The paper's MPMD regime: every request spawns a fresh simulated thread
  // at the receiver which replies and dies. Exercises the Task free list,
  // the pooled stacks, and the message pool under thread churn.
  auto rmis = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto e = std::make_unique<sim::Engine>(2);
    auto net = std::make_unique<net::Network>(*e);
    auto am = std::make_unique<am::AmLayer>(*net);
    auto done = std::make_unique<int>(0);
    int* done_p = done.get();
    am::AmLayer* am_p = am.get();
    am::HandlerId h_done = am->register_short(
        "churn.done",
        [done_p](sim::Node&, am::Token, const am::Words&) { ++*done_p; });
    am::HandlerId h_rmi = am->register_short(
        "churn.rmi", [am_p, h_done](sim::Node&, am::Token tok,
                                    const am::Words&) {
          NodeId caller = tok.reply_to;
          threads::Thread t = threads::spawn(
              [am_p, h_done, caller] {
                sim::this_node().advance(usec(1));
                am_p->request(caller, h_done);
              },
              "rmi-thread");
          threads::detach(t);
        });
    e->node(0).spawn(
        [am_p, done_p, h_rmi, rmis] {
          for (int i = 0; i < rmis; ++i) {
            am_p->request(1, h_rmi);
            am_p->poll_until([done_p, i] { return *done_p > i - 128; });
          }
          am_p->poll_until([done_p, rmis] { return *done_p == rmis; });
        },
        "churn-driver");
    e->node(1).spawn(
        [] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "churn-server", /*daemon=*/true);
    state.ResumeTiming();
    e->run();
    state.PauseTiming();
    am.reset();
    net.reset();
    e.reset();
    done.reset();
    state.ResumeTiming();
  }
  // One request + one completion message per RMI.
  state.SetItemsProcessed(state.iterations() * rmis * 2);
}
BENCHMARK(BM_ThreadedRmiChurn)->Arg(1000);

void BM_SerializerRoundTrip(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    ccxx::Serializer s;
    ccxx::cc_marshal(s, v);
    ccxx::Deserializer d(s.data(), s.size());
    auto out = ccxx::unmarshal_one<std::vector<double>>(d);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(v.size()) * 8);
}
BENCHMARK(BM_SerializerRoundTrip)->Arg(20)->Arg(1000);

// ---------------------------------------------------------------------------
// --json front end: the cross-PR baseline (BENCH_hostperf.json)
// ---------------------------------------------------------------------------

struct HostperfResult {
  const char* name;
  int nodes;
  std::uint64_t messages;
  double seconds;
  double events_per_sec;
  double switches_per_sec;
  double allocs_per_message;  ///< negative: not measured for this workload
};

/// Worker threads for the --json workload engines (--threads N). The
/// google-benchmark micro front end stays sequential: it times single
/// operations, where sharding only adds barrier noise.
int g_sim_threads = 1;

double elapsed_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// 2-node raw-message stream. Also measures steady-state allocations: the
/// warmup phase grows every pool/heap to its high-water mark, then the
/// measured phase must not allocate at all.
HostperfResult run_event_dispatch(int warmup, int iters) {
  std::uint64_t news_before = 0, news_after = 0;
  sim::Engine e(2);
  e.set_threads(g_sim_threads);
  e.node(0).spawn(
      [&] {
        sim::Node& n = sim::this_node();
        auto blast = [&](int count) {
          for (int i = 0; i < count; ++i) {
            e.node(1).push_message(sim::Message{
                n.now() + usec(10), 0, e.next_seq(), 0, [](sim::Node&) {}});
            n.advance(usec(1));
          }
          // Run past the last arrival so every delivery has happened.
          n.advance(usec(50));
        };
        blast(warmup);
        news_before = alloc_counts().news;
        blast(iters);
        news_after = alloc_counts().news;
      },
      "sender");
  e.node(1).spawn(
      [&e] {
        sim::Node& n = sim::this_node();
        while (n.wait_for_inbox(true)) {
          while (n.poll_one()) {
          }
        }
      },
      "receiver", /*daemon=*/true);
  auto t0 = std::chrono::steady_clock::now();
  e.run();
  double s = elapsed_since(t0);
  auto messages = static_cast<std::uint64_t>(warmup + iters);
  return {"event_dispatch",
          2,
          messages,
          s,
          static_cast<double>(messages) / s,
          static_cast<double>(total_switches(e)) / s,
          static_cast<double>(news_after - news_before) / iters};
}

HostperfResult run_fan_in(int senders, int per_sender) {
  sim::Engine e(senders + 1);
  e.set_threads(g_sim_threads);
  net::Network net(e);
  transport::Channel ch(net);
  for (NodeId i = 1; i <= senders; ++i) {
    e.node(i).spawn(
        [&ch, per_sender] {
          sim::Node& n = sim::this_node();
          for (int k = 0; k < per_sender; ++k) {
            ch.send(n, 0, net::Wire::AmShort, 0, [](sim::Node&) {});
            n.advance(usec(1));
          }
        },
        "fan-in-sender");
  }
  e.node(0).spawn(
      [] {
        sim::Node& n = sim::this_node();
        while (n.wait_for_inbox(true)) {
          while (n.poll_one()) {
          }
        }
      },
      "fan-in-sink", /*daemon=*/true);
  auto t0 = std::chrono::steady_clock::now();
  e.run();
  double s = elapsed_since(t0);
  auto messages = static_cast<std::uint64_t>(senders) * per_sender;
  return {"fan_in",       senders + 1,
          messages,       s,
          messages / s,   static_cast<double>(total_switches(e)) / s,
          -1.0};
}

HostperfResult run_fan_out(int receivers, int total) {
  sim::Engine e(receivers + 1);
  e.set_threads(g_sim_threads);
  net::Network net(e);
  transport::Channel ch(net);
  e.node(0).spawn(
      [&ch, receivers, total] {
        sim::Node& n = sim::this_node();
        for (int k = 0; k < total; ++k) {
          NodeId dst = 1 + static_cast<NodeId>(k % receivers);
          ch.send(n, dst, net::Wire::AmShort, 0, [](sim::Node&) {});
          n.advance(usec(1));
        }
      },
      "fan-out-source");
  for (NodeId i = 1; i <= receivers; ++i) {
    e.node(i).spawn(
        [] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "fan-out-sink", /*daemon=*/true);
  }
  auto t0 = std::chrono::steady_clock::now();
  e.run();
  double s = elapsed_since(t0);
  auto messages = static_cast<std::uint64_t>(total);
  return {"fan_out",      receivers + 1,
          messages,       s,
          messages / s,   static_cast<double>(total_switches(e)) / s,
          -1.0};
}

HostperfResult run_rmi_churn(int rmis) {
  sim::Engine e(2);
  e.set_threads(g_sim_threads);
  net::Network net(e);
  am::AmLayer am(net);
  int done = 0;
  am::HandlerId h_done = am.register_short(
      "churn.done", [&done](sim::Node&, am::Token, const am::Words&) {
        ++done;
      });
  am::HandlerId h_rmi = am.register_short(
      "churn.rmi",
      [&am, h_done](sim::Node&, am::Token tok, const am::Words&) {
        NodeId caller = tok.reply_to;
        threads::Thread t = threads::spawn(
            [&am, h_done, caller] {
              sim::this_node().advance(usec(1));
              am.request(caller, h_done);
            },
            "rmi-thread");
        threads::detach(t);
      });
  e.node(0).spawn(
      [&am, &done, h_rmi, rmis] {
        for (int i = 0; i < rmis; ++i) {
          am.request(1, h_rmi);
          am.poll_until([&done, i] { return done > i - 128; });
        }
        am.poll_until([&done, rmis] { return done == rmis; });
      },
      "churn-driver");
  e.node(1).spawn(
      [] {
        sim::Node& n = sim::this_node();
        while (n.wait_for_inbox(true)) {
          while (n.poll_one()) {
          }
        }
      },
      "churn-server", /*daemon=*/true);
  auto t0 = std::chrono::steady_clock::now();
  e.run();
  double s = elapsed_since(t0);
  auto messages = static_cast<std::uint64_t>(rmis) * 2;
  return {"rmi_churn",    2,
          messages,       s,
          messages / s,   static_cast<double>(total_switches(e)) / s,
          -1.0};
}

int run_json(const std::string& path, bool smoke) {
  // Pull in the counting allocator (and record whether it is active).
  bool counting = alloc_counting_linked();
  std::vector<HostperfResult> results;
  if (smoke) {
    results.push_back(run_event_dispatch(200, 1000));
    results.push_back(run_fan_in(4, 200));
    results.push_back(run_fan_out(4, 800));
    results.push_back(run_rmi_churn(300));
  } else {
    results.push_back(run_event_dispatch(20000, 300000));
    results.push_back(run_fan_in(8, 40000));
    results.push_back(run_fan_out(8, 320000));
    results.push_back(run_rmi_churn(50000));
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_hostperf: cannot write %s\n", path.c_str());
    return 1;
  }
  {
    bench::JsonWriter w(f);
    w.begin_object();
    w.header("tham-hostperf-v1", default_cost_model(), /*seed=*/0,
             g_sim_threads);
    w.field("smoke", smoke);
#if defined(THAM_FIBER_FAST_SWITCH)
    w.field("fiber_fast_switch", true);
#else
    w.field("fiber_fast_switch", false);
#endif
    w.field("alloc_counting", counting);
    w.begin_array("benchmarks");
    for (const HostperfResult& r : results) {
      w.begin_object(nullptr, /*inline_scope=*/true);
      w.field("name", r.name);
      w.field("nodes", r.nodes);
      w.field("messages", r.messages);
      w.field("seconds", r.seconds, 6);
      w.field("events_per_sec", r.events_per_sec, 1);
      w.field("switches_per_sec", r.switches_per_sec, 1);
      if (r.allocs_per_message < 0) {
        w.null_field("allocs_per_message");
      } else {
        w.field("allocs_per_message", r.allocs_per_message, 4);
      }
      w.end_object();
      std::printf("%-16s %10.0f events/s  %10.0f switches/s", r.name,
                  r.events_per_sec, r.switches_per_sec);
      if (r.allocs_per_message >= 0) {
        std::printf("  %.4f allocs/msg", r.allocs_per_message);
      }
      std::printf("\n");
    }
    w.end_array();
    w.end_object();
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) {
  bool json = false;
  bool smoke = false;
  std::string path = "BENCH_hostperf.json";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json = true;
      path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      tham::g_sim_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      tham::g_sim_threads = std::atoi(argv[i] + 10);
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (json) return tham::run_json(path, smoke);

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
