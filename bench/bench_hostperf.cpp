// Host-machine (real-time) performance of the simulator's own primitives,
// via google-benchmark: fiber context switches, event dispatch, AM round
// trips, marshalling throughput. These bound how large a workload the
// simulated multicomputer can drive; the paper-facing numbers come from the
// virtual-time benches.

#include <benchmark/benchmark.h>

#include "am/am.hpp"
#include "ccxx/serial.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace tham {
namespace {

void BM_FiberSwitch(benchmark::State& state) {
  sim::StackPool pool(64 * 1024);
  bool stop = false;
  sim::Fiber f(
      [&] {
        while (!stop) sim::Fiber::suspend();
      },
      pool);
  for (auto _ : state) {
    f.resume();  // one switch in + one switch out
  }
  stop = true;
  f.resume();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_FiberSwitch);

void BM_EngineEventDispatch(benchmark::State& state) {
  // Measures end-to-end simulation throughput: a 2-node ping-pong of raw
  // messages, events per second.
  auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e(2);
    e.node(0).spawn(
        [&e, iters] {
          sim::Node& n = sim::this_node();
          for (int i = 0; i < iters; ++i) {
            e.node(1).push_message(sim::Message{
                n.now() + usec(10), 0, e.next_seq(), 0, [](sim::Node&) {}});
            n.advance(usec(1));
          }
        },
        "sender");
    e.node(1).spawn(
        [&e] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "receiver", /*daemon=*/true);
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_EngineEventDispatch)->Arg(1000);

void BM_AmRoundTrip(benchmark::State& state) {
  // Real-time cost of one simulated AM round trip (request + reply).
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine(2);
    net::Network net(engine);
    am::AmLayer am(net);
    bool done = false;
    am::HandlerId h_done = am.register_short(
        "done", [&](sim::Node&, am::Token, const am::Words&) { done = true; });
    am::HandlerId h_ping = am.register_short(
        "ping", [&](sim::Node&, am::Token tok, const am::Words&) {
          am.reply(tok, h_done);
        });
    constexpr int kIters = 1000;
    engine.node(0).spawn(
        [&] {
          for (int i = 0; i < kIters; ++i) {
            done = false;
            am.request(1, h_ping);
            am.poll_until([&] { return done; });
          }
        },
        "pinger");
    engine.node(1).spawn(
        [&] {
          sim::Node& n = sim::this_node();
          while (n.wait_for_inbox(true)) {
            while (n.poll_one()) {
            }
          }
        },
        "poller", /*daemon=*/true);
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_AmRoundTrip);

void BM_SerializerRoundTrip(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)), 1.5);
  for (auto _ : state) {
    ccxx::Serializer s;
    ccxx::cc_marshal(s, v);
    ccxx::Deserializer d(s.data(), s.size());
    auto out = ccxx::unmarshal_one<std::vector<double>>(d);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(v.size()) * 8);
}
BENCHMARK(BM_SerializerRoundTrip)->Arg(20)->Arg(1000);

}  // namespace
}  // namespace tham

BENCHMARK_MAIN();
