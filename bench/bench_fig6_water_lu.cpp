// Reproduces Figure 6 of the paper: absolute execution times and component
// breakdowns for Water (atomic and prefetch versions, 64 and 512 molecules)
// and Blocked LU (512x512, 16x16 blocks), in Split-C and CC++, normalized
// against Split-C.

#include <cstdio>

#include "apps/lu.hpp"
#include "apps/water.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

using apps::RunResult;

void add_rows(stats::Table& t, const char* name, const RunResult& sc,
              const RunResult& cc, int procs, double paper_sc,
              double paper_cc) {
  auto row = [&](const char* lang, const RunResult& r, double norm) {
    auto comp = [&](sim::Component c) {
      return stats::Table::num(r.comp_sec(c, procs), 3);
    };
    t.add_row({name, lang, comp(sim::Component::Cpu),
               comp(sim::Component::Net), comp(sim::Component::ThreadMgmt),
               comp(sim::Component::ThreadSync),
               comp(sim::Component::Runtime),
               stats::Table::num(to_sec(r.elapsed), 3),
               stats::Table::num(norm, 2),
               stats::Table::num(lang[0] == 's' ? paper_sc : paper_cc, 2)});
  };
  double ratio =
      static_cast<double>(cc.elapsed) / static_cast<double>(sc.elapsed);
  row("split-c", sc, 1.0);
  row("cc++", cc, ratio);
}

}  // namespace

int bench_main() {
  std::printf("Figure 6: Water and LU execution time breakdown\n");
  std::printf("Water: 64 and 512 molecules, 2 steps, 4 processors."
              " LU: 512x512, 16x16 blocks, 4 processors.\n");
  std::printf("Component columns are per-node-average seconds; 'norm' is the"
              " CC++/Split-C ratio; 'paper(s)' the paper's absolute"
              " seconds.\n\n");

  stats::Table t({"benchmark", "lang", "cpu", "net", "tmgmt", "tsync",
                  "runtime", "total(s)", "norm", "paper(s)"});

  {
    apps::water::Config cfg;
    cfg.molecules = 64;
    RunResult sc = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
    RunResult cc = apps::water::run_ccxx(cfg, apps::water::Version::Atomic);
    add_rows(t, "water-atomic 64", sc, cc, cfg.procs, 0.10, 0.26);
  }
  RunResult sc_a512, cc_a512, sc_p512, cc_p512;
  {
    apps::water::Config cfg;
    cfg.molecules = 512;
    sc_a512 = apps::water::run_splitc(cfg, apps::water::Version::Atomic);
    cc_a512 = apps::water::run_ccxx(cfg, apps::water::Version::Atomic);
    add_rows(t, "water-atomic 512", sc_a512, cc_a512, cfg.procs, 1.79, 10.0);
  }
  {
    apps::water::Config cfg;
    cfg.molecules = 64;
    RunResult sc =
        apps::water::run_splitc(cfg, apps::water::Version::Prefetch);
    RunResult cc = apps::water::run_ccxx(cfg, apps::water::Version::Prefetch);
    add_rows(t, "water-prefetch 64", sc, cc, cfg.procs, 0.04, 0.10);
  }
  {
    apps::water::Config cfg;
    cfg.molecules = 512;
    sc_p512 = apps::water::run_splitc(cfg, apps::water::Version::Prefetch);
    cc_p512 = apps::water::run_ccxx(cfg, apps::water::Version::Prefetch);
    add_rows(t, "water-prefetch 512", sc_p512, cc_p512, cfg.procs, 1.40, 4.89);
  }
  RunResult sc_lu, cc_lu;
  {
    apps::lu::Config cfg;
    sc_lu = apps::lu::run_splitc(cfg);
    cc_lu = apps::lu::run_ccxx(cfg);
    add_rows(t, "lu 512", sc_lu, cc_lu, cfg.procs, 0.81, 2.91);
  }
  t.print();

  std::printf("\nPaper shape checks:\n");
  std::printf("  prefetch improvement at 512: sc %.0f%%, cc %.0f%%"
              " (paper: 22%%, 51%% — prefetch helps CC++ more)\n",
              100 * (1 - to_sec(sc_p512.elapsed) / to_sec(sc_a512.elapsed)),
              100 * (1 - to_sec(cc_p512.elapsed) / to_sec(cc_a512.elapsed)));
  std::printf("  lu gap: %.2fx (paper 3.6x); cc-lu net/sc-lu net = %.2fx"
              " (paper ~2x)\n",
              to_sec(cc_lu.elapsed) / to_sec(sc_lu.elapsed),
              cc_lu.comp_sec(sim::Component::Net, 4) /
                  sc_lu.comp_sec(sim::Component::Net, 4));
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
