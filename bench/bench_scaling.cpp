// Extension beyond the paper: how does the MPMD/SPMD gap evolve with
// processor count? The paper measured 4 processors throughout; this bench
// sweeps 2..16 on em3d-ghost and water-atomic and reports the CC++/Split-C
// ratio per machine size. The expectation from the paper's analysis: the
// gap is a per-access property, so it should stay roughly flat while both
// absolute times fall with added processors (until collective costs bite).
//
// Host-scaling mode (the parallel engine):
//
//   bench_scaling --threads N [--json[=PATH]]
//
// runs a 64-node weak-scaling EM3D workload once on the sequential engine
// and once sharded across N host worker threads, asserts the two runs are
// bit-identical (elapsed vtime, checksum, message/switch counts), and
// reports host wall-clock for both plus the speedup. --json writes
// BENCH_scaling.json (schema tham-scaling-v1) including host_cpus, because
// speedup is only attainable when the host actually has spare cores — on a
// single-core host the honest result is ~1x plus barrier overhead.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "am/am.hpp"
#include "apps/em3d.hpp"
#include "common/env.hpp"
#include "json_out.hpp"
#include "apps/water.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"

namespace tham {
namespace {

int ratio_sweep() {
  std::printf("Scaling sweep (extension): CC++/Split-C ratio vs processor"
              " count\n\n");

  stats::Table t({"app", "procs", "split-c (s)", "cc++ (s)", "ratio"});

  for (int procs : {2, 4, 8, 16}) {
    apps::em3d::Config cfg;
    cfg.procs = procs;
    cfg.graph_nodes = 100 * procs;  // weak scaling: constant work per proc
    cfg.degree = 10;
    cfg.iters = 5;
    cfg.remote_fraction = 0.5;
    double sc = to_sec(
        apps::em3d::run_splitc(cfg, apps::em3d::Version::Ghost).elapsed);
    double cc = to_sec(
        apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost).elapsed);
    t.add_row({"em3d-ghost 50%", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  for (int procs : {2, 4, 8}) {
    apps::water::Config cfg;
    cfg.procs = procs;
    cfg.molecules = 32 * procs;  // weak scaling
    cfg.steps = 1;
    double sc = to_sec(
        apps::water::run_splitc(cfg, apps::water::Version::Atomic).elapsed);
    double cc = to_sec(
        apps::water::run_ccxx(cfg, apps::water::Version::Atomic).elapsed);
    t.add_row({"water-atomic", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  t.print();
  std::printf("\nObservation: water's per-pair gap stays ~flat (the gap is a"
              " per-access property), while em3d-ghost's grows\nwith machine"
              " size — the CC++ collectives (centralized barrier, per-thread"
              " parfor fetches) scale worse than\nSplit-C's split-phase"
              " pipeline, compounding the paper's per-access overheads at"
              " larger machine sizes.\n");
  return 0;
}

// --- Host-scaling mode ------------------------------------------------------

struct HostRun {
  apps::RunResult result;
  double seconds = 0;  ///< host wall clock
};

HostRun run_weak_scaling(int threads) {
  // 64 simulated nodes, constant work per node: the ROADMAP's large-N
  // shape, big enough that epoch-barrier overhead is amortized.
  apps::em3d::Config cfg;
  cfg.procs = 64;
  cfg.graph_nodes = 100 * cfg.procs;
  cfg.degree = 10;
  cfg.iters = 5;
  cfg.remote_fraction = 0.5;
  HostRun r;
  auto t0 = std::chrono::steady_clock::now();
  sim::Engine engine(cfg.procs);
  engine.set_threads(threads);
  net::Network net(engine);
  am::AmLayer am(net);
  r.result =
      apps::em3d::run_splitc(engine, net, am, cfg, apps::em3d::Version::Ghost);
  auto t1 = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

bool identical(const apps::RunResult& a, const apps::RunResult& b) {
  return a.elapsed == b.elapsed && a.checksum == b.checksum &&
         a.messages == b.messages && a.thread_creates == b.thread_creates &&
         a.context_switches == b.context_switches && a.sync_ops == b.sync_ops;
}

int host_scaling(int threads, bool json, const std::string& json_path) {
  unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("Host-scaling run: em3d-ghost, 64 simulated nodes (weak"
              " scaling), %d worker thread(s), %u host cpu(s)\n\n",
              threads, host_cpus);

  HostRun seq = run_weak_scaling(1);
  HostRun par = run_weak_scaling(threads);
  bool bit = identical(seq.result, par.result);
  double speedup = par.seconds > 0 ? seq.seconds / par.seconds : 0;

  stats::Table t({"engine", "host (s)", "vtime (s)", "checksum", "messages"});
  t.add_row({"sequential", stats::Table::num(seq.seconds, 3),
             stats::Table::num(to_sec(seq.result.elapsed), 3),
             stats::Table::num(seq.result.checksum, 6),
             std::to_string(seq.result.messages)});
  t.add_row({std::to_string(threads) + "-thread",
             stats::Table::num(par.seconds, 3),
             stats::Table::num(to_sec(par.result.elapsed), 3),
             stats::Table::num(par.result.checksum, 6),
             std::to_string(par.result.messages)});
  t.print();
  std::printf("\nbit-identical: %s   speedup: %.2fx\n", bit ? "yes" : "NO",
              speedup);
  if (host_cpus < static_cast<unsigned>(threads)) {
    std::printf("note: %d workers on %u host cpu(s) — wall-clock speedup is"
                " not attainable here; the run still\nexercises the sharded"
                " engine and proves bit-identity.\n",
                threads, host_cpus);
  }

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    {
      bench::JsonWriter w(f);
      w.begin_object();
      w.header("tham-scaling-v1", default_cost_model(),
               apps::em3d::Config{}.seed, env_sim_threads());
      w.field("workload", "em3d-ghost weak scaling");
      w.field("sim_nodes", 64);
      w.field("host_cpus", host_cpus);
      w.field("threads", threads);
      w.field("seconds_sequential", seq.seconds, 6);
      w.field("seconds_parallel", par.seconds, 6);
      w.field("speedup", speedup, 4);
      w.field("bit_identical", bit);
      w.field("vtime_ns", static_cast<long long>(seq.result.elapsed));
      w.field("messages", seq.result.messages);
      w.end_object();
    }
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return bit ? 0 : 1;
}

int bench_main(int argc, char** argv) {
  int threads = 0;
  bool json = false;
  std::string json_path = "BENCH_scaling.json";
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      threads = std::atoi(a + 10);
    } else if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      json = true;
      json_path = a + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--threads N [--json[=PATH]]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (threads > 0 || json) return host_scaling(threads > 0 ? threads : 4,
                                               json, json_path);
  return ratio_sweep();
}

}  // namespace
}  // namespace tham

int main(int argc, char** argv) { return tham::bench_main(argc, argv); }
