// Extension beyond the paper: how does the MPMD/SPMD gap evolve with
// processor count? The paper measured 4 processors throughout; this bench
// sweeps 2..16 on em3d-ghost and water-atomic and reports the CC++/Split-C
// ratio per machine size. The expectation from the paper's analysis: the
// gap is a per-access property, so it should stay roughly flat while both
// absolute times fall with added processors (until collective costs bite).

#include <cstdio>

#include "apps/em3d.hpp"
#include "apps/water.hpp"
#include "stats/table.hpp"

namespace tham {

int bench_main() {
  std::printf("Scaling sweep (extension): CC++/Split-C ratio vs processor"
              " count\n\n");

  stats::Table t({"app", "procs", "split-c (s)", "cc++ (s)", "ratio"});

  for (int procs : {2, 4, 8, 16}) {
    apps::em3d::Config cfg;
    cfg.procs = procs;
    cfg.graph_nodes = 100 * procs;  // weak scaling: constant work per proc
    cfg.degree = 10;
    cfg.iters = 5;
    cfg.remote_fraction = 0.5;
    double sc = to_sec(
        apps::em3d::run_splitc(cfg, apps::em3d::Version::Ghost).elapsed);
    double cc = to_sec(
        apps::em3d::run_ccxx(cfg, apps::em3d::Version::Ghost).elapsed);
    t.add_row({"em3d-ghost 50%", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  for (int procs : {2, 4, 8}) {
    apps::water::Config cfg;
    cfg.procs = procs;
    cfg.molecules = 32 * procs;  // weak scaling
    cfg.steps = 1;
    double sc = to_sec(
        apps::water::run_splitc(cfg, apps::water::Version::Atomic).elapsed);
    double cc = to_sec(
        apps::water::run_ccxx(cfg, apps::water::Version::Atomic).elapsed);
    t.add_row({"water-atomic", std::to_string(procs),
               stats::Table::num(sc, 3), stats::Table::num(cc, 3),
               stats::Table::num(cc / sc, 2)});
  }
  t.print();
  std::printf("\nObservation: water's per-pair gap stays ~flat (the gap is a"
              " per-access property), while em3d-ghost's grows\nwith machine"
              " size — the CC++ collectives (centralized barrier, per-thread"
              " parfor fetches) scale worse than\nSplit-C's split-phase"
              " pipeline, compounding the paper's per-access overheads at"
              " larger machine sizes.\n");
  return 0;
}

}  // namespace tham

int main() { return tham::bench_main(); }
